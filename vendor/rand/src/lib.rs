//! Minimal `rand` replacement for offline builds.
//!
//! Provides the seeded-RNG surface the workspace uses: `StdRng` via
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods
//! `gen::<T>()` / `gen_range(range)`. The generator is xoshiro256**
//! seeded through SplitMix64 — deterministic across runs and platforms,
//! which is all the callers (synthetic benchmark inputs) rely on.

/// Core RNG interface: a source of uniformly distributed u64 words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the "standard" uniform distribution.
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with `gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the spans used here (and
                // irrelevant for synthetic test inputs).
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64. Stands in for rand's `StdRng`;
    /// the exact stream differs from upstream, but all callers only need
    /// determinism, not stream compatibility.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u: usize = rng.gen_range(0usize..3);
            assert!(u < 3);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
