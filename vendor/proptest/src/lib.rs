//! Minimal `proptest` replacement for offline builds.
//!
//! Covers the surface the workspace's property tests use: the
//! `proptest!` macro with an optional `proptest_config`, numeric-range /
//! tuple / `prop::collection::vec` / `any::<T>()` / string-pattern
//! strategies, `.prop_map`, and the `prop_assert*` macros. Generation is
//! deterministic (seeded per test name) and there is no shrinking: a
//! failing case prints its inputs and panics.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values. Unlike real proptest there is no value
    /// tree; `generate` directly produces one value per case.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// A constant strategy (`Just(v)`).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_unit_f64() as f32 * (self.end - self.start)
        }
    }

    /// `&str` strategies generate strings from a regex-like pattern; see
    /// [`crate::string`] for the supported subset.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate(self, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($t:ident),+)),*) => {$(
            #[allow(non_snake_case)]
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($t,)+) = self;
                    ($($t.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!(
        (A),
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F),
        (A, B, C, D, E, F, G),
        (A, B, C, D, E, F, G, H)
    );
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Bounded magnitudes keep arithmetic tests out of inf/nan.
            (rng.next_unit_f64() - 0.5) * 2e6
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Printable ASCII keeps generated text debuggable.
            (b' ' + (rng.next_u64() % 95) as u8) as char
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification for `vec`: an exact length or a half-open range.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + (rng.next_u64() as usize) % (hi - lo + 1)
        }
    }

    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod string {
    //! Generation from a small regex subset: literal chars, escapes
    //! (`\n`, `\r`, `\t`, `\\` and escaped metachars), character classes
    //! `[a-z...]` with ranges and escapes, and the quantifiers `{n}`,
    //! `{m,n}`, `?`, `*`, `+` (the unbounded ones capped at 8 repeats).

    use crate::test_runner::TestRng;

    enum Atom {
        Lit(char),
        Class(Vec<(char, char)>),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            unescape(chars[i])
                        } else {
                            chars[i]
                        };
                        i += 1;
                        if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                            i += 1;
                            let hi = if chars[i] == '\\' {
                                i += 1;
                                unescape(chars[i])
                            } else {
                                chars[i]
                            };
                            i += 1;
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    i += 1; // closing ']'
                    Atom::Class(ranges)
                }
                '\\' => {
                    i += 1;
                    let c = unescape(chars[i]);
                    i += 1;
                    Atom::Lit(c)
                }
                '.' => {
                    i += 1;
                    Atom::Class(vec![(' ', '~')])
                }
                c => {
                    i += 1;
                    Atom::Lit(c)
                }
            };
            // Optional quantifier.
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    i += 1;
                    let mut lo = String::new();
                    while chars[i].is_ascii_digit() {
                        lo.push(chars[i]);
                        i += 1;
                    }
                    let lo: usize = lo.parse().unwrap_or(0);
                    let hi = if chars[i] == ',' {
                        i += 1;
                        let mut hi = String::new();
                        while chars[i].is_ascii_digit() {
                            hi.push(chars[i]);
                            i += 1;
                        }
                        hi.parse().unwrap_or(lo)
                    } else {
                        lo
                    };
                    i += 1; // closing '}'
                    (lo, hi)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let pieces = parse(pattern);
        let mut out = String::new();
        for p in &pieces {
            let span = p.max - p.min + 1;
            let n = p.min + (rng.next_u64() as usize) % span;
            for _ in 0..n {
                match &p.atom {
                    Atom::Lit(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|(lo, hi)| (*hi as u64 - *lo as u64) + 1)
                            .sum();
                        let mut pick = rng.next_u64() % total.max(1);
                        for (lo, hi) in ranges {
                            let w = (*hi as u64 - *lo as u64) + 1;
                            if pick < w {
                                out.push(char::from_u32(*lo as u32 + pick as u32).unwrap_or(*lo));
                                break;
                            }
                            pick -= w;
                        }
                    }
                }
            }
        }
        out
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            'r' => '\r',
            't' => '\t',
            '0' => '\0',
            other => other,
        }
    }
}

pub mod test_runner {
    /// Run configuration; only `cases` is meaningful in this shim.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic xoshiro256** RNG seeded from the test name, so each
    /// test sees a stable stream across runs and machines.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name, then SplitMix64 to fill the state.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let mut sm = h;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform f64 in [0, 1).
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirrors `proptest::prelude::prop` (e.g. `prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines `#[test]` functions that run a body over generated inputs.
///
/// Supported grammar (a subset of real proptest):
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn name(a in strategy_a, b in strategy_b) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$attr:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let __strategies = ( $( ($strat), )+ );
            for __case in 0..__config.cases {
                let __values =
                    $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                let __described = format!("{:?}", __values);
                let ( $($arg,)+ ) = __values;
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || { $body })
                );
                if let Err(__panic) = __outcome {
                    eprintln!(
                        "proptest case {}/{} of {} failed with inputs: {}",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                        __described
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// `prop_assert!` — panics on failure (no Err-based rejection here).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}
