//! Minimal `serde_json` replacement for offline builds, backed by the
//! vendored `serde` shim's JSON data model.

pub use serde::de::Error;

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serializes a value to indented JSON (2-space indent, like real
/// serde_json's pretty printer).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    Ok(prettify(&compact))
}

/// Deserializes a value from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = serde::de::Parser::new(s);
    let v = T::deserialize_json(&mut p)?;
    if !p.at_end() {
        return Err(Error::new(
            "trailing characters after JSON value".to_string(),
        ));
    }
    Ok(v)
}

fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    let bytes = compact.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if in_str {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            i += 1;
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push(c);
            }
            '{' | '[' => {
                // Empty containers stay on one line.
                let close = if c == '{' { b'}' } else { b']' };
                if i + 1 < bytes.len() && bytes[i + 1] == close {
                    out.push(c);
                    out.push(close as char);
                    i += 2;
                    continue;
                }
                indent += 1;
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(c);
            }
            ',' => {
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            ':' => {
                out.push(c);
                out.push(' ');
            }
            _ => out.push(c),
        }
        i += 1;
    }
    out
}
