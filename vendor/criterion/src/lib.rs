//! Minimal `criterion` replacement for offline builds.
//!
//! Implements the macro and builder surface the workspace's benches use
//! with plain wall-clock timing: per benchmark, a short warm-up, then
//! `sample_size` timed samples whose mean/min are printed to stdout. No
//! statistical analysis, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Clone, Debug)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, &id.into(), |b| f(b));
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(self.criterion, &full, |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_one(self.criterion, &full, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId(p.to_string())
    }

    pub fn new(name: impl Display, p: impl Display) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    /// Accumulated measured time across `iter` calls in Measure mode.
    elapsed: Duration,
    iters: u64,
}

enum Mode {
    WarmUp { deadline: Instant },
    Measure,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        match self.mode {
            Mode::WarmUp { deadline } => {
                while Instant::now() < deadline {
                    black_box(f());
                }
            }
            Mode::Measure => {
                let start = Instant::now();
                black_box(f());
                self.elapsed += start.elapsed();
                self.iters += 1;
            }
        }
    }
}

fn run_one<F>(c: &Criterion, id: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: run the body until the warm-up deadline expires.
    let mut b = Bencher {
        mode: Mode::WarmUp {
            deadline: Instant::now() + c.warm_up,
        },
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);

    // Measure: sample_size passes over the closure (each `iter` call
    // inside the closure counts once), bounded by measurement_time.
    let mut b = Bencher {
        mode: Mode::Measure,
        elapsed: Duration::ZERO,
        iters: 0,
    };
    let deadline = Instant::now() + c.measurement;
    let mut best = Duration::MAX;
    for _ in 0..c.sample_size {
        let before = b.elapsed;
        let before_iters = b.iters;
        f(&mut b);
        let sample_iters = (b.iters - before_iters).max(1);
        let sample = (b.elapsed - before) / sample_iters as u32;
        best = best.min(sample);
        if Instant::now() > deadline {
            break;
        }
    }
    let mean = if b.iters > 0 {
        b.elapsed / b.iters as u32
    } else {
        Duration::ZERO
    };
    println!(
        "bench {id:<50} mean {mean:>12.3?}  min {best:>12.3?}  ({} iters)",
        b.iters
    );
}

/// `criterion_group!` — both the struct-config form and the plain list
/// form expand to a function that runs every target.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
