//! Derive macros for the vendored `serde` shim.
//!
//! The build environment has no registry access, so the workspace ships a
//! minimal serde replacement (see `vendor/serde`). These derives cover the
//! shapes the workspace actually uses: structs with named fields, tuple
//! structs, and enums whose variants are unit, tuple, or struct-like.
//! Generics and `#[serde(...)]` attributes are intentionally unsupported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = gen_serialize(&item);
    code.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = gen_deserialize(&item);
    code.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

enum Fields {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields (arity).
    Tuple(usize),
    /// No payload.
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skips attributes (`#[...]`) and visibility (`pub`, `pub(...)`) from the
/// front of a token slice, returning the new start index.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` followed by a bracketed group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected `struct` or `enum`, found {t}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected type name, found {t}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("the vendored serde derive does not support generic types ({name})");
        }
    }
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_struct_fields(&tokens[i..]),
        },
        "enum" => {
            let TokenTree::Group(body) = &tokens[i] else {
                panic!("expected enum body for {name}")
            };
            Item::Enum {
                name,
                variants: parse_variants(body.stream()),
            }
        }
        k => panic!("cannot derive for `{k}` items"),
    }
}

fn parse_struct_fields(rest: &[TokenTree]) -> Fields {
    match rest.first() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        _ => Fields::Unit,
    }
}

/// Splits a token stream at top-level commas.
fn split_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut depth = 0i32;
    for t in stream {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    out.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        out.last_mut().unwrap().push(t);
    }
    out.retain(|seg| !seg.is_empty());
    out
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_commas(stream)
        .into_iter()
        .map(|seg| {
            let i = skip_attrs_and_vis(&seg, 0);
            match &seg[i] {
                TokenTree::Ident(id) => id.to_string(),
                t => panic!("expected field name, found {t}"),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_commas(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_commas(stream)
        .into_iter()
        .map(|seg| {
            let i = skip_attrs_and_vis(&seg, 0);
            let name = match &seg[i] {
                TokenTree::Ident(id) => id.to_string(),
                t => panic!("expected variant name, found {t}"),
            };
            let fields = match seg.get(i + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Variant { name, fields }
        })
        .collect()
}

// ------------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = ser_fields_body(fields, "self");
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn serialize_json(&self, out: &mut String) {{ {body} }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        arms.push_str(&format!("{name}::{vn} => serde::ser_str(out, \"{vn}\"),\n"))
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let mut body =
                            String::from("out.push('{'); serde::ser_key(out, \"VARIANT\");")
                                .replace("VARIANT", vn);
                        if *n == 1 {
                            body.push_str("serde::Serialize::serialize_json(__f0, out);");
                        } else {
                            body.push_str("out.push('[');");
                            for (k, b) in binds.iter().enumerate() {
                                if k > 0 {
                                    body.push_str("out.push(',');");
                                }
                                body.push_str(&format!(
                                    "serde::Serialize::serialize_json({b}, out);"
                                ));
                            }
                            body.push_str("out.push(']');");
                        }
                        body.push_str("out.push('}');");
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {{ {body} }}\n",
                            binds.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let mut body = String::from(
                            "out.push('{'); serde::ser_key(out, \"VARIANT\"); out.push('{');",
                        )
                        .replace("VARIANT", vn);
                        for (k, f) in fs.iter().enumerate() {
                            if k > 0 {
                                body.push_str("out.push(',');");
                            }
                            body.push_str(&format!(
                                "serde::ser_key(out, \"{f}\"); \
                                 serde::Serialize::serialize_json({f}, out);"
                            ));
                        }
                        body.push_str("out.push('}'); out.push('}');");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{ {body} }}\n",
                            fs.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn serialize_json(&self, out: &mut String) {{ match self {{ {arms} }} }}\n}}"
            )
        }
    }
}

fn ser_fields_body(fields: &Fields, recv: &str) -> String {
    match fields {
        Fields::Named(fs) => {
            let mut body = String::from("out.push('{');");
            for (k, f) in fs.iter().enumerate() {
                if k > 0 {
                    body.push_str("out.push(',');");
                }
                body.push_str(&format!(
                    "serde::ser_key(out, \"{f}\"); \
                     serde::Serialize::serialize_json(&{recv}.{f}, out);"
                ));
            }
            body.push_str("out.push('}');");
            body
        }
        Fields::Tuple(1) => format!("serde::Serialize::serialize_json(&{recv}.0, out);"),
        Fields::Tuple(n) => {
            let mut body = String::from("out.push('[');");
            for k in 0..*n {
                if k > 0 {
                    body.push_str("out.push(',');");
                }
                body.push_str(&format!(
                    "serde::Serialize::serialize_json(&{recv}.{k}, out);"
                ));
            }
            body.push_str("out.push(']');");
            body
        }
        Fields::Unit => String::from("out.push_str(\"null\");"),
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let mut b = String::from("p.expect_char('{')?;");
                    for (k, f) in fs.iter().enumerate() {
                        if k > 0 {
                            b.push_str("p.expect_char(',')?;");
                        }
                        b.push_str(&format!(
                            "p.expect_key(\"{f}\")?; \
                             let {f} = serde::Deserialize::deserialize_json(p)?;"
                        ));
                    }
                    b.push_str("p.expect_char('}')?;");
                    b.push_str(&format!("Ok({name} {{ {} }})", fs.join(", ")));
                    b
                }
                Fields::Tuple(1) => {
                    format!("Ok({name}(serde::Deserialize::deserialize_json(p)?))")
                }
                Fields::Tuple(n) => {
                    let mut b = String::from("p.expect_char('[')?;");
                    let mut binds = Vec::new();
                    for k in 0..*n {
                        if k > 0 {
                            b.push_str("p.expect_char(',')?;");
                        }
                        b.push_str(&format!(
                            "let __f{k} = serde::Deserialize::deserialize_json(p)?;"
                        ));
                        binds.push(format!("__f{k}"));
                    }
                    b.push_str("p.expect_char(']')?;");
                    b.push_str(&format!("Ok({name}({}))", binds.join(", ")));
                    b
                }
                Fields::Unit => format!("p.expect_null()?; Ok({name})"),
            };
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn deserialize_json(p: &mut serde::de::Parser) \
                 -> Result<Self, serde::de::Error> {{ {body} }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            // Unit variants serialize as a bare string; payload variants as
            // an externally tagged single-key object.
            let mut str_arms = String::new();
            let mut obj_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        str_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    Fields::Tuple(1) => obj_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::deserialize_json(p)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let mut b = String::from("p.expect_char('[')?;");
                        let mut binds = Vec::new();
                        for k in 0..*n {
                            if k > 0 {
                                b.push_str("p.expect_char(',')?;");
                            }
                            b.push_str(&format!(
                                "let __f{k} = serde::Deserialize::deserialize_json(p)?;"
                            ));
                            binds.push(format!("__f{k}"));
                        }
                        b.push_str("p.expect_char(']')?;");
                        obj_arms.push_str(&format!(
                            "\"{vn}\" => {{ {b} Ok({name}::{vn}({})) }}\n",
                            binds.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let mut b = String::from("p.expect_char('{')?;");
                        for (k, f) in fs.iter().enumerate() {
                            if k > 0 {
                                b.push_str("p.expect_char(',')?;");
                            }
                            b.push_str(&format!(
                                "p.expect_key(\"{f}\")?; \
                                 let {f} = serde::Deserialize::deserialize_json(p)?;"
                            ));
                        }
                        b.push_str("p.expect_char('}')?;");
                        obj_arms.push_str(&format!(
                            "\"{vn}\" => {{ {b} Ok({name}::{vn} {{ {} }}) }}\n",
                            fs.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn deserialize_json(p: &mut serde::de::Parser) \
                 -> Result<Self, serde::de::Error> {{\n\
                 if p.peek_char() == Some('\"') {{\n\
                   let v = p.parse_string()?;\n\
                   match v.as_str() {{ {str_arms} \
                     other => Err(serde::de::Error::new(format!(\
                       \"unknown variant {{other}} of {name}\"))) }}\n\
                 }} else {{\n\
                   p.expect_char('{{')?;\n\
                   let v = p.parse_key()?;\n\
                   let out = match v.as_str() {{ {obj_arms} \
                     other => Err(serde::de::Error::new(format!(\
                       \"unknown variant {{other}} of {name}\"))) }};\n\
                   p.expect_char('}}')?;\n\
                   out\n\
                 }}\n}}\n}}"
            )
        }
    }
}
