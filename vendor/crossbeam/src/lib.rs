//! Minimal `crossbeam` replacement for offline builds.
//!
//! Implements the scoped-thread surface used by the workspace
//! (`crossbeam::scope`, `Scope::spawn` with the scope passed back into
//! the closure) on top of `std::thread::scope`. Spawned-thread panics
//! surface as `Err` from `scope`, matching crossbeam's contract that the
//! callers rely on via `.expect(...)`.

use std::any::Any;

/// A scope handle; closures receive `&Scope` so they can spawn nested
/// scoped threads, mirroring crossbeam's API.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Runs `f` with a scope in which borrowed-data threads can be spawned;
/// all threads are joined before `scope` returns. A panic in any spawned
/// thread is reported as `Err` with the panic payload.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    // std::thread::scope re-raises child panics after joining; catch them
    // so the caller sees crossbeam's Err-on-child-panic behavior.
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    #[test]
    fn spawns_and_joins() {
        let mut data = vec![0u64; 8];
        let chunks: Vec<&mut [u64]> = data.chunks_mut(2).collect();
        super::scope(|s| {
            for (i, c) in chunks.into_iter().enumerate() {
                s.spawn(move |_| {
                    for v in c.iter_mut() {
                        *v = i as u64;
                    }
                });
            }
        })
        .expect("no panics");
        assert_eq!(data, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn child_panic_is_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let out = std::sync::Mutex::new(Vec::new());
        super::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| {
                    out.lock().unwrap().push(1);
                });
            });
        })
        .expect("no panics");
        assert_eq!(*out.lock().unwrap(), vec![1]);
    }
}
