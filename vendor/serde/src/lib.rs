//! Minimal serde replacement for offline builds.
//!
//! The real `serde` crate is unfetchable in this environment (no registry
//! access), so this shim provides just enough surface for the workspace:
//! `Serialize`/`Deserialize` traits with derive macros, wired to a JSON
//! data model consumed by the sibling `serde_json` shim. The traits are
//! JSON-specific rather than format-generic; that is sufficient because
//! the workspace only ever serializes to JSON.

pub use serde_derive::{Deserialize, Serialize};

/// A type that can write itself as JSON.
pub trait Serialize {
    fn serialize_json(&self, out: &mut String);
}

/// A type that can parse itself from JSON produced by [`Serialize`].
pub trait Deserialize: Sized {
    fn deserialize_json(p: &mut de::Parser) -> Result<Self, de::Error>;
}

/// Writes a JSON string literal with escapes.
pub fn ser_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes `"key":` (an object key plus separator).
pub fn ser_key(out: &mut String, key: &str) {
    ser_str(out, key);
    out.push(':');
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(p: &mut de::Parser) -> Result<Self, de::Error> {
                let tok = p.parse_number_token()?;
                tok.parse::<$t>().map_err(|e| de::Error::new(format!(
                    "invalid {}: {tok:?}: {e}", stringify!($t))))
            }
        }
    )*};
}

ser_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn deserialize_json(p: &mut de::Parser) -> Result<Self, de::Error> {
        if p.consume_lit("true") {
            Ok(true)
        } else if p.consume_lit("false") {
            Ok(false)
        } else {
            Err(de::Error::new("expected bool".to_string()))
        }
    }
}

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                if self.is_finite() {
                    // Ryu-style shortest form is not needed; Display for
                    // floats in Rust round-trips.
                    let s = self.to_string();
                    out.push_str(&s);
                    // Keep a float marker so deserialization stays typed.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(p: &mut de::Parser) -> Result<Self, de::Error> {
                if p.consume_lit("null") {
                    return Ok(<$t>::NAN);
                }
                let tok = p.parse_number_token()?;
                tok.parse::<$t>().map_err(|e| de::Error::new(format!(
                    "invalid {}: {tok:?}: {e}", stringify!($t))))
            }
        }
    )*};
}

ser_float!(f32, f64);

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        ser_str(out, self);
    }
}

impl Deserialize for String {
    fn deserialize_json(p: &mut de::Parser) -> Result<Self, de::Error> {
        p.parse_string()
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        ser_str(out, self);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Box<[T]> {
    fn serialize_json(&self, out: &mut String) {
        self.as_ref().serialize_json(out);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_json(p: &mut de::Parser) -> Result<Self, de::Error> {
        p.expect_char('[')?;
        let mut out = Vec::new();
        if p.peek_char() == Some(']') {
            p.expect_char(']')?;
            return Ok(out);
        }
        loop {
            out.push(T::deserialize_json(p)?);
            if p.peek_char() == Some(',') {
                p.expect_char(',')?;
            } else {
                break;
            }
        }
        p.expect_char(']')?;
        Ok(out)
    }
}

impl<T: Deserialize> Deserialize for Box<[T]> {
    fn deserialize_json(p: &mut de::Parser) -> Result<Self, de::Error> {
        Ok(Vec::<T>::deserialize_json(p)?.into_boxed_slice())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_json(p: &mut de::Parser) -> Result<Self, de::Error> {
        Ok(Box::new(T::deserialize_json(p)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_json(p: &mut de::Parser) -> Result<Self, de::Error> {
        if p.consume_lit("null") {
            Ok(None)
        } else {
            Ok(Some(T::deserialize_json(p)?))
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_json(p: &mut de::Parser) -> Result<Self, de::Error> {
                p.expect_char('[')?;
                let mut first = true;
                let out = ($(
                    {
                        if !first { p.expect_char(',')?; }
                        first = false;
                        let v = $t::deserialize_json(p)?;
                        v
                    },
                )+);
                let _ = first;
                p.expect_char(']')?;
                Ok(out)
            }
        }
    )*};
}

ser_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D)
);

pub mod de {
    //! JSON token parser used by the derive-generated `Deserialize` impls
    //! and by the `serde_json` shim.

    use std::fmt;

    #[derive(Debug)]
    pub struct Error {
        msg: String,
    }

    impl Error {
        pub fn new(msg: String) -> Self {
            Error { msg }
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "JSON parse error: {}", self.msg)
        }
    }

    impl std::error::Error for Error {}

    /// A cursor over JSON text. Skips whitespace before every token, so it
    /// accepts both compact and pretty-printed output.
    pub struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Parser<'a> {
        pub fn new(input: &'a str) -> Self {
            Parser {
                bytes: input.as_bytes(),
                pos: 0,
            }
        }

        pub fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b' ' || b == b'\n' || b == b'\t' || b == b'\r' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        /// Peeks the next non-whitespace char.
        pub fn peek_char(&mut self) -> Option<char> {
            self.skip_ws();
            self.bytes.get(self.pos).map(|&b| b as char)
        }

        pub fn expect_char(&mut self, c: char) -> Result<(), Error> {
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(&b) if b as char == c => {
                    self.pos += 1;
                    Ok(())
                }
                other => Err(Error::new(format!(
                    "expected {c:?} at byte {}, found {:?}",
                    self.pos,
                    other.map(|&b| b as char)
                ))),
            }
        }

        /// Consumes a literal keyword (`true`, `false`, `null`) if present.
        pub fn consume_lit(&mut self, lit: &str) -> bool {
            self.skip_ws();
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                true
            } else {
                false
            }
        }

        pub fn expect_null(&mut self) -> Result<(), Error> {
            if self.consume_lit("null") {
                Ok(())
            } else {
                Err(Error::new(format!("expected null at byte {}", self.pos)))
            }
        }

        /// Parses a JSON string literal and returns its unescaped value.
        pub fn parse_string(&mut self) -> Result<String, Error> {
            self.expect_char('"')?;
            let mut out = String::new();
            loop {
                let Some(&b) = self.bytes.get(self.pos) else {
                    return Err(Error::new("unterminated string".to_string()));
                };
                self.pos += 1;
                match b {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let Some(&e) = self.bytes.get(self.pos) else {
                            return Err(Error::new("bad escape".to_string()));
                        };
                        self.pos += 1;
                        match e {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'u' => {
                                let hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| Error::new("bad \\u".to_string()))?;
                                self.pos += 4;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex)
                                        .map_err(|_| Error::new("bad \\u".to_string()))?,
                                    16,
                                )
                                .map_err(|_| Error::new("bad \\u".to_string()))?;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::new("bad \\u".to_string()))?,
                                );
                            }
                            other => {
                                return Err(Error::new(format!(
                                    "unknown escape \\{}",
                                    other as char
                                )))
                            }
                        }
                    }
                    _ => {
                        // Copy a full UTF-8 sequence starting at pos-1.
                        let start = self.pos - 1;
                        let mut end = self.pos;
                        while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                            end += 1;
                        }
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| Error::new("invalid utf8".to_string()))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }

        /// Parses `"key":` and returns the key.
        pub fn parse_key(&mut self) -> Result<String, Error> {
            let k = self.parse_string()?;
            self.expect_char(':')?;
            Ok(k)
        }

        /// Parses `"key":` and checks the key matches.
        pub fn expect_key(&mut self, key: &str) -> Result<(), Error> {
            let k = self.parse_key()?;
            if k == key {
                Ok(())
            } else {
                Err(Error::new(format!("expected key {key:?}, found {k:?}")))
            }
        }

        /// Returns the raw text of a number token.
        pub fn parse_number_token(&mut self) -> Result<String, Error> {
            self.skip_ws();
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b.is_ascii_digit()
                    || b == b'-'
                    || b == b'+'
                    || b == b'.'
                    || b == b'e'
                    || b == b'E'
                {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            if start == self.pos {
                return Err(Error::new(format!("expected number at byte {start}")));
            }
            Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
        }

        /// True when only whitespace remains.
        pub fn at_end(&mut self) -> bool {
            self.skip_ws();
            self.pos == self.bytes.len()
        }
    }
}
