//! Partial-pattern classification (the paper's §9 future-work item):
//! run the finder under several inputs and separate stable patterns from
//! input-dependent ones.
//!
//! ```sh
//! cargo run --example partial_patterns
//! ```

use discovery::{find_patterns, FinderConfig, Stability};
use trace::RunConfig;

const SRC: &str = r#"
float readings[16];
float smoothed[16];
float alarms[1];

void main() {
    float alarm = 0.0;
    int i;
    for (i = 0; i < 16; i++) {
        smoothed[i] = readings[i] * 0.8 + 0.1;
        if (readings[i] > 100.0) {
            alarm = alarm + readings[i];
        }
    }
    alarms[0] = alarm;
    output(smoothed);
    output(alarms);
}
"#;

fn main() {
    let program = minc::compile("sensor", SRC).expect("compiles");
    let analyze = |data: &[f64]| {
        let cfg = RunConfig::default().with_f64("readings", data);
        let r = trace::run(&program, &cfg).expect("runs");
        find_patterns(&r.ddg.expect("traced"), &FinderConfig::default())
    };

    // Input 1: calm readings — the alarm accumulation never fires.
    let calm: Vec<f64> = (0..16).map(|i| 20.0 + i as f64).collect();
    // Input 2: two spikes — the conditional reduction now chains
    // iterations together.
    let mut spiky = calm.clone();
    spiky[3] = 150.0;
    spiky[7] = 180.0;

    let runs = vec![analyze(&calm), analyze(&spiky)];
    println!("patterns under {} inputs:\n", runs.len());
    for c in discovery::classify_across_inputs(&runs) {
        match c.stability {
            Stability::Stable => {
                println!("  stable : {:?} over loops {:?}", c.site.kind, c.site.loops)
            }
            Stability::Partial(in_runs) => println!(
                "  PARTIAL: {:?} over loops {:?} (it.{}) — holds only under input(s) {:?}",
                c.site.kind, c.site.loops, c.site.iteration, in_runs
            ),
        }
    }
    println!(
        "\nA deployment would show partial patterns to the programmer with their\n\
         triggering condition — the paper's 'partial patterns (which only apply\n\
         under certain execution conditions)'."
    );
}
