//! Batch-analyze the whole Starbench suite (both versions of every
//! benchmark) on the parallel engine, streaming results as they finish.
//!
//! ```sh
//! cargo run --release --example batch_analyze
//! cargo run --release --example batch_analyze -- 8 2000   # workers, budget ms
//! cargo run --release --example batch_analyze -- --workers 8 --budget-ms 2000
//! cargo run --release --example batch_analyze -- \
//!     --bench rgbyuv --bench kmeans \
//!     --trace-out trace.json --metrics-json metrics.json
//! ```
//!
//! Demonstrates the `repro-engine` crate: the sixteen requests run
//! concurrently on a work-stealing pool, per-sub-DDG match jobs are
//! parallelized within each request, and a structural-hash cache shares
//! match outcomes across isomorphic sub-DDGs. The patterns are
//! byte-identical to the sequential `discovery::find_patterns`.
//!
//! `--trace-out <path>` switches span tracing on and writes a Chrome
//! trace (open in <https://ui.perfetto.dev>); `--metrics-json <path>`
//! writes the flat `ObsReport`; `--bench <name>` (repeatable) restricts
//! the batch to the named Starbench programs; `--trace-workers <n>`
//! shards trace ingestion across `n` workers per analysis (the DDGs
//! stay byte-identical to the sequential machine's — DESIGN.md §17).

use repro_engine::{AnalysisRequest, Engine, EngineConfig};
use starbench::{all_benchmarks, Version};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Parses a flag value, or exits 2 with the flag and offending value
/// named — bad CLI input is a usage error, not a panic.
fn parse_or_exit<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("invalid value for {flag}: got {value:?}");
        std::process::exit(2);
    })
}

fn main() {
    let mut workers = 0usize;
    let mut trace_workers = 1usize;
    let mut budget_ms = 60_000u64;
    let mut trace_out: Option<PathBuf> = None;
    let mut metrics_json: Option<PathBuf> = None;
    let mut only: Vec<String> = Vec::new();
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--trace-out" => trace_out = Some(PathBuf::from(take("--trace-out"))),
            "--metrics-json" => metrics_json = Some(PathBuf::from(take("--metrics-json"))),
            "--bench" => {
                let name = take("--bench");
                if starbench::benchmark(&name).is_none() {
                    eprintln!("{}", starbench::unknown_benchmark_message(&name));
                    std::process::exit(2);
                }
                only.push(name);
            }
            "--workers" => workers = parse_or_exit("--workers", &take("--workers")),
            "--trace-workers" => {
                trace_workers =
                    parse_or_exit::<usize>("--trace-workers", &take("--trace-workers")).max(1);
            }
            "--budget-ms" => budget_ms = parse_or_exit("--budget-ms", &take("--budget-ms")),
            _ => positional.push(arg),
        }
    }
    if let Some(w) = positional.first() {
        workers = parse_or_exit("--workers", w);
    }
    if let Some(b) = positional.get(1) {
        budget_ms = parse_or_exit("--budget-ms", b);
    }
    if trace_out.is_some() || metrics_json.is_some() {
        obs::enable();
    }

    let mut config = discovery::FinderConfig::default();
    config.budget.time = Duration::from_millis(budget_ms);

    let mut requests = Vec::new();
    for bench in all_benchmarks() {
        if !only.is_empty() && !only.iter().any(|n| n == bench.name) {
            continue;
        }
        for version in Version::BOTH {
            requests.push(AnalysisRequest {
                id: format!("{}-{}", bench.name, version.name()),
                program: bench.program(version),
                input: (bench.analysis_input)().with_trace_workers(trace_workers),
                config: config.clone(),
            });
        }
    }
    if requests.is_empty() {
        eprintln!("no benchmark matched the --bench filter {only:?}");
        std::process::exit(2);
    }
    let n = requests.len();

    let engine = Engine::new(EngineConfig {
        workers,
        ..EngineConfig::default()
    });
    println!(
        "analyzing {n} benchmark runs on {} workers (budget {budget_ms} ms per solver run)\n",
        engine.metrics().workers
    );

    let t0 = Instant::now();
    // Results stream in completion order; `index` recovers submission order.
    for res in engine.analyze_batch(requests) {
        match &res.outcome {
            Ok(analysis) => {
                let reported = analysis.result.reported().count();
                println!(
                    "[{:>2}] {:<22} {:>3} patterns  trace {:>7.1?}  find {:>7.1?}  \
                     {} match jobs ({} cache hits){}",
                    res.index,
                    res.id,
                    reported,
                    res.metrics.trace_time,
                    res.metrics.find_time,
                    res.metrics.match_jobs,
                    res.metrics.cache_hits,
                    if res.metrics.degraded {
                        "  DEGRADED"
                    } else {
                        ""
                    },
                );
            }
            Err(e) => println!("[{:>2}] {:<22} FAILED: {e}", res.index, res.id),
        }
    }
    println!("\nbatch wall clock: {:.2?}", t0.elapsed());

    let m = engine.metrics();
    println!(
        "engine: {} match jobs executed, {} stolen, peak queue {}; \
         cache: {} hits / {} misses ({:.0}% hit rate, {} entries)",
        m.jobs_executed,
        m.jobs_stolen,
        m.peak_queue_depth,
        m.cache_hits,
        m.cache_misses,
        100.0 * m.cache_hit_rate(),
        m.cache_entries,
    );
    if m.match_faults + m.requests_degraded + m.requests_failed > 0 {
        println!(
            "faults: {} match faults, {} requests degraded, {} failed",
            m.match_faults, m.requests_degraded, m.requests_failed,
        );
    }

    if let Some(path) = &trace_out {
        let threads = obs::take_events();
        match obs::write_chrome_trace(path, &threads) {
            Ok(()) => eprintln!("chrome trace written to {}", path.display()),
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &metrics_json {
        let mut report = obs::ObsReport::snapshot();
        report.meta("experiment", "batch_analyze");
        report.meta_num("workers", m.workers as f64);
        report.meta_num("budget_ms", budget_ms as f64);
        report.meta_num("requests", n as f64);
        report.section("engine", &m);
        match report.write(path) {
            Ok(()) => eprintln!("metrics written to {}", path.display()),
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}
