//! Batch-analyze the whole Starbench suite (both versions of every
//! benchmark) on the parallel engine, streaming results as they finish.
//!
//! ```sh
//! cargo run --release --example batch_analyze
//! cargo run --release --example batch_analyze -- 8 2000   # workers, budget ms
//! ```
//!
//! Demonstrates the `repro-engine` crate: the sixteen requests run
//! concurrently on a work-stealing pool, per-sub-DDG match jobs are
//! parallelized within each request, and a structural-hash cache shares
//! match outcomes across isomorphic sub-DDGs. The patterns are
//! byte-identical to the sequential `discovery::find_patterns`.

use repro_engine::{AnalysisRequest, Engine, EngineConfig};
use starbench::{all_benchmarks, Version};
use std::time::{Duration, Instant};

fn main() {
    let workers: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("workers"))
        .unwrap_or(0);
    let budget_ms: u64 = std::env::args()
        .nth(2)
        .map(|s| s.parse().expect("budget ms"))
        .unwrap_or(60_000);

    let mut config = discovery::FinderConfig::default();
    config.budget.time = Duration::from_millis(budget_ms);

    let mut requests = Vec::new();
    for bench in all_benchmarks() {
        for version in Version::BOTH {
            requests.push(AnalysisRequest {
                id: format!("{}-{}", bench.name, version.name()),
                program: bench.program(version),
                input: (bench.analysis_input)(),
                config: config.clone(),
            });
        }
    }
    let n = requests.len();

    let engine = Engine::new(EngineConfig {
        workers,
        ..EngineConfig::default()
    });
    println!(
        "analyzing {n} benchmark runs on {} workers (budget {budget_ms} ms per solver run)\n",
        engine.metrics().workers
    );

    let t0 = Instant::now();
    // Results stream in completion order; `index` recovers submission order.
    for res in engine.analyze_batch(requests) {
        match &res.outcome {
            Ok(analysis) => {
                let reported = analysis.result.reported().count();
                println!(
                    "[{:>2}] {:<22} {:>3} patterns  trace {:>7.1?}  find {:>7.1?}  \
                     {} match jobs ({} cache hits){}",
                    res.index,
                    res.id,
                    reported,
                    res.metrics.trace_time,
                    res.metrics.find_time,
                    res.metrics.match_jobs,
                    res.metrics.cache_hits,
                    if res.metrics.degraded {
                        "  DEGRADED"
                    } else {
                        ""
                    },
                );
            }
            Err(e) => println!("[{:>2}] {:<22} FAILED: {e}", res.index, res.id),
        }
    }
    println!("\nbatch wall clock: {:.2?}", t0.elapsed());

    let m = engine.metrics();
    println!(
        "engine: {} match jobs executed, {} stolen, peak queue {}; \
         cache: {} hits / {} misses ({:.0}% hit rate, {} entries)",
        m.jobs_executed,
        m.jobs_stolen,
        m.peak_queue_depth,
        m.cache_hits,
        m.cache_misses,
        100.0 * m.cache_hit_rate(),
        m.cache_entries,
    );
    if m.match_faults + m.requests_degraded + m.requests_failed > 0 {
        println!(
            "faults: {} match faults, {} requests degraded, {} failed",
            m.match_faults, m.requests_degraded, m.requests_failed,
        );
    }
}
