//! The constraint-solver kernel on its own: the finite-domain engine that
//! matches pattern models (the reproduction's MiniZinc/Chuffed stand-in),
//! demonstrated on classic CSPs.
//!
//! ```sh
//! cargo run --example solver_playground -- 10
//! ```

use cp::search::search_with;
use cp::{AllDifferent, NotEqual, Outcome, Propagator, VarId};
use std::time::Duration;

fn main() {
    let n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);

    // n-queens.
    let mut search = search_with(|store| {
        let qs: Vec<VarId> = (0..n).map(|_| store.new_var(0, n - 1)).collect();
        let mut props: Vec<Box<dyn Propagator>> = vec![Box::new(AllDifferent::new(qs.clone()))];
        for i in 0..n as usize {
            for j in (i + 1)..n as usize {
                let d = (j - i) as i64;
                props.push(Box::new(NotEqual::with_offset(qs[i], qs[j], d)));
                props.push(Box::new(NotEqual::with_offset(qs[i], qs[j], -d)));
            }
        }
        props
    })
    .with_budget(Duration::from_secs(60));

    match search.solve_first() {
        Outcome::Solution { values, .. } => {
            println!("{n}-queens solution (column per row): {values:?}");
            for &val in values.iter().take(n as usize) {
                let col = val as usize;
                let line: String = (0..n as usize)
                    .map(|c| if c == col { " Q" } else { " ." })
                    .collect();
                println!("{line}");
            }
        }
        Outcome::Unsat => println!("{n}-queens is unsatisfiable"),
        Outcome::Exhausted => println!("budget exhausted"),
    }
    let stats = search.stats();
    println!(
        "search: {} nodes, {} solution(s), max depth {}",
        stats.nodes, stats.solutions, stats.max_depth
    );

    // Graph coloring of a wheel graph: hub + even cycle (3-colorable;
    // an odd cycle would need four colors).
    let spokes = 6u32;
    let mut coloring = search_with(|store| {
        let hub = store.new_var(0, 2);
        let rim: Vec<VarId> = (0..spokes).map(|_| store.new_var(0, 2)).collect();
        let mut props: Vec<Box<dyn Propagator>> = Vec::new();
        for (i, &r) in rim.iter().enumerate() {
            props.push(Box::new(NotEqual::new(hub, r)));
            props.push(Box::new(NotEqual::new(r, rim[(i + 1) % spokes as usize])));
        }
        props
    });
    match coloring.solve_first() {
        Outcome::Solution { values, .. } => {
            println!(
                "\nwheel W{spokes} 3-coloring: hub={} rim={:?}",
                values[0],
                &values[1..]
            );
        }
        other => println!("\nwheel coloring: {other:?}"),
    }
}
