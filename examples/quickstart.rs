//! Quickstart: compile a small legacy-style program, trace it, and find
//! its parallel patterns.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! The program below is plain sequential C-style code with an ad-hoc
//! fused map-reduction. The analysis does not care that it is sequential
//! — it finds the same patterns it would find in a Pthreads version,
//! and reports where in the source the pattern library call could go.

fn main() {
    let source = r#"
float data[64];
float out[1];

float square(float x) {
    return x * x;
}

void main() {
    float sum = 0.0;
    int i;
    for (i = 0; i < 64; i++) {
        sum = sum + square(data[i]) * 0.5;
    }
    out[0] = sum;
    output(out);
}
"#;

    // 1. Compile the legacy source to the analysis IR.
    let program = minc::compile("quickstart", source).expect("compiles");

    // 2. Execute under instrumentation: every operation execution becomes
    //    a node of the dynamic dataflow graph.
    let input: Vec<f64> = (0..64).map(|i| i as f64 * 0.1).collect();
    let cfg = trace::RunConfig::default().with_f64("data", &input);
    let run = trace::run(&program, &cfg).expect("runs");
    let ddg = run.ddg.expect("traced");
    println!("traced DDG: {} nodes, {} arcs", ddg.len(), ddg.arc_count());

    // 3. Find patterns with the iterative constraint-based finder.
    let result = discovery::find_patterns(&ddg, &discovery::FinderConfig::default());
    println!("{}", discovery::report::render_text(&result, &program));

    // 4. The found map-reduction can be re-expressed with one skeleton
    //    call — portable across execution plans.
    let expected: f64 = input.iter().map(|x| x * x * 0.5).sum();
    for plan in [
        skeletons::ExecPlan::Sequential,
        skeletons::ExecPlan::cpu_auto(),
        skeletons::ExecPlan::SimGpu,
    ] {
        let got = skeletons::map_reduce(plan, &input, |x| x * x * 0.5, 0.0, |a, b| a + b);
        assert!((got - expected).abs() < 1e-9);
        println!("modernized on {plan}: {got:.4}");
    }
}
