//! Analyze any Starbench benchmark and compare against the paper's
//! Table 3 ground truth.
//!
//! ```sh
//! cargo run --example analyze_starbench -- streamcluster pthreads
//! cargo run --example analyze_starbench -- kmeans seq
//! ```

use starbench::Version;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "streamcluster".into());
    let version = match std::env::args().nth(2).as_deref() {
        Some("seq") => Version::Seq,
        _ => Version::Pthreads,
    };
    let Some(bench) = starbench::benchmark(&name) else {
        eprintln!(
            "unknown benchmark {name}; available: {}",
            starbench::all_benchmarks()
                .iter()
                .map(|b| b.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    };

    println!("=== {} ({}) ===", bench.name, version.name());
    let program = bench.program(version);
    let run = bench.run_analysis(version);
    let ddg = run.ddg.expect("traced");
    println!("DDG: {} nodes, {} arcs\n", ddg.len(), ddg.arc_count());

    let result = discovery::find_patterns(&ddg, &discovery::FinderConfig::default());
    println!("{}", discovery::report::render_text(&result, &program));

    println!("all matches by iteration:");
    for f in &result.found {
        println!(
            "  it.{} {}{}",
            f.iteration,
            f.pattern.describe(),
            if f.reported { "" } else { "  (subsumed)" }
        );
    }

    let eval = starbench::evaluate(bench.name, version, &result);
    println!(
        "\nTable 3 check: {}/{} expected found, {} known-missed confirmed, {} additional",
        eval.found_count(),
        eval.expected_count(),
        eval.missed_confirmed(),
        eval.extras.len()
    );
    for (e, ok) in &eval.hits {
        let status = match (e.found, ok) {
            (true, true) => "found as expected",
            (true, false) => "MISSING",
            (false, true) => "missed as the paper does",
            (false, false) => "FOUND BUT PAPER MISSES IT",
        };
        println!("  {} (it.{}): {}", e.kind, e.iteration, status);
    }
}
