//! The paper's full §2 + §6.3 story on one screen: find the tiled
//! map-reduction in Pthreaded streamcluster, re-express it as a skeleton
//! call, and show where each implementation wins across architectures.
//!
//! ```sh
//! cargo run --release --example modernize_streamcluster
//! ```

use skeletons::model::{speedup, Impl, KernelProfile};
use skeletons::{ExecPlan, Machine};
use starbench::native::{hiz_modernized, hiz_pthreads, hiz_sequential, Points};
use starbench::Version;

fn main() {
    // --- Act 1: the analysis (paper Fig. 2) ---
    println!("1. Analyzing Pthreaded streamcluster...\n");
    let bench = starbench::benchmark("streamcluster").unwrap();
    let program = bench.program(Version::Pthreads);
    let run = bench.run_analysis(Version::Pthreads);
    let result = discovery::find_patterns(&run.ddg.unwrap(), &discovery::FinderConfig::default());

    let mr = result
        .reported()
        .find(|f| {
            f.pattern.kind == discovery::PatternKind::TiledMapReduction
                && f.pattern.op_labels.iter().any(|l| l.contains("sqrt"))
        })
        .expect("the hiz tiled map-reduction");
    println!(
        "found after {} finder iterations: {} across source lines:",
        mr.iteration,
        mr.pattern.describe()
    );
    for &(file, line) in &mr.pattern.lines {
        if let Some(text) = program.source_line(repro_ir::Loc::in_file(file, line, 1)) {
            println!(
                "    {}:{}: {}",
                program.files[file as usize],
                line,
                text.trim()
            );
        }
    }

    // --- Act 2: the modernization (paper Fig. 2b) ---
    println!("\n2. The found pattern as one skeleton call:\n");
    let pts = Points::synthetic(100_000, 32, 11);
    let weights: Vec<f64> = (0..pts.len()).map(|i| 1.0 + (i % 4) as f64 * 0.1).collect();
    let legacy = hiz_pthreads(&pts, &weights, 4);
    for plan in [ExecPlan::Sequential, ExecPlan::cpu_auto(), ExecPlan::SimGpu] {
        let modern = hiz_modernized(&pts, &weights, plan);
        assert!((modern - legacy).abs() < 1e-6);
        println!("   hiz_modernized({plan}) = {modern:.3}  (legacy pthreads: {legacy:.3})");
    }
    let seq = hiz_sequential(&pts, &weights);
    assert!((seq - legacy).abs() < 1e-6);

    // --- Act 3: the portability payoff (paper Fig. 8) ---
    println!("\n3. Modeled speedups on the paper's two machines:\n");
    let baseline = Machine::cpu_centric();
    let profile = KernelProfile::streamcluster_reference();
    for machine in [Machine::cpu_centric(), Machine::gpu_centric()] {
        println!("   {}", machine.name);
        for imp in [Impl::LegacyPthreads, Impl::Modernized, Impl::RodiniaCuda] {
            println!(
                "     {:<34} {:>5.1}x",
                imp.label(),
                speedup(imp, &machine, &baseline, &profile)
            );
        }
        let chosen = skeletons::choose_backend(&machine, &profile);
        println!("     (hybrid dispatcher picks: {chosen:?})\n");
    }
    println!(
        "The same modernized source is within 4% of hand-written Pthreads on the\n\
         12-core machine and 3.6x faster than it on the GPU-centric machine — the\n\
         paper's portability argument."
    );
}
