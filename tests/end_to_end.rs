//! Cross-crate integration tests: the full pipeline from `minc` source
//! through tracing to pattern finding and reporting.

use discovery::{find_patterns, FinderConfig, PatternKind};
use starbench::Version;
use trace::{run, RunConfig};

fn analyze(src: &str, cfg: RunConfig) -> (repro_ir::Program, discovery::FinderResult) {
    let program = minc::compile("test", src).expect("compiles");
    let r = run(&program, &cfg).expect("runs");
    let result = find_patterns(&r.ddg.expect("traced"), &FinderConfig::default());
    (program, result)
}

/// The paper's §6.1 observation, "the same patterns are found in both
/// versions of all benchmarks": every Table 3 pattern found in the
/// sequential version is found in the Pthreads version and vice versa
/// (as kinds — the reduction legend switches between linear and tiled).
#[test]
fn analysis_is_oblivious_to_parallelism() {
    for bench in starbench::all_benchmarks() {
        let mut kinds_by_version = Vec::new();
        for v in Version::BOTH {
            let r = bench.run_analysis(v);
            let result = find_patterns(&r.ddg.unwrap(), &FinderConfig::default());
            let eval = starbench::evaluate(bench.name, v, &result);
            let mut satisfied: Vec<&str> = eval
                .hits
                .iter()
                .filter(|(e, ok)| e.found && *ok)
                .map(|(e, _)| e.kind)
                .collect();
            satisfied.sort_unstable();
            kinds_by_version.push(satisfied);
        }
        assert_eq!(
            kinds_by_version[0], kinds_by_version[1],
            "{}: same expected patterns found in both versions",
            bench.name
        );
    }
}

/// Tracing is deterministic: two runs produce identical DDGs.
#[test]
fn tracing_is_deterministic() {
    let bench = starbench::benchmark("md5").unwrap();
    let program = bench.program(Version::Pthreads);
    let cfg = (bench.analysis_input)();
    let a = run(&program, &cfg).unwrap().ddg.unwrap();
    let b = run(&program, &cfg).unwrap().ddg.unwrap();
    assert_eq!(a.len(), b.len());
    assert_eq!(a.arcs().collect::<Vec<_>>(), b.arcs().collect::<Vec<_>>());
    for (x, y) in a.node_ids().zip(b.node_ids()) {
        assert_eq!(a.node(x).static_op, b.node(y).static_op);
        assert_eq!(a.node(x).thread, b.node(y).thread);
    }
}

/// A pipeline of maps over linked computations fuses into one fused map,
/// regardless of how many stages there are.
#[test]
fn map_pipelines_fuse_across_stages() {
    let src = r#"
float a[8];
float b[8];
float c[8];
float d[8];

void main() {
    int i;
    for (i = 0; i < 8; i++) {
        b[i] = a[i] * 2.0;
    }
    int j;
    for (j = 0; j < 8; j++) {
        c[j] = b[j] + 1.0;
    }
    int k;
    for (k = 0; k < 8; k++) {
        d[k] = c[k] * c[k];
    }
    output(d);
}
"#;
    let cfg = RunConfig::default().with_f64("a", &[0.5; 8]);
    let (_, result) = analyze(src, cfg);
    let fused: Vec<_> = result
        .found
        .iter()
        .filter(|f| f.pattern.kind == PatternKind::FusedMap)
        .collect();
    assert!(!fused.is_empty(), "chained maps must fuse");
    // The largest fusion covers all three stages (24 nodes: 8 per stage).
    let biggest = fused.iter().map(|f| f.pattern.nodes.len()).max().unwrap();
    assert_eq!(biggest, 24, "three-stage fusion");
    // Merging reports only the largest composition.
    let reported: Vec<_> = result.reported().collect();
    assert!(reported
        .iter()
        .all(|f| f.pattern.kind == PatternKind::FusedMap && f.pattern.nodes.len() == 24));
}

/// Mutex-protected accumulation across threads still yields the reduction:
/// the DDG sees dataflow, not synchronization.
#[test]
fn mutex_guarded_reduction_is_found() {
    let src = r#"
float data[8];
float total[1];
int handles[2];
mutex m;

void worker(int pid) {
    float acc = 0.0;
    int i;
    for (i = pid * 4; i < pid * 4 + 4; i++) {
        acc = acc + data[i];
    }
    lock(m);
    total[0] = total[0] + acc;
    unlock(m);
}

void main() {
    int t;
    for (t = 0; t < 2; t++) {
        int h;
        h = spawn worker(t);
        handles[t] = h;
    }
    for (t = 0; t < 2; t++) {
        join(handles[t]);
    }
    output(total);
}
"#;
    let cfg = RunConfig::default().with_f64("data", &[1.0; 8]);
    let (_, result) = analyze(src, cfg);
    assert!(
        result
            .found
            .iter()
            .any(|f| f.pattern.kind == PatternKind::TiledReduction),
        "{:?}",
        result
            .found
            .iter()
            .map(|f| f.pattern.describe())
            .collect::<Vec<_>>()
    );
}

/// The reports point at real source lines.
#[test]
fn reports_reference_source_lines() {
    let src = "float a[4];\nfloat b[4];\nvoid main() {\n  int i;\n  for (i = 0; i < 4; i++) {\n    b[i] = a[i] * 3.0;\n  }\n  output(b);\n}\n";
    let (program, result) = analyze(
        src,
        RunConfig::default().with_f64("a", &[1.0, 2.0, 3.0, 4.0]),
    );
    let text = discovery::report::render_text(&result, &program);
    assert!(text.contains("b[i] = a[i] * 3.0;"), "{text}");
    let html = discovery::report::render_html(&result, &program);
    assert!(html.contains("map fmul"));
}

/// Interpreted execution agrees with native Rust on the hiz kernel (the
/// modernization correctness chain: legacy = traced = skeleton).
#[test]
fn interpreted_and_native_hiz_agree() {
    let bench = starbench::benchmark("streamcluster").unwrap();
    let run_res = bench.run_analysis(Version::Pthreads);
    let interpreted = run_res.f64s("result")[0];

    // Native equivalent of the same computation.
    let pts_flat = run_res.f64s("pts");
    let wtab = run_res.f64s("wtab");
    let pts = starbench::native::Points {
        dim: 2,
        coords: pts_flat,
    };
    let native = starbench::native::hiz_sequential(&pts, &wtab);
    assert!(
        (interpreted - native).abs() < 1e-9,
        "{interpreted} vs {native}"
    );
}
