//! Property-based tests (proptest) over the pipeline's invariants.
//!
//! Strategy: generate random *programs* in a constrained shape space
//! (maps, reductions, map-reductions with random sizes, operators, and
//! data), run the full trace → find pipeline, and check the paper-level
//! invariants: the right pattern family is found, every reported pattern
//! satisfies its raw §4 definition, merging only drops subsumed patterns,
//! and skeleton backends agree with sequential semantics.

use discovery::{find_patterns, FinderConfig, PatternKind};
use proptest::prelude::*;
use trace::{run, RunConfig};

/// Builds a map program `out[i] = f(in[i])` with a random operator mix.
fn map_source(op: &str, post: f64) -> String {
    format!(
        "float in[64];\nfloat out[64];\nint cfg[1];\n\
         void main() {{\n  int n = cfg[0];\n  int i;\n  for (i = 0; i < n; i++) {{\n    \
         out[i] = in[i] {op} {post:.3} + 0.25;\n  }}\n  output(out);\n}}\n"
    )
}

/// Builds a reduction program `acc = fold(op, in)`.
fn reduction_source(op: &str) -> String {
    format!(
        "float in[64];\nfloat out[1];\nint cfg[1];\n\
         void main() {{\n  int n = cfg[0];\n  float acc = 0.5;\n  int i;\n  \
         for (i = 0; i < n; i++) {{\n    acc = acc {op} in[i];\n  }}\n  \
         out[0] = acc;\n  output(out);\n}}\n"
    )
}

fn run_finder(src: &str, n: usize, data: &[f64]) -> discovery::FinderResult {
    let program = minc::compile("prop", src).expect("compiles");
    let cfg = RunConfig::default()
        .with_f64("in", data)
        .with_i64("cfg", &[n as i64]);
    let r = run(&program, &cfg).expect("runs");
    find_patterns(&r.ddg.expect("traced"), &FinderConfig::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any elementwise loop over ≥2 elements is found as a map, whatever
    /// the operator and data.
    #[test]
    fn random_maps_are_found(
        n in 2usize..64,
        op_idx in 0usize..3,
        post in 0.1f64..8.0,
        seed in 0u64..1000,
    ) {
        let op = ["*", "+", "-"][op_idx];
        let data: Vec<f64> = (0..n).map(|i| ((i as u64 * 31 + seed) % 97) as f64 * 0.1).collect();
        let result = run_finder(&map_source(op, post), n, &data);
        let maps: Vec<_> = result
            .reported()
            .filter(|f| f.pattern.kind == PatternKind::Map)
            .collect();
        prop_assert_eq!(maps.len(), 1, "one map expected");
        prop_assert_eq!(maps[0].pattern.components, n);
        prop_assert_eq!(maps[0].iteration, 1);
    }

    /// Any associative fold over ≥2 elements is found as a linear
    /// reduction; non-associative folds are not.
    #[test]
    fn random_folds_match_associativity(
        n in 2usize..64,
        op_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        let (op, associative) = [("+", true), ("*", true), ("-", false)][op_idx];
        let data: Vec<f64> = (0..n).map(|i| 1.0 + ((i as u64 + seed) % 7) as f64 * 0.01).collect();
        let result = run_finder(&reduction_source(op), n, &data);
        let reds = result
            .found
            .iter()
            .filter(|f| f.pattern.kind == PatternKind::LinearReduction)
            .count();
        if associative {
            prop_assert!(reds >= 1, "associative fold must match");
        } else {
            prop_assert_eq!(reds, 0, "fsub must not match a reduction");
        }
    }

    /// Every reported pattern satisfies the raw §4 definitions (the
    /// verifier is independent of the matcher).
    #[test]
    fn reported_patterns_verify(
        n in 2usize..32,
        seed in 0u64..500,
    ) {
        let src = "float in[64];\nfloat mid[64];\nfloat out[1];\nint cfg[1];\n\
             void main() {\n  int n = cfg[0];\n  int i;\n  for (i = 0; i < n; i++) {\n    \
             mid[i] = in[i] * 2.0;\n  }\n  float acc = 0.0;\n  int j;\n  \
             for (j = 0; j < n; j++) {\n    acc = acc + mid[j];\n  }\n  \
             out[0] = acc;\n  output(out);\n}\n".to_string();
        let data: Vec<f64> = (0..n).map(|i| ((i as u64 ^ seed) % 13) as f64).collect();
        let program = minc::compile("prop", &src).expect("compiles");
        let cfg = RunConfig::default().with_f64("in", &data).with_i64("cfg", &[n as i64]);
        let r = run(&program, &cfg).expect("runs");
        let ddg = r.ddg.unwrap();
        let (simplified, _, _) = discovery::simplify(&ddg);
        let result = find_patterns(&ddg, &FinderConfig::default());
        for f in &result.found {
            prop_assert!(
                discovery::models::verify::check(&simplified, &f.pattern),
                "pattern violates its definition: {}",
                f.pattern.describe()
            );
        }
        // And the map-reduction composes.
        prop_assert!(result
            .found
            .iter()
            .any(|f| f.pattern.kind == PatternKind::LinearMapReduction));
    }

    /// Merging never drops a pattern that is not covered by a larger one.
    #[test]
    fn merge_only_discards_subsumed(
        n in 2usize..32,
    ) {
        let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let result = run_finder(&map_source("*", 3.0), n, &data);
        for f in &result.found {
            if !f.reported {
                prop_assert!(
                    result.found.iter().any(|g| f.pattern.subsumed_by(&g.pattern)),
                    "unreported pattern must be subsumed"
                );
            }
        }
    }

    /// Skeleton backends agree bit-for-bit deterministically and match a
    /// sequential fold semantically.
    #[test]
    fn skeleton_backends_agree(
        len in 0usize..500,
        threads in 1usize..16,
        seed in 0u64..100,
    ) {
        let input: Vec<f64> =
            (0..len).map(|i| (((i as u64 * 17 + seed) % 101) as f64) * 0.25).collect();
        let seq = skeletons::map_reduce(
            skeletons::ExecPlan::Sequential, &input, |x| x + 1.0, 0.0, |a, b| a + b);
        let par = skeletons::map_reduce(
            skeletons::ExecPlan::CpuThreads(threads), &input, |x| x + 1.0, 0.0, |a, b| a + b);
        prop_assert!((seq - par).abs() < 1e-9);
        let m1 = skeletons::map(skeletons::ExecPlan::CpuThreads(threads), &input, |x| x * 2.0);
        let m2 = skeletons::map(skeletons::ExecPlan::Sequential, &input, |x| x * 2.0);
        prop_assert_eq!(m1, m2);
    }

    /// The interpreter computes what the source says: random expressions
    /// evaluated both by the machine and by a Rust mirror.
    #[test]
    fn interpreter_matches_semantics(
        a in -100i64..100,
        b in -100i64..100,
        c in 1i64..50,
    ) {
        let src = format!(
            "int out[4];\nvoid main() {{\n  out[0] = {a} + {b} * {c};\n  \
             out[1] = ({a} - {b}) / {c};\n  out[2] = {a} % {c};\n  \
             out[3] = min({a}, {b}) + max({a}, {b});\n  output(out);\n}}\n"
        );
        let program = minc::compile("sem", &src).expect("compiles");
        let r = run(&program, &RunConfig::default()).expect("runs");
        let out = r.i64s("out");
        prop_assert_eq!(out[0], a + b * c);
        prop_assert_eq!(out[1], (a - b) / c);
        prop_assert_eq!(out[2], a % c);
        prop_assert_eq!(out[3], a.min(b) + a.max(b));
    }
}
