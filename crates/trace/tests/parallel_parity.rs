//! The parallel tracer must be indistinguishable from the sequential
//! machine for correctly synchronized programs: byte-identical DDGs
//! (same `NodeId`s, labels, scopes, flags, arcs), identical final
//! arrays, return values, step counts — and identical errors, down to
//! the thread attribution and message, when runs abort.

use proptest::prelude::*;
use repro_ir::Program;
use trace::{RunConfig, TraceMode};

/// Runs `p` sequentially and at 2 and 8 trace workers (plus 1, which
/// must select the sequential path) and asserts every observable
/// output matches bit for bit.
fn assert_parity(p: &Program, cfg: &RunConfig) {
    let seq = trace::run(p, cfg).expect("sequential run must succeed");
    for workers in [1usize, 2, 8] {
        let par = trace::run(p, &cfg.clone().with_trace_workers(workers))
            .unwrap_or_else(|e| panic!("parallel run ({workers} workers) failed: {e}"));
        assert_eq!(
            seq.ddg, par.ddg,
            "DDG mismatch at {workers} workers for {}",
            p.name
        );
        assert_eq!(
            seq.arrays, par.arrays,
            "array mismatch at {workers} workers for {}",
            p.name
        );
        assert_eq!(seq.return_value, par.return_value);
        assert_eq!(
            seq.steps, par.steps,
            "step count mismatch at {workers} workers for {}",
            p.name
        );
    }
}

/// Same, for runs that must fail: the error (thread and message) must
/// be identical.
fn assert_error_parity(p: &Program, cfg: &RunConfig) {
    let seq = trace::run(p, cfg).expect_err("sequential run must fail");
    for workers in [2usize, 8] {
        let par = trace::run(p, &cfg.clone().with_trace_workers(workers))
            .expect_err("parallel run must fail identically");
        assert_eq!(
            seq, par,
            "error mismatch at {workers} workers for {}",
            p.name
        );
    }
}

/// Barrier-phased partial sums with a nested reduction on thread 1 —
/// the paper's Fig. 2 shape: cross-thread def→use arcs through the
/// partial array must resolve to the same nodes.
fn threaded_sum(nproc: usize) -> Program {
    let src = format!(
        "float data[64];\nfloat partial[{nproc}];\nfloat out[1];\nbarrier b;\n\
         void worker(int pid, int nproc) {{\n\
           int k; float acc = 0.0;\n\
           for (k = pid; k < 64; k = k + nproc) {{\n\
             data[k] = data[k] * 1.5 + (float)pid;\n\
             acc = acc + data[k];\n\
           }}\n\
           partial[pid] = acc;\n\
           barrier_wait(b);\n\
           if (pid == 0) {{\n\
             float total = 0.0;\n\
             int t;\n\
             for (t = 0; t < nproc; t++) {{ total = total + partial[t]; }}\n\
             out[0] = total;\n\
           }}\n\
         }}\n\
         void main() {{\n{spawns}\n{joins}\n  output(out);\n  output(data);\n}}\n",
        spawns = (0..nproc)
            .map(|t| format!("  int h{t}; h{t} = spawn worker({t}, {nproc});"))
            .collect::<Vec<_>>()
            .join("\n"),
        joins = (0..nproc)
            .map(|t| format!("  join(h{t});"))
            .collect::<Vec<_>>()
            .join("\n"),
    );
    minc::compile("tsum_par", &src).unwrap()
}

#[test]
fn threaded_sum_is_byte_identical() {
    for nproc in [2usize, 4] {
        let p = threaded_sum(nproc);
        let data: Vec<f64> = (0..64).map(|i| i as f64 * 0.25).collect();
        let cfg = RunConfig::default()
            .with_f64("data", &data)
            .with_barrier_participants(nproc);
        assert_parity(&p, &cfg);
    }
}

#[test]
fn mutex_counter_is_byte_identical() {
    // Three threads contend on one lock; the replayed lock hand-off
    // order (and hence the traced add chain) must match the
    // round-robin schedule exactly.
    let src = "int shared[1];\nint out[3];\nmutex m;\n\
         void worker(int pid) {\n\
           int i;\n\
           for (i = 0; i < 10; i++) {\n\
             lock(m);\n\
             shared[0] = shared[0] + 1;\n\
             unlock(m);\n\
           }\n\
           out[pid] = shared[0];\n\
         }\n\
         void main() {\n\
           int h0; h0 = spawn worker(0);\n\
           int h1; h1 = spawn worker(1);\n\
           int h2; h2 = spawn worker(2);\n\
           join(h0); join(h1); join(h2);\n\
           output(out);\n\
         }\n";
    let p = minc::compile("mtx_par", src).unwrap();
    assert_parity(&p, &RunConfig::default());
}

#[test]
fn staggered_spawn_and_reverse_join_are_byte_identical() {
    // Spawn→join→spawn again, and join in reverse order: exercises the
    // Join retry path (blocked joiner re-executes the instruction) and
    // thread-id assignment across waves.
    let src = "int out[4];\n\
         void worker(int pid) {\n\
           int i; int acc = 0;\n\
           for (i = 0; i <= pid * 7; i++) { acc = acc + i; }\n\
           out[pid] = acc;\n\
         }\n\
         void main() {\n\
           int h0; h0 = spawn worker(0);\n\
           join(h0);\n\
           int h1; h1 = spawn worker(1);\n\
           int h2; h2 = spawn worker(2);\n\
           int h3; h3 = spawn worker(3);\n\
           join(h3); join(h2); join(h1);\n\
           output(out);\n\
         }\n";
    let p = minc::compile("stagger_par", src).unwrap();
    assert_parity(&p, &RunConfig::default());
}

#[test]
fn untraced_runs_match_too() {
    let p = threaded_sum(4);
    let data: Vec<f64> = (0..64).map(|i| (i % 7) as f64).collect();
    let mut cfg = RunConfig::default()
        .with_f64("data", &data)
        .with_barrier_participants(4);
    cfg.trace = TraceMode::Off;
    assert_parity(&p, &cfg);
}

#[test]
fn fuel_errors_are_identical() {
    let p = threaded_sum(2);
    let cfg = RunConfig::default()
        .with_barrier_participants(2)
        .with_max_steps(200);
    assert_error_parity(&p, &cfg);
}

#[test]
fn runtime_errors_are_identical() {
    // Worker 1 writes out of bounds partway through its loop; the
    // error must surface at the same replay point with the same
    // attribution, and speculative errors past the entry thread's
    // completion must never surface.
    let src = "int out[8];\n\
         void worker(int pid) {\n\
           int i;\n\
           for (i = 0; i < 6; i++) { out[i * (pid + 1)] = pid; }\n\
         }\n\
         void main() {\n\
           int h0; h0 = spawn worker(0);\n\
           int h1; h1 = spawn worker(1);\n\
           join(h0); join(h1);\n\
           output(out);\n\
         }\n";
    let p = minc::compile("oob_par", src).unwrap();
    assert_error_parity(&p, &RunConfig::default());
}

#[test]
fn deadlock_is_identical() {
    // Two workers park on a 3-participant barrier main never reaches.
    let src = "int out[1];\nbarrier b;\n\
         void worker(int pid) { barrier_wait(b); out[0] = pid; }\n\
         void main() {\n\
           int h0; h0 = spawn worker(0);\n\
           int h1; h1 = spawn worker(1);\n\
           join(h0); join(h1);\n\
           output(out);\n\
         }\n";
    let p = minc::compile("dead_par", src).unwrap();
    let cfg = RunConfig::default().with_barrier_participants(3);
    assert_error_parity(&p, &cfg);
}

/// Randomized thread programs: every combination of worker count,
/// chunk split, lock section, and barrier phase must replay to the
/// sequential machine's exact outputs.
#[derive(Debug, Clone)]
struct ThreadProgram {
    nproc: usize,
    len: usize,
    iters: Vec<usize>,
    use_lock: bool,
    use_barrier: bool,
    reverse_join: bool,
}

fn thread_program_strategy() -> impl Strategy<Value = ThreadProgram> {
    (
        1usize..4,
        8usize..40,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_flat_map(|(nproc, len, use_lock, use_barrier, reverse_join)| {
            prop::collection::vec(1usize..12, nproc).prop_map(move |iters| ThreadProgram {
                nproc,
                len,
                iters,
                use_lock,
                use_barrier,
                reverse_join,
            })
        })
}

fn render(tp: &ThreadProgram) -> Program {
    let ThreadProgram {
        nproc,
        len,
        iters,
        use_lock,
        use_barrier,
        reverse_join,
    } = tp;
    let mut src = String::new();
    src.push_str(&format!(
        "int data[{len}];\nint shared[1];\nint out[{nproc}];\nmutex m;\nbarrier b;\n"
    ));
    // Each worker gets its own function so per-thread work is skewed:
    // segments of very different lengths stress the window merge.
    for (pid, reps) in iters.iter().enumerate() {
        src.push_str(&format!(
            "void worker{pid}(int nproc) {{\n\
               int r; int k; int acc = 0;\n\
               for (r = 0; r < {reps}; r++) {{\n\
                 for (k = {pid}; k < {len}; k = k + nproc) {{\n\
                   data[k] = data[k] + r + {pid};\n\
                   acc = acc + data[k];\n\
                 }}\n\
               }}\n"
        ));
        if *use_lock {
            src.push_str("  lock(m);\n  shared[0] = shared[0] + acc;\n  unlock(m);\n");
        }
        if *use_barrier {
            src.push_str(&format!(
                "  barrier_wait(b);\n  acc = acc + shared[0] * {pid};\n"
            ));
        }
        src.push_str(&format!("  out[{pid}] = acc;\n}}\n"));
    }
    src.push_str("void main() {\n");
    for pid in 0..*nproc {
        src.push_str(&format!(
            "  int h{pid}; h{pid} = spawn worker{pid}({nproc});\n"
        ));
    }
    let order: Vec<usize> = if *reverse_join {
        (0..*nproc).rev().collect()
    } else {
        (0..*nproc).collect()
    };
    for pid in order {
        src.push_str(&format!("  join(h{pid});\n"));
    }
    src.push_str("  output(out);\n  output(data);\n}\n");
    minc::compile("prop_par", &src).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn randomized_thread_programs_replay_byte_identically(tp in thread_program_strategy()) {
        let p = render(&tp);
        let cfg = RunConfig::default().with_barrier_participants(tp.nproc);
        let seq = trace::run(&p, &cfg).expect("sequential run");
        for workers in [2usize, 8] {
            let par = trace::run(&p, &cfg.clone().with_trace_workers(workers)).expect("parallel run");
            prop_assert_eq!(&seq.ddg, &par.ddg);
            prop_assert_eq!(&seq.arrays, &par.arrays);
            prop_assert_eq!(seq.return_value, par.return_value);
            prop_assert_eq!(seq.steps, par.steps);
        }
    }
}
