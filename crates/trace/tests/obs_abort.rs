//! Aborted runs must still flush their observability counters: a
//! fuel-exhausted (or deadline-expired) trace is exactly the run an
//! operator needs partial statistics for. Regression test for the
//! flush-on-abort path of both the sequential machine and the parallel
//! tracer.

use trace::RunConfig;

/// One test (not several) because `obs` counters are process-global
/// and cumulative; interleaved tests would race the delta reads.
#[test]
fn aborted_runs_flush_nonzero_counters_on_both_tracers() {
    // Thread 0 spins forever over memory, so shadow traffic accrues
    // before the fuel runs out.
    let src = "int out[4];\nvoid main() {\n  int i; i = 0;\n  \
               while (i < 1) {\n    out[0] = out[0] + 1;\n    i = 0;\n  }\n  \
               output(out);\n}\n";
    let p = minc::compile("spin_mem", src).unwrap();

    obs::enable();
    for workers in [1usize, 4] {
        let steps0 = obs::counter("trace.steps").get();
        let reads0 = obs::counter("trace.shadow_reads").get();
        let writes0 = obs::counter("trace.shadow_writes").get();
        let slices0 = obs::counter("trace.slices").get();

        let cfg = RunConfig::default()
            .with_max_steps(20_000)
            .with_trace_workers(workers);
        let err = trace::run(&p, &cfg).unwrap_err();
        assert!(err.message.contains("step limit"), "{err}");

        assert!(
            obs::counter("trace.steps").get() > steps0,
            "fuel-aborted run at {workers} workers flushed no step count"
        );
        assert!(
            obs::counter("trace.shadow_reads").get() > reads0,
            "fuel-aborted run at {workers} workers flushed no shadow reads"
        );
        assert!(
            obs::counter("trace.shadow_writes").get() > writes0,
            "fuel-aborted run at {workers} workers flushed no shadow writes"
        );
        assert!(
            obs::counter("trace.slices").get() > slices0,
            "fuel-aborted run at {workers} workers flushed no slices"
        );
    }

    // The parallel tracer's own counters flush on abort too.
    let segs0 = obs::counter("trace.segments").get();
    let cfg = RunConfig::default()
        .with_max_steps(20_000)
        .with_trace_workers(4);
    trace::run(&p, &cfg).unwrap_err();
    assert!(
        obs::counter("trace.segments").get() > segs0,
        "aborted parallel run flushed no segment count"
    );
    obs::disable();
    let _ = obs::take_events();
}
