//! Striped shared memory for the parallel tracer.
//!
//! The sequential machine's globals and shadow memory fuse here into
//! one structure: every cell holds its value *and* the [`SegRef`] of
//! the node that defined it, and each array is split into fixed-size
//! stripes, each behind its own mutex. Free-running workers touch only
//! the stripes their slices index, so disjoint work partitions (the
//! common legacy pattern: `from = pid * chunk`) never contend; the
//! paper's "synchronized shadow memory" becomes per-stripe locking
//! instead of one global lock.
//!
//! Contention is observable: every lock is first tried with
//! `try_lock`, and a failure counts into the worker's
//! [`SegStats::stripe_contended`] before falling back to a blocking
//! lock.

use crate::segment::{SegRef, SegStats};
use crate::shadow::Taint;
use repro_ir::Value;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Cells per stripe. Small enough that per-thread index ranges in the
/// starbench suite land on disjoint stripes, large enough that stripe
/// metadata stays negligible.
pub(crate) const STRIPE_CELLS: usize = 256;

type Cell = (Value, Taint<SegRef>);

struct StripedArray {
    len: usize,
    stripes: Vec<Mutex<Vec<Cell>>>,
}

/// All global arrays, striped. Shared read-write by every worker via
/// `Arc<SharedCtx>`; unwrapped back into plain value vectors once the
/// run completes.
pub(crate) struct StripedMemory {
    arrays: Vec<StripedArray>,
}

fn recover<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    // A worker panic poisons its stripe; the coordinator turns the
    // panic into a run error, so recovering the guard only needs to be
    // memory-safe, not semantically meaningful.
    r.unwrap_or_else(PoisonError::into_inner)
}

impl StripedMemory {
    /// Takes ownership of the materialized globals; every cell starts
    /// as [`Taint::Input`], same as [`crate::shadow::ShadowMemory`].
    pub fn new(globals: Vec<Vec<Value>>) -> StripedMemory {
        StripedMemory {
            arrays: globals
                .into_iter()
                .map(|data| {
                    let len = data.len();
                    let mut stripes = Vec::with_capacity(len.div_ceil(STRIPE_CELLS));
                    let mut it = data.into_iter().peekable();
                    while it.peek().is_some() {
                        let chunk: Vec<Cell> = it
                            .by_ref()
                            .take(STRIPE_CELLS)
                            .map(|v| (v, Taint::Input))
                            .collect();
                        stripes.push(Mutex::new(chunk));
                    }
                    StripedArray { len, stripes }
                })
                .collect(),
        }
    }

    pub fn array_len(&self, arr: usize) -> usize {
        self.arrays[arr].len
    }

    fn lock<'a>(
        &'a self,
        arr: usize,
        idx: usize,
        stats: &mut SegStats,
    ) -> MutexGuard<'a, Vec<Cell>> {
        let m = &self.arrays[arr].stripes[idx / STRIPE_CELLS];
        stats.stripe_locks += 1;
        match m.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                stats.stripe_contended += 1;
                recover(m.lock())
            }
        }
    }

    pub fn load(&self, arr: usize, idx: usize, stats: &mut SegStats) -> Cell {
        self.lock(arr, idx, stats)[idx % STRIPE_CELLS]
    }

    pub fn store(
        &self,
        arr: usize,
        idx: usize,
        v: Value,
        def: Taint<SegRef>,
        stats: &mut SegStats,
    ) {
        self.lock(arr, idx, stats)[idx % STRIPE_CELLS] = (v, def);
    }

    /// The current defining ref of every cell of `arr`, in index order
    /// (the coordinator's `Output` scan).
    pub fn snapshot_taints(&self, arr: usize) -> Vec<Taint<SegRef>> {
        let a = &self.arrays[arr];
        let mut out = Vec::with_capacity(a.len);
        for stripe in &a.stripes {
            out.extend(recover(stripe.lock()).iter().map(|&(_, t)| t));
        }
        out
    }

    /// Unwraps the final array values (run complete, no workers left).
    pub fn into_values(self) -> Vec<Vec<Value>> {
        self.arrays
            .into_iter()
            .map(|a| {
                let mut out = Vec::with_capacity(a.len);
                for stripe in a.stripes {
                    let cells = recover(stripe.lock()).drain(..).collect::<Vec<_>>();
                    out.extend(cells.into_iter().map(|(v, _)| v));
                }
                out
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripes_round_trip_values_and_taints() {
        let m = StripedMemory::new(vec![vec![Value::I64(0); 700], vec![Value::F64(1.5); 3]]);
        assert_eq!(m.array_len(0), 700);
        assert_eq!(m.array_len(1), 3);
        assert_eq!(m.arrays[0].stripes.len(), 3);
        let mut stats = SegStats::default();
        assert_eq!(m.load(0, 699, &mut stats), (Value::I64(0), Taint::Input));
        let r = SegRef::new(2, 5);
        m.store(0, 699, Value::I64(42), Taint::Node(r), &mut stats);
        assert_eq!(m.load(0, 699, &mut stats), (Value::I64(42), Taint::Node(r)));
        assert_eq!(stats.stripe_locks, 3);
        assert_eq!(stats.stripe_contended, 0);
        let taints = m.snapshot_taints(0);
        assert_eq!(taints.len(), 700);
        assert_eq!(taints[699], Taint::Node(r));
        assert_eq!(taints[0], Taint::Input);
        let values = m.into_values();
        assert_eq!(values[0][699], Value::I64(42));
        assert_eq!(values[1], vec![Value::F64(1.5); 3]);
    }
}
