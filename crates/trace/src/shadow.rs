//! Shadow memory: the defining DDG node of every memory cell.
//!
//! Redux-style tracing (paper §3) keeps, for each memory location, the node
//! that defined its current value; a load then simply forwards that node to
//! the consumer, which is how data transfer stays out of the DDG while its
//! *effect* shapes the graph. The paper synchronizes shadow accesses to
//! trace multi-threaded programs seamlessly; our machine interleaves
//! threads deterministically on one OS thread, so the "synchronization" is
//! the machine's own serialization — the data structure is identical.

use ddg::NodeId;

/// Provenance of a value: who defined it.
///
/// `Input` is the state of memory the host initialized before the run (the
/// program's input data, whose "definitions" the paper draws as sourceless
/// arcs); `Const` is a value computed only from literals; `Node` is a traced
/// operation execution.
///
/// Generic over the node reference: the sequential machine uses final
/// [`NodeId`]s directly, while the parallel tracer's workers use
/// segment-local references that the merge later maps to the ids the
/// sequential machine would have assigned.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Taint<R = NodeId> {
    /// Untraced constant.
    Const,
    /// Raw program input.
    Input,
    /// Defined by a DDG node.
    Node(R),
}

impl<R: Copy> Taint<R> {
    /// The defining node, when there is one.
    #[inline]
    pub fn node(self) -> Option<R> {
        match self {
            Taint::Node(n) => Some(n),
            _ => None,
        }
    }
}

/// Shadow state for all global arrays (indexed `[array][element]`).
#[derive(Clone, Debug, Default)]
pub struct ShadowMemory {
    cells: Vec<Vec<Taint>>,
}

impl ShadowMemory {
    /// Creates shadow cells matching the given array lengths. All memory
    /// starts as [`Taint::Input`]: until the program overwrites a cell, its
    /// contents are whatever the host loaded (the program input).
    pub fn new(array_lens: &[usize]) -> Self {
        ShadowMemory {
            cells: array_lens.iter().map(|&n| vec![Taint::Input; n]).collect(),
        }
    }

    /// The provenance of `arr[idx]`.
    #[inline]
    pub fn get(&self, arr: usize, idx: usize) -> Taint {
        self.cells[arr][idx]
    }

    /// Records the provenance of `arr[idx]`.
    #[inline]
    pub fn set(&mut self, arr: usize, idx: usize, def: Taint) {
        self.cells[arr][idx] = def;
    }

    /// Number of shadowed arrays.
    pub fn array_count(&self) -> usize {
        self.cells.len()
    }

    /// Iterates over the provenance of a whole array (for `Output`).
    pub fn array(&self, arr: usize) -> &[Taint] {
        &self.cells[arr]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stores_and_forwards_definitions() {
        let mut s = ShadowMemory::new(&[4, 2]);
        assert_eq!(s.array_count(), 2);
        // Untouched memory is program input.
        assert_eq!(s.get(0, 3), Taint::Input);
        s.set(0, 3, Taint::Node(NodeId(7)));
        assert_eq!(s.get(0, 3), Taint::Node(NodeId(7)));
        // Overwrite models a second store to the same cell.
        s.set(0, 3, Taint::Node(NodeId(9)));
        assert_eq!(s.get(0, 3).node(), Some(NodeId(9)));
        // Constants erase the defining node.
        s.set(0, 3, Taint::Const);
        assert_eq!(s.get(0, 3), Taint::Const);
        assert_eq!(s.get(0, 3).node(), None);
    }
}
