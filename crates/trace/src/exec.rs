//! The single-step interpreter shared by both tracer drivers.
//!
//! The sequential [`crate::machine::Machine`] and the parallel tracer's
//! free-running workers execute exactly the same instruction semantics;
//! byte-identical DDGs depend on it. This module holds that semantics
//! once: [`step`] executes one non-synchronizing instruction against an
//! [`Env`] (memory, tracing, loop-instance numbering), and returns
//! synchronization instructions *unexecuted* so each driver can apply
//! its own scheduling rules (the sequential machine inline, the
//! parallel coordinator during deterministic replay).
//!
//! Everything is generic over the node reference `R`: the sequential
//! machine traces with final [`ddg::NodeId`]s, the parallel workers
//! with segment-local references.

use crate::bytecode::{CompiledProgram, Inst, Pos};
use crate::shadow::Taint;
use ddg::ScopeEntry;
use repro_ir::{BinOp, FnId, Intrinsic, Program, UnOp, Value};

/// A value paired with its provenance.
pub(crate) type Slot<R> = (Value, Taint<R>);

/// One call frame of a simulated thread.
pub(crate) struct Frame<R> {
    pub func: FnId,
    pub pc: usize,
    pub slots: Vec<Slot<R>>,
    pub stack: Vec<Slot<R>>,
}

/// The driver-independent state of a simulated thread: its call stack
/// and dynamic loop scope. Scheduling status lives with the driver.
pub(crate) struct ThreadCtx<R> {
    pub frames: Vec<Frame<R>>,
    pub scope: Vec<ScopeEntry>,
}

impl<R: Copy> ThreadCtx<R> {
    pub(crate) fn new(frame: Frame<R>) -> Self {
        ThreadCtx {
            frames: vec![frame],
            scope: Vec::new(),
        }
    }

    #[inline]
    pub(crate) fn frame(&self) -> &Frame<R> {
        self.frames.last().expect("no frame")
    }

    #[inline]
    pub(crate) fn frame_mut(&mut self) -> &mut Frame<R> {
        self.frames.last_mut().expect("no frame")
    }

    #[inline]
    pub(crate) fn push(&mut self, s: Slot<R>) {
        self.frame_mut().stack.push(s);
    }

    #[inline]
    pub(crate) fn pop(&mut self) -> Result<Slot<R>, String> {
        self.frame_mut()
            .stack
            .pop()
            .ok_or_else(|| "operand stack underflow".to_string())
    }
}

/// The operation kind behind a traced node (label interning key).
#[derive(Clone, Copy)]
pub(crate) enum TraceOp {
    Bin(BinOp),
    Un(UnOp),
    Intr(Intrinsic),
}

/// Outcome of one [`step`].
pub(crate) enum StepOut<R> {
    /// An ordinary instruction executed.
    Ran,
    /// The thread is at a synchronization instruction. *Nothing* was
    /// executed — no pc advance, no pops, no step counted; the driver
    /// owns the instruction's semantics and its scheduling effects.
    Sync(Inst),
    /// The final `Ret` executed (it counts as a step): the thread's
    /// last frame popped. Carries the return slot, if any.
    Done(Option<Slot<R>>),
}

/// What a driver provides the interpreter: global memory (values and
/// provenance), tracing, and loop-instance numbering. Implementations
/// gate all tracing effects on their own tracing flag.
pub(crate) trait Env {
    type Ref: Copy + std::fmt::Debug;

    fn array_len(&self, arr: usize) -> usize;
    /// The array's source name (error messages only).
    fn array_name(&self, arr: usize) -> String;
    /// Reads `arr[idx]`: the value, its provenance, and the driver's
    /// shadow-read accounting.
    fn load(&mut self, arr: usize, idx: usize) -> (Value, Taint<Self::Ref>);
    /// Writes `arr[idx]` with provenance.
    fn store(&mut self, arr: usize, idx: usize, v: Value, def: Taint<Self::Ref>);
    /// Records one executed operation as a DDG node: label, def-use
    /// arcs from `operands`, input/iterator marks. Returns the node
    /// reference as provenance ([`Taint::Const`] when not tracing).
    #[allow(clippy::too_many_arguments)]
    fn trace_node(
        &mut self,
        t: usize,
        op: TraceOp,
        static_op: u32,
        pos: Pos,
        operands: &[Taint<Self::Ref>],
        scope: &[ScopeEntry],
    ) -> Taint<Self::Ref>;
    /// The node's value was consumed as an address (or bound).
    fn mark_address(&mut self, r: Self::Ref);
    /// The node's value was consumed by a branch condition.
    fn mark_control(&mut self, r: Self::Ref);
    /// A loop body was entered: returns this activation's dynamic
    /// instance number for the static loop.
    fn loop_enter(&mut self, t: usize, loop_id: u32) -> u32;
    /// An instruction dispatch (execution fingerprinting hook; see
    /// [`crate::fp`]). Called before the sync early-return, so every
    /// dispatch — including a retried blocking instruction — lands in
    /// the stream. Default: no-op, fully inlined away.
    #[inline]
    fn fp_step(&mut self, _t: usize, _func: usize, _pc: usize) {}
}

/// Allocates a frame with parameters bound and locals zero-initialized
/// by declared type (hidden bound slots are i64).
pub(crate) fn new_frame<R: Copy>(
    program: &Program,
    code: &CompiledProgram,
    func: FnId,
    args: Vec<Slot<R>>,
) -> Frame<R> {
    let cf = code.function(func);
    let irf = program.function(func);
    let mut slots: Vec<Slot<R>> = Vec::with_capacity(cf.n_slots);
    for (i, arg) in args.into_iter().enumerate() {
        debug_assert!(i < cf.n_params);
        slots.push(arg);
    }
    for i in slots.len()..cf.n_slots {
        let ty = if i < irf.slot_count() {
            irf.slot(repro_ir::VarId(i as u32)).1
        } else {
            repro_ir::Type::I64
        };
        // Zero-initialized locals behave like constants (C statics).
        slots.push((Value::zero(ty), Taint::Const));
    }
    Frame {
        func,
        pc: 0,
        slots,
        stack: Vec::new(),
    }
}

fn check_index<E: Env>(env: &E, arr: usize, idx: Value) -> Result<usize, String> {
    let i = idx.as_i64("array index")?;
    let len = env.array_len(arr);
    if i < 0 || i as usize >= len {
        let name = env.array_name(arr);
        return Err(format!("index {i} out of bounds for {name}[{len}]"));
    }
    Ok(i as usize)
}

/// Executes one instruction of thread `t`. Errors carry the message
/// only; the driver attributes them to the thread.
pub(crate) fn step<E: Env>(
    env: &mut E,
    ctx: &mut ThreadCtx<E::Ref>,
    program: &Program,
    code: &CompiledProgram,
    t: usize,
) -> Result<StepOut<E::Ref>, String> {
    let (func, pc) = {
        let f = ctx.frames.last().ok_or_else(|| "no frame".to_string())?;
        (f.func, f.pc)
    };
    env.fp_step(t, func.index(), pc);
    // Cloning one instruction keeps the borrow checker out of the way;
    // instructions are small (≤ 40 bytes).
    let inst = code.function(func).code[pc].clone();
    if matches!(
        inst,
        Inst::Spawn { .. }
            | Inst::Join
            | Inst::Barrier { .. }
            | Inst::Lock { .. }
            | Inst::Unlock { .. }
            | Inst::Output { .. }
    ) {
        return Ok(StepOut::Sync(inst));
    }
    // Default: advance. Jumps overwrite.
    ctx.frame_mut().pc += 1;

    match inst {
        Inst::Const(v) => ctx.push((v, Taint::Const)),
        Inst::LoadVar(v) => {
            let s = ctx.frame().slots[v.index()];
            ctx.push(s);
        }
        Inst::StoreVar(v) => {
            let s = ctx.pop()?;
            ctx.frame_mut().slots[v.index()] = s;
        }
        Inst::LoadArr(a) => {
            let (idx, it) = ctx.pop()?;
            if let Taint::Node(n) = it {
                env.mark_address(n);
            }
            let i = check_index(env, a.index(), idx)?;
            let s = env.load(a.index(), i);
            ctx.push(s);
        }
        Inst::StoreArr(a) => {
            let (v, vt) = ctx.pop()?;
            let (idx, it) = ctx.pop()?;
            if let Taint::Node(n) = it {
                env.mark_address(n);
            }
            let i = check_index(env, a.index(), idx)?;
            env.store(a.index(), i, v, vt);
        }
        Inst::Bin { op, id, pos } => {
            let (b, bt) = ctx.pop()?;
            let (a, at) = ctx.pop()?;
            let v = eval_bin(op, a, b)?;
            let def = env.trace_node(t, TraceOp::Bin(op), id.0, pos, &[at, bt], &ctx.scope);
            ctx.push((v, def));
        }
        Inst::Un { op, id, pos } => {
            let (a, at) = ctx.pop()?;
            let v = eval_un(op, a)?;
            let def = env.trace_node(t, TraceOp::Un(op), id.0, pos, &[at], &ctx.scope);
            ctx.push((v, def));
        }
        Inst::Intr { op, id, pos } => {
            let n = op.arity();
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(ctx.pop()?);
            }
            args.reverse();
            let v = eval_intr(op, &args)?;
            let taints: Vec<Taint<E::Ref>> = args.iter().map(|&(_, ta)| ta).collect();
            let def = env.trace_node(t, TraceOp::Intr(op), id.0, pos, &taints, &ctx.scope);
            ctx.push((v, def));
        }
        Inst::Call(f) => {
            let n = code.function(f).n_params;
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(ctx.pop()?);
            }
            args.reverse();
            let frame = new_frame(program, code, f, args);
            ctx.frames.push(frame);
        }
        Inst::Ret { has_value } => {
            let ret = if has_value { Some(ctx.pop()?) } else { None };
            ctx.frames.pop();
            if ctx.frames.is_empty() {
                return Ok(StepOut::Done(ret));
            } else if let Some(r) = ret {
                ctx.push(r);
            }
        }
        Inst::Pop => {
            ctx.pop()?;
        }
        Inst::Jump(target) => ctx.frame_mut().pc = target,
        Inst::JumpIfFalse(target) => {
            let (v, vt) = ctx.pop()?;
            if let Taint::Node(n) = vt {
                env.mark_control(n);
            }
            if !v.as_bool("branch condition")? {
                ctx.frame_mut().pc = target;
            }
        }
        Inst::ForInit { var } => {
            let (v, vt) = ctx.pop()?;
            // Bounds computation is traversal bookkeeping: record it
            // like an address use so simplification can strip the
            // work-splitting arithmetic (k1 = pid * chunk, ...).
            if let Taint::Node(n) = vt {
                env.mark_address(n);
            }
            ctx.frame_mut().slots[var.index()] = (v, Taint::Const);
        }
        Inst::StoreBound { slot } => {
            let (v, vt) = ctx.pop()?;
            if let Taint::Node(n) = vt {
                env.mark_address(n);
            }
            ctx.frame_mut().slots[slot.index()] = (v, Taint::Const);
        }
        Inst::LoopEnter { id } => {
            let instance = env.loop_enter(t, id.0);
            // iter starts one-before-zero; the first head test wraps to 0.
            ctx.scope.push(ScopeEntry {
                loop_id: id.0,
                instance,
                iter: u32::MAX,
            });
        }
        Inst::ForTest {
            var,
            bound,
            step,
            exit,
            id,
        } => {
            let v = ctx.frame().slots[var.index()].0.as_i64("loop var")?;
            let b = ctx.frame().slots[bound.index()].0.as_i64("loop bound")?;
            let cont = if step > 0 { v < b } else { v > b };
            if cont {
                let e = ctx.scope.last_mut().expect("ForTest outside loop scope");
                debug_assert_eq!(e.loop_id, id.0);
                e.iter = e.iter.wrapping_add(1);
            } else {
                ctx.frame_mut().pc = exit;
            }
        }
        Inst::ForStep { var, step } => {
            let slot = &mut ctx.frame_mut().slots[var.index()];
            if let Value::I64(v) = slot.0 {
                *slot = (Value::I64(v + step), Taint::Const);
            } else {
                return Err("loop variable must be i64".to_string());
            }
        }
        Inst::WhileIter { id } => {
            let e = ctx.scope.last_mut().expect("WhileIter outside scope");
            debug_assert_eq!(e.loop_id, id.0);
            e.iter = e.iter.wrapping_add(1);
        }
        Inst::LoopExit { id } => {
            let e = ctx.scope.pop().expect("LoopExit without scope");
            debug_assert_eq!(e.loop_id, id.0);
        }
        Inst::Spawn { .. }
        | Inst::Join
        | Inst::Barrier { .. }
        | Inst::Lock { .. }
        | Inst::Unlock { .. }
        | Inst::Output { .. } => unreachable!("sync instructions returned above"),
    }
    Ok(StepOut::Ran)
}

// ---- operation semantics ----

pub(crate) fn eval_bin(op: BinOp, a: Value, b: Value) -> Result<Value, String> {
    use BinOp::*;
    Ok(match op {
        Add => Value::I64(a.as_i64("add")?.wrapping_add(b.as_i64("add")?)),
        Sub => Value::I64(a.as_i64("sub")?.wrapping_sub(b.as_i64("sub")?)),
        Mul => Value::I64(a.as_i64("mul")?.wrapping_mul(b.as_i64("mul")?)),
        Div => {
            let d = b.as_i64("div")?;
            if d == 0 {
                return Err("division by zero".into());
            }
            Value::I64(a.as_i64("div")?.wrapping_div(d))
        }
        Rem => {
            let d = b.as_i64("rem")?;
            if d == 0 {
                return Err("remainder by zero".into());
            }
            Value::I64(a.as_i64("rem")?.wrapping_rem(d))
        }
        FAdd => Value::F64(a.as_f64("fadd")? + b.as_f64("fadd")?),
        FSub => Value::F64(a.as_f64("fsub")? - b.as_f64("fsub")?),
        FMul => Value::F64(a.as_f64("fmul")? * b.as_f64("fmul")?),
        FDiv => Value::F64(a.as_f64("fdiv")? / b.as_f64("fdiv")?),
        And => bitwise(a, b, |x, y| x & y, |x, y| x && y)?,
        Or => bitwise(a, b, |x, y| x | y, |x, y| x || y)?,
        Xor => bitwise(a, b, |x, y| x ^ y, |x, y| x ^ y)?,
        Shl => Value::I64(a.as_i64("shl")?.wrapping_shl(b.as_i64("shl")? as u32)),
        Shr => Value::I64((a.as_i64("shr")? as u64 >> (b.as_i64("shr")? as u32 & 63)) as i64),
        Eq => Value::Bool(a.as_i64("icmp")? == b.as_i64("icmp")?),
        Ne => Value::Bool(a.as_i64("icmp")? != b.as_i64("icmp")?),
        Lt => Value::Bool(a.as_i64("icmp")? < b.as_i64("icmp")?),
        Le => Value::Bool(a.as_i64("icmp")? <= b.as_i64("icmp")?),
        Gt => Value::Bool(a.as_i64("icmp")? > b.as_i64("icmp")?),
        Ge => Value::Bool(a.as_i64("icmp")? >= b.as_i64("icmp")?),
        FEq => Value::Bool(a.as_f64("fcmp")? == b.as_f64("fcmp")?),
        FNe => Value::Bool(a.as_f64("fcmp")? != b.as_f64("fcmp")?),
        FLt => Value::Bool(a.as_f64("fcmp")? < b.as_f64("fcmp")?),
        FLe => Value::Bool(a.as_f64("fcmp")? <= b.as_f64("fcmp")?),
        FGt => Value::Bool(a.as_f64("fcmp")? > b.as_f64("fcmp")?),
        FGe => Value::Bool(a.as_f64("fcmp")? >= b.as_f64("fcmp")?),
        Min => Value::I64(a.as_i64("smin")?.min(b.as_i64("smin")?)),
        Max => Value::I64(a.as_i64("smax")?.max(b.as_i64("smax")?)),
        FMin => Value::F64(a.as_f64("fmin")?.min(b.as_f64("fmin")?)),
        FMax => Value::F64(a.as_f64("fmax")?.max(b.as_f64("fmax")?)),
    })
}

fn bitwise(
    a: Value,
    b: Value,
    fi: impl Fn(i64, i64) -> i64,
    fb: impl Fn(bool, bool) -> bool,
) -> Result<Value, String> {
    match (a, b) {
        (Value::I64(x), Value::I64(y)) => Ok(Value::I64(fi(x, y))),
        (Value::Bool(x), Value::Bool(y)) => Ok(Value::Bool(fb(x, y))),
        _ => Err("bitwise op needs matching i64 or bool operands".into()),
    }
}

pub(crate) fn eval_un(op: UnOp, a: Value) -> Result<Value, String> {
    Ok(match op {
        UnOp::Neg => Value::I64(-a.as_i64("neg")?),
        UnOp::FNeg => Value::F64(-a.as_f64("fneg")?),
        UnOp::Not => Value::Bool(!a.as_bool("not")?),
        UnOp::IntToFloat => Value::F64(a.as_i64("sitofp")? as f64),
        UnOp::FloatToInt => Value::I64(a.as_f64("fptosi")? as i64),
    })
}

pub(crate) fn eval_intr<R: Copy>(
    op: Intrinsic,
    args: &[(Value, Taint<R>)],
) -> Result<Value, String> {
    Ok(match op {
        Intrinsic::Sqrt => Value::F64(args[0].0.as_f64("sqrt")?.sqrt()),
        Intrinsic::Abs => Value::I64(args[0].0.as_i64("abs")?.abs()),
        Intrinsic::FAbs => Value::F64(args[0].0.as_f64("fabs")?.abs()),
        Intrinsic::Floor => Value::F64(args[0].0.as_f64("floor")?.floor()),
        Intrinsic::Sin => Value::F64(args[0].0.as_f64("sin")?.sin()),
        Intrinsic::Cos => Value::F64(args[0].0.as_f64("cos")?.cos()),
        Intrinsic::Exp => Value::F64(args[0].0.as_f64("exp")?.exp()),
        Intrinsic::Log => Value::F64(args[0].0.as_f64("log")?.ln()),
        Intrinsic::Select => {
            if args[0].0.as_bool("select")? {
                args[1].0
            } else {
                args[2].0
            }
        }
    })
}
