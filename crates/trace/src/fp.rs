//! Execution fingerprinting: a streaming hash over the executed
//! instruction stream that identifies the DDG a traced run *would*
//! produce, at untraced-execution cost.
//!
//! The incremental query layer (`repro-query`) keys trace artifacts by
//! program content, so any source edit — even one that only changes a
//! constant — forces a full re-trace. But the DDG does not depend on
//! runtime *values*: its nodes carry (operation, static op id, source
//! position, thread, dynamic loop scope) and its arcs follow dataflow
//! through slots, the operand stack, and array cells. All of that is a
//! deterministic function of *which instructions execute, in which
//! order, against which addresses*. [`FpState`] folds exactly that
//! stream into a 128-bit digest:
//!
//! - per executed instruction: a precomputed digest of its static
//!   content — opcode, operand slot/array/function/loop ids, source
//!   position, jump targets — mixed with the executing thread. Constant
//!   *values* are deliberately excluded (only the value's type tag is
//!   hashed), so a same-shape constant edit leaves the stream
//!   unchanged; they re-enter the stream indirectly wherever they
//!   matter, as branch outcomes or array addresses.
//! - per array access: the dynamic (array, index) pair — the address
//!   stream that determines every memory-carried def-use arc.
//! - a seed over the program's iterator-op classification (the only
//!   static analysis whose output lands in DDG node flags).
//!
//! Two executions with equal digests therefore executed element-wise
//! identical instruction streams with identical address streams, and
//! would have produced byte-identical DDGs. The engine exploits this:
//! a cheap fingerprint-only run (no DDG construction) resolves which
//! cached DDG an edited program still corresponds to.

use crate::bytecode::{CompiledProgram, Inst, Pos};
use std::collections::HashSet;

/// FNV-1a 64-bit, word-at-a-time. Speed matters here — one mix per
/// executed instruction — and the keys are not adversarial.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv(h: u64, w: u64) -> u64 {
    (h ^ w).wrapping_mul(FNV_PRIME)
}

/// Streaming fingerprint state for one run. Two independent lanes with
/// different initial offsets give a 128-bit digest without widening the
/// per-step arithmetic.
pub(crate) struct FpState {
    /// Per-instruction static digests, indexed `[function][pc]`.
    digests: Vec<Vec<u64>>,
    lo: u64,
    hi: u64,
}

impl FpState {
    pub(crate) fn new(code: &CompiledProgram, iterator_ops: &HashSet<u32>) -> FpState {
        let digests = code
            .functions
            .iter()
            .map(|f| f.code.iter().map(inst_digest).collect())
            .collect();
        // Seed with the iterator-op classification: it is derived from
        // the program, lands in node flags, and is the one DDG input
        // the instruction stream does not replay.
        let mut ops: Vec<u32> = iterator_ops.iter().copied().collect();
        ops.sort_unstable();
        let mut lo = FNV_OFFSET;
        let mut hi = FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15;
        lo = fnv(lo, ops.len() as u64);
        hi = fnv(hi, code.entry.index() as u64);
        for op in ops {
            lo = fnv(lo, op as u64);
            hi = fnv(hi, op as u64);
        }
        FpState { digests, lo, hi }
    }

    /// One instruction about to execute on thread `t`. Called for every
    /// dispatch, including retried synchronization instructions — a
    /// blocked `Join` hashing twice is deterministic, and equal streams
    /// still imply equal schedules.
    #[inline]
    pub(crate) fn step(&mut self, t: usize, func: usize, pc: usize) {
        let d = self.digests[func][pc] ^ (t as u64).rotate_left(48);
        self.lo = fnv(self.lo, d);
        self.hi = fnv(self.hi, d);
    }

    /// One dynamic array access (load or store).
    #[inline]
    pub(crate) fn addr(&mut self, arr: usize, idx: usize) {
        let w = ((arr as u64) << 48) ^ idx as u64;
        self.lo = fnv(self.lo, w);
        self.hi = fnv(self.hi, w);
    }

    pub(crate) fn finish(&self) -> u128 {
        ((self.hi as u128) << 64) | self.lo as u128
    }
}

/// Digest of one instruction's static content. Everything that shapes
/// execution or the DDG is included; constant *values* are not — they
/// are exactly what an equivalent edit is allowed to change.
fn inst_digest(inst: &Inst) -> u64 {
    let h = FNV_OFFSET;
    let w = fnv;
    match inst {
        Inst::Const(v) => w(w(h, 1), value_tag(v)),
        Inst::LoadVar(v) => w(w(h, 2), v.index() as u64),
        Inst::StoreVar(v) => w(w(h, 3), v.index() as u64),
        Inst::LoadArr(a) => w(w(h, 4), a.index() as u64),
        Inst::StoreArr(a) => w(w(h, 5), a.index() as u64),
        Inst::Bin { op, id, pos } => pos_digest(w(w(w(h, 6), *op as u64), id.0 as u64), pos),
        Inst::Un { op, id, pos } => pos_digest(w(w(w(h, 7), *op as u64), id.0 as u64), pos),
        Inst::Intr { op, id, pos } => pos_digest(w(w(w(h, 8), *op as u64), id.0 as u64), pos),
        Inst::Call(f) => w(w(h, 9), f.index() as u64),
        Inst::Ret { has_value } => w(w(h, 10), *has_value as u64),
        Inst::Pop => w(h, 11),
        Inst::Jump(target) => w(w(h, 12), *target as u64),
        Inst::JumpIfFalse(target) => w(w(h, 13), *target as u64),
        Inst::ForInit { var } => w(w(h, 14), var.index() as u64),
        Inst::StoreBound { slot } => w(w(h, 15), slot.index() as u64),
        Inst::LoopEnter { id } => w(w(h, 16), id.0 as u64),
        Inst::ForTest {
            var,
            bound,
            step,
            exit,
            id,
        } => {
            let h = w(w(w(h, 17), var.index() as u64), bound.index() as u64);
            w(w(w(h, *step as u64), *exit as u64), id.0 as u64)
        }
        Inst::ForStep { var, step } => w(w(w(h, 18), var.index() as u64), *step as u64),
        Inst::WhileIter { id } => w(w(h, 19), id.0 as u64),
        Inst::LoopExit { id } => w(w(h, 20), id.0 as u64),
        Inst::Spawn {
            func,
            nargs,
            handle,
        } => w(
            w(w(w(h, 21), func.index() as u64), *nargs as u64),
            handle.index() as u64,
        ),
        Inst::Join => w(h, 22),
        Inst::Barrier { bar } => w(w(h, 23), *bar as u64),
        Inst::Lock { m } => w(w(h, 24), *m as u64),
        Inst::Unlock { m } => w(w(h, 25), *m as u64),
        Inst::Output { arr } => w(w(h, 26), arr.index() as u64),
    }
}

fn value_tag(v: &repro_ir::Value) -> u64 {
    match v {
        repro_ir::Value::I64(_) => 1,
        repro_ir::Value::F64(_) => 2,
        repro_ir::Value::Bool(_) => 3,
    }
}

fn pos_digest(h: u64, pos: &Pos) -> u64 {
    fnv(
        fnv(h, ((pos.file as u64) << 32) | pos.line as u64),
        pos.col as u64,
    )
}
