//! The deterministic multithreaded virtual machine.
//!
//! One OS thread interprets all simulated threads, handing out round-robin
//! slices and blocking threads at joins, barriers, and locks. Determinism
//! matters for reproducible experiments; it loses no generality for DDGs,
//! which capture dataflow and are therefore invariant under interleavings
//! of correctly synchronized programs (the same reason the paper's analysis
//! is "oblivious to whether the code is sequential or parallel").
//!
//! With tracing enabled, every value on the operand stack and in memory is
//! paired with the DDG node that defined it; executing an operation creates
//! a node labeled with the operation, the executing thread, and the current
//! dynamic loop scope, and adds def-use arcs from its operands.
//!
//! Instruction semantics live in [`crate::exec`], shared with the parallel
//! tracer; this module owns the scheduler and the synchronization
//! instructions, which the shared interpreter returns unexecuted.

use crate::bytecode::{CompiledProgram, Inst, Pos};
use crate::exec::{self, Env, StepOut, ThreadCtx, TraceOp};
use crate::shadow::{ShadowMemory, Taint};
use ddg::{DdgBuilder, LabelId, NodeId, ScopeEntry};
use repro_ir::{BinOp, Intrinsic, Program, UnOp, Value};
use std::collections::HashSet;
use std::time::Instant;

/// Execution limits (and injected faults, under `fault-inject`), derived
/// from [`crate::RunConfig`]. Both limits make runaway programs surface
/// as a [`MachineError`] instead of wedging the caller: `max_steps` is
/// deterministic fuel, `deadline` is the wall clock.
pub(crate) struct Limits {
    pub max_steps: u64,
    pub deadline: Option<Instant>,
    #[cfg(feature = "fault-inject")]
    pub fault: Option<crate::run::TraceFault>,
}

/// A runtime failure, attributed to the simulated thread that caused it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineError {
    pub thread: usize,
    pub message: String,
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread {}: {}", self.thread, self.message)
    }
}

impl std::error::Error for MachineError {}

/// A value paired with its provenance.
type Slot = exec::Slot<NodeId>;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    /// Waiting for a thread to finish.
    Join(usize),
    /// Parked on a barrier (woken by the last arrival).
    Barrier(usize),
    /// Waiting for a mutex.
    Lock(usize),
    Done,
}

struct Thread {
    ctx: ThreadCtx<NodeId>,
    status: Status,
}

struct BarrierState {
    participants: usize,
    waiting: usize,
}

/// The sequential driver's interpreter environment: global memory, shadow
/// memory, and direct-to-builder tracing with final [`NodeId`]s.
pub(crate) struct SeqEnv<'a> {
    program: &'a Program,
    code: &'a CompiledProgram,
    pub(crate) globals: Vec<Vec<Value>>,
    shadow: ShadowMemory,
    tracing: bool,
    pub(crate) ddg: DdgBuilder,
    /// Interned labels for binary ops, unary ops, intrinsics.
    bin_labels: Vec<Option<LabelId>>,
    un_labels: Vec<Option<LabelId>>,
    intr_labels: Vec<Option<LabelId>>,
    loop_instances: Vec<u32>,
    iterator_ops: HashSet<u32>,
    /// Execution fingerprinting (see [`crate::fp`]), when requested.
    pub(crate) fp: Option<crate::fp::FpState>,
    /// Observability sampled once at construction: a run never changes
    /// its recording mode mid-flight, and the disabled path stays one
    /// branch per slice / per shadow access.
    obs_on: bool,
    shadow_reads: u64,
    shadow_writes: u64,
}

impl<'a> SeqEnv<'a> {
    fn bin_label(&mut self, op: BinOp) -> LabelId {
        let idx = op as usize;
        if let Some(l) = self.bin_labels[idx] {
            return l;
        }
        let l = self.ddg.intern_label(op.label(), op.is_associative());
        self.bin_labels[idx] = Some(l);
        l
    }

    fn un_label(&mut self, op: UnOp) -> LabelId {
        let idx = op as usize;
        if let Some(l) = self.un_labels[idx] {
            return l;
        }
        let l = self.ddg.intern_label(op.label(), false);
        self.un_labels[idx] = Some(l);
        l
    }

    fn intr_label(&mut self, op: Intrinsic) -> LabelId {
        let idx = op as usize;
        if let Some(l) = self.intr_labels[idx] {
            return l;
        }
        let l = self.ddg.intern_label(op.label(), false);
        self.intr_labels[idx] = Some(l);
        l
    }
}

impl<'a> Env for SeqEnv<'a> {
    type Ref = NodeId;

    fn array_len(&self, arr: usize) -> usize {
        self.globals[arr].len()
    }

    fn array_name(&self, arr: usize) -> String {
        self.program.globals[arr].name.clone()
    }

    fn load(&mut self, arr: usize, idx: usize) -> (Value, Taint) {
        if let Some(fp) = &mut self.fp {
            fp.addr(arr, idx);
        }
        let v = self.globals[arr][idx];
        let def = self.shadow.get(arr, idx);
        if self.obs_on {
            self.shadow_reads += 1;
        }
        (v, def)
    }

    fn store(&mut self, arr: usize, idx: usize, v: Value, def: Taint) {
        if let Some(fp) = &mut self.fp {
            fp.addr(arr, idx);
        }
        self.globals[arr][idx] = v;
        self.shadow.set(arr, idx, def);
        if self.obs_on {
            self.shadow_writes += 1;
        }
    }

    fn trace_node(
        &mut self,
        t: usize,
        op: TraceOp,
        static_op: u32,
        pos: Pos,
        operands: &[Taint],
        scope: &[ScopeEntry],
    ) -> Taint {
        if !self.tracing {
            return Taint::Const;
        }
        let label = match op {
            TraceOp::Bin(op) => self.bin_label(op),
            TraceOp::Un(op) => self.un_label(op),
            TraceOp::Intr(op) => self.intr_label(op),
        };
        let node = self.ddg.add_node(
            label,
            static_op,
            pos.file,
            pos.line,
            pos.col,
            t as u16,
            scope.to_vec(),
        );
        for &op in operands {
            match op {
                Taint::Node(def) => self.ddg.add_arc(def, node),
                Taint::Input => self.ddg.mark_reads_input(node),
                Taint::Const => {}
            }
        }
        if self.iterator_ops.contains(&static_op) {
            self.ddg.mark_iterator(node);
        }
        Taint::Node(node)
    }

    fn mark_address(&mut self, n: NodeId) {
        if self.tracing {
            self.ddg.mark_address_use(n);
        }
    }

    fn mark_control(&mut self, n: NodeId) {
        if self.tracing {
            self.ddg.mark_control_use(n);
        }
    }

    fn loop_enter(&mut self, _t: usize, loop_id: u32) -> u32 {
        let instance = self.loop_instances[loop_id as usize];
        self.loop_instances[loop_id as usize] += 1;
        instance
    }

    #[inline]
    fn fp_step(&mut self, t: usize, func: usize, pc: usize) {
        if let Some(fp) = &mut self.fp {
            fp.step(t, func, pc);
        }
    }
}

/// The machine. Construct through [`crate::run()`].
pub struct Machine<'a> {
    pub(crate) env: SeqEnv<'a>,
    threads: Vec<Thread>,
    mutexes: Vec<Option<usize>>,
    barriers: Vec<BarrierState>,
    pub(crate) steps: u64,
    limits: Limits,
    pub(crate) entry_return: Option<Value>,
    /// Scheduler slices executed (spans are per slice, not per step).
    slices: u64,
}

/// Number of instructions a thread runs before the scheduler rotates.
const SLICE: u64 = 4096;

impl<'a> Machine<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        program: &'a Program,
        code: &'a CompiledProgram,
        globals: Vec<Vec<Value>>,
        barrier_participants: &[usize],
        tracing: bool,
        iterator_ops: HashSet<u32>,
        fp: Option<crate::fp::FpState>,
        limits: Limits,
    ) -> Self {
        let lens: Vec<usize> = globals.iter().map(|g| g.len()).collect();
        assert_eq!(
            barrier_participants.len(),
            program.n_barriers,
            "barrier participant counts must match program barriers"
        );
        Machine {
            env: SeqEnv {
                program,
                code,
                globals,
                shadow: ShadowMemory::new(&lens),
                tracing,
                ddg: DdgBuilder::new(),
                bin_labels: vec![None; 64],
                un_labels: vec![None; 16],
                intr_labels: vec![None; 16],
                loop_instances: vec![0; program.loop_count as usize],
                iterator_ops,
                fp,
                obs_on: obs::enabled(),
                shadow_reads: 0,
                shadow_writes: 0,
            },
            threads: Vec::new(),
            mutexes: vec![None; program.n_mutexes],
            barriers: barrier_participants
                .iter()
                .map(|&p| BarrierState {
                    participants: p,
                    waiting: 0,
                })
                .collect(),
            steps: 0,
            limits,
            entry_return: None,
            slices: 0,
        }
    }

    /// Flushes the run's counters into the metrics registry. Called once
    /// per run by [`crate::run()`] — including on the error path, so
    /// aborted runs (fuel, deadline, runtime faults) still report the
    /// work they did. A no-op when recording is off.
    pub(crate) fn flush_obs(&self) {
        if !self.env.obs_on {
            return;
        }
        obs::counter("trace.steps").add(self.steps);
        obs::counter("trace.slices").add(self.slices);
        obs::counter("trace.shadow_reads").add(self.env.shadow_reads);
        obs::counter("trace.shadow_writes").add(self.env.shadow_writes);
        obs::counter("trace.threads").add(self.threads.len() as u64);
        if self.env.tracing {
            obs::counter("trace.ddg_nodes").add(self.env.ddg.len() as u64);
        }
    }

    /// Starts the entry function on thread 0.
    pub(crate) fn boot(&mut self, args: Vec<Value>) {
        let frame = exec::new_frame(
            self.env.program,
            self.env.code,
            self.env.code.entry,
            args.into_iter().map(|v| (v, Taint::Input)).collect(),
        );
        self.threads.push(Thread {
            ctx: ThreadCtx::new(frame),
            status: Status::Runnable,
        });
    }

    /// Runs until the entry thread finishes. Returns the step count.
    pub(crate) fn run_to_completion(&mut self) -> Result<(), MachineError> {
        let mut current = 0usize;
        loop {
            if self.threads[0].status == Status::Done {
                return Ok(());
            }
            // Find the next thread that can make progress.
            let n = self.threads.len();
            let mut picked = None;
            for off in 0..n {
                let t = (current + off) % n;
                if self.can_run(t) {
                    picked = Some(t);
                    break;
                }
            }
            let Some(t) = picked else {
                return Err(MachineError {
                    thread: 0,
                    message: "deadlock: no runnable thread".into(),
                });
            };
            self.run_slice(t)?;
            current = (t + 1) % self.threads.len().max(1);
        }
    }

    fn can_run(&self, t: usize) -> bool {
        match self.threads[t].status {
            Status::Runnable => true,
            Status::Join(target) => self.threads[target].status == Status::Done,
            Status::Lock(m) => self.mutexes[m].is_none(),
            Status::Barrier(_) | Status::Done => false,
        }
    }

    fn run_slice(&mut self, t: usize) -> Result<(), MachineError> {
        // Deadline expiry is checked once per slice: cheap enough to
        // leave on, frequent enough (≤ 4096 instructions) that a wedged
        // or slowed program cannot overrun its request deadline by much.
        if let Some(d) = self.limits.deadline {
            if Instant::now() >= d {
                return Err(MachineError {
                    thread: t,
                    message: format!("deadline exceeded after {} steps", self.steps),
                });
            }
        }
        // A blocked-but-now-eligible thread resumes by retrying its
        // blocking instruction (Join/Lock) — the pc was not advanced.
        self.threads[t].status = Status::Runnable;
        // One span per slice, not per step: at SLICE-instruction
        // granularity the timeline shows the scheduler's round-robin
        // interleaving without drowning the trace in events.
        let _slice_span = if self.env.obs_on {
            self.slices += 1;
            Some(obs::span_args("vm.slice", || {
                vec![("thread", obs::ArgValue::U64(t as u64))]
            }))
        } else {
            None
        };
        let mut budget = SLICE;
        while budget > 0 && self.threads[t].status == Status::Runnable {
            self.step(t)?;
            budget -= 1;
            self.steps += 1;
            if self.steps > self.limits.max_steps {
                return Err(MachineError {
                    thread: t,
                    message: format!("step limit {} exceeded", self.limits.max_steps),
                });
            }
            #[cfg(feature = "fault-inject")]
            if let Some(f) = self.limits.fault {
                if f.every > 0 && self.steps.is_multiple_of(f.every) {
                    std::thread::sleep(f.delay);
                }
            }
        }
        Ok(())
    }

    fn err(&self, t: usize, message: impl Into<String>) -> MachineError {
        MachineError {
            thread: t,
            message: message.into(),
        }
    }

    /// Executes one instruction of thread `t`: the shared interpreter for
    /// ordinary instructions, this driver for synchronization.
    fn step(&mut self, t: usize) -> Result<(), MachineError> {
        let program = self.env.program;
        let code = self.env.code;
        let th = &mut self.threads[t];
        let out = exec::step(&mut self.env, &mut th.ctx, program, code, t)
            .map_err(|message| MachineError { thread: t, message })?;
        match out {
            StepOut::Ran => Ok(()),
            StepOut::Done(ret) => {
                th.status = Status::Done;
                if t == 0 {
                    self.entry_return = ret.map(|(v, _)| v);
                }
                Ok(())
            }
            StepOut::Sync(inst) => self.sync_step(t, inst),
        }
    }

    /// Executes one synchronization instruction. The pc advances here
    /// (the shared interpreter returned without touching state);
    /// blocking instructions undo the advance to retry on wake-up.
    fn sync_step(&mut self, t: usize, inst: Inst) -> Result<(), MachineError> {
        self.threads[t].ctx.frame_mut().pc += 1;
        match inst {
            Inst::Spawn {
                func,
                nargs,
                handle,
            } => {
                let mut args = Vec::with_capacity(nargs);
                for _ in 0..nargs {
                    args.push(self.pop(t)?);
                }
                args.reverse();
                let frame = exec::new_frame(self.env.program, self.env.code, func, args);
                let tid = self.threads.len();
                if tid > u16::MAX as usize {
                    return Err(self.err(t, "too many threads"));
                }
                self.threads.push(Thread {
                    ctx: ThreadCtx::new(frame),
                    status: Status::Runnable,
                });
                self.threads[t].ctx.frame_mut().slots[handle.index()] =
                    (Value::I64(tid as i64), Taint::Const);
            }
            Inst::Join => {
                let (v, _) = self.pop(t)?;
                let target = v.as_i64("join handle").map_err(|m| self.err(t, m))? as usize;
                if target >= self.threads.len() {
                    return Err(self.err(t, format!("join of unknown thread {target}")));
                }
                if self.threads[target].status != Status::Done {
                    // Retry: restore the handle and re-execute this Join.
                    self.threads[t].ctx.push((v, Taint::Const));
                    self.threads[t].ctx.frame_mut().pc -= 1;
                    self.threads[t].status = Status::Join(target);
                }
            }
            Inst::Barrier { bar } => {
                if bar >= self.barriers.len() {
                    return Err(self.err(t, format!("unknown barrier {bar}")));
                }
                self.barriers[bar].waiting += 1;
                if self.barriers[bar].waiting >= self.barriers[bar].participants {
                    // Last arrival: release everyone.
                    self.barriers[bar].waiting = 0;
                    for th in &mut self.threads {
                        if th.status == Status::Barrier(bar) {
                            th.status = Status::Runnable;
                        }
                    }
                } else {
                    // pc already advanced: resume after the barrier.
                    self.threads[t].status = Status::Barrier(bar);
                }
            }
            Inst::Lock { m } => {
                if self.mutexes[m].is_none() {
                    self.mutexes[m] = Some(t);
                } else if self.mutexes[m] == Some(t) {
                    return Err(self.err(t, format!("relock of mutex {m}")));
                } else {
                    self.threads[t].ctx.frame_mut().pc -= 1;
                    self.threads[t].status = Status::Lock(m);
                }
            }
            Inst::Unlock { m } => {
                if self.mutexes[m] != Some(t) {
                    return Err(self.err(t, format!("unlock of mutex {m} not held")));
                }
                self.mutexes[m] = None;
            }
            Inst::Output { arr } => {
                if self.env.tracing {
                    let defs: Vec<NodeId> = self
                        .env
                        .shadow
                        .array(arr.index())
                        .iter()
                        .filter_map(|t| t.node())
                        .collect();
                    for def in defs {
                        self.env.ddg.mark_writes_output(def);
                    }
                }
            }
            other => unreachable!("not a synchronization instruction: {other:?}"),
        }
        Ok(())
    }

    // ---- frame/stack helpers ----

    #[inline]
    fn pop(&mut self, t: usize) -> Result<Slot, MachineError> {
        self.threads[t]
            .ctx
            .pop()
            .map_err(|message| MachineError { thread: t, message })
    }
}
