//! The deterministic multithreaded virtual machine.
//!
//! One OS thread interprets all simulated threads, handing out round-robin
//! slices and blocking threads at joins, barriers, and locks. Determinism
//! matters for reproducible experiments; it loses no generality for DDGs,
//! which capture dataflow and are therefore invariant under interleavings
//! of correctly synchronized programs (the same reason the paper's analysis
//! is "oblivious to whether the code is sequential or parallel").
//!
//! With tracing enabled, every value on the operand stack and in memory is
//! paired with the DDG node that defined it; executing an operation creates
//! a node labeled with the operation, the executing thread, and the current
//! dynamic loop scope, and adds def-use arcs from its operands.

use crate::bytecode::{CompiledProgram, Inst};
use crate::shadow::{ShadowMemory, Taint};
use ddg::{DdgBuilder, LabelId, NodeId, ScopeEntry};
use repro_ir::{BinOp, FnId, Intrinsic, Program, UnOp, Value};
use std::collections::HashSet;
use std::time::Instant;

/// Execution limits (and injected faults, under `fault-inject`), derived
/// from [`crate::RunConfig`]. Both limits make runaway programs surface
/// as a [`MachineError`] instead of wedging the caller: `max_steps` is
/// deterministic fuel, `deadline` is the wall clock.
pub(crate) struct Limits {
    pub max_steps: u64,
    pub deadline: Option<Instant>,
    #[cfg(feature = "fault-inject")]
    pub fault: Option<crate::run::TraceFault>,
}

/// A runtime failure, attributed to the simulated thread that caused it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineError {
    pub thread: usize,
    pub message: String,
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread {}: {}", self.thread, self.message)
    }
}

impl std::error::Error for MachineError {}

/// A value paired with its provenance.
type Slot = (Value, Taint);

struct Frame {
    func: FnId,
    pc: usize,
    slots: Vec<Slot>,
    stack: Vec<Slot>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    /// Waiting for a thread to finish.
    Join(usize),
    /// Parked on a barrier (woken by the last arrival).
    Barrier(usize),
    /// Waiting for a mutex.
    Lock(usize),
    Done,
}

struct Thread {
    frames: Vec<Frame>,
    scope: Vec<ScopeEntry>,
    status: Status,
}

struct BarrierState {
    participants: usize,
    waiting: usize,
}

/// The machine. Construct through [`crate::run()`].
pub struct Machine<'a> {
    program: &'a Program,
    code: &'a CompiledProgram,
    pub(crate) globals: Vec<Vec<Value>>,
    shadow: ShadowMemory,
    threads: Vec<Thread>,
    mutexes: Vec<Option<usize>>,
    barriers: Vec<BarrierState>,
    tracing: bool,
    pub(crate) ddg: DdgBuilder,
    /// Interned labels for binary ops, unary ops, intrinsics.
    bin_labels: Vec<Option<LabelId>>,
    un_labels: Vec<Option<LabelId>>,
    intr_labels: Vec<Option<LabelId>>,
    loop_instances: Vec<u32>,
    iterator_ops: HashSet<u32>,
    pub(crate) steps: u64,
    limits: Limits,
    pub(crate) entry_return: Option<Value>,
    /// Observability sampled once at construction: a run never changes
    /// its recording mode mid-flight, and the disabled path stays one
    /// branch per slice / per shadow access.
    obs_on: bool,
    /// Scheduler slices executed (spans are per slice, not per step).
    slices: u64,
    shadow_reads: u64,
    shadow_writes: u64,
}

/// Number of instructions a thread runs before the scheduler rotates.
const SLICE: u64 = 4096;

impl<'a> Machine<'a> {
    pub(crate) fn new(
        program: &'a Program,
        code: &'a CompiledProgram,
        globals: Vec<Vec<Value>>,
        barrier_participants: &[usize],
        tracing: bool,
        iterator_ops: HashSet<u32>,
        limits: Limits,
    ) -> Self {
        let lens: Vec<usize> = globals.iter().map(|g| g.len()).collect();
        assert_eq!(
            barrier_participants.len(),
            program.n_barriers,
            "barrier participant counts must match program barriers"
        );
        Machine {
            program,
            code,
            globals,
            shadow: ShadowMemory::new(&lens),
            threads: Vec::new(),
            mutexes: vec![None; program.n_mutexes],
            barriers: barrier_participants
                .iter()
                .map(|&p| BarrierState {
                    participants: p,
                    waiting: 0,
                })
                .collect(),
            tracing,
            ddg: DdgBuilder::new(),
            bin_labels: vec![None; 64],
            un_labels: vec![None; 16],
            intr_labels: vec![None; 16],
            loop_instances: vec![0; program.loop_count as usize],
            iterator_ops,
            steps: 0,
            limits,
            entry_return: None,
            obs_on: obs::enabled(),
            slices: 0,
            shadow_reads: 0,
            shadow_writes: 0,
        }
    }

    /// Flushes the run's counters into the metrics registry. Called once
    /// per run by [`crate::run()`]; a no-op when recording is off.
    pub(crate) fn flush_obs(&self) {
        if !self.obs_on {
            return;
        }
        obs::counter("trace.steps").add(self.steps);
        obs::counter("trace.slices").add(self.slices);
        obs::counter("trace.shadow_reads").add(self.shadow_reads);
        obs::counter("trace.shadow_writes").add(self.shadow_writes);
        obs::counter("trace.threads").add(self.threads.len() as u64);
        if self.tracing {
            obs::counter("trace.ddg_nodes").add(self.ddg.len() as u64);
        }
    }

    fn new_frame(&self, func: FnId, args: Vec<Slot>) -> Frame {
        let cf = self.code.function(func);
        let irf = self.program.function(func);
        let mut slots: Vec<Slot> = Vec::with_capacity(cf.n_slots);
        for (i, arg) in args.into_iter().enumerate() {
            debug_assert!(i < cf.n_params);
            slots.push(arg);
        }
        // Declared locals get typed zeros; hidden bound slots get i64 zero.
        for i in slots.len()..cf.n_slots {
            let ty = if i < irf.slot_count() {
                irf.slot(repro_ir::VarId(i as u32)).1
            } else {
                repro_ir::Type::I64
            };
            // Zero-initialized locals behave like constants (C statics).
            slots.push((Value::zero(ty), Taint::Const));
        }
        Frame {
            func,
            pc: 0,
            slots,
            stack: Vec::new(),
        }
    }

    /// Starts the entry function on thread 0.
    pub(crate) fn boot(&mut self, args: Vec<Value>) {
        let frame = self.new_frame(
            self.code.entry,
            args.into_iter().map(|v| (v, Taint::Input)).collect(),
        );
        self.threads.push(Thread {
            frames: vec![frame],
            scope: Vec::new(),
            status: Status::Runnable,
        });
    }

    /// Runs until the entry thread finishes. Returns the step count.
    pub(crate) fn run_to_completion(&mut self) -> Result<(), MachineError> {
        let mut current = 0usize;
        loop {
            if self.threads[0].status == Status::Done {
                return Ok(());
            }
            // Find the next thread that can make progress.
            let n = self.threads.len();
            let mut picked = None;
            for off in 0..n {
                let t = (current + off) % n;
                if self.can_run(t) {
                    picked = Some(t);
                    break;
                }
            }
            let Some(t) = picked else {
                return Err(MachineError {
                    thread: 0,
                    message: "deadlock: no runnable thread".into(),
                });
            };
            self.run_slice(t)?;
            current = (t + 1) % self.threads.len().max(1);
        }
    }

    fn can_run(&self, t: usize) -> bool {
        match self.threads[t].status {
            Status::Runnable => true,
            Status::Join(target) => self.threads[target].status == Status::Done,
            Status::Lock(m) => self.mutexes[m].is_none(),
            Status::Barrier(_) | Status::Done => false,
        }
    }

    fn run_slice(&mut self, t: usize) -> Result<(), MachineError> {
        // Deadline expiry is checked once per slice: cheap enough to
        // leave on, frequent enough (≤ 4096 instructions) that a wedged
        // or slowed program cannot overrun its request deadline by much.
        if let Some(d) = self.limits.deadline {
            if Instant::now() >= d {
                return Err(MachineError {
                    thread: t,
                    message: format!("deadline exceeded after {} steps", self.steps),
                });
            }
        }
        // A blocked-but-now-eligible thread resumes by retrying its
        // blocking instruction (Join/Lock) — the pc was not advanced.
        self.threads[t].status = Status::Runnable;
        // One span per slice, not per step: at SLICE-instruction
        // granularity the timeline shows the scheduler's round-robin
        // interleaving without drowning the trace in events.
        let _slice_span = if self.obs_on {
            self.slices += 1;
            Some(obs::span_args("vm.slice", || {
                vec![("thread", obs::ArgValue::U64(t as u64))]
            }))
        } else {
            None
        };
        let mut budget = SLICE;
        while budget > 0 && self.threads[t].status == Status::Runnable {
            self.step(t)?;
            budget -= 1;
            self.steps += 1;
            if self.steps > self.limits.max_steps {
                return Err(MachineError {
                    thread: t,
                    message: format!("step limit {} exceeded", self.limits.max_steps),
                });
            }
            #[cfg(feature = "fault-inject")]
            if let Some(f) = self.limits.fault {
                if f.every > 0 && self.steps.is_multiple_of(f.every) {
                    std::thread::sleep(f.delay);
                }
            }
        }
        Ok(())
    }

    fn err(&self, t: usize, message: impl Into<String>) -> MachineError {
        MachineError {
            thread: t,
            message: message.into(),
        }
    }

    /// Executes one instruction of thread `t`.
    fn step(&mut self, t: usize) -> Result<(), MachineError> {
        let (func, pc) = {
            let f = self.threads[t]
                .frames
                .last()
                .ok_or_else(|| self.err(t, "no frame"))?;
            (f.func, f.pc)
        };
        // Cloning one instruction keeps the borrow checker out of the way;
        // instructions are small (≤ 40 bytes).
        let inst = self.code.function(func).code[pc].clone();
        // Default: advance. Blocking instructions undo this.
        self.frame_mut(t).pc += 1;

        match inst {
            Inst::Const(v) => self.push(t, (v, Taint::Const)),
            Inst::LoadVar(v) => {
                let s = self.frame(t).slots[v.index()];
                self.push(t, s);
            }
            Inst::StoreVar(v) => {
                let s = self.pop(t)?;
                self.frame_mut(t).slots[v.index()] = s;
            }
            Inst::LoadArr(a) => {
                let (idx, it) = self.pop(t)?;
                self.mark_address(it);
                let i = self.check_index(t, a.index(), idx)?;
                let v = self.globals[a.index()][i];
                let def = self.shadow.get(a.index(), i);
                if self.obs_on {
                    self.shadow_reads += 1;
                }
                self.push(t, (v, def));
            }
            Inst::StoreArr(a) => {
                let (v, vt) = self.pop(t)?;
                let (idx, it) = self.pop(t)?;
                self.mark_address(it);
                let i = self.check_index(t, a.index(), idx)?;
                self.globals[a.index()][i] = v;
                self.shadow.set(a.index(), i, vt);
                if self.obs_on {
                    self.shadow_writes += 1;
                }
            }
            Inst::Bin { op, id, pos } => {
                let (b, bt) = self.pop(t)?;
                let (a, at) = self.pop(t)?;
                let v = eval_bin(op, a, b).map_err(|m| self.err(t, m))?;
                let def = if self.tracing {
                    let label = self.bin_label(op);
                    Taint::Node(self.trace_node(t, label, id.0, pos, &[at, bt]))
                } else {
                    Taint::Const
                };
                self.push(t, (v, def));
            }
            Inst::Un { op, id, pos } => {
                let (a, at) = self.pop(t)?;
                let v = eval_un(op, a).map_err(|m| self.err(t, m))?;
                let def = if self.tracing {
                    let label = self.un_label(op);
                    Taint::Node(self.trace_node(t, label, id.0, pos, &[at]))
                } else {
                    Taint::Const
                };
                self.push(t, (v, def));
            }
            Inst::Intr { op, id, pos } => {
                let n = op.arity();
                let mut args = Vec::with_capacity(n);
                for _ in 0..n {
                    args.push(self.pop(t)?);
                }
                args.reverse();
                let v = eval_intr(op, &args).map_err(|m| self.err(t, m))?;
                let def = if self.tracing {
                    let label = self.intr_label(op);
                    let taints: Vec<Taint> = args.iter().map(|&(_, ta)| ta).collect();
                    Taint::Node(self.trace_node(t, label, id.0, pos, &taints))
                } else {
                    Taint::Const
                };
                self.push(t, (v, def));
            }
            Inst::Call(f) => {
                let n = self.code.function(f).n_params;
                let mut args = Vec::with_capacity(n);
                for _ in 0..n {
                    args.push(self.pop(t)?);
                }
                args.reverse();
                let frame = self.new_frame(f, args);
                self.threads[t].frames.push(frame);
            }
            Inst::Ret { has_value } => {
                let ret = if has_value { Some(self.pop(t)?) } else { None };
                self.threads[t].frames.pop();
                if self.threads[t].frames.is_empty() {
                    self.threads[t].status = Status::Done;
                    if t == 0 {
                        self.entry_return = ret.map(|(v, _)| v);
                    }
                } else if let Some(r) = ret {
                    self.push(t, r);
                }
            }
            Inst::Pop => {
                self.pop(t)?;
            }
            Inst::Jump(target) => self.frame_mut(t).pc = target,
            Inst::JumpIfFalse(target) => {
                let (v, vt) = self.pop(t)?;
                if let (true, Taint::Node(n)) = (self.tracing, vt) {
                    self.ddg.mark_control_use(n);
                }
                if !v.as_bool("branch condition").map_err(|m| self.err(t, m))? {
                    self.frame_mut(t).pc = target;
                }
            }
            Inst::ForInit { var } => {
                let (v, vt) = self.pop(t)?;
                // Bounds computation is traversal bookkeeping: record it
                // like an address use so simplification can strip the
                // work-splitting arithmetic (k1 = pid * chunk, ...).
                self.mark_address(vt);
                self.frame_mut(t).slots[var.index()] = (v, Taint::Const);
            }
            Inst::StoreBound { slot } => {
                let (v, vt) = self.pop(t)?;
                self.mark_address(vt);
                self.frame_mut(t).slots[slot.index()] = (v, Taint::Const);
            }
            Inst::LoopEnter { id } => {
                let instance = self.loop_instances[id.index()];
                self.loop_instances[id.index()] += 1;
                // iter starts one-before-zero; the first head test wraps to 0.
                self.threads[t].scope.push(ScopeEntry {
                    loop_id: id.0,
                    instance,
                    iter: u32::MAX,
                });
            }
            Inst::ForTest {
                var,
                bound,
                step,
                exit,
                id,
            } => {
                let v = self.frame(t).slots[var.index()]
                    .0
                    .as_i64("loop var")
                    .map_err(|m| self.err(t, m))?;
                let b = self.frame(t).slots[bound.index()]
                    .0
                    .as_i64("loop bound")
                    .map_err(|m| self.err(t, m))?;
                let cont = if step > 0 { v < b } else { v > b };
                if cont {
                    let e = self.threads[t]
                        .scope
                        .last_mut()
                        .expect("ForTest outside loop scope");
                    debug_assert_eq!(e.loop_id, id.0);
                    e.iter = e.iter.wrapping_add(1);
                } else {
                    self.frame_mut(t).pc = exit;
                }
            }
            Inst::ForStep { var, step } => {
                let slot = &mut self.frame_mut(t).slots[var.index()];
                if let Value::I64(v) = slot.0 {
                    *slot = (Value::I64(v + step), Taint::Const);
                } else {
                    return Err(self.err(t, "loop variable must be i64"));
                }
            }
            Inst::WhileIter { id } => {
                let e = self.threads[t]
                    .scope
                    .last_mut()
                    .expect("WhileIter outside scope");
                debug_assert_eq!(e.loop_id, id.0);
                e.iter = e.iter.wrapping_add(1);
            }
            Inst::LoopExit { id } => {
                let e = self.threads[t].scope.pop().expect("LoopExit without scope");
                debug_assert_eq!(e.loop_id, id.0);
            }
            Inst::Spawn {
                func,
                nargs,
                handle,
            } => {
                let mut args = Vec::with_capacity(nargs);
                for _ in 0..nargs {
                    args.push(self.pop(t)?);
                }
                args.reverse();
                let frame = self.new_frame(func, args);
                let tid = self.threads.len();
                if tid > u16::MAX as usize {
                    return Err(self.err(t, "too many threads"));
                }
                self.threads.push(Thread {
                    frames: vec![frame],
                    scope: Vec::new(),
                    status: Status::Runnable,
                });
                self.frame_mut(t).slots[handle.index()] = (Value::I64(tid as i64), Taint::Const);
            }
            Inst::Join => {
                let (v, _) = self.pop(t)?;
                let target = v.as_i64("join handle").map_err(|m| self.err(t, m))? as usize;
                if target >= self.threads.len() {
                    return Err(self.err(t, format!("join of unknown thread {target}")));
                }
                if self.threads[target].status != Status::Done {
                    // Retry: restore the handle and re-execute this Join.
                    self.push(t, (v, Taint::Const));
                    self.frame_mut(t).pc -= 1;
                    self.threads[t].status = Status::Join(target);
                }
            }
            Inst::Barrier { bar } => {
                if bar >= self.barriers.len() {
                    return Err(self.err(t, format!("unknown barrier {bar}")));
                }
                self.barriers[bar].waiting += 1;
                if self.barriers[bar].waiting >= self.barriers[bar].participants {
                    // Last arrival: release everyone.
                    self.barriers[bar].waiting = 0;
                    for th in &mut self.threads {
                        if th.status == Status::Barrier(bar) {
                            th.status = Status::Runnable;
                        }
                    }
                } else {
                    // pc already advanced: resume after the barrier.
                    self.threads[t].status = Status::Barrier(bar);
                }
            }
            Inst::Lock { m } => {
                if self.mutexes[m].is_none() {
                    self.mutexes[m] = Some(t);
                } else if self.mutexes[m] == Some(t) {
                    return Err(self.err(t, format!("relock of mutex {m}")));
                } else {
                    self.frame_mut(t).pc -= 1;
                    self.threads[t].status = Status::Lock(m);
                }
            }
            Inst::Unlock { m } => {
                if self.mutexes[m] != Some(t) {
                    return Err(self.err(t, format!("unlock of mutex {m} not held")));
                }
                self.mutexes[m] = None;
            }
            Inst::Output { arr } => {
                if self.tracing {
                    let defs: Vec<NodeId> = self
                        .shadow
                        .array(arr.index())
                        .iter()
                        .filter_map(|t| t.node())
                        .collect();
                    for def in defs {
                        self.ddg.mark_writes_output(def);
                    }
                }
            }
        }
        Ok(())
    }

    // ---- tracing helpers ----

    fn trace_node(
        &mut self,
        t: usize,
        label: LabelId,
        static_op: u32,
        pos: crate::bytecode::Pos,
        operands: &[Taint],
    ) -> NodeId {
        let scope = self.threads[t].scope.clone();
        let node = self.ddg.add_node(
            label, static_op, pos.file, pos.line, pos.col, t as u16, scope,
        );
        for &op in operands {
            match op {
                Taint::Node(def) => self.ddg.add_arc(def, node),
                Taint::Input => self.ddg.mark_reads_input(node),
                Taint::Const => {}
            }
        }
        if self.iterator_ops.contains(&static_op) {
            self.ddg.mark_iterator(node);
        }
        node
    }

    fn mark_address(&mut self, taint: Taint) {
        if let (true, Taint::Node(n)) = (self.tracing, taint) {
            self.ddg.mark_address_use(n);
        }
    }

    fn bin_label(&mut self, op: BinOp) -> LabelId {
        let idx = op as usize;
        if let Some(l) = self.bin_labels[idx] {
            return l;
        }
        let l = self.ddg.intern_label(op.label(), op.is_associative());
        self.bin_labels[idx] = Some(l);
        l
    }

    fn un_label(&mut self, op: UnOp) -> LabelId {
        let idx = op as usize;
        if let Some(l) = self.un_labels[idx] {
            return l;
        }
        let l = self.ddg.intern_label(op.label(), false);
        self.un_labels[idx] = Some(l);
        l
    }

    fn intr_label(&mut self, op: Intrinsic) -> LabelId {
        let idx = op as usize;
        if let Some(l) = self.intr_labels[idx] {
            return l;
        }
        let l = self.ddg.intern_label(op.label(), false);
        self.intr_labels[idx] = Some(l);
        l
    }

    // ---- frame/stack helpers ----

    #[inline]
    fn frame(&self, t: usize) -> &Frame {
        self.threads[t].frames.last().expect("no frame")
    }

    #[inline]
    fn frame_mut(&mut self, t: usize) -> &mut Frame {
        self.threads[t].frames.last_mut().expect("no frame")
    }

    #[inline]
    fn push(&mut self, t: usize, s: Slot) {
        self.frame_mut(t).stack.push(s);
    }

    #[inline]
    fn pop(&mut self, t: usize) -> Result<Slot, MachineError> {
        self.frame_mut(t).stack.pop().ok_or_else(|| MachineError {
            thread: t,
            message: "operand stack underflow".into(),
        })
    }

    fn check_index(&self, t: usize, arr: usize, idx: Value) -> Result<usize, MachineError> {
        let i = idx.as_i64("array index").map_err(|m| self.err(t, m))?;
        let len = self.globals[arr].len();
        if i < 0 || i as usize >= len {
            let name = &self.program.globals[arr].name;
            return Err(self.err(t, format!("index {i} out of bounds for {name}[{len}]")));
        }
        Ok(i as usize)
    }
}

// ---- operation semantics ----

fn eval_bin(op: BinOp, a: Value, b: Value) -> Result<Value, String> {
    use BinOp::*;
    Ok(match op {
        Add => Value::I64(a.as_i64("add")?.wrapping_add(b.as_i64("add")?)),
        Sub => Value::I64(a.as_i64("sub")?.wrapping_sub(b.as_i64("sub")?)),
        Mul => Value::I64(a.as_i64("mul")?.wrapping_mul(b.as_i64("mul")?)),
        Div => {
            let d = b.as_i64("div")?;
            if d == 0 {
                return Err("division by zero".into());
            }
            Value::I64(a.as_i64("div")?.wrapping_div(d))
        }
        Rem => {
            let d = b.as_i64("rem")?;
            if d == 0 {
                return Err("remainder by zero".into());
            }
            Value::I64(a.as_i64("rem")?.wrapping_rem(d))
        }
        FAdd => Value::F64(a.as_f64("fadd")? + b.as_f64("fadd")?),
        FSub => Value::F64(a.as_f64("fsub")? - b.as_f64("fsub")?),
        FMul => Value::F64(a.as_f64("fmul")? * b.as_f64("fmul")?),
        FDiv => Value::F64(a.as_f64("fdiv")? / b.as_f64("fdiv")?),
        And => bitwise(a, b, |x, y| x & y, |x, y| x && y)?,
        Or => bitwise(a, b, |x, y| x | y, |x, y| x || y)?,
        Xor => bitwise(a, b, |x, y| x ^ y, |x, y| x ^ y)?,
        Shl => Value::I64(a.as_i64("shl")?.wrapping_shl(b.as_i64("shl")? as u32)),
        Shr => Value::I64((a.as_i64("shr")? as u64 >> (b.as_i64("shr")? as u32 & 63)) as i64),
        Eq => Value::Bool(a.as_i64("icmp")? == b.as_i64("icmp")?),
        Ne => Value::Bool(a.as_i64("icmp")? != b.as_i64("icmp")?),
        Lt => Value::Bool(a.as_i64("icmp")? < b.as_i64("icmp")?),
        Le => Value::Bool(a.as_i64("icmp")? <= b.as_i64("icmp")?),
        Gt => Value::Bool(a.as_i64("icmp")? > b.as_i64("icmp")?),
        Ge => Value::Bool(a.as_i64("icmp")? >= b.as_i64("icmp")?),
        FEq => Value::Bool(a.as_f64("fcmp")? == b.as_f64("fcmp")?),
        FNe => Value::Bool(a.as_f64("fcmp")? != b.as_f64("fcmp")?),
        FLt => Value::Bool(a.as_f64("fcmp")? < b.as_f64("fcmp")?),
        FLe => Value::Bool(a.as_f64("fcmp")? <= b.as_f64("fcmp")?),
        FGt => Value::Bool(a.as_f64("fcmp")? > b.as_f64("fcmp")?),
        FGe => Value::Bool(a.as_f64("fcmp")? >= b.as_f64("fcmp")?),
        Min => Value::I64(a.as_i64("smin")?.min(b.as_i64("smin")?)),
        Max => Value::I64(a.as_i64("smax")?.max(b.as_i64("smax")?)),
        FMin => Value::F64(a.as_f64("fmin")?.min(b.as_f64("fmin")?)),
        FMax => Value::F64(a.as_f64("fmax")?.max(b.as_f64("fmax")?)),
    })
}

fn bitwise(
    a: Value,
    b: Value,
    fi: impl Fn(i64, i64) -> i64,
    fb: impl Fn(bool, bool) -> bool,
) -> Result<Value, String> {
    match (a, b) {
        (Value::I64(x), Value::I64(y)) => Ok(Value::I64(fi(x, y))),
        (Value::Bool(x), Value::Bool(y)) => Ok(Value::Bool(fb(x, y))),
        _ => Err("bitwise op needs matching i64 or bool operands".into()),
    }
}

fn eval_un(op: UnOp, a: Value) -> Result<Value, String> {
    Ok(match op {
        UnOp::Neg => Value::I64(-a.as_i64("neg")?),
        UnOp::FNeg => Value::F64(-a.as_f64("fneg")?),
        UnOp::Not => Value::Bool(!a.as_bool("not")?),
        UnOp::IntToFloat => Value::F64(a.as_i64("sitofp")? as f64),
        UnOp::FloatToInt => Value::I64(a.as_f64("fptosi")? as i64),
    })
}

fn eval_intr(op: Intrinsic, args: &[Slot]) -> Result<Value, String> {
    Ok(match op {
        Intrinsic::Sqrt => Value::F64(args[0].0.as_f64("sqrt")?.sqrt()),
        Intrinsic::Abs => Value::I64(args[0].0.as_i64("abs")?.abs()),
        Intrinsic::FAbs => Value::F64(args[0].0.as_f64("fabs")?.abs()),
        Intrinsic::Floor => Value::F64(args[0].0.as_f64("floor")?.floor()),
        Intrinsic::Sin => Value::F64(args[0].0.as_f64("sin")?.sin()),
        Intrinsic::Cos => Value::F64(args[0].0.as_f64("cos")?.cos()),
        Intrinsic::Exp => Value::F64(args[0].0.as_f64("exp")?.exp()),
        Intrinsic::Log => Value::F64(args[0].0.as_f64("log")?.ln()),
        Intrinsic::Select => {
            if args[0].0.as_bool("select")? {
                args[1].0
            } else {
                args[2].0
            }
        }
    })
}
