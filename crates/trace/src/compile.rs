//! Compilation from `repro-ir` to bytecode.
//!
//! The compiler is the moral equivalent of the paper's instrumentation
//! pass: it flattens structured statements into jumps, makes loop
//! boundaries explicit ([`Inst::LoopEnter`] / [`Inst::LoopExit`] /
//! iteration advances), and keeps counted-loop traversal bookkeeping in
//! dedicated untraced instructions. Hidden per-loop bound slots are
//! appended after the function's declared slots.

use crate::bytecode::{CompiledFn, CompiledProgram, Inst, Pos};
use repro_ir::{Expr, Function, Program, Stmt, VarId};

/// Compiles a validated program.
pub fn compile_program(p: &Program) -> CompiledProgram {
    CompiledProgram {
        functions: p.functions.iter().map(|f| compile_function(p, f)).collect(),
        entry: p.entry,
    }
}

fn compile_function(p: &Program, f: &Function) -> CompiledFn {
    let mut cx = FnCx {
        p,
        code: Vec::new(),
        extra_slots: 0,
        base_slots: f.slot_count(),
    };
    cx.block(&f.body);
    // Implicit return for void fall-through.
    cx.code.push(Inst::Ret { has_value: false });
    CompiledFn {
        name: f.name.clone(),
        n_params: f.params.len(),
        n_slots: cx.base_slots + cx.extra_slots,
        code: cx.code,
    }
}

struct FnCx<'p> {
    p: &'p Program,
    code: Vec<Inst>,
    extra_slots: usize,
    base_slots: usize,
}

impl FnCx<'_> {
    fn hidden_slot(&mut self) -> VarId {
        let v = VarId((self.base_slots + self.extra_slots) as u32);
        self.extra_slots += 1;
        v
    }

    fn block(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign { var, value, .. } => {
                self.expr(value);
                self.code.push(Inst::StoreVar(*var));
            }
            Stmt::Store {
                arr, idx, value, ..
            } => {
                self.expr(idx);
                self.expr(value);
                self.code.push(Inst::StoreArr(*arr));
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                self.expr(cond);
                let jf = self.code.len();
                self.code.push(Inst::JumpIfFalse(usize::MAX));
                self.block(then_body);
                if else_body.is_empty() {
                    let end = self.code.len();
                    self.code[jf] = Inst::JumpIfFalse(end);
                } else {
                    let jend = self.code.len();
                    self.code.push(Inst::Jump(usize::MAX));
                    let else_start = self.code.len();
                    self.code[jf] = Inst::JumpIfFalse(else_start);
                    self.block(else_body);
                    let end = self.code.len();
                    self.code[jend] = Inst::Jump(end);
                }
            }
            Stmt::For {
                id,
                var,
                from,
                to,
                step,
                body,
                ..
            } => {
                let bound = self.hidden_slot();
                self.expr(from);
                self.code.push(Inst::ForInit { var: *var });
                self.expr(to);
                self.code.push(Inst::StoreBound { slot: bound });
                self.code.push(Inst::LoopEnter { id: *id });
                let head = self.code.len();
                self.code.push(Inst::ForTest {
                    var: *var,
                    bound,
                    step: *step,
                    exit: usize::MAX,
                    id: *id,
                });
                self.block(body);
                self.code.push(Inst::ForStep {
                    var: *var,
                    step: *step,
                });
                self.code.push(Inst::Jump(head));
                let exit = self.code.len();
                if let Inst::ForTest { exit: e, .. } = &mut self.code[head] {
                    *e = exit;
                }
                self.code.push(Inst::LoopExit { id: *id });
            }
            Stmt::While { id, cond, body, .. } => {
                self.code.push(Inst::LoopEnter { id: *id });
                let head = self.code.len();
                self.code.push(Inst::WhileIter { id: *id });
                self.expr(cond);
                let jf = self.code.len();
                self.code.push(Inst::JumpIfFalse(usize::MAX));
                self.block(body);
                self.code.push(Inst::Jump(head));
                let exit = self.code.len();
                self.code[jf] = Inst::JumpIfFalse(exit);
                self.code.push(Inst::LoopExit { id: *id });
            }
            Stmt::Expr { expr } => {
                let pushes = self.expr(expr);
                if pushes {
                    self.code.push(Inst::Pop);
                }
            }
            Stmt::Return { value, .. } => match value {
                Some(e) => {
                    self.expr(e);
                    self.code.push(Inst::Ret { has_value: true });
                }
                None => self.code.push(Inst::Ret { has_value: false }),
            },
            Stmt::Spawn {
                func, args, handle, ..
            } => {
                for a in args {
                    self.expr(a);
                }
                self.code.push(Inst::Spawn {
                    func: *func,
                    nargs: args.len(),
                    handle: *handle,
                });
            }
            Stmt::Join { handle, .. } => {
                self.expr(handle);
                self.code.push(Inst::Join);
            }
            Stmt::Barrier { bar, .. } => self.code.push(Inst::Barrier { bar: *bar }),
            Stmt::Lock { mutex, .. } => self.code.push(Inst::Lock { m: *mutex }),
            Stmt::Unlock { mutex, .. } => self.code.push(Inst::Unlock { m: *mutex }),
            Stmt::Output { arr, .. } => self.code.push(Inst::Output { arr: *arr }),
        }
    }

    /// Emits code that leaves the expression's value on the stack. Returns
    /// `false` only for void calls (nothing pushed).
    fn expr(&mut self, e: &Expr) -> bool {
        match e {
            Expr::Int(v) => self.code.push(Inst::Const(repro_ir::Value::I64(*v))),
            Expr::Float(v) => self.code.push(Inst::Const(repro_ir::Value::F64(*v))),
            Expr::Bool(v) => self.code.push(Inst::Const(repro_ir::Value::Bool(*v))),
            Expr::Var(v) => self.code.push(Inst::LoadVar(*v)),
            Expr::Load { arr, idx, .. } => {
                self.expr(idx);
                self.code.push(Inst::LoadArr(*arr));
            }
            Expr::Un { op, a, id, loc } => {
                self.expr(a);
                self.code.push(Inst::Un {
                    op: *op,
                    id: *id,
                    pos: Pos::from_loc(*loc),
                });
            }
            Expr::Bin { op, a, b, id, loc } => {
                self.expr(a);
                self.expr(b);
                self.code.push(Inst::Bin {
                    op: *op,
                    id: *id,
                    pos: Pos::from_loc(*loc),
                });
            }
            Expr::Intr { op, args, id, loc } => {
                for a in args {
                    self.expr(a);
                }
                self.code.push(Inst::Intr {
                    op: *op,
                    id: *id,
                    pos: Pos::from_loc(*loc),
                });
            }
            Expr::Call { f, args, .. } => {
                for a in args {
                    self.expr(a);
                }
                self.code.push(Inst::Call(*f));
                // The machine pushes a value only when the callee returns
                // one, so `Stmt::Expr` must emit Pop exactly for non-void
                // callees.
                return self.p.function(*f).ret.is_some();
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repro_ir::{BinOp, FnBuilder, ProgramBuilder, Type};

    #[test]
    fn compiles_loop_with_hidden_bound_slot() {
        let mut pb = ProgramBuilder::new("t");
        let out = pb.global("out", Type::I64, 4);
        let mut f = pb.function("main", vec![], None);
        f.for_loop("i", Expr::Int(0), Expr::Int(4), |f, i| {
            let v = f.bin(BinOp::Mul, Expr::Var(i), Expr::Var(i));
            vec![FnBuilder::stmt_store(out, Expr::Var(i), v)]
        });
        let main = f.finish();
        let p = pb.finish(main);
        let c = compile_program(&p);
        let cf = c.function(main);
        // one declared local (i) + one hidden bound slot
        assert_eq!(cf.n_slots, 2);
        assert!(cf.code.iter().any(|i| matches!(i, Inst::ForTest { .. })));
        assert!(cf.code.iter().any(|i| matches!(i, Inst::LoopEnter { .. })));
        assert!(cf.code.iter().any(|i| matches!(i, Inst::LoopExit { .. })));
        // Jump targets patched (no usize::MAX remains).
        for inst in &cf.code {
            match inst {
                Inst::Jump(t) | Inst::JumpIfFalse(t) => assert_ne!(*t, usize::MAX),
                Inst::ForTest { exit, .. } => assert_ne!(*exit, usize::MAX),
                _ => {}
            }
        }
    }

    #[test]
    fn compiles_if_else_with_patched_targets() {
        let mut pb = ProgramBuilder::new("t2");
        let mut f = pb.function("main", vec![("c", Type::Bool)], None);
        let x = f.local("x", Type::I64);
        let c = f.param(0);
        f.push(Stmt::If {
            cond: Expr::Var(c),
            then_body: vec![FnBuilder::stmt_assign(x, Expr::Int(1))],
            else_body: vec![FnBuilder::stmt_assign(x, Expr::Int(2))],
            loc: repro_ir::Loc::NONE,
        });
        let main = f.finish();
        let p = pb.finish(main);
        let cpp = compile_program(&p);
        let code = &cpp.function(main).code;
        let jf = code
            .iter()
            .find_map(|i| {
                if let Inst::JumpIfFalse(t) = i {
                    Some(*t)
                } else {
                    None
                }
            })
            .unwrap();
        assert!(jf < code.len());
        // The instruction at the else target must store 2.
        assert!(matches!(code[jf], Inst::Const(repro_ir::Value::I64(2))));
    }

    #[test]
    fn ends_with_implicit_return() {
        let mut pb = ProgramBuilder::new("t3");
        let f = pb.function("main", vec![], None);
        let main = f.finish();
        let p = pb.finish(main);
        let c = compile_program(&p);
        assert_eq!(
            c.function(main).code.last(),
            Some(&Inst::Ret { has_value: false })
        );
    }
}
