//! `trace` — the instrumenting runtime: it plays the role of the paper's
//! LLVM instrumentation pass plus the DataFlowSanitizer-based tracing
//! runtime (§3 and §6 "Implementation").
//!
//! A [`repro_ir::Program`] is compiled to a compact bytecode (the
//! "instrumented binary"), then executed by a deterministic multithreaded
//! virtual machine. During execution every value carries the DDG node that
//! defined it; a synchronized **shadow memory** records the defining node of
//! each memory cell, so dataflow through stores and loads — including
//! across threads — is traced seamlessly and data transfer itself never
//! becomes a node. The machine also maintains each thread's **dynamic loop
//! scope**, the runtime support the paper adds on loop boundaries, which
//! later drives loop decomposition and compaction.
//!
//! Tracing is optional: [`run()`] with [`TraceMode::Full`] produces a
//! [`ddg::Ddg`]; [`TraceMode::Off`] executes the same bytecode without
//! instrumentation overhead (used to time untraced runs).

pub mod bytecode;
pub mod compile;
mod exec;
mod fp;
pub mod machine;
mod par;
pub mod run;
mod segment;
pub mod shadow;
mod stripe;

pub use compile::compile_program;
pub use machine::MachineError;
pub use run::{run, RunConfig, RunResult, TraceMode};

#[cfg(feature = "fault-inject")]
pub use run::TraceFault;
