//! The bytecode that IR programs compile to — the "instrumented binary".
//!
//! Each function becomes a flat instruction sequence operating on a
//! per-frame operand stack. Every instruction that defines a value carries
//! the static [`OpId`] and source location needed to label DDG nodes; loop
//! boundaries are explicit instructions so the machine can maintain dynamic
//! loop scopes (the paper's "runtime calls … on loop boundaries").

use repro_ir::{ArrId, BinOp, FnId, Intrinsic, LoopId, OpId, UnOp, VarId};

/// Source position carried by value-defining instructions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pos {
    pub file: u16,
    pub line: u32,
    pub col: u32,
}

impl Pos {
    pub const NONE: Pos = Pos {
        file: 0,
        line: 0,
        col: 0,
    };

    pub fn from_loc(loc: repro_ir::Loc) -> Pos {
        Pos {
            file: loc.file,
            line: loc.line,
            col: loc.col,
        }
    }
}

/// A bytecode instruction.
#[derive(Clone, Debug, PartialEq)]
pub enum Inst {
    /// Push a constant (no DDG node; constants are sourceless).
    Const(repro_ir::Value),
    /// Push the value (and defining node) of a variable slot.
    LoadVar(VarId),
    /// Pop into a variable slot (data transfer: taint flows through).
    StoreVar(VarId),
    /// Pop an index, push `arr[index]`; the index's defining node is
    /// recorded as *address-used*.
    LoadArr(ArrId),
    /// Pop a value then an index; store into `arr[index]` (shadow memory
    /// records the value's defining node; the index is address-used).
    StoreArr(ArrId),
    /// Pop two operands, push the result; defines one DDG node.
    Bin { op: BinOp, id: OpId, pos: Pos },
    /// Pop one operand, push the result; defines one DDG node.
    Un { op: UnOp, id: OpId, pos: Pos },
    /// Pop `arity` operands, push the result; defines one DDG node.
    Intr { op: Intrinsic, id: OpId, pos: Pos },
    /// Call a user function: pops its arguments (last on top), pushes a
    /// frame. Not a DDG node — callee internals are traced individually.
    Call(FnId),
    /// Return, optionally carrying the top-of-stack to the caller.
    Ret { has_value: bool },
    /// Discard the top of stack (expression statements).
    Pop,
    /// Unconditional jump to an instruction index.
    Jump(usize),
    /// Pop a boolean; jump when false. The condition's defining node is
    /// marked *control-used* (control does not extend the dataflow).
    JumpIfFalse(usize),
    /// Pop an i64 into `var` untainted: loop-variable initialization
    /// (traversal bookkeeping, kept out of the DDG by construction).
    ForInit { var: VarId },
    /// Pop an i64 into a hidden bound slot, untainted.
    StoreBound { slot: VarId },
    /// Enter a counted loop: push a scope frame (fresh dynamic instance).
    LoopEnter { id: LoopId },
    /// Counted-loop head: test `var` against the bound slot; on success
    /// advance the iteration counter, otherwise jump to `exit`.
    ForTest {
        var: VarId,
        bound: VarId,
        step: i64,
        exit: usize,
        id: LoopId,
    },
    /// Counted-loop latch: `var += step`, untainted.
    ForStep { var: VarId, step: i64 },
    /// General-loop head: advance the iteration counter (the condition is
    /// evaluated by ordinary traced instructions that follow).
    WhileIter { id: LoopId },
    /// Leave a loop: pop the scope frame.
    LoopExit { id: LoopId },
    /// Pop `nargs` arguments and start `func` on a fresh thread; store the
    /// thread handle into `handle`.
    Spawn {
        func: FnId,
        nargs: usize,
        handle: VarId,
    },
    /// Pop a thread handle; block until that thread finishes.
    Join,
    /// Block on barrier object `bar` until all participants arrive.
    Barrier { bar: usize },
    /// Acquire mutex `m` (blocking).
    Lock { m: usize },
    /// Release mutex `m`.
    Unlock { m: usize },
    /// Emit array `arr` as program output: mark the defining node of every
    /// cell as output-consumed.
    Output { arr: ArrId },
}

/// A compiled function.
#[derive(Clone, Debug)]
pub struct CompiledFn {
    pub name: String,
    /// Number of declared parameter slots.
    pub n_params: usize,
    /// Total value slots in a frame (params + locals + hidden bound slots).
    pub n_slots: usize,
    pub code: Vec<Inst>,
}

/// A compiled program.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    pub functions: Vec<CompiledFn>,
    pub entry: FnId,
}

impl CompiledProgram {
    pub fn function(&self, id: FnId) -> &CompiledFn {
        &self.functions[id.index()]
    }

    /// Total instruction count (for diagnostics).
    pub fn code_size(&self) -> usize {
        self.functions.iter().map(|f| f.code.len()).sum()
    }
}
