//! Per-thread trace segments for the parallel tracer.
//!
//! Each simulated thread appends everything it traces — nodes, def-use
//! operands, flag marks, loop entries — to a private [`Segment`] while
//! free-running on a pool worker. Nothing in a segment is shared or
//! locked; cross-thread references go through [`SegRef`], a packed
//! (thread, local-index) pair that the deterministic merge later maps
//! to the exact [`ddg::NodeId`]s the sequential tracer would assign.
//!
//! Every record carries the thread-local step clock at which it was
//! produced. The coordinator replays the sequential scheduler and only
//! *consumes* a prefix of each thread's clock; records beyond the
//! consumed prefix are speculation (work past the point where the
//! sequential machine would have stopped the thread) and are dropped
//! at merge time.

use crate::bytecode::Pos;
use crate::exec::TraceOp;
use ddg::graph::NodeFlags;
use ddg::ScopeEntry;

/// A segment-local node reference: thread id in the top 16 bits, index
/// within that thread's segment in the low 48. Mirrors the sequential
/// machine's 65536-thread limit exactly.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct SegRef(u64);

impl SegRef {
    #[inline]
    pub fn new(tid: usize, idx: usize) -> SegRef {
        debug_assert!(tid <= u16::MAX as usize);
        assert!((idx as u64) < (1 << 48), "trace segment overflow");
        SegRef(((tid as u64) << 48) | idx as u64)
    }

    #[inline]
    pub fn tid(self) -> usize {
        (self.0 >> 48) as usize
    }

    #[inline]
    pub fn idx(self) -> usize {
        (self.0 & ((1 << 48) - 1)) as usize
    }
}

/// One traced operation execution, segment-local.
pub(crate) struct SegNode {
    pub op: TraceOp,
    pub static_op: u32,
    pub pos: Pos,
    /// Operand definition refs (def-use arcs after merge). At most 3
    /// (ternary `select`); duplicates collapse at merge like the
    /// sequential builder's `finish`.
    pub ops: [SegRef; 3],
    pub nops: u8,
    /// Flags known at creation time (READS_INPUT, ITERATOR). Address,
    /// control, and output marks arrive later as [`MarkEvent`]s.
    pub flags: NodeFlags,
    /// Thread-local step clock at creation.
    pub clock: u64,
    /// Dynamic loop scope with *thread-local* loop instance numbers;
    /// the merge rewrites them to the global numbering.
    pub scope: Box<[ScopeEntry]>,
}

/// A flag set on some (possibly foreign, possibly earlier) node by an
/// instruction executed at `clock` on this segment's thread.
pub(crate) struct MarkEvent {
    pub target: SegRef,
    pub flag: NodeFlags,
    pub clock: u64,
}

/// One `LoopEnter` execution: the merge assigns global instance
/// numbers by replaying these in consumed order.
pub(crate) struct LoopEvent {
    pub loop_id: u32,
    pub local_inst: u32,
    pub clock: u64,
}

/// Worker-local tracing statistics, aggregated at run end.
#[derive(Default, Clone, Copy)]
pub(crate) struct SegStats {
    pub shadow_reads: u64,
    pub shadow_writes: u64,
    pub stripe_locks: u64,
    pub stripe_contended: u64,
}

/// Everything one simulated thread records. Ownership ping-pongs
/// between the coordinator and that thread's free-run jobs, so no
/// synchronization is ever needed on the contents.
pub(crate) struct Segment {
    pub tid: usize,
    /// Steps this thread has executed (ordinary steps bumped by the
    /// worker, synchronization steps by the coordinator).
    pub clock: u64,
    pub nodes: Vec<SegNode>,
    pub marks: Vec<MarkEvent>,
    pub loop_events: Vec<LoopEvent>,
    /// Thread-local instance counter per static loop.
    pub loop_counts: Vec<u32>,
    pub stats: SegStats,
}

impl Segment {
    pub fn new(tid: usize, loop_count: usize) -> Segment {
        Segment {
            tid,
            clock: 0,
            nodes: Vec::new(),
            marks: Vec::new(),
            loop_events: Vec::new(),
            loop_counts: vec![0; loop_count],
            stats: SegStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segref_packs_and_unpacks() {
        let r = SegRef::new(7, 123_456);
        assert_eq!(r.tid(), 7);
        assert_eq!(r.idx(), 123_456);
        let max = SegRef::new(u16::MAX as usize, (1 << 48) - 1);
        assert_eq!(max.tid(), u16::MAX as usize);
        assert_eq!(max.idx(), (1 << 48) - 1);
    }
}
