//! Top-level entry point: configure inputs, execute, collect results.

use crate::compile::compile_program;
use crate::machine::{Limits, Machine, MachineError};
use ddg::Ddg;
use repro_ir::{Program, Value};
use std::collections::HashMap;
use std::time::Instant;

/// Deterministic fault injection into the machine's step loop
/// (`fault-inject` feature only): sleep `delay` every `every` executed
/// steps. Simulates a slow or wedged traced program so the fuel and
/// deadline paths can be exercised without a genuinely nonterminating
/// workload.
#[cfg(feature = "fault-inject")]
#[derive(Clone, Copy, Debug)]
pub struct TraceFault {
    /// Inject after every `every` executed instructions (0 disables).
    pub every: u64,
    pub delay: std::time::Duration,
}

/// Whether to record a DDG during execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceMode {
    /// Record every operation execution into a DDG.
    Full,
    /// Execute only (baseline timing, correctness checks at scale).
    Off,
}

/// Run-time inputs for a program execution.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Arguments for the entry function.
    pub entry_args: Vec<Value>,
    /// Resizes of global arrays by name (lengths are program inputs: the
    /// paper's Table 2 "analysis" vs "reference" parameters).
    pub array_lens: HashMap<String, usize>,
    /// Initial contents of global arrays by name (shorter data is applied
    /// from index 0; the rest stays zeroed).
    pub array_init: HashMap<String, Vec<Value>>,
    /// Participant count per barrier object (legacy code sizes barriers by
    /// the thread count).
    pub barrier_participants: Vec<usize>,
    /// Tracing mode.
    pub trace: TraceMode,
    /// Abort the run after this many executed instructions — the trace
    /// *fuel*. A nonterminating program surfaces as a [`MachineError`]
    /// instead of wedging its caller.
    pub max_steps: u64,
    /// Abort the run at this wall-clock instant (request-level deadline;
    /// checked at scheduler-slice granularity).
    pub deadline: Option<Instant>,
    /// Trace ingestion workers. `0` or `1` selects the sequential
    /// machine; `>= 2` runs simulated threads on that many concurrent
    /// pool workers with striped shadow memory and a segment-merged
    /// DDG — byte-identical output for correctly synchronized programs
    /// (see `DESIGN.md` §17).
    pub trace_workers: usize,
    /// Compute an execution fingerprint (see [`crate::fp`]): a streaming
    /// digest over the executed instruction/address stream that
    /// identifies the DDG the run would produce under [`TraceMode::Full`]
    /// — equal fingerprints imply byte-identical DDGs. Combined with
    /// `TraceMode::Off` this is the incremental layer's cheap probe: it
    /// skips all shadow-taint and DDG construction yet still yields the
    /// DDG's identity. Forces the sequential machine (the parallel
    /// tracer's segment streams are not in schedule order).
    pub exec_fingerprint: bool,
    /// Injected machine faults (test harness only).
    #[cfg(feature = "fault-inject")]
    pub fault: Option<TraceFault>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            entry_args: Vec::new(),
            array_lens: HashMap::new(),
            array_init: HashMap::new(),
            barrier_participants: Vec::new(),
            trace: TraceMode::Full,
            max_steps: 500_000_000,
            deadline: None,
            trace_workers: 1,
            exec_fingerprint: false,
            #[cfg(feature = "fault-inject")]
            fault: None,
        }
    }
}

impl RunConfig {
    /// A traced run with entry arguments only.
    pub fn traced(entry_args: Vec<Value>) -> Self {
        RunConfig {
            entry_args,
            ..Default::default()
        }
    }

    /// Sets a global array's length.
    pub fn with_len(mut self, name: &str, len: usize) -> Self {
        self.array_lens.insert(name.to_string(), len);
        self
    }

    /// Sets a global array's initial contents (and its length).
    pub fn with_data(mut self, name: &str, data: Vec<Value>) -> Self {
        self.array_lens.insert(name.to_string(), data.len());
        self.array_init.insert(name.to_string(), data);
        self
    }

    /// Sets initial f64 contents.
    pub fn with_f64(self, name: &str, data: &[f64]) -> Self {
        self.with_data(name, data.iter().map(|&v| Value::F64(v)).collect())
    }

    /// Sets initial i64 contents.
    pub fn with_i64(self, name: &str, data: &[i64]) -> Self {
        self.with_data(name, data.iter().map(|&v| Value::I64(v)).collect())
    }

    /// Sets all barrier participant counts to `n` (one entry per barrier
    /// object of the program is filled in by [`run`]).
    pub fn with_barrier_participants(mut self, n: usize) -> Self {
        self.barrier_participants = vec![n];
        self
    }

    /// Sets the trace fuel (instruction limit).
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the number of parallel trace ingestion workers.
    pub fn with_trace_workers(mut self, workers: usize) -> Self {
        self.trace_workers = workers;
        self
    }

    /// Requests an execution fingerprint alongside the run.
    pub fn with_exec_fingerprint(mut self, on: bool) -> Self {
        self.exec_fingerprint = on;
        self
    }
}

/// Result of a program execution.
#[derive(Debug)]
pub struct RunResult {
    /// The traced DDG, when tracing was on.
    pub ddg: Option<Ddg>,
    /// Final contents of every global array, by name.
    pub arrays: HashMap<String, Vec<Value>>,
    /// Entry function's return value, if any.
    pub return_value: Option<Value>,
    /// Executed instruction count.
    pub steps: u64,
    /// The execution fingerprint, when requested (sequential runs with
    /// [`RunConfig::exec_fingerprint`] set).
    pub exec_fp: Option<u128>,
}

impl RunResult {
    /// Final f64 contents of a global array.
    pub fn f64s(&self, name: &str) -> Vec<f64> {
        self.arrays[name]
            .iter()
            .map(|v| v.as_f64("result array").expect("f64 array"))
            .collect()
    }

    /// Final i64 contents of a global array.
    pub fn i64s(&self, name: &str) -> Vec<i64> {
        self.arrays[name]
            .iter()
            .map(|v| v.as_i64("result array").expect("i64 array"))
            .collect()
    }
}

/// Compiles, instruments (when tracing), and executes `program`.
pub fn run(program: &Program, config: &RunConfig) -> Result<RunResult, MachineError> {
    let _span = obs::span_args("trace.run", || {
        vec![("program", obs::ArgValue::Str(program.name.clone()))]
    });
    if let Err(errors) = repro_ir::validate(program) {
        return Err(MachineError {
            thread: 0,
            message: format!("invalid program: {}", errors[0]),
        });
    }
    let code = compile_program(program);

    // Materialize globals with configured lengths and contents.
    let mut globals: Vec<Vec<Value>> = Vec::with_capacity(program.globals.len());
    for g in &program.globals {
        let len = config.array_lens.get(&g.name).copied().unwrap_or(g.len);
        let mut data = vec![Value::zero(g.elem); len];
        if let Some(init) = config.array_init.get(&g.name) {
            for (i, v) in init.iter().enumerate().take(len) {
                assert_eq!(v.ty(), g.elem, "init type mismatch for {}", g.name);
                data[i] = *v;
            }
        }
        globals.push(data);
    }

    // Barrier participants: replicate a single configured count across all
    // barrier objects, or use the explicit per-object list.
    let participants: Vec<usize> = match config.barrier_participants.len() {
        0 => vec![1; program.n_barriers],
        1 => vec![config.barrier_participants[0]; program.n_barriers],
        _ => config.barrier_participants.clone(),
    };

    let tracing = config.trace == TraceMode::Full;
    // The fingerprint seeds over the iterator-op classification (it
    // lands in DDG node flags), so fingerprinted untraced runs need the
    // analysis too.
    let iterator_ops: std::collections::HashSet<u32> = if tracing || config.exec_fingerprint {
        repro_ir::iter_rec::analyze(program)
            .iterator_ops
            .into_iter()
            .map(|op| op.0)
            .collect()
    } else {
        Default::default()
    };
    let fp = config
        .exec_fingerprint
        .then(|| crate::fp::FpState::new(&code, &iterator_ops));

    let limits = Limits {
        max_steps: config.max_steps,
        deadline: config.deadline,
        #[cfg(feature = "fault-inject")]
        fault: config.fault,
    };

    // Injected faults hook the sequential step loop, so fault runs
    // always take the sequential machine regardless of worker count.
    #[cfg(feature = "fault-inject")]
    let fault_free = config.fault.is_none();
    #[cfg(not(feature = "fault-inject"))]
    let fault_free = true;
    // Fingerprinting folds the schedule-order instruction stream, which
    // only the sequential machine materializes.
    if config.trace_workers >= 2 && fault_free && !config.exec_fingerprint {
        let out = crate::par::run_parallel(
            program,
            &code,
            globals,
            &participants,
            tracing,
            iterator_ops,
            limits,
            config.entry_args.clone(),
            config.trace_workers,
        )?;
        let arrays = program
            .globals
            .iter()
            .zip(out.arrays)
            .map(|(g, data)| (g.name.clone(), data))
            .collect();
        return Ok(RunResult {
            ddg: out.ddg,
            arrays,
            return_value: out.return_value,
            steps: out.steps,
            exec_fp: None,
        });
    }

    let mut m = Machine::new(
        program,
        &code,
        globals,
        &participants,
        tracing,
        iterator_ops,
        fp,
        limits,
    );
    m.boot(config.entry_args.clone());
    // Flush VM counters even when the run errors (deadline, fault, …):
    // partial-run statistics are exactly what a stalled-trace
    // investigation needs.
    let outcome = m.run_to_completion();
    m.flush_obs();
    outcome?;

    let arrays = program
        .globals
        .iter()
        .zip(std::mem::take(&mut m.env.globals))
        .map(|(g, data)| (g.name.clone(), data))
        .collect();
    let steps = m.steps;
    let return_value = m.entry_return;
    let exec_fp = m.env.fp.as_ref().map(|f| f.finish());
    let ddg = if tracing {
        Some(std::mem::take(&mut m.env.ddg).finish())
    } else {
        None
    };
    Ok(RunResult {
        ddg,
        arrays,
        return_value,
        steps,
        exec_fp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use repro_ir::{BinOp, Expr, FnBuilder, ProgramBuilder, Stmt, Type};

    /// data[i] = in[i] * 2.0 over 4 elements — a textbook map.
    fn map_program() -> Program {
        let mut pb = ProgramBuilder::new("map");
        let inp = pb.global("in", Type::F64, 4);
        let out = pb.global("out", Type::F64, 4);
        let mut f = pb.function("main", vec![], None);
        f.for_loop("i", Expr::Int(0), Expr::Int(4), |f, i| {
            let ld = f.load(inp, Expr::Var(i));
            let v = f.bin(BinOp::FMul, ld, Expr::Float(2.0));
            vec![FnBuilder::stmt_store(out, Expr::Var(i), v)]
        });
        let main = f.finish();
        pb.finish(main)
    }

    #[test]
    fn map_executes_and_traces() {
        let p = map_program();
        let cfg = RunConfig::default().with_f64("in", &[1.0, 2.0, 3.0, 4.0]);
        let r = run(&p, &cfg).unwrap();
        assert_eq!(r.f64s("out"), vec![2.0, 4.0, 6.0, 8.0]);
        let g = r.ddg.unwrap();
        // One fmul node per iteration; no arcs (inputs come from memory
        // cells initialized by the host, which have no defining node).
        assert_eq!(g.len(), 4);
        assert_eq!(g.arc_count(), 0);
        // All four nodes share the static op but differ in iteration.
        let iters: Vec<u32> = g
            .node_ids()
            .map(|n| g.innermost_scope(n).unwrap().iter)
            .collect();
        assert_eq!(iters, vec![0, 1, 2, 3]);
    }

    /// acc = 0; for i { acc += in[i] } ; out[0] = acc — a linear reduction.
    fn reduction_program() -> Program {
        let mut pb = ProgramBuilder::new("red");
        let inp = pb.global("in", Type::F64, 4);
        let out = pb.global("out", Type::F64, 1);
        let mut f = pb.function("main", vec![], None);
        let acc = f.local("acc", Type::F64);
        f.assign(acc, Expr::Float(0.0));
        f.for_loop("i", Expr::Int(0), Expr::Int(4), |f, i| {
            let ld = f.load(inp, Expr::Var(i));
            let sum = f.bin(BinOp::FAdd, Expr::Var(acc), ld);
            vec![FnBuilder::stmt_assign(acc, sum)]
        });
        f.store(out, Expr::Int(0), Expr::Var(acc));
        let main = f.finish();
        pb.finish(main)
    }

    #[test]
    fn reduction_traces_a_chain() {
        let p = reduction_program();
        let cfg = RunConfig::default().with_f64("in", &[1.0, 2.0, 3.0, 4.0]);
        let r = run(&p, &cfg).unwrap();
        assert_eq!(r.f64s("out"), vec![10.0]);
        let g = r.ddg.unwrap();
        assert_eq!(g.len(), 4);
        // Chain: node k feeds node k+1 (taint through the accumulator).
        assert_eq!(g.arc_count(), 3);
        for (u, v) in g.arcs() {
            assert_eq!(u.0 + 1, v.0);
        }
    }

    #[test]
    fn address_uses_are_marked() {
        // out[i * 2] = in[i] + 1.0 — the i*2 node must be address-used.
        let mut pb = ProgramBuilder::new("addr");
        let inp = pb.global("in", Type::F64, 2);
        let out = pb.global("out", Type::F64, 4);
        let mut f = pb.function("main", vec![], None);
        f.for_loop("i", Expr::Int(0), Expr::Int(2), |f, i| {
            let ld = f.load(inp, Expr::Var(i));
            let v = f.bin(BinOp::FAdd, ld, Expr::Float(1.0));
            let idx = f.bin(BinOp::Mul, Expr::Var(i), Expr::Int(2));
            vec![FnBuilder::stmt_store(out, idx, v)]
        });
        let main = f.finish();
        let p = pb.finish(main);
        let r = run(&p, &RunConfig::default().with_f64("in", &[5.0, 6.0])).unwrap();
        assert_eq!(r.f64s("out"), vec![6.0, 0.0, 7.0, 0.0]);
        let g = r.ddg.unwrap();
        let mul = g.find_label("mul").unwrap();
        for n in g.node_ids() {
            let node = g.node(n);
            let is_mul = node.label == mul;
            assert_eq!(
                node.flags.contains(ddg::graph::NodeFlags::ADDRESS_USED),
                is_mul,
                "only index computations are address-used"
            );
        }
    }

    /// Two worker threads sum halves of `in` into partial[tid]; after a
    /// barrier, thread 0 folds partials into out[0] — the paper's Fig. 2
    /// shape in miniature.
    fn threaded_sum_program(nproc: i64) -> Program {
        let mut pb = ProgramBuilder::new("tsum");
        let inp = pb.global("in", Type::F64, 8);
        let partial = pb.global("partial", Type::F64, nproc as usize);
        let out = pb.global("out", Type::F64, 1);
        let bar = pb.barrier();
        let worker_id = repro_ir::FnId(1);

        let mut main = pb.function("main", vec![], None);
        let h = main.local("h", Type::I64);
        let handles = pb_handles(&mut main, nproc);
        for t in 0..nproc {
            main.push(Stmt::Spawn {
                func: worker_id,
                args: vec![Expr::Int(t), Expr::Int(nproc)],
                handle: handles[t as usize],
                loc: repro_ir::Loc::NONE,
            });
        }
        for t in 0..nproc {
            main.push(Stmt::Join {
                handle: Expr::Var(handles[t as usize]),
                loc: repro_ir::Loc::NONE,
            });
        }
        let _ = h;
        let main_id = main.finish();

        let mut w = pb.function("worker", vec![("tid", Type::I64), ("np", Type::I64)], None);
        let tid = w.param(0);
        let np = w.param(1);
        let acc = w.local("acc", Type::F64);
        let k1 = w.local("k1", Type::I64);
        let k2 = w.local("k2", Type::I64);
        // chunk = 8 / np; k1 = tid * chunk; k2 = k1 + chunk
        let chunk = w.bin(BinOp::Div, Expr::Int(8), Expr::Var(np));
        let cvar = w.local("chunk", Type::I64);
        w.assign(cvar, chunk);
        let k1v = w.bin(BinOp::Mul, Expr::Var(tid), Expr::Var(cvar));
        w.assign(k1, k1v);
        let k2v = w.bin(BinOp::Add, Expr::Var(k1), Expr::Var(cvar));
        w.assign(k2, k2v);
        w.assign(acc, Expr::Float(0.0));
        w.for_loop("k", Expr::Var(k1), Expr::Var(k2), |w, k| {
            let ld = w.load(inp, Expr::Var(k));
            let sum = w.bin(BinOp::FAdd, Expr::Var(acc), ld);
            vec![FnBuilder::stmt_assign(acc, sum)]
        });
        w.store(partial, Expr::Var(tid), Expr::Var(acc));
        w.push(Stmt::Barrier {
            bar,
            loc: repro_ir::Loc::NONE,
        });
        // Final reduction on thread with tid == 0 only.
        let is0 = w.bin(BinOp::Eq, Expr::Var(tid), Expr::Int(0));
        let total = w.local("total", Type::F64);
        let mut then_body = Vec::new();
        {
            // total = 0; for t in 0..np { total += partial[t] }; out[0] = total
            then_body.push(FnBuilder::stmt_assign(total, Expr::Float(0.0)));
            let tvar = w.local("t", Type::I64);
            let lid = pb_fresh_loop(&mut w);
            let ld = w.load(partial, Expr::Var(tvar));
            let sum = w.bin(BinOp::FAdd, Expr::Var(total), ld);
            then_body.push(Stmt::For {
                id: lid,
                var: tvar,
                from: Expr::Int(0),
                to: Expr::Var(np),
                step: 1,
                body: vec![FnBuilder::stmt_assign(total, sum)],
                loc: repro_ir::Loc::NONE,
            });
            then_body.push(FnBuilder::stmt_store(out, Expr::Int(0), Expr::Var(total)));
        }
        w.if_then(is0, then_body);
        let wid = w.finish();
        assert_eq!(wid, worker_id);
        pb.finish(main_id)
    }

    fn pb_handles(main: &mut FnBuilder<'_>, nproc: i64) -> Vec<repro_ir::VarId> {
        (0..nproc)
            .map(|t| main.local(format!("h{t}"), Type::I64))
            .collect()
    }

    fn pb_fresh_loop(w: &mut FnBuilder<'_>) -> repro_ir::LoopId {
        w.fresh_loop()
    }

    #[test]
    fn threaded_sum_crosses_threads() {
        let p = threaded_sum_program(2);
        let cfg = RunConfig::default()
            .with_f64("in", &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])
            .with_barrier_participants(2);
        let r = run(&p, &cfg).unwrap();
        assert_eq!(r.f64s("out"), vec![36.0]);
        let g = r.ddg.unwrap();
        // Cross-thread arcs: partial sums (threads 1, 2) flow into the
        // final adds executed by the first worker thread.
        let crossing = g
            .arcs()
            .filter(|&(u, v)| g.node(u).thread != g.node(v).thread)
            .count();
        assert!(crossing >= 1, "expected cross-thread dataflow, got none");
    }

    #[test]
    fn trace_off_executes_identically() {
        let p = threaded_sum_program(2);
        let mut cfg = RunConfig::default()
            .with_f64("in", &[1.0; 8])
            .with_barrier_participants(2);
        cfg.trace = TraceMode::Off;
        let r = run(&p, &cfg).unwrap();
        assert!(r.ddg.is_none());
        assert_eq!(r.f64s("out"), vec![8.0]);
    }

    /// A small program with a scale constant, a comparison, and a
    /// data-dependent store — enough surface for fingerprint edits.
    fn fp_program(scale: &str, op: &str, n: &str) -> Program {
        let src = format!(
            "float in[8];\nfloat out[8];\nvoid main() {{\n  int i;\n  \
             for (i = 0; i < {n}; i = i + 1) {{\n    \
             out[i] = in[i] {op} {scale};\n  }}\n  output(out);\n}}\n"
        );
        minc::compile("fp", &src).unwrap()
    }

    fn fp_of(p: &Program, trace: TraceMode) -> (u128, RunResult) {
        let mut cfg = RunConfig::default()
            .with_f64("in", &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])
            .with_exec_fingerprint(true);
        cfg.trace = trace;
        let r = run(p, &cfg).unwrap();
        (r.exec_fp.expect("fingerprint requested"), r)
    }

    #[test]
    fn exec_fingerprint_ignores_constant_values_but_not_shape() {
        let base = fp_program("0.95", "*", "8");
        let (fp_base, r_base) = fp_of(&base, TraceMode::Off);
        assert_eq!(r_base.f64s("out")[1], 1.9);

        // Same-shape constant edit: identical instruction and address
        // streams, so the DDG identity — the fingerprint — is unchanged
        // even though every output value differs.
        let edited = fp_program("0.85", "*", "8");
        let (fp_edit, r_edit) = fp_of(&edited, TraceMode::Off);
        assert_eq!(fp_base, fp_edit);
        assert_ne!(r_base.f64s("out"), r_edit.f64s("out"));

        // Operation edit: different node labels, different fingerprint.
        let (fp_op, _) = fp_of(&fp_program("0.95", "+", "8"), TraceMode::Off);
        assert_ne!(fp_base, fp_op);

        // Trip-count edit: same per-iteration stream, fewer iterations.
        let (fp_n, _) = fp_of(&fp_program("0.95", "*", "4"), TraceMode::Off);
        assert_ne!(fp_base, fp_n);
    }

    #[test]
    fn exec_fingerprint_is_trace_mode_independent() {
        // The engine records fingerprints during full traced runs and
        // probes with untraced ones; both fold the same stream.
        let p = fp_program("0.95", "*", "8");
        let (fp_off, r_off) = fp_of(&p, TraceMode::Off);
        let (fp_full, r_full) = fp_of(&p, TraceMode::Full);
        assert_eq!(fp_off, fp_full);
        assert!(r_off.ddg.is_none());
        assert!(r_full.ddg.is_some());
        assert_eq!(r_off.f64s("out"), r_full.f64s("out"));
    }

    #[test]
    fn exec_fingerprint_sees_data_dependent_addresses() {
        // out[(int) in[i]] = 1.0 — the address stream depends on input
        // *values*, so changing the data must change the fingerprint
        // even though the source text is identical.
        let src = "float in[4];\nfloat out[8];\nvoid main() {\n  int i;\n  \
                   for (i = 0; i < 4; i = i + 1) {\n    \
                   out[(int) in[i]] = 1.0;\n  }\n  output(out);\n}\n";
        let p = minc::compile("scatter", src).unwrap();
        let fp_for = |data: &[f64]| {
            let cfg = RunConfig::default()
                .with_f64("in", data)
                .with_exec_fingerprint(true);
            run(&p, &cfg).unwrap().exec_fp.unwrap()
        };
        assert_eq!(fp_for(&[0.0, 1.0, 2.0, 3.0]), fp_for(&[0.0, 1.0, 2.0, 3.0]));
        assert_ne!(fp_for(&[0.0, 1.0, 2.0, 3.0]), fp_for(&[3.0, 2.0, 1.0, 0.0]));
    }

    #[test]
    fn exec_fingerprint_covers_threaded_programs() {
        let p = threaded_sum_program(2);
        let mk = |data: &[f64]| {
            let cfg = RunConfig::default()
                .with_f64("in", data)
                .with_barrier_participants(2)
                .with_exec_fingerprint(true)
                // Forced back to the sequential machine: the parallel
                // tracer cannot fold a schedule-ordered stream.
                .with_trace_workers(4);
            let r = run(&p, &cfg).unwrap();
            (r.exec_fp.unwrap(), r.f64s("out"))
        };
        let (fp_a, out_a) = mk(&[1.0; 8]);
        let (fp_b, out_b) = mk(&[2.0; 8]);
        assert_eq!(out_a, vec![8.0]);
        assert_eq!(out_b, vec![16.0]);
        // Same addresses touched, same stream — values don't matter.
        assert_eq!(fp_a, fp_b);
    }

    #[test]
    fn mutexes_serialize_and_unlock_errors_are_caught() {
        let mut pb = ProgramBuilder::new("mtx");
        let out = pb.global("out", Type::I64, 1);
        let m = pb.mutex();
        let mut f = pb.function("main", vec![], None);
        f.push(Stmt::Lock {
            mutex: m,
            loc: repro_ir::Loc::NONE,
        });
        let ld = f.load(out, Expr::Int(0));
        let inc = f.bin(BinOp::Add, ld, Expr::Int(1));
        f.store(out, Expr::Int(0), inc);
        f.push(Stmt::Unlock {
            mutex: m,
            loc: repro_ir::Loc::NONE,
        });
        // Unlock again: runtime error.
        f.push(Stmt::Unlock {
            mutex: m,
            loc: repro_ir::Loc::NONE,
        });
        let main = f.finish();
        let p = pb.finish(main);
        let err = run(&p, &RunConfig::default()).unwrap_err();
        assert!(err.message.contains("not held"), "{err}");
    }

    #[test]
    fn deadlock_is_detected() {
        // Thread 0 waits on a 2-participant barrier no one else reaches.
        let mut pb = ProgramBuilder::new("dead");
        let bar = pb.barrier();
        let mut f = pb.function("main", vec![], None);
        f.push(Stmt::Barrier {
            bar,
            loc: repro_ir::Loc::NONE,
        });
        let main = f.finish();
        let p = pb.finish(main);
        let cfg = RunConfig::default().with_barrier_participants(2);
        let err = run(&p, &cfg).unwrap_err();
        assert!(err.message.contains("deadlock"), "{err}");
    }

    /// `while (i < 1) { i = 0; }` — spins forever.
    fn nonterminating_program() -> Program {
        let src = "int out[1];\nvoid main() {\n  int i;\n  i = 0;\n  \
                   while (i < 1) {\n    i = 0;\n  }\n  output(out);\n}\n";
        minc::compile("spin", src).unwrap()
    }

    #[test]
    fn trace_fuel_stops_a_nonterminating_program() {
        let p = nonterminating_program();
        let cfg = RunConfig::default().with_max_steps(10_000);
        let err = run(&p, &cfg).unwrap_err();
        assert!(err.message.contains("step limit"), "{err}");
    }

    #[test]
    fn deadline_stops_a_nonterminating_program() {
        let p = nonterminating_program();
        let cfg = RunConfig::default()
            .with_deadline(Instant::now() + std::time::Duration::from_millis(30));
        let t0 = Instant::now();
        let err = run(&p, &cfg).unwrap_err();
        assert!(err.message.contains("deadline"), "{err}");
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(20),
            "deadline must cut the run off promptly"
        );
    }

    #[test]
    fn unexpired_deadline_does_not_perturb_a_run() {
        let p = map_program();
        let cfg = RunConfig::default()
            .with_f64("in", &[1.0, 2.0, 3.0, 4.0])
            .with_deadline(Instant::now() + std::time::Duration::from_secs(3600));
        let r = run(&p, &cfg).unwrap();
        assert_eq!(r.f64s("out"), vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_step_delay_trips_the_deadline() {
        // A spinning program slowed to ~10 ms per scheduler slice: the
        // 30 ms deadline must fire at a slice boundary long before the
        // (generous) fuel runs out.
        let p = nonterminating_program();
        let mut cfg = RunConfig::default()
            .with_deadline(Instant::now() + std::time::Duration::from_millis(30));
        cfg.fault = Some(TraceFault {
            every: 4000,
            delay: std::time::Duration::from_millis(10),
        });
        let err = run(&p, &cfg).unwrap_err();
        assert!(err.message.contains("deadline"), "{err}");
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let mut pb = ProgramBuilder::new("oob");
        let a = pb.global("a", Type::I64, 2);
        let mut f = pb.function("main", vec![], None);
        f.store(a, Expr::Int(5), Expr::Int(1));
        let main = f.finish();
        let p = pb.finish(main);
        let err = run(&p, &RunConfig::default()).unwrap_err();
        assert!(err.message.contains("out of bounds"), "{err}");
    }

    #[test]
    fn calls_flow_dataflow_through_return() {
        // f(x) = x * x; main: out[0] = f(in[0]) + 1.0
        let mut pb = ProgramBuilder::new("call");
        let inp = pb.global("in", Type::F64, 1);
        let out = pb.global("out", Type::F64, 1);
        let sq = {
            let mut f = pb.function("sq", vec![("x", Type::F64)], Some(Type::F64));
            let x = f.param(0);
            let v = f.bin(BinOp::FMul, Expr::Var(x), Expr::Var(x));
            f.ret(Some(v));
            f.finish()
        };
        let mut f = pb.function("main", vec![], None);
        let ld = f.load(inp, Expr::Int(0));
        let c = f.call(sq, vec![ld]);
        let v = f.bin(BinOp::FAdd, c, Expr::Float(1.0));
        f.store(out, Expr::Int(0), v);
        let main = f.finish();
        let p = pb.finish(main);
        let r = run(&p, &RunConfig::default().with_f64("in", &[3.0])).unwrap();
        assert_eq!(r.f64s("out"), vec![10.0]);
        let g = r.ddg.unwrap();
        // fmul (inside sq) -> fadd (in main): one arc.
        assert_eq!(g.len(), 2);
        assert_eq!(g.arc_count(), 1);
    }

    #[test]
    fn while_loop_iterator_ops_are_flagged() {
        // i = 0; while (i < 3) { out[0] = out[0] + 1; i = i + 1; }
        let mut pb = ProgramBuilder::new("wh");
        let out = pb.global("out", Type::I64, 1);
        let mut f = pb.function("main", vec![], None);
        let i = f.local("i", Type::I64);
        f.assign(i, Expr::Int(0));
        let cond = f.bin(BinOp::Lt, Expr::Var(i), Expr::Int(3));
        let ld = f.load(out, Expr::Int(0));
        let body_add = f.bin(BinOp::Add, ld, Expr::Int(1));
        let inc = f.bin(BinOp::Add, Expr::Var(i), Expr::Int(1));
        let lid = f.fresh_loop();
        f.push(Stmt::While {
            id: lid,
            cond,
            body: vec![
                FnBuilder::stmt_store(out, Expr::Int(0), body_add),
                FnBuilder::stmt_assign(i, inc),
            ],
            loc: repro_ir::Loc::NONE,
        });
        let main = f.finish();
        let p = pb.finish(main);
        let r = run(&p, &RunConfig::default()).unwrap();
        assert_eq!(r.i64s("out"), vec![3]);
        let g = r.ddg.unwrap();
        let flagged = g
            .node_ids()
            .filter(|&n| g.node(n).flags.contains(ddg::graph::NodeFlags::ITERATOR))
            .count();
        // Per executed iteration: 1 cond cmp + 1 increment; plus the final
        // failing test = 3*2 + 1 = 7 flagged nodes.
        assert_eq!(flagged, 7);
        // The accumulation adds are not flagged.
        let unflagged = g.len() - flagged;
        assert_eq!(unflagged, 3);
    }

    #[test]
    fn scopes_track_nested_loops() {
        let mut pb = ProgramBuilder::new("nest");
        let out = pb.global("out", Type::F64, 4);
        let mut f = pb.function("main", vec![], None);
        f.for_loop("i", Expr::Int(0), Expr::Int(2), |f, i| {
            let inner_var = f.local("j", Type::I64);
            let lid = f.fresh_loop();
            let idx = f.bin(BinOp::Mul, Expr::Var(i), Expr::Int(2));
            let idx2 = f.bin(BinOp::Add, idx, Expr::Var(inner_var));
            let ld = f.load(out, idx2.clone());
            let v = f.bin(BinOp::FAdd, ld, Expr::Float(1.0));
            vec![Stmt::For {
                id: lid,
                var: inner_var,
                from: Expr::Int(0),
                to: Expr::Int(2),
                step: 1,
                body: vec![FnBuilder::stmt_store(out, idx2, v)],
                loc: repro_ir::Loc::NONE,
            }]
        });
        let main = f.finish();
        let p = pb.finish(main);
        let r = run(&p, &RunConfig::default()).unwrap();
        assert_eq!(r.f64s("out"), vec![1.0; 4]);
        let g = r.ddg.unwrap();
        let fadds: Vec<_> = g
            .node_ids()
            .filter(|&n| g.label_str(g.node(n).label) == "fadd")
            .collect();
        assert_eq!(fadds.len(), 4);
        for n in fadds {
            assert_eq!(
                g.node(n).scope.len(),
                2,
                "fadd executes under two nested loops"
            );
        }
    }
}
