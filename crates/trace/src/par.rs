//! The parallel tracer: sharded trace ingestion with a deterministic
//! scheduler replay, byte-identical to the sequential machine.
//!
//! # How it works
//!
//! Simulated threads *free-run* on real worker threads (a shared
//! work-stealing [`repro_pool::WorkPool`]), each executing the shared
//! interpreter ([`crate::exec`]) against striped shared memory
//! ([`crate::stripe`]) and appending everything it traces to a private
//! [`crate::segment::Segment`]. A free run stops at the next
//! synchronization instruction (spawn/join/barrier/lock/unlock/output)
//! — the shared interpreter returns those *unexecuted* — or at
//! completion, an error, or a fuel/deadline/abort pause.
//!
//! The coordinator then *replays the sequential scheduler exactly*:
//! the same round-robin pick, the same 4096-step slices, the same
//! blocking rules. Ordinary steps are consumed from the segments in
//! batches; synchronization instructions are executed by the
//! coordinator itself, one step each, with the sequential machine's
//! exact semantics and error messages. Because a thread's free run is
//! only dispatched *after* the synchronization that enables it has
//! been replayed, every cross-thread read in a correctly synchronized
//! program sees exactly the writes the sequential interleaving would
//! have produced — segment barriers at thread create/join/barrier
//! points make the striped shadow memory resolve def→use edges
//! exactly as serialized.
//!
//! Replay yields the authoritative interleaving: the consumption
//! windows order all traced nodes globally, so the merge assigns the
//! same `NodeId`s, label ids, loop instance numbers, and flags the
//! sequential tracer would, and builds the CSR arrays directly — no
//! intermediate edge list ([`ddg::Ddg::from_csr_parts`]).
//!
//! # What is *not* identical
//!
//! - Programs with data races may observe different (but memory-safe)
//!   values than the sequential schedule, exactly as on real hardware.
//! - Threads never joined before the entry thread exits may run ahead
//!   speculatively; their extra trace records are dropped at merge,
//!   but their array writes can land (again: racy programs only).
//! - Wall-clock deadline expiry aborts at a nondeterministic point,
//!   same as sequentially.

use crate::bytecode::{CompiledProgram, Inst};
use crate::exec::{self, Env, StepOut, ThreadCtx, TraceOp};
use crate::machine::{Limits, MachineError};
use crate::segment::{LoopEvent, MarkEvent, SegNode, SegRef, SegStats, Segment};
use crate::shadow::Taint;
use crate::stripe::StripedMemory;
use ddg::graph::NodeFlags;
use ddg::{Ddg, LabelId, Node, NodeId, ScopeEntry};
use repro_ir::{Program, Value};
use repro_pool::WorkPool;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Same slice length as the sequential machine — replay must rotate
/// threads at identical points.
const SLICE: u64 = 4096;

/// How often a free-running worker polls the abort flag and deadline.
const POLL: u64 = 4096;

/// The process-wide pool for free-run jobs. Jobs never block on other
/// jobs, so a fixed-size pool cannot deadlock; sized for the machine
/// but with enough threads that `--trace-workers 8` still exercises
/// real concurrency on small hosts.
fn pool() -> &'static WorkPool {
    static POOL: OnceLock<WorkPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        WorkPool::new(cores.max(8))
    })
}

/// State shared with free-run jobs.
struct SharedCtx {
    program: Program,
    code: CompiledProgram,
    stripes: StripedMemory,
    iterator_ops: HashSet<u32>,
    tracing: bool,
    obs_on: bool,
    abort: AtomicBool,
    deadline: Option<Instant>,
}

/// Interpreter environment of a free-running worker: loads and stores
/// go to the striped memory, traces go to the private segment.
struct WorkerEnv<'a> {
    shared: &'a SharedCtx,
    seg: &'a mut Segment,
}

impl Env for WorkerEnv<'_> {
    type Ref = SegRef;

    fn array_len(&self, arr: usize) -> usize {
        self.shared.stripes.array_len(arr)
    }

    fn array_name(&self, arr: usize) -> String {
        self.shared.program.globals[arr].name.clone()
    }

    fn load(&mut self, arr: usize, idx: usize) -> (Value, Taint<SegRef>) {
        let cell = self.shared.stripes.load(arr, idx, &mut self.seg.stats);
        if self.shared.obs_on {
            self.seg.stats.shadow_reads += 1;
        }
        cell
    }

    fn store(&mut self, arr: usize, idx: usize, v: Value, def: Taint<SegRef>) {
        self.shared
            .stripes
            .store(arr, idx, v, def, &mut self.seg.stats);
        if self.shared.obs_on {
            self.seg.stats.shadow_writes += 1;
        }
    }

    fn trace_node(
        &mut self,
        _t: usize,
        op: TraceOp,
        static_op: u32,
        pos: crate::bytecode::Pos,
        operands: &[Taint<SegRef>],
        scope: &[ScopeEntry],
    ) -> Taint<SegRef> {
        if !self.shared.tracing {
            return Taint::Const;
        }
        let mut ops = [SegRef::new(0, 0); 3];
        let mut nops = 0u8;
        let mut flags = NodeFlags::default();
        for &o in operands {
            match o {
                Taint::Node(r) => {
                    ops[nops as usize] = r;
                    nops += 1;
                }
                Taint::Input => flags.insert(NodeFlags::READS_INPUT),
                Taint::Const => {}
            }
        }
        if self.shared.iterator_ops.contains(&static_op) {
            flags.insert(NodeFlags::ITERATOR);
        }
        let idx = self.seg.nodes.len();
        self.seg.nodes.push(SegNode {
            op,
            static_op,
            pos,
            ops,
            nops,
            flags,
            clock: self.seg.clock,
            scope: scope.into(),
        });
        Taint::Node(SegRef::new(self.seg.tid, idx))
    }

    fn mark_address(&mut self, r: SegRef) {
        if self.shared.tracing {
            self.seg.marks.push(MarkEvent {
                target: r,
                flag: NodeFlags::ADDRESS_USED,
                clock: self.seg.clock,
            });
        }
    }

    fn mark_control(&mut self, r: SegRef) {
        if self.shared.tracing {
            self.seg.marks.push(MarkEvent {
                target: r,
                flag: NodeFlags::CONTROL_USED,
                clock: self.seg.clock,
            });
        }
    }

    fn loop_enter(&mut self, _t: usize, loop_id: u32) -> u32 {
        let inst = self.seg.loop_counts[loop_id as usize];
        self.seg.loop_counts[loop_id as usize] += 1;
        if self.shared.tracing {
            self.seg.loop_events.push(LoopEvent {
                loop_id,
                local_inst: inst,
                clock: self.seg.clock,
            });
        }
        inst
    }
}

/// Why a free run returned.
enum JobOutcome {
    /// Stopped at a synchronization instruction (unexecuted).
    Sync(Inst),
    /// The thread finished (its final `Ret` is counted in the clock).
    Done(Option<(Value, Taint<SegRef>)>),
    /// The *next* step would fail with this message. Speculative: the
    /// replay raises it only if the schedule actually reaches it.
    Error(String),
    /// Paused (fuel allowance, deadline poll, or abort flag); the
    /// coordinator re-dispatches on demand.
    Pause,
}

struct JobDone {
    tid: usize,
    ctx: ThreadCtx<SegRef>,
    seg: Segment,
    outcome: JobOutcome,
}

/// Runs one simulated thread until it must synchronize or stop.
fn free_run(
    shared: &SharedCtx,
    ctx: &mut ThreadCtx<SegRef>,
    seg: &mut Segment,
    tid: usize,
    fuel: u64,
) -> JobOutcome {
    let mut env = WorkerEnv { shared, seg };
    let mut ran: u64 = 0;
    loop {
        if ran.is_multiple_of(POLL) {
            if shared.abort.load(Ordering::Relaxed) {
                return JobOutcome::Pause;
            }
            // Fuel and deadline only matter after real progress: a
            // fresh dispatch must advance at least one step or the
            // replay could spin re-dispatching forever.
            if ran > 0 {
                if ran >= fuel {
                    return JobOutcome::Pause;
                }
                if let Some(d) = shared.deadline {
                    if Instant::now() >= d {
                        return JobOutcome::Pause;
                    }
                }
            }
        }
        match exec::step(&mut env, ctx, &shared.program, &shared.code, tid) {
            Ok(StepOut::Ran) => {
                env.seg.clock += 1;
                ran += 1;
            }
            Ok(StepOut::Done(ret)) => {
                env.seg.clock += 1;
                return JobOutcome::Done(ret);
            }
            Ok(StepOut::Sync(inst)) => return JobOutcome::Sync(inst),
            Err(message) => return JobOutcome::Error(message),
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Join(usize),
    Barrier(usize),
    Lock(usize),
    Done,
}

struct BarrierState {
    participants: usize,
    waiting: usize,
}

struct Coordinator {
    shared: Arc<SharedCtx>,
    limits: Limits,
    /// In-flight speculation cap (`--trace-workers`).
    workers: usize,
    status: Vec<Status>,
    /// Each thread's context and segment, absent while a job owns them.
    parked: Vec<Option<(ThreadCtx<SegRef>, Segment)>>,
    /// The thread's next action once its consumed steps catch up.
    pending: Vec<Option<JobOutcome>>,
    /// Steps of each thread consumed by the replay (ordinary + sync).
    consumed: Vec<u64>,
    mutexes: Vec<Option<usize>>,
    barriers: Vec<BarrierState>,
    steps: u64,
    slices: u64,
    entry_return: Option<Value>,
    inflight: usize,
    queue: VecDeque<usize>,
    queued: Vec<bool>,
    tx: Sender<JobDone>,
    rx: Receiver<JobDone>,
    /// Ordinary-step consumption windows `(tid, from, to)` in replay
    /// order — the authoritative global interleaving for the merge.
    windows: Vec<(u32, u64, u64)>,
    /// WRITES_OUTPUT marks recorded while replaying `Output`.
    output_marks: Vec<SegRef>,
    obs_on: bool,
}

impl Coordinator {
    fn err(&self, t: usize, message: impl Into<String>) -> MachineError {
        MachineError {
            thread: t,
            message: message.into(),
        }
    }

    fn avail(&self, t: usize) -> u64 {
        match &self.parked[t] {
            Some((_, seg)) => seg.clock - self.consumed[t],
            None => 0,
        }
    }

    fn spawn_thread(&mut self, ctx: ThreadCtx<SegRef>) -> usize {
        let tid = self.status.len();
        self.status.push(Status::Runnable);
        self.parked.push(Some((
            ctx,
            Segment::new(tid, self.shared.program.loop_count as usize),
        )));
        self.pending.push(None);
        self.consumed.push(0);
        self.queued.push(false);
        tid
    }

    fn dispatch(&mut self, t: usize) {
        let (ctx, seg) = self.parked[t].take().expect("dispatch of absent thread");
        debug_assert!(self.pending[t].is_none());
        // Enough fuel that the worker can always run past the global
        // step limit (the replay raises the exact fuel error).
        let fuel = self.limits.max_steps.saturating_sub(self.steps) + 2;
        let shared = self.shared.clone();
        let tx = self.tx.clone();
        self.inflight += 1;
        pool().submit(Box::new(move || {
            let mut ctx = ctx;
            let mut seg = seg;
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                free_run(&shared, &mut ctx, &mut seg, t, fuel)
            }))
            .unwrap_or_else(|_| JobOutcome::Error("trace worker panicked".into()));
            // The send must survive even this closure being dropped
            // abnormally: the coordinator blocks on it.
            let _ = tx.send(JobDone {
                tid: t,
                ctx,
                seg,
                outcome,
            });
        }));
    }

    /// Queues an eager (speculative) dispatch for a thread that just
    /// became able to free-run.
    fn enqueue(&mut self, t: usize) {
        if !self.queued[t] {
            self.queued[t] = true;
            self.queue.push_back(t);
        }
        self.pump();
    }

    fn pump(&mut self) {
        while self.inflight < self.workers {
            let Some(t) = self.queue.pop_front() else {
                break;
            };
            self.queued[t] = false;
            if self.parked[t].is_some()
                && self.pending[t].is_none()
                && self.status[t] == Status::Runnable
            {
                self.dispatch(t);
            }
        }
    }

    fn apply(&mut self, done: JobDone) {
        self.inflight -= 1;
        let t = done.tid;
        self.parked[t] = Some((done.ctx, done.seg));
        self.pending[t] = Some(done.outcome);
    }

    /// Blocks until thread `t`'s context is back with the coordinator.
    fn wait_for(&mut self, t: usize) -> Result<(), MachineError> {
        while self.parked[t].is_none() {
            match self.rx.recv() {
                Ok(done) => {
                    self.apply(done);
                    self.pump();
                }
                Err(_) => return Err(self.err(t, "trace worker pool unavailable")),
            }
        }
        Ok(())
    }

    /// Guarantees thread `t` has something to replay: unconsumed steps
    /// or a pending sync/done/error. Pauses re-dispatch on demand.
    fn ensure_action(&mut self, t: usize) -> Result<(), MachineError> {
        loop {
            self.wait_for(t)?;
            if matches!(self.pending[t], Some(JobOutcome::Pause)) {
                self.pending[t] = None;
            }
            if self.avail(t) > 0 || self.pending[t].is_some() {
                return Ok(());
            }
            self.dispatch(t);
        }
    }

    /// Retires a thread the instant its final step has been consumed —
    /// the sequential machine flips the status *during* that step, and
    /// the scheduler must observe it at the same point.
    fn settle_done(&mut self, t: usize) {
        if self.avail(t) == 0 && matches!(self.pending[t], Some(JobOutcome::Done(_))) {
            let Some(JobOutcome::Done(ret)) = self.pending[t].take() else {
                unreachable!()
            };
            self.status[t] = Status::Done;
            if t == 0 {
                self.entry_return = ret.map(|(v, _)| v);
            }
        }
    }

    fn can_run(&self, t: usize) -> bool {
        match self.status[t] {
            Status::Runnable => true,
            Status::Join(target) => self.status[target] == Status::Done,
            Status::Lock(m) => self.mutexes[m].is_none(),
            Status::Barrier(_) | Status::Done => false,
        }
    }

    fn run(&mut self) -> Result<(), MachineError> {
        let mut current = 0usize;
        loop {
            if self.status[0] == Status::Done {
                return Ok(());
            }
            let n = self.status.len();
            let mut picked = None;
            for off in 0..n {
                let t = (current + off) % n;
                if self.can_run(t) {
                    picked = Some(t);
                    break;
                }
            }
            let Some(t) = picked else {
                return Err(MachineError {
                    thread: 0,
                    message: "deadlock: no runnable thread".into(),
                });
            };
            self.replay_slice(t)?;
            current = (t + 1) % self.status.len().max(1);
        }
    }

    fn replay_slice(&mut self, t: usize) -> Result<(), MachineError> {
        if let Some(d) = self.limits.deadline {
            if Instant::now() >= d {
                return Err(self.err(t, format!("deadline exceeded after {} steps", self.steps)));
            }
        }
        self.status[t] = Status::Runnable;
        let _slice_span = if self.obs_on {
            self.slices += 1;
            Some(obs::span_args("vm.slice", || {
                vec![("thread", obs::ArgValue::U64(t as u64))]
            }))
        } else {
            None
        };
        let mut budget = SLICE;
        while budget > 0 && self.status[t] == Status::Runnable {
            self.ensure_action(t)?;
            let avail = self.avail(t);
            if avail > 0 {
                let take = avail.min(budget);
                if self.steps + take > self.limits.max_steps {
                    return Err(
                        self.err(t, format!("step limit {} exceeded", self.limits.max_steps))
                    );
                }
                if self.shared.tracing {
                    self.windows
                        .push((t as u32, self.consumed[t], self.consumed[t] + take));
                }
                self.consumed[t] += take;
                self.steps += take;
                budget -= take;
                self.settle_done(t);
                continue;
            }
            match self.pending[t].take().expect("ensure_action holds") {
                JobOutcome::Sync(inst) => self.exec_sync(t, inst, &mut budget)?,
                JobOutcome::Error(message) => return Err(MachineError { thread: t, message }),
                JobOutcome::Done(_) => unreachable!("settled when its step was consumed"),
                JobOutcome::Pause => unreachable!("cleared by ensure_action"),
            }
        }
        Ok(())
    }

    /// Executes one synchronization instruction with the sequential
    /// machine's exact semantics, error messages, and step accounting.
    fn exec_sync(&mut self, t: usize, inst: Inst, budget: &mut u64) -> Result<(), MachineError> {
        let shared = self.shared.clone();
        self.parked[t].as_mut().unwrap().0.frame_mut().pc += 1;
        match inst {
            Inst::Spawn {
                func,
                nargs,
                handle,
            } => {
                let mut args = Vec::with_capacity(nargs);
                for _ in 0..nargs {
                    let slot = self.parked[t]
                        .as_mut()
                        .unwrap()
                        .0
                        .pop()
                        .map_err(|m| self.err(t, m))?;
                    args.push(slot);
                }
                args.reverse();
                let frame = exec::new_frame(&shared.program, &shared.code, func, args);
                let tid = self.status.len();
                if tid > u16::MAX as usize {
                    return Err(self.err(t, "too many threads"));
                }
                self.parked[t].as_mut().unwrap().0.frame_mut().slots[handle.index()] =
                    (Value::I64(tid as i64), Taint::Const);
                let tid = self.spawn_thread(ThreadCtx::new(frame));
                // The child's first free run can start immediately:
                // everything it may read was written before this spawn
                // was replayed, hence already materialized.
                self.enqueue(tid);
            }
            Inst::Join => {
                let ctx = &mut self.parked[t].as_mut().unwrap().0;
                let (v, _) = ctx.pop().map_err(|m| self.err(t, m))?;
                let target = v.as_i64("join handle").map_err(|m| self.err(t, m))? as usize;
                if target >= self.status.len() {
                    return Err(self.err(t, format!("join of unknown thread {target}")));
                }
                if self.status[target] != Status::Done {
                    // Retry: restore the handle and re-execute this Join
                    // when the target finishes (one step now, one then —
                    // same cost as the sequential machine).
                    let ctx = &mut self.parked[t].as_mut().unwrap().0;
                    ctx.push((v, Taint::Const));
                    ctx.frame_mut().pc -= 1;
                    self.status[t] = Status::Join(target);
                    self.pending[t] = Some(JobOutcome::Sync(Inst::Join));
                }
            }
            Inst::Barrier { bar } => {
                if bar >= self.barriers.len() {
                    return Err(self.err(t, format!("unknown barrier {bar}")));
                }
                self.barriers[bar].waiting += 1;
                if self.barriers[bar].waiting >= self.barriers[bar].participants {
                    self.barriers[bar].waiting = 0;
                    // Release everyone; all arrivals have been replayed,
                    // so the released threads' next free runs see every
                    // pre-barrier write — dispatch them eagerly.
                    for th in 0..self.status.len() {
                        if self.status[th] == Status::Barrier(bar) {
                            self.status[th] = Status::Runnable;
                            self.enqueue(th);
                        }
                    }
                } else {
                    self.status[t] = Status::Barrier(bar);
                }
            }
            Inst::Lock { m } => {
                if self.mutexes[m].is_none() {
                    self.mutexes[m] = Some(t);
                } else if self.mutexes[m] == Some(t) {
                    return Err(self.err(t, format!("relock of mutex {m}")));
                } else {
                    let ctx = &mut self.parked[t].as_mut().unwrap().0;
                    ctx.frame_mut().pc -= 1;
                    self.status[t] = Status::Lock(m);
                    self.pending[t] = Some(JobOutcome::Sync(Inst::Lock { m }));
                }
            }
            Inst::Unlock { m } => {
                if self.mutexes[m] != Some(t) {
                    return Err(self.err(t, format!("unlock of mutex {m} not held")));
                }
                self.mutexes[m] = None;
            }
            Inst::Output { arr } => {
                if shared.tracing {
                    for taint in shared.stripes.snapshot_taints(arr.index()) {
                        if let Taint::Node(r) = taint {
                            self.output_marks.push(r);
                        }
                    }
                }
            }
            other => unreachable!("not a synchronization instruction: {other:?}"),
        }
        // The synchronization instruction itself is one step.
        self.parked[t].as_mut().unwrap().1.clock += 1;
        self.consumed[t] += 1;
        self.steps += 1;
        *budget -= 1;
        if self.steps > self.limits.max_steps {
            return Err(self.err(t, format!("step limit {} exceeded", self.limits.max_steps)));
        }
        Ok(())
    }

    /// Stops speculation and recovers every in-flight context.
    fn shutdown(&mut self) {
        self.shared.abort.store(true, Ordering::Relaxed);
        self.queue.clear();
        while self.inflight > 0 {
            match self.rx.recv() {
                Ok(done) => {
                    self.inflight -= 1;
                    let t = done.tid;
                    self.parked[t] = Some((done.ctx, done.seg));
                }
                Err(_) => break,
            }
        }
    }
}

/// What the parallel run hands back to [`crate::run()`].
pub(crate) struct ParOutcome {
    pub arrays: Vec<Vec<Value>>,
    pub return_value: Option<Value>,
    pub steps: u64,
    pub ddg: Option<Ddg>,
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn run_parallel(
    program: &Program,
    code: &CompiledProgram,
    globals: Vec<Vec<Value>>,
    barrier_participants: &[usize],
    tracing: bool,
    iterator_ops: HashSet<u32>,
    limits: Limits,
    entry_args: Vec<Value>,
    workers: usize,
) -> Result<ParOutcome, MachineError> {
    assert_eq!(
        barrier_participants.len(),
        program.n_barriers,
        "barrier participant counts must match program barriers"
    );
    let obs_on = obs::enabled();
    let shared = Arc::new(SharedCtx {
        program: program.clone(),
        code: code.clone(),
        stripes: StripedMemory::new(globals),
        iterator_ops,
        tracing,
        obs_on,
        abort: AtomicBool::new(false),
        deadline: limits.deadline,
    });
    let (tx, rx) = std::sync::mpsc::channel();
    let mut c = Coordinator {
        shared,
        limits,
        workers: workers.max(2),
        status: Vec::new(),
        parked: Vec::new(),
        pending: Vec::new(),
        consumed: Vec::new(),
        mutexes: vec![None; program.n_mutexes],
        barriers: barrier_participants
            .iter()
            .map(|&p| BarrierState {
                participants: p,
                waiting: 0,
            })
            .collect(),
        steps: 0,
        slices: 0,
        entry_return: None,
        inflight: 0,
        queue: VecDeque::new(),
        queued: Vec::new(),
        tx,
        rx,
        windows: Vec::new(),
        output_marks: Vec::new(),
        obs_on,
    };
    let entry_frame = exec::new_frame(
        &c.shared.program,
        &c.shared.code,
        c.shared.code.entry,
        entry_args.into_iter().map(|v| (v, Taint::Input)).collect(),
    );
    c.spawn_thread(ThreadCtx::new(entry_frame));

    let outcome = c.run();
    c.shutdown();

    let segs: Vec<Segment> = c
        .parked
        .iter_mut()
        .map(|p| p.take().expect("shutdown recovered all segments").1)
        .collect();
    let stats = segs.iter().fold(SegStats::default(), |acc, s| SegStats {
        shadow_reads: acc.shadow_reads + s.stats.shadow_reads,
        shadow_writes: acc.shadow_writes + s.stats.shadow_writes,
        stripe_locks: acc.stripe_locks + s.stats.stripe_locks,
        stripe_contended: acc.stripe_contended + s.stats.stripe_contended,
    });

    let (ddg, merge_ms) = match (&outcome, tracing) {
        (Ok(()), true) => {
            let t0 = Instant::now();
            let g = merge(
                &segs,
                &c.windows,
                &c.consumed,
                &c.output_marks,
                program.loop_count as usize,
            );
            (Some(g), t0.elapsed().as_millis() as u64)
        }
        _ => (None, 0),
    };

    if obs_on {
        obs::counter("trace.steps").add(c.steps);
        obs::counter("trace.slices").add(c.slices);
        obs::counter("trace.shadow_reads").add(stats.shadow_reads);
        obs::counter("trace.shadow_writes").add(stats.shadow_writes);
        obs::counter("trace.threads").add(c.status.len() as u64);
        obs::counter("trace.segments").add(segs.len() as u64);
        obs::counter("trace.stripe_locks").add(stats.stripe_locks);
        obs::counter("trace.stripe_contention").add(stats.stripe_contended);
        if tracing {
            obs::counter("trace.merge_ms").add(merge_ms);
            let nodes = match &ddg {
                Some(g) => g.len() as u64,
                // Aborted run: report what the workers traced.
                None => segs.iter().map(|s| s.nodes.len() as u64).sum(),
            };
            obs::counter("trace.ddg_nodes").add(nodes);
        }
    }

    outcome?;

    // All jobs have returned their Arc clones; a send can race the
    // closure drop by a few instructions, hence the yield loop.
    let mut shared = c.shared;
    let shared = loop {
        match Arc::try_unwrap(shared) {
            Ok(s) => break s,
            Err(again) => {
                shared = again;
                std::thread::yield_now();
            }
        }
    };

    Ok(ParOutcome {
        arrays: shared.stripes.into_values(),
        return_value: c.entry_return,
        steps: c.steps,
        ddg,
    })
}

/// Deterministic ordered merge: replays the consumption windows to
/// assign global node ids, label ids, and loop instance numbers in the
/// sequential machine's exact order, then builds the CSR adjacency
/// directly.
fn merge(
    segs: &[Segment],
    windows: &[(u32, u64, u64)],
    consumed: &[u64],
    output_marks: &[SegRef],
    loop_count: usize,
) -> Ddg {
    let n_segs = segs.len();
    let mut node_cur = vec![0usize; n_segs];
    let mut loop_cur = vec![0usize; n_segs];
    let mut global_of: Vec<Vec<u32>> = segs.iter().map(|s| vec![u32::MAX; s.nodes.len()]).collect();
    let mut order: Vec<(u32, u32)> = Vec::new();
    let mut loop_counts = vec![0u32; loop_count];
    let mut inst_maps: Vec<HashMap<(u32, u32), u32>> = vec![HashMap::new(); n_segs];

    for &(tid, _from, to) in windows {
        let s = &segs[tid as usize];
        let lc = &mut loop_cur[tid as usize];
        while *lc < s.loop_events.len() && s.loop_events[*lc].clock < to {
            let ev = &s.loop_events[*lc];
            let g = loop_counts[ev.loop_id as usize];
            loop_counts[ev.loop_id as usize] += 1;
            inst_maps[tid as usize].insert((ev.loop_id, ev.local_inst), g);
            *lc += 1;
        }
        let nc = &mut node_cur[tid as usize];
        while *nc < s.nodes.len() && s.nodes[*nc].clock < to {
            global_of[tid as usize][*nc] = order.len() as u32;
            order.push((tid, *nc as u32));
            *nc += 1;
        }
    }

    // Labels intern in first-use order over the global node order —
    // the same lazy order the sequential machine produces.
    let mut labels: Vec<String> = Vec::new();
    let mut label_assoc: Vec<bool> = Vec::new();
    let mut label_index: HashMap<&'static str, LabelId> = HashMap::new();
    let mut intern = |s: &'static str, assoc: bool| -> LabelId {
        *label_index.entry(s).or_insert_with(|| {
            let id = LabelId(labels.len() as u32);
            labels.push(s.to_string());
            label_assoc.push(assoc);
            id
        })
    };

    let n = order.len();
    let mut nodes: Vec<Node> = Vec::with_capacity(n);
    for &(tid, idx) in &order {
        let sn = &segs[tid as usize].nodes[idx as usize];
        let label = match sn.op {
            TraceOp::Bin(op) => intern(op.label(), op.is_associative()),
            TraceOp::Un(op) => intern(op.label(), false),
            TraceOp::Intr(op) => intern(op.label(), false),
        };
        let scope: Box<[ScopeEntry]> = sn
            .scope
            .iter()
            .map(|e| ScopeEntry {
                loop_id: e.loop_id,
                instance: inst_maps[tid as usize][&(e.loop_id, e.instance)],
                iter: e.iter,
            })
            .collect();
        nodes.push(Node {
            label,
            static_op: sn.static_op,
            file: sn.pos.file,
            line: sn.pos.line,
            col: sn.pos.col,
            thread: tid as u16,
            scope,
            flags: sn.flags,
        });
    }

    // Marks: apply consumed events; targets that never got a global id
    // belong to dropped speculative tails (racy programs only).
    for (sidx, s) in segs.iter().enumerate() {
        for ev in &s.marks {
            if ev.clock >= consumed[sidx] {
                break;
            }
            let g = global_of[ev.target.tid()][ev.target.idx()];
            if g != u32::MAX {
                nodes[g as usize].flags.insert(ev.flag);
            }
        }
    }
    for &r in output_marks {
        let g = global_of[r.tid()][r.idx()];
        if g != u32::MAX {
            nodes[g as usize].flags.insert(NodeFlags::WRITES_OUTPUT);
        }
    }

    // Predecessor CSR straight from the operand refs: replay order
    // guarantees def-id < use-id, so sort+dedup per node is all the
    // normalization `DdgBuilder::finish` would have done.
    let mut pred_offsets: Vec<u32> = Vec::with_capacity(n + 1);
    pred_offsets.push(0);
    let mut pred_arcs: Vec<NodeId> = Vec::new();
    let mut succ_counts = vec![0u32; n];
    let mut scratch: Vec<u32> = Vec::new();
    for (gid, &(tid, idx)) in order.iter().enumerate() {
        let sn = &segs[tid as usize].nodes[idx as usize];
        scratch.clear();
        for &r in &sn.ops[..sn.nops as usize] {
            let g = global_of[r.tid()][r.idx()];
            if g != u32::MAX {
                debug_assert!((g as usize) < gid, "def must precede use in replay order");
                scratch.push(g);
            }
        }
        scratch.sort_unstable();
        scratch.dedup();
        for &g in &scratch {
            pred_arcs.push(NodeId(g));
            succ_counts[g as usize] += 1;
        }
        pred_offsets.push(pred_arcs.len() as u32);
    }

    // Successor CSR by counting sort: filling in ascending use order
    // keeps every list sorted, and deduped pred lists make each (def,
    // use) pair unique.
    let mut succ_offsets = vec![0u32; n + 1];
    for i in 0..n {
        succ_offsets[i + 1] = succ_offsets[i] + succ_counts[i];
    }
    let mut cursor: Vec<u32> = succ_offsets[..n].to_vec();
    let mut succ_arcs = vec![NodeId(0); pred_arcs.len()];
    for v in 0..n {
        let window = pred_offsets[v] as usize..pred_offsets[v + 1] as usize;
        for &u in &pred_arcs[window] {
            succ_arcs[cursor[u.index()] as usize] = NodeId(v as u32);
            cursor[u.index()] += 1;
        }
    }

    Ddg::from_csr_parts(
        labels,
        label_assoc,
        nodes,
        succ_offsets,
        succ_arcs,
        pred_offsets,
        pred_arcs,
    )
}
