//! The resident daemon: accept loop, admission control, worker pool,
//! watchdog.
//!
//! Concurrency layout (std-only, sized for small machines):
//!
//! - one **accept thread** polls a nonblocking unix listener;
//! - one **reader thread per connection** parses request lines and
//!   answers control ops and rejections in line;
//! - a pool of **serve workers** drains the admission queue and runs
//!   analyses through a shared [`Engine`] (one work-stealing match
//!   pool and one bounded LRU match cache across all requests);
//! - one **watchdog thread** that keeps the pool whole: it requeues
//!   work stranded by a dead worker, respawns the worker, supersedes
//!   workers stalled past `stall_timeout_ms`, and heals the engine's
//!   match pool.
//!
//! Admission is a single bounded queue guarded by one mutex/condvar
//! pair; the same lock covers the drain protocol, so a request can
//! never slip into the queue after the workers have decided to exit.
//! Per-connection backpressure is a counting window: a reader that has
//! `conn_window` requests in flight blocks before parsing more, which
//! pushes back on the client through the kernel socket buffer.
//!
//! Self-healing invariant: every admitted job is answered exactly
//! once. A worker parks its job in its slot before processing, so if
//! the thread dies the watchdog finds the orphan, pushes it back to
//! the queue front, and respawns the slot — the job is answered by the
//! replacement. A *stalled* worker (heartbeat frozen past the timeout)
//! is superseded instead: a fresh worker takes the slot for new work
//! while the old thread keeps its job and still answers it when it
//! finally wakes, then notices its slot was taken and exits.
//! Lock order is workers → busy → queue; workers never take the
//! workers lock, so the watchdog cannot deadlock against them.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use obs::Counter;
use repro_engine::{AnalysisRequest, Engine, EngineConfig, EngineError, EngineMetrics};
use repro_ir::ContentHasher;
use repro_query::{LoadReport, QueryConfig, QueryDb};
use serde::Serialize;

use crate::protocol::{
    error_line, parse_request, read_bounded_line, status, AnalyzeRequest, LineRead, Request,
    ResponseLine,
};
use crate::quota::{QuotaConfig, TenantQuotas};

#[cfg(feature = "fault-inject")]
use crate::chaos::{ChaosState, JobChaos};

#[cfg(feature = "fault-inject")]
type ChaosHandle = Option<Arc<ChaosState>>;
#[cfg(not(feature = "fault-inject"))]
type ChaosHandle = ();

/// Daemon knobs. Defaults are sized for a small CI box: two serve
/// workers over a two-thread match pool, a 64-deep admission queue,
/// and quotas off.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    pub socket: PathBuf,
    /// Serve workers (concurrent analyses). 0 means 2.
    pub workers: usize,
    /// Match-pool threads inside the shared engine. 0 means 2.
    pub analysis_threads: usize,
    /// Admission queue bound; a full queue rejects with `overloaded`.
    pub admission_capacity: usize,
    /// Per-connection in-flight window (backpressure), minimum 1.
    pub conn_window: usize,
    pub quota: QuotaConfig,
    /// Shared match-cache entry bound (0 = unbounded).
    pub cache_capacity: usize,
    /// Shared match-cache byte bound (0 = unbounded); eviction honors
    /// whichever of the entry and byte caps trips first.
    pub cache_capacity_bytes: usize,
    /// Trace-ingestion workers per analysis (DESIGN.md §17). 1 (the
    /// default) runs the sequential machine; ≥ 2 shards the tracer,
    /// byte-identical output either way.
    pub trace_workers: usize,
    /// Default per-sub-DDG match budget when the request names none.
    pub default_budget_ms: u64,
    /// Default whole-request deadline when the request names none.
    pub default_deadline_ms: Option<u64>,
    /// Request lines longer than this are refused with
    /// `protocol_error` and the connection dropped (a slow-loris or
    /// runaway client must not buffer without bound).
    pub max_line_bytes: usize,
    /// Watchdog sweep interval.
    pub watchdog_interval_ms: u64,
    /// A worker busy on one request longer than this is presumed
    /// stalled and superseded (its answer, if it ever comes, still
    /// goes out).
    pub stall_timeout_ms: u64,
    /// How long the startup probe waits for a predecessor daemon to
    /// answer a ping before declaring its socket stale.
    pub probe_timeout_ms: u64,
    /// SLO objective and window geometry (good/bad accounting surfaces
    /// in `stats` and the metrics stream).
    pub slo: obs::SloConfig,
    /// Where automatic flight-recorder dumps land (worker death, panic,
    /// stale-socket takeover). `None` derives `<socket>.blackbox.json`.
    pub blackbox_path: Option<PathBuf>,
    /// Directory for the persistent query cache (DESIGN.md §18):
    /// segments are loaded at startup — so a restarted daemon answers
    /// repeated requests as query hits — and rewritten on clean
    /// shutdown. `None` (the default) keeps the cache memory-only.
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            socket: PathBuf::from("repro-serve.sock"),
            workers: 2,
            analysis_threads: 2,
            admission_capacity: 64,
            conn_window: 8,
            quota: QuotaConfig::default(),
            cache_capacity: repro_engine::cache::DEFAULT_CACHE_CAPACITY,
            cache_capacity_bytes: 0,
            trace_workers: 1,
            default_budget_ms: 60_000,
            default_deadline_ms: Some(10_000),
            max_line_bytes: 256 * 1024,
            watchdog_interval_ms: 100,
            stall_timeout_ms: 10_000,
            probe_timeout_ms: 500,
            slo: obs::SloConfig::default(),
            blackbox_path: None,
            cache_dir: None,
        }
    }
}

/// Serve-side counter snapshot. The same counts are registered in the
/// obs metrics registry under `serve.*`.
#[derive(Clone, Copy, Debug, Default, serde::Serialize)]
pub struct ServeMetrics {
    pub connections: u64,
    pub requests: u64,
    pub ok: u64,
    pub degraded: u64,
    pub overloaded: u64,
    pub quota: u64,
    pub bad_requests: u64,
    pub trace_errors: u64,
    pub worker_lost: u64,
    pub internal_errors: u64,
    /// Requests answered `overloaded` because their queue wait had
    /// already consumed the deadline (subset of `overloaded`).
    pub shed: u64,
    /// Serve workers respawned by the watchdog (dead or stalled).
    pub workers_respawned: u64,
    /// Serve workers superseded for stalling (subset of respawned).
    pub workers_stalled: u64,
    /// Request lines refused for exceeding `max_line_bytes`.
    pub oversized_lines: u64,
    /// Stale predecessor sockets taken over at startup.
    pub stale_takeovers: u64,
    /// Analyze requests answered by another in-flight request's
    /// computation (single-flight coalescing).
    pub coalesced: u64,
}

/// One serve counter: a per-server count plus the process-global
/// `serve.*` registry counter (the registry is shared, so a test
/// process running several servers still gets exact per-server
/// numbers from the local half).
struct Stat {
    local: std::sync::atomic::AtomicU64,
    global: Counter,
}

impl Stat {
    fn new(name: &str) -> Stat {
        Stat {
            local: std::sync::atomic::AtomicU64::new(0),
            global: obs::counter(name),
        }
    }

    fn inc(&self) {
        self.local.fetch_add(1, Ordering::Relaxed);
        self.global.inc();
    }

    fn get(&self) -> u64 {
        self.local.load(Ordering::Relaxed)
    }
}

struct Counters {
    connections: Stat,
    requests: Stat,
    ok: Stat,
    degraded: Stat,
    overloaded: Stat,
    quota: Stat,
    bad_requests: Stat,
    trace_errors: Stat,
    worker_lost: Stat,
    internal_errors: Stat,
    shed: Stat,
    workers_respawned: Stat,
    workers_stalled: Stat,
    oversized_lines: Stat,
    stale_takeovers: Stat,
    coalesced: Stat,
}

impl Counters {
    fn new() -> Counters {
        Counters {
            connections: Stat::new("serve.connections"),
            requests: Stat::new("serve.requests"),
            ok: Stat::new("serve.ok"),
            degraded: Stat::new("serve.degraded"),
            overloaded: Stat::new("serve.overloaded"),
            quota: Stat::new("serve.quota"),
            bad_requests: Stat::new("serve.bad_requests"),
            trace_errors: Stat::new("serve.trace_errors"),
            worker_lost: Stat::new("serve.worker_lost"),
            internal_errors: Stat::new("serve.internal_errors"),
            shed: Stat::new("serve.shed"),
            workers_respawned: Stat::new("serve.workers_respawned"),
            workers_stalled: Stat::new("serve.workers_stalled"),
            oversized_lines: Stat::new("serve.oversized_lines"),
            stale_takeovers: Stat::new("serve.stale_takeovers"),
            coalesced: Stat::new("serve.coalesced"),
        }
    }

    fn snapshot(&self) -> ServeMetrics {
        ServeMetrics {
            connections: self.connections.get(),
            requests: self.requests.get(),
            ok: self.ok.get(),
            degraded: self.degraded.get(),
            overloaded: self.overloaded.get(),
            quota: self.quota.get(),
            bad_requests: self.bad_requests.get(),
            trace_errors: self.trace_errors.get(),
            worker_lost: self.worker_lost.get(),
            internal_errors: self.internal_errors.get(),
            shed: self.shed.get(),
            workers_respawned: self.workers_respawned.get(),
            workers_stalled: self.workers_stalled.get(),
            oversized_lines: self.oversized_lines.get(),
            stale_takeovers: self.stale_takeovers.get(),
            coalesced: self.coalesced.get(),
        }
    }
}

/// One admitted analyze request waiting for (or on) a worker. `Clone`
/// because a worker parks a copy in its slot while processing, so the
/// watchdog can recover the job if the worker dies.
#[derive(Clone)]
struct Job {
    req: Arc<AnalyzeRequest>,
    conn: Arc<Conn>,
    enqueued: Instant,
}

struct QueueState {
    jobs: VecDeque<Job>,
    /// Jobs currently on a worker.
    active: usize,
    /// Set once; after this no job enters the queue, and the queue
    /// going idle (empty + no active) is final.
    draining: bool,
}

/// What one worker incarnation is doing right now. The parked `job` is
/// the self-healing handle: it outlives the thread.
#[derive(Default)]
struct BusyState {
    job: Option<Job>,
    since: Option<Instant>,
}

/// State shared between one worker incarnation and the watchdog. A
/// fresh `WorkerShared` is installed per incarnation, so `exit` only
/// ever signals the thread it was born with.
struct WorkerShared {
    /// Set by the watchdog to supersede a stalled worker: finish the
    /// current job, answer it, then exit instead of looping.
    exit: AtomicBool,
    busy: Mutex<BusyState>,
    /// Process-unique incarnation number, stamped into flight-recorder
    /// pickup events so a dump distinguishes the worker that died on a
    /// request from the respawn that answered its retry.
    incarnation: u64,
}

impl WorkerShared {
    fn new(incarnation: u64) -> WorkerShared {
        WorkerShared {
            exit: AtomicBool::new(false),
            busy: Mutex::new(BusyState::default()),
            incarnation,
        }
    }
}

/// One position in the serve-worker pool: the incarnation currently
/// holding it, plus its join handle (`None` only after a drain-time
/// death with nothing left to do).
struct WorkerSlot {
    shared: Arc<WorkerShared>,
    handle: Option<JoinHandle<()>>,
}

/// Per-connection write half and backpressure window.
struct Conn {
    stream: UnixStream,
    write: Mutex<()>,
    inflight: Mutex<usize>,
    inflight_cv: Condvar,
    #[cfg(feature = "fault-inject")]
    chaos: ChaosHandle,
}

impl Conn {
    fn send(&self, line: &str) {
        // A vanished client is not a daemon error; drop the response.
        let _ = self.send_ok(line);
    }

    /// Like [`Conn::send`] but reports whether the write landed — the
    /// metrics streamer uses this to stop when its subscriber is gone.
    fn send_ok(&self, line: &str) -> bool {
        let _guard = self.write.lock().unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "fault-inject")]
        if let Some(chaos) = &self.chaos {
            if let Some((chunk, delay)) = chaos.torn_write() {
                // Torn write: the full line still goes out, but in
                // tiny flushed pieces with sleeps between, exercising
                // the client's frame reassembly.
                let mut buf = Vec::with_capacity(line.len() + 1);
                buf.extend_from_slice(line.as_bytes());
                buf.push(b'\n');
                let mut s = &self.stream;
                for piece in buf.chunks(chunk) {
                    if s.write_all(piece).and_then(|_| s.flush()).is_err() {
                        return false;
                    }
                    std::thread::sleep(delay);
                }
                return true;
            }
        }
        let mut s = &self.stream;
        s.write_all(line.as_bytes())
            .and_then(|_| s.write_all(b"\n"))
            .and_then(|_| s.flush())
            .is_ok()
    }

    fn acquire_window(&self, limit: usize) {
        let mut n = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        while *n >= limit {
            n = self.inflight_cv.wait(n).unwrap_or_else(|e| e.into_inner());
        }
        *n += 1;
    }

    fn release_window(&self) {
        let mut n = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        *n = n.saturating_sub(1);
        self.inflight_cv.notify_all();
    }
}

/// One analyze computation in flight, for single-flight coalescing.
/// `leader` is the request `Arc` of the job actually computing; any
/// *identical* request picked up meanwhile parks itself in `followers`
/// and is answered from the leader's outcome. The `Arc` identity also
/// resolves the recovered-leader case: a watchdog-requeued leader job
/// is ptr-equal to `leader`, so its replacement worker computes
/// instead of waiting on a thread that no longer exists.
struct Inflight {
    leader: Arc<AnalyzeRequest>,
    followers: Vec<Job>,
}

struct Shared {
    config: ServeConfig,
    engine: Engine,
    /// The engine's query DB (shared handle, for persistence + stats).
    db: Arc<QueryDb>,
    /// What loading `cache_dir` found at startup, surfaced in `stats`.
    cache_load: Option<LoadReport>,
    /// Single-flight table: canonical analyze fingerprint → in-flight
    /// computation.
    inflight: Mutex<HashMap<u128, Inflight>>,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    quotas: TenantQuotas,
    counters: Counters,
    stop: AtomicBool,
    conns: Mutex<Vec<Arc<Conn>>>,
    /// Compiled starbench programs, keyed `"name:version"`.
    programs: Mutex<HashMap<String, repro_ir::Program>>,
    started: Instant,
    /// The worker pool's slots (watchdog-managed).
    workers: Mutex<Vec<WorkerSlot>>,
    /// Handles of superseded workers, joined at [`Server::join`].
    retired: Mutex<Vec<JoinHandle<()>>>,
    /// Metric-stream threads spawned by `subscribe`, joined at
    /// [`Server::join`].
    streamers: Mutex<Vec<JoinHandle<()>>>,
    /// Good/bad SLO accounting for answered requests.
    slo: obs::SloTracker,
    /// Resolved target for automatic flight-recorder dumps.
    blackbox_path: PathBuf,
    /// Hands out worker incarnation numbers (process-unique).
    next_incarnation: std::sync::atomic::AtomicU64,
    #[cfg(feature = "fault-inject")]
    chaos: ChaosHandle,
}

/// Writes the flight recorder to the configured blackbox path. Called
/// on worker death, worker panic, stall supersede, and stale-socket
/// takeover; failures are counted, never fatal — losing a dump must
/// not take down the daemon that is busy surviving a fault.
fn auto_blackbox(shared: &Shared, reason: &str) {
    obs::flight::event("blackbox_dump", "", format!("reason={reason}"));
    if obs::flight::write_blackbox(&shared.blackbox_path, reason).is_ok() {
        obs::counter("serve.blackbox_dumps").inc();
    } else {
        obs::counter("serve.blackbox_dump_failures").inc();
    }
}

/// A running daemon. [`Server::start`] binds and spawns the threads;
/// shutdown arrives either over the wire (`{"op":"shutdown"}`) or via
/// [`Server::shutdown`], and [`Server::join`] blocks until the drain
/// completes and every thread has exited.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl Server {
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        // Under `fault-inject` the no-chaos handle is `None`; without
        // the feature it degenerates to `()` — clippy's unit-arg lint
        // fires on the latter cfg only.
        #[allow(clippy::unit_arg, clippy::default_constructed_unit_structs)]
        Server::start_inner(config, ChaosHandle::default())
    }

    /// Starts a daemon with a scripted chaos plan wired into its
    /// workers and sockets (test/benchmark harness only).
    #[cfg(feature = "fault-inject")]
    pub fn start_with_chaos(
        config: ServeConfig,
        plan: crate::chaos::ChaosPlan,
    ) -> std::io::Result<(Server, Arc<ChaosState>)> {
        let state = Arc::new(ChaosState::new(plan));
        let server = Server::start_inner(config, Some(Arc::clone(&state)))?;
        Ok((server, state))
    }

    fn start_inner(config: ServeConfig, chaos: ChaosHandle) -> std::io::Result<Server> {
        #[cfg(not(feature = "fault-inject"))]
        let () = chaos;
        let socket = config.socket.clone();
        let mut took_over_stale = false;
        if socket.exists() {
            // Probe the predecessor. Three outcomes: it answers a ping
            // (live daemon — refuse to start), it accepts the connect
            // but never answers (hung daemon — its socket is as dead
            // as a crashed one), or the connect fails (crashed daemon
            // left a stale file). The latter two are taken over.
            match UnixStream::connect(&socket) {
                Ok(probe) => {
                    let timeout = Duration::from_millis(config.probe_timeout_ms.max(1));
                    let _ = probe.set_read_timeout(Some(timeout));
                    let _ = probe.set_write_timeout(Some(timeout));
                    let mut alive = false;
                    let mut w = &probe;
                    if w.write_all(b"{\"op\":\"ping\"}\n")
                        .and_then(|_| w.flush())
                        .is_ok()
                    {
                        let mut line = String::new();
                        let mut reader = BufReader::new(&probe);
                        alive = reader.read_line(&mut line).is_ok_and(|n| n > 0);
                    }
                    if alive {
                        return Err(std::io::Error::new(
                            ErrorKind::AddrInUse,
                            format!("{} already has a live daemon", socket.display()),
                        ));
                    }
                    std::fs::remove_file(&socket)?;
                    took_over_stale = true;
                }
                Err(_) => {
                    std::fs::remove_file(&socket)?;
                    took_over_stale = true;
                }
            }
        }
        let listener = UnixListener::bind(&socket)?;
        listener.set_nonblocking(true)?;

        // The daemon always runs the full query DB: a resident process
        // is exactly the workload the trace/sub-DDG/find stages pay off
        // for (repeated and lightly-edited requests). Its match stage
        // keeps the configured caps.
        let db = Arc::new(QueryDb::full(QueryConfig {
            match_enabled: true,
            match_capacity: config.cache_capacity,
            match_capacity_bytes: config.cache_capacity_bytes,
            ..QueryConfig::default()
        }));
        let cache_load = config.cache_dir.as_deref().map(|dir| {
            let report = repro_query::load_dir(&db, dir);
            obs::counter("serve.cache_records_loaded").add(report.records_loaded as u64);
            obs::counter("serve.cache_corrupt_records").add(report.corrupt_records as u64);
            obs::counter("serve.cache_version_skips").add(report.version_mismatches as u64);
            obs::flight::event(
                "cache_load",
                "",
                format!(
                    "records={} corrupt={} version_skips={}",
                    report.records_loaded, report.corrupt_records, report.version_mismatches
                ),
            );
            report
        });
        let engine = Engine::with_query(
            EngineConfig {
                workers: if config.analysis_threads == 0 {
                    2
                } else {
                    config.analysis_threads
                },
                max_concurrent_requests: 1,
                use_cache: true,
                cache_capacity: config.cache_capacity,
                cache_capacity_bytes: config.cache_capacity_bytes,
                ..EngineConfig::default()
            },
            Arc::clone(&db),
        );
        let worker_count = if config.workers == 0 {
            2
        } else {
            config.workers
        };
        let blackbox_path = config
            .blackbox_path
            .clone()
            .unwrap_or_else(|| PathBuf::from(format!("{}.blackbox.json", socket.display())));
        let shared = Arc::new(Shared {
            engine,
            db,
            cache_load,
            inflight: Mutex::new(HashMap::new()),
            quotas: TenantQuotas::new(config.quota),
            counters: Counters::new(),
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                active: 0,
                draining: false,
            }),
            queue_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            programs: Mutex::new(HashMap::new()),
            started: Instant::now(),
            workers: Mutex::new(Vec::new()),
            retired: Mutex::new(Vec::new()),
            streamers: Mutex::new(Vec::new()),
            slo: obs::SloTracker::new(config.slo),
            blackbox_path,
            next_incarnation: std::sync::atomic::AtomicU64::new(0),
            #[cfg(feature = "fault-inject")]
            chaos,
            config,
        });
        if took_over_stale {
            shared.counters.stale_takeovers.inc();
            obs::instant("serve.stale_takeover");
            obs::flight::event(
                "takeover",
                "",
                format!("socket={}", shared.config.socket.display()),
            );
            auto_blackbox(&shared, "stale_takeover");
        }

        {
            let mut slots = shared.workers.lock().unwrap_or_else(|e| e.into_inner());
            for i in 0..worker_count {
                let ws = Arc::new(WorkerShared::new(next_incarnation(&shared)));
                let handle = spawn_worker(&shared, Arc::clone(&ws), i);
                slots.push(WorkerSlot {
                    shared: ws,
                    handle: Some(handle),
                });
            }
        }
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(listener, &shared))
                .expect("spawn accept loop")
        };
        let watchdog = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-watchdog".into())
                .spawn(move || watchdog_loop(&shared))
                .expect("spawn watchdog")
        };
        Ok(Server {
            shared,
            accept: Some(accept),
            watchdog: Some(watchdog),
        })
    }

    pub fn socket(&self) -> &Path {
        &self.shared.config.socket
    }

    pub fn metrics(&self) -> ServeMetrics {
        self.shared.counters.snapshot()
    }

    pub fn engine_metrics(&self) -> EngineMetrics {
        self.shared.engine.metrics()
    }

    /// Skews the per-tenant quota clock (chaos injection only).
    #[cfg(feature = "fault-inject")]
    pub fn set_quota_skew_ms(&self, ms: i64) {
        self.shared.quotas.set_skew_ms(ms);
        obs::instant("chaos.quota_skew");
    }

    /// Programmatic shutdown: drain in-flight work, then stop every
    /// thread. Equivalent to a wire `shutdown` minus the response.
    pub fn shutdown(&self) {
        begin_drain(&self.shared);
        wait_drained(&self.shared);
        stop_all(&self.shared);
    }

    /// Blocks until the daemon has fully stopped (after a wire or
    /// programmatic shutdown) and the socket file is gone.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.watchdog.take() {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut slots = self
                .shared
                .workers
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            slots.iter_mut().filter_map(|s| s.handle.take()).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        let retired: Vec<JoinHandle<()>> = {
            let mut r = self
                .shared
                .retired
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            r.drain(..).collect()
        };
        for h in retired {
            let _ = h.join();
        }
        let streamers: Vec<JoinHandle<()>> = {
            let mut s = self
                .shared
                .streamers
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            s.drain(..).collect()
        };
        for h in streamers {
            let _ = h.join();
        }
    }
}

fn next_incarnation(shared: &Shared) -> u64 {
    shared.next_incarnation.fetch_add(1, Ordering::Relaxed)
}

fn begin_drain(shared: &Shared) {
    let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
    q.draining = true;
    shared.queue_cv.notify_all();
}

fn wait_drained(shared: &Shared) {
    let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
    while q.active > 0 || !q.jobs.is_empty() {
        q = shared.queue_cv.wait(q).unwrap_or_else(|e| e.into_inner());
    }
}

/// Stops the accept loop, the watchdog, and every connection reader.
/// A clean stop is also when the persistent query cache is rewritten:
/// the drain has completed, so the stores are quiescent.
fn stop_all(shared: &Shared) {
    if let Some(dir) = shared.config.cache_dir.as_deref() {
        match repro_query::save_dir(&shared.db, dir) {
            Ok(saved) => obs::flight::event(
                "cache_save",
                "",
                format!("trace={} find={}", saved.trace_records, saved.find_records),
            ),
            // Persistence is an optimization; failing to write it must
            // never block a shutdown.
            Err(e) => {
                obs::counter("serve.cache_save_failures").inc();
                obs::flight::event("cache_save_failed", "", e.to_string());
            }
        }
    }
    shared.stop.store(true, Ordering::SeqCst);
    let conns = shared.conns.lock().unwrap_or_else(|e| e.into_inner());
    for conn in conns.iter() {
        // EOF the readers; pending writes still flush.
        let _ = conn.stream.shutdown(std::net::Shutdown::Read);
    }
}

fn spawn_worker(shared: &Arc<Shared>, ws: Arc<WorkerShared>, idx: usize) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("serve-worker-{idx}"))
        .spawn(move || worker_loop(&shared, &ws, idx))
        .expect("spawn serve worker")
}

/// The watchdog: sweeps the worker slots every `watchdog_interval_ms`,
/// recovering from dead workers (requeue orphan + respawn) and stalled
/// ones (supersede), and heals the engine's match pool. Runs until
/// [`stop_all`], i.e. through the drain, so workers killed mid-drain
/// still get their jobs requeued and finished.
fn watchdog_loop(shared: &Arc<Shared>) {
    let ticks = obs::counter("serve.watchdog_ticks");
    let interval = Duration::from_millis(shared.config.watchdog_interval_ms.max(10));
    let stall_timeout = Duration::from_millis(shared.config.stall_timeout_ms.max(1));
    while !shared.stop.load(Ordering::SeqCst) {
        std::thread::sleep(interval);
        ticks.inc();
        // Heal the engine's match pool first: a serve worker blocked
        // on an analysis needs the match workers alive to finish.
        shared.engine.heal();
        let mut slots = shared.workers.lock().unwrap_or_else(|e| e.into_inner());
        for idx in 0..slots.len() {
            let finished = slots[idx].handle.as_ref().is_none_or(|h| h.is_finished());
            if finished {
                heal_dead_slot(shared, &mut slots[idx], idx);
            } else {
                let stalled = {
                    let busy = slots[idx]
                        .shared
                        .busy
                        .lock()
                        .unwrap_or_else(|e| e.into_inner());
                    busy.since.is_some_and(|s| s.elapsed() >= stall_timeout)
                };
                if stalled {
                    supersede_stalled_slot(shared, &mut slots[idx], idx);
                }
            }
        }
    }
}

/// A worker thread died (or its slot was already empty). Recover its
/// parked job, if any, to the queue front, and respawn the slot unless
/// the daemon is draining with nothing left to do.
fn heal_dead_slot(shared: &Arc<Shared>, slot: &mut WorkerSlot, idx: usize) {
    let dead_incarnation = slot.shared.incarnation;
    let orphan = {
        let mut busy = slot.shared.busy.lock().unwrap_or_else(|e| e.into_inner());
        busy.since = None;
        busy.job.take()
    };
    let had_orphan = orphan.is_some();
    let orphan_id = orphan
        .as_ref()
        .map(|j| j.req.id.clone())
        .unwrap_or_default();
    let should_respawn = {
        let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(job) = orphan {
            // Front, not back: the orphan has already waited its turn.
            q.jobs.push_front(job);
            q.active -= 1;
        }
        let respawn = !q.draining || !q.jobs.is_empty();
        shared.queue_cv.notify_all();
        respawn
    };
    if let Some(h) = slot.handle.take() {
        let _ = h.join();
    }
    if should_respawn {
        // A worker exiting cleanly at drain time is not a death; only
        // count (and log) respawns that replace real capacity.
        shared.counters.workers_respawned.inc();
        obs::instant("serve.worker_respawn");
        obs::flight::event(
            "worker_dead",
            &orphan_id,
            format!("slot={idx} inc={dead_incarnation} requeued={had_orphan}"),
        );
        let ws = Arc::new(WorkerShared::new(next_incarnation(shared)));
        obs::flight::event(
            "worker_respawn",
            &orphan_id,
            format!("slot={idx} inc={}", ws.incarnation),
        );
        slot.shared = Arc::clone(&ws);
        slot.handle = Some(spawn_worker(shared, ws, idx));
        auto_blackbox(shared, "worker_death");
    } else if had_orphan {
        // Unreachable in practice (orphan ⇒ queue non-empty ⇒
        // respawn), kept for the invariant's sake.
        shared.queue_cv.notify_all();
    }
}

/// A worker has been busy on one job past the stall timeout. Supersede
/// it: signal the old incarnation to exit after (still) answering its
/// job, and install a fresh incarnation in the slot so the pool keeps
/// its capacity. Nothing is requeued — the job is answered exactly
/// once, by the stalled thread, whenever it wakes.
fn supersede_stalled_slot(shared: &Arc<Shared>, slot: &mut WorkerSlot, idx: usize) {
    slot.shared.exit.store(true, Ordering::SeqCst);
    shared.counters.workers_stalled.inc();
    shared.counters.workers_respawned.inc();
    obs::instant("serve.worker_superseded");
    let stalled_id = {
        let busy = slot.shared.busy.lock().unwrap_or_else(|e| e.into_inner());
        busy.job
            .as_ref()
            .map(|j| j.req.id.clone())
            .unwrap_or_default()
    };
    let old = slot.handle.take();
    let ws = Arc::new(WorkerShared::new(next_incarnation(shared)));
    obs::flight::event(
        "stall_supersede",
        &stalled_id,
        format!(
            "slot={idx} stalled_inc={} new_inc={}",
            slot.shared.incarnation, ws.incarnation
        ),
    );
    auto_blackbox(shared, "worker_stall");
    slot.shared = Arc::clone(&ws);
    slot.handle = Some(spawn_worker(shared, ws, idx));
    if let Some(h) = old {
        shared
            .retired
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(h);
    }
}

fn accept_loop(listener: UnixListener, shared: &Arc<Shared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.counters.connections.inc();
                let conn = Arc::new(Conn {
                    stream,
                    write: Mutex::new(()),
                    inflight: Mutex::new(0),
                    inflight_cv: Condvar::new(),
                    #[cfg(feature = "fault-inject")]
                    chaos: shared.chaos.clone(),
                });
                shared
                    .conns
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(Arc::clone(&conn));
                let shared = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || reader_loop(&shared, &conn));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
    let _ = std::fs::remove_file(&shared.config.socket);
}

fn reader_loop(shared: &Arc<Shared>, conn: &Arc<Conn>) {
    let Ok(read_half) = conn.stream.try_clone() else {
        return;
    };
    let _ = read_half.set_nonblocking(false);
    let mut reader = BufReader::new(read_half);
    let max_line = shared.config.max_line_bytes.max(1024);
    loop {
        let line = match read_bounded_line(&mut reader, max_line) {
            Ok(LineRead::Line(line)) => line,
            Ok(LineRead::Eof) | Err(_) => break,
            Ok(LineRead::TooLong) => {
                // An unbounded line is indistinguishable from an
                // attack on daemon memory: answer with a labeled
                // error and drop the connection rather than keep
                // buffering.
                shared.counters.oversized_lines.inc();
                conn.send(&error_line(
                    "",
                    status::PROTOCOL_ERROR,
                    &format!("request line exceeds {max_line} bytes; closing connection"),
                ));
                // The registry in `shared.conns` keeps the stream
                // alive past this thread, so hang up explicitly: the
                // hostile peer must see the close, not a stall.
                let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        #[cfg(feature = "fault-inject")]
        if let Some(chaos) = &shared.chaos {
            if let Some(delay) = chaos.read_delay() {
                std::thread::sleep(delay);
            }
        }
        // Per-op latency for the inline control ops (analyze latency is
        // recorded by the worker, end to end from admission).
        let control_timer = |op: &str| {
            let h = obs::histogram(&format!("serve.latency.op.{op}"));
            let t0 = Instant::now();
            move || h.record(t0.elapsed())
        };
        match parse_request(&line) {
            Err(msg) => {
                shared.counters.requests.inc();
                shared.counters.bad_requests.inc();
                conn.send(&error_line("", status::BAD_REQUEST, &msg));
            }
            Ok(Request::Ping) => {
                conn.send(&ResponseLine::new("", status::OK).str("op", "ping").finish());
            }
            Ok(Request::Stats) => {
                let done = control_timer("stats");
                conn.send(&stats_line(shared));
                done();
            }
            Ok(Request::TraceDump { path }) => {
                let done = control_timer("trace_dump");
                conn.send(&trace_dump_line(shared, &path));
                done();
            }
            Ok(Request::Blackbox { path }) => {
                let done = control_timer("blackbox");
                conn.send(&blackbox_line(&path));
                done();
            }
            Ok(Request::Prometheus) => {
                let done = control_timer("prometheus");
                conn.send(&prometheus_line(shared));
                done();
            }
            Ok(Request::Subscribe { interval_ms, ticks }) => {
                start_subscriber(shared, conn, interval_ms, ticks);
            }
            Ok(Request::Shutdown) => {
                begin_drain(shared);
                wait_drained(shared);
                conn.send(
                    &ResponseLine::new("", status::OK)
                        .str("op", "shutdown")
                        .num("served", shared.counters.requests.get() as f64)
                        .finish(),
                );
                stop_all(shared);
            }
            Ok(Request::Analyze(req)) => admit(shared, conn, req),
        }
    }
}

/// Runs admission for one analyze request: quota, then backpressure
/// window, then the bounded queue — all rejections answered in line.
fn admit(shared: &Arc<Shared>, conn: &Arc<Conn>, req: Box<AnalyzeRequest>) {
    shared.counters.requests.inc();
    if !shared.quotas.admit(&req.tenant) {
        shared.counters.quota.inc();
        obs::flight::event("quota_deny", &req.id, format!("tenant={}", req.tenant));
        conn.send(&error_line(
            &req.id,
            status::QUOTA,
            &format!("tenant {:?} is out of tokens", req.tenant),
        ));
        return;
    }
    conn.acquire_window(shared.config.conn_window.max(1));
    let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
    if q.draining {
        drop(q);
        conn.release_window();
        shared.counters.overloaded.inc();
        obs::flight::event("overloaded", &req.id, "reason=draining".to_string());
        conn.send(&error_line(
            &req.id,
            status::OVERLOADED,
            "daemon is draining for shutdown",
        ));
    } else if q.jobs.len() >= shared.config.admission_capacity.max(1) {
        drop(q);
        conn.release_window();
        shared.counters.overloaded.inc();
        obs::flight::event("overloaded", &req.id, "reason=queue_full".to_string());
        conn.send(&error_line(
            &req.id,
            status::OVERLOADED,
            &format!(
                "admission queue full (capacity {})",
                shared.config.admission_capacity.max(1)
            ),
        ));
    } else {
        obs::flight::event(
            "enqueue",
            &req.id,
            format!("tenant={} depth={}", req.tenant, q.jobs.len()),
        );
        q.jobs.push_back(Job {
            req: Arc::from(req),
            conn: Arc::clone(conn),
            enqueued: Instant::now(),
        });
        shared.queue_cv.notify_all();
    }
}

/// Finishes one job's accounting: drop the active count and wake the
/// drain waiter if the queue just went idle.
fn finish_job(shared: &Shared) {
    let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
    q.active -= 1;
    if q.draining && q.active == 0 && q.jobs.is_empty() {
        shared.queue_cv.notify_all();
    }
}

/// Extracts the `status` label from a response line built by
/// [`ResponseLine`] (always the second field). Used to classify the
/// answer for flight/SLO accounting without re-parsing the JSON.
fn response_status(line: &str) -> &str {
    line.split_once("\"status\":\"")
        .and_then(|(_, rest)| rest.split_once('"'))
        .map(|(status, _)| status)
        .unwrap_or("")
}

fn worker_loop(shared: &Arc<Shared>, ws: &Arc<WorkerShared>, idx: usize) {
    let heartbeats = obs::counter("serve.worker_heartbeats");
    loop {
        if ws.exit.load(Ordering::SeqCst) {
            return;
        }
        let job = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if ws.exit.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(job) = q.jobs.pop_front() {
                    q.active += 1;
                    break job;
                }
                if q.draining {
                    return;
                }
                q = shared.queue_cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        heartbeats.inc();
        // Deadline-aware shedding: if the queue wait alone has
        // consumed the request's deadline, nobody is waiting for the
        // answer — shed it now instead of burning a worker on it.
        let deadline_ms = job.req.deadline_ms.or(shared.config.default_deadline_ms);
        if let Some(ms) = deadline_ms {
            let waited = job.enqueued.elapsed();
            if waited >= Duration::from_millis(ms) {
                shared.counters.shed.inc();
                shared.counters.overloaded.inc();
                obs::instant("serve.shed");
                obs::flight::event(
                    "shed",
                    &job.req.id,
                    format!("waited_ms={} deadline_ms={ms}", waited.as_millis()),
                );
                job.conn.send(&error_line(
                    &job.req.id,
                    status::OVERLOADED,
                    &format!(
                        "shed: queued {}ms against a {ms}ms deadline",
                        waited.as_millis()
                    ),
                ));
                job.conn.release_window();
                finish_job(shared);
                continue;
            }
        }
        obs::flight::event(
            "pickup",
            &job.req.id,
            format!(
                "worker={idx} inc={} wait_ms={}",
                ws.incarnation,
                job.enqueued.elapsed().as_millis()
            ),
        );
        // Single-flight coalescing: if an identical computation is
        // already in flight, attach this job as a follower — it will be
        // answered from the leader's outcome — and free this worker for
        // other work. A requeued job that *is* the recorded leader (the
        // watchdog recovered it from a dead worker, `Arc` identity)
        // must compute, not wait on a thread that no longer exists.
        let flight_key = analyze_fingerprint(&job.req);
        let leads = {
            let mut infl = shared.inflight.lock().unwrap_or_else(|e| e.into_inner());
            match infl.get_mut(&flight_key) {
                Some(entry) if !Arc::ptr_eq(&entry.leader, &job.req) => {
                    entry.followers.push(job.clone());
                    false
                }
                Some(_) => true,
                None => {
                    infl.insert(
                        flight_key,
                        Inflight {
                            leader: Arc::clone(&job.req),
                            followers: Vec::new(),
                        },
                    );
                    true
                }
            }
        };
        if !leads {
            shared.counters.coalesced.inc();
            obs::instant("serve.coalesce");
            obs::flight::event("coalesce", &job.req.id, format!("worker={idx}"));
            // The follower's connection window stays held until the
            // leader sends its answer; only the queue slot is returned.
            finish_job(shared);
            continue;
        }
        // Park the job in the slot before touching it: from here until
        // the answer is sent, a death of this thread leaves the job
        // recoverable by the watchdog.
        {
            let mut busy = ws.busy.lock().unwrap_or_else(|e| e.into_inner());
            busy.job = Some(job.clone());
            busy.since = Some(Instant::now());
        }
        #[cfg(feature = "fault-inject")]
        if let Some(chaos) = &shared.chaos {
            match chaos.next_job_fault() {
                // Abrupt death: the job stays parked (and the active
                // count held) for the watchdog to recover.
                JobChaos::Kill => return,
                JobChaos::Stall(d) => std::thread::sleep(d),
                JobChaos::None => {}
            }
        }
        // Zero worker loss: a panic anywhere in request processing is
        // contained to an `internal_error` response for that request
        // (and its followers).
        let computed =
            catch_unwind(AssertUnwindSafe(|| compute(shared, &job.req))).unwrap_or_else(|_| {
                obs::flight::event(
                    "panic",
                    &job.req.id,
                    format!("worker={idx} inc={}", ws.incarnation),
                );
                auto_blackbox(shared, "worker_panic");
                Computed::Panicked
            });
        // Record before sending: a client that sees this answer and
        // immediately asks for `stats` must find it already counted.
        let line = render_answer(shared, &job.req.id, &computed, false);
        record_answer(shared, &job, &line);
        // Retire the in-flight entry *before* sending the leader's
        // answer: once a client holds that answer, an identical
        // follow-up must start fresh — and be a query-store hit — not
        // attach to a computation that already finished.
        let followers = {
            let mut infl = shared.inflight.lock().unwrap_or_else(|e| e.into_inner());
            infl.remove(&flight_key)
                .map(|e| e.followers)
                .unwrap_or_default()
        };
        job.conn.send(&line);
        for fjob in followers {
            let fline = render_answer(shared, &fjob.req.id, &computed, true);
            record_answer(shared, &fjob, &fline);
            fjob.conn.send(&fline);
            fjob.conn.release_window();
        }
        {
            let mut busy = ws.busy.lock().unwrap_or_else(|e| e.into_inner());
            busy.job = None;
            busy.since = None;
        }
        job.conn.release_window();
        finish_job(shared);
    }
}

/// Post-answer accounting: end-to-end latency histograms (per op and
/// per tenant), the flight-recorder `answer` event, and SLO
/// classification. Policy rejections never reach here (they are
/// answered in admission or shed before pickup); of what does, `ok` in
/// time is good, server faults (`internal_error`, `worker_lost`) and
/// over-threshold `ok` are bad, and request-side failures
/// (`trace_error`, `bad_request`) are excluded from SLO accounting.
fn record_answer(shared: &Shared, job: &Job, line: &str) {
    let latency = job.enqueued.elapsed();
    let latency_ms = latency.as_secs_f64() * 1e3;
    let status_label = response_status(line);
    obs::histogram("serve.latency.op.analyze").record(latency);
    obs::histogram(&format!("serve.latency.tenant.{}", job.req.tenant)).record(latency);
    obs::flight::event(
        "answer",
        &job.req.id,
        format!("status={status_label} latency_ms={latency_ms:.1}"),
    );
    match status_label {
        status::OK => shared.slo.record_latency_ms(latency_ms, false),
        status::INTERNAL_ERROR | status::WORKER_LOST => {
            shared.slo.record_latency_ms(latency_ms, true)
        }
        _ => {}
    }
}

/// Resolves the program/input pair an analyze request names.
fn resolve(
    shared: &Shared,
    req: &AnalyzeRequest,
) -> Result<(repro_ir::Program, trace::RunConfig), String> {
    if let Some(name) = &req.bench {
        let Some(bench) = starbench::benchmark(name) else {
            return Err(unknown_bench_message(name));
        };
        let version = match req.version.as_str() {
            "seq" => starbench::Version::Seq,
            "pthreads" => starbench::Version::Pthreads,
            other => {
                return Err(format!(
                    "unknown version {other:?} (expected \"seq\" or \"pthreads\")"
                ))
            }
        };
        let key = format!("{name}:{}", req.version);
        let mut programs = shared.programs.lock().unwrap_or_else(|e| e.into_inner());
        let program = programs
            .entry(key)
            .or_insert_with(|| bench.program(version))
            .clone();
        Ok((program, (bench.analysis_input)()))
    } else {
        let source = req.source.as_deref().unwrap_or_default();
        // Compiled-program reuse: inline sources are content-addressed
        // into the query DB's program stage, and a recompile (cache
        // miss) still reuses every unchanged function's IR through the
        // fn-IR stage.
        let key = repro_query::fingerprint_source("inline", &[("inline", source)]);
        let program = match shared.db.program_get(key) {
            Some(p) => (*p).clone(),
            None => {
                let p = minc::compile_files_with_cache(
                    "inline",
                    &[("inline", source)],
                    shared.db.fn_ir_cache(),
                )
                .map_err(|e| format!("minc: {e}"))?;
                shared.db.program_put(key, Arc::new(p.clone()));
                p
            }
        };
        let mut input = trace::RunConfig::default();
        for (name, data) in &req.inputs {
            input = input.with_f64(name, data);
        }
        Ok((program, input))
    }
}

/// The friendly unknown-benchmark message, shared with the CLI tools.
pub fn unknown_bench_message(name: &str) -> String {
    starbench::unknown_benchmark_message(name)
}

/// The canonical fingerprint of what an analyze request *computes* —
/// program selection, inputs, and effective budgets, but not the
/// request id or tenant. Two requests with equal fingerprints produce
/// identical analyses, which is what makes single-flight coalescing
/// sound.
fn analyze_fingerprint(req: &AnalyzeRequest) -> u128 {
    let mut h = ContentHasher::new();
    h.write_u32(req.bench.is_some() as u32);
    h.write_str(req.bench.as_deref().unwrap_or(""));
    h.write_str(&req.version);
    h.write_u32(req.source.is_some() as u32);
    h.write_str(req.source.as_deref().unwrap_or(""));
    h.write_u64(req.inputs.len() as u64);
    for (name, data) in &req.inputs {
        h.write_str(name);
        h.write_u64(data.len() as u64);
        for v in data {
            h.write_f64(*v);
        }
    }
    // Budgets change what a deadline-bound analysis can report, so they
    // are part of the computation's identity.
    h.write_u64(req.budget_ms.map_or(u64::MAX, |v| v));
    h.write_u64(req.deadline_ms.map_or(u64::MAX, |v| v));
    h.finish().0
}

/// What one leader computation produced, in a form every waiter
/// (leader and coalesced followers) can be answered from.
enum Computed {
    /// The request never reached the engine (unknown bench, compile
    /// error, ...).
    BadRequest(String),
    /// The engine answered (successfully or not).
    Done(Box<repro_engine::AnalysisResult>),
    /// The serve worker panicked mid-computation.
    Panicked,
}

/// Runs one analyze request through the engine. No response counters
/// here — [`render_answer`] counts per *answered* request, so coalesced
/// followers are accounted like any other.
fn compute(shared: &Shared, req: &AnalyzeRequest) -> Computed {
    let mut span = obs::span_args("serve.request", || {
        vec![
            ("id", obs::ArgValue::Str(req.id.clone())),
            ("tenant", obs::ArgValue::Str(req.tenant.clone())),
        ]
    });
    let (program, input) = match resolve(shared, req) {
        Ok(pair) => pair,
        Err(msg) => return Computed::BadRequest(msg),
    };
    let input = input.with_trace_workers(shared.config.trace_workers.max(1));
    let mut config = discovery::FinderConfig {
        budget: discovery::MatchBudget {
            time: Duration::from_millis(req.budget_ms.unwrap_or(shared.config.default_budget_ms)),
            deadline: None,
        },
        ..discovery::FinderConfig::default()
    };
    if let Some(ms) = req.deadline_ms.or(shared.config.default_deadline_ms) {
        config.deadline = Some(Duration::from_millis(ms));
    }
    let result = shared.engine.analyze_one(AnalysisRequest {
        id: req.id.clone(),
        program,
        input,
        config,
    });
    if let Ok(analysis) = &result.outcome {
        span.arg(
            "patterns",
            obs::ArgValue::U64(analysis.result.reported().count() as u64),
        );
    }
    Computed::Done(Box::new(result))
}

/// Renders (and counts) the response for one waiter of a computation.
/// `coalesced` marks followers answered from another request's work.
fn render_answer(shared: &Shared, req_id: &str, computed: &Computed, coalesced: bool) -> String {
    match computed {
        Computed::BadRequest(msg) => {
            shared.counters.bad_requests.inc();
            error_line(req_id, status::BAD_REQUEST, msg)
        }
        Computed::Panicked => {
            shared.counters.internal_errors.inc();
            error_line(
                req_id,
                status::INTERNAL_ERROR,
                "serve worker panicked; request aborted",
            )
        }
        Computed::Done(result) => match &result.outcome {
            Ok(analysis) => {
                shared.counters.ok.inc();
                let f = &analysis.result;
                if f.degraded {
                    shared.counters.degraded.inc();
                }
                let kinds: Vec<&str> = f
                    .found
                    .iter()
                    .filter(|p| p.reported)
                    .map(|p| p.pattern.kind.short())
                    .collect();
                let m = &result.metrics;
                ResponseLine::new(req_id, status::OK)
                    .num("patterns", kinds.len() as f64)
                    .strs("kinds", &kinds)
                    .num("iterations", f.iterations as f64)
                    .num("ddg_size", f.ddg_size as f64)
                    .bool("degraded", f.degraded)
                    .num("trace_ms", m.trace_time.as_secs_f64() * 1e3)
                    .num("find_ms", m.find_time.as_secs_f64() * 1e3)
                    .num("cache_hits", m.cache_hits as f64)
                    .num("cache_misses", m.cache_misses as f64)
                    .bool("query_hit", m.query_analyze_hit || m.query_find_hit)
                    .bool("coalesced", coalesced)
                    .finish()
            }
            Err(EngineError::Trace(e)) => {
                shared.counters.trace_errors.inc();
                error_line(req_id, status::TRACE_ERROR, &e.to_string())
            }
            Err(EngineError::WorkerLost { missing }) => {
                shared.counters.worker_lost.inc();
                error_line(
                    req_id,
                    status::WORKER_LOST,
                    &format!("match workers lost with {missing} outcomes missing"),
                )
            }
        },
    }
}

fn stats_line(shared: &Shared) -> String {
    let engine = shared.engine.metrics();
    obs::gauge("cache.bytes").set(engine.cache_bytes as f64);
    obs::gauge("cache.entries").set(engine.cache_entries as f64);
    let mut engine_json = String::new();
    engine.serialize_json(&mut engine_json);
    let serve = shared.counters.snapshot();
    let mut serve_json = String::new();
    serve.serialize_json(&mut serve_json);
    let mut slo_json = String::new();
    shared.slo.snapshot().serialize_json(&mut slo_json);
    // Query-layer stage stores (hit/miss/eviction per stage) and what
    // the persistent cache load found at startup.
    let mut query_json = String::new();
    shared.db.stats().serialize_json(&mut query_json);
    let mut cache_load_json = String::new();
    shared
        .cache_load
        .unwrap_or_default()
        .serialize_json(&mut cache_load_json);
    // End-to-end latency quantiles, per op and per tenant.
    let latency: Vec<obs::registry::HistogramValue> = obs::snapshot()
        .histograms
        .into_iter()
        .filter(|h| h.name.starts_with("serve.latency."))
        .collect();
    let mut latency_json = String::new();
    latency.serialize_json(&mut latency_json);
    let uptime_s = shared.started.elapsed().as_secs_f64().max(1e-9);
    ResponseLine::new("", status::OK)
        .str("op", "stats")
        .num("uptime_ms", uptime_s * 1e3)
        // Uptime-normalized rates, so two stats snapshots compare
        // without the caller doing the division.
        .num("requests_per_s", serve.requests as f64 / uptime_s)
        .num("ok_per_s", serve.ok as f64 / uptime_s)
        // Client-side breaker state, visible when clients share this
        // process's obs registry (in-process harnesses); zero
        // otherwise.
        .num(
            "breaker_opens",
            obs::counter("client.breaker_opens").get() as f64,
        )
        .num("breaker_open", obs::gauge("client.breaker_open").get())
        .num("flight_recorded", obs::flight::recorded() as f64)
        .raw("slo", &slo_json)
        .raw("latency", &latency_json)
        .raw("serve", &serve_json)
        .raw("engine", &engine_json)
        .raw("query", &query_json)
        .raw("cache_load", &cache_load_json)
        .finish()
}

fn trace_dump_line(shared: &Shared, path: &str) -> String {
    let _ = shared;
    if let Err(msg) = crate::protocol::validate_dump_path(path) {
        return error_line("", status::BAD_REQUEST, &msg);
    }
    if !obs::enabled() {
        return error_line(
            "",
            status::BAD_REQUEST,
            "observability is disabled; restart the daemon with --obs",
        );
    }
    let threads = obs::take_events();
    match obs::write_chrome_trace(Path::new(path), &threads) {
        Ok(()) => ResponseLine::new("", status::OK)
            .str("op", "trace_dump")
            .str("path", path)
            .num("threads", threads.len() as f64)
            .finish(),
        // The path validated but the write still failed (permissions,
        // disk full): a caller/host problem, answered structurally
        // rather than counted against the daemon as an internal error.
        Err(e) => error_line(
            "",
            status::BAD_REQUEST,
            &format!("cannot write {path}: {e}"),
        ),
    }
}

fn blackbox_line(path: &str) -> String {
    if let Err(msg) = crate::protocol::validate_dump_path(path) {
        return error_line("", status::BAD_REQUEST, &msg);
    }
    match obs::flight::write_blackbox(Path::new(path), "on_demand") {
        Ok(()) => ResponseLine::new("", status::OK)
            .str("op", "blackbox")
            .str("path", path)
            .num("events", obs::flight::snapshot().len() as f64)
            .num("recorded", obs::flight::recorded() as f64)
            .num("capacity", obs::flight::capacity() as f64)
            .finish(),
        Err(e) => error_line(
            "",
            status::BAD_REQUEST,
            &format!("cannot write {path}: {e}"),
        ),
    }
}

fn prometheus_line(shared: &Shared) -> String {
    // Refresh the gauges the scrape should reflect.
    let engine = shared.engine.metrics();
    obs::gauge("cache.bytes").set(engine.cache_bytes as f64);
    obs::gauge("cache.entries").set(engine.cache_entries as f64);
    let slo = shared.slo.snapshot();
    obs::gauge("serve.slo_short_burn").set(slo.short_burn);
    obs::gauge("serve.slo_long_burn").set(slo.long_burn);
    let text = obs::prometheus_text(&obs::snapshot());
    ResponseLine::new("", status::OK)
        .str("op", "prometheus")
        .str("content_type", "text/plain; version=0.0.4")
        .str("text", &text)
        .finish()
}

/// Spawns the metric-stream thread for one `subscribe` op. Stream
/// lines share the connection write lock with responses, so they
/// interleave whole-line atomically with any analyze traffic on the
/// same connection; `"op":"metrics"` distinguishes them.
fn start_subscriber(shared: &Arc<Shared>, conn: &Arc<Conn>, interval_ms: u64, ticks: u64) {
    conn.send(
        &ResponseLine::new("", status::OK)
            .str("op", "subscribe")
            .num("interval_ms", interval_ms as f64)
            .num("ticks", ticks as f64)
            .finish(),
    );
    let handle = {
        let shared = Arc::clone(shared);
        let conn = Arc::clone(conn);
        std::thread::Builder::new()
            .name("serve-metrics-stream".into())
            .spawn(move || subscriber_loop(&shared, &conn, interval_ms, ticks))
            .expect("spawn metrics streamer")
    };
    shared
        .streamers
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(handle);
}

fn subscriber_loop(shared: &Shared, conn: &Conn, interval_ms: u64, ticks: u64) {
    let interval = Duration::from_millis(interval_ms.max(10));
    let mut prev = shared.counters.snapshot();
    let mut tick = 0u64;
    while !shared.stop.load(Ordering::SeqCst) && (ticks == 0 || tick < ticks) {
        // Sleep in slices so shutdown is noticed promptly even with a
        // long interval.
        let wake = Instant::now() + interval;
        loop {
            let now = Instant::now();
            if now >= wake || shared.stop.load(Ordering::SeqCst) {
                break;
            }
            std::thread::sleep((wake - now).min(Duration::from_millis(50)));
        }
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let cur = shared.counters.snapshot();
        let slo = shared.slo.snapshot();
        let queue_depth = {
            let q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.jobs.len() as f64
        };
        let mut serve_json = String::new();
        cur.serialize_json(&mut serve_json);
        let line = ResponseLine::new("", status::OK)
            .str("op", "metrics")
            .num("tick", tick as f64)
            .num("uptime_ms", shared.started.elapsed().as_secs_f64() * 1e3)
            .num("queue_depth", queue_depth)
            .num("requests_delta", (cur.requests - prev.requests) as f64)
            .num("ok_delta", (cur.ok - prev.ok) as f64)
            .num(
                "rejected_delta",
                (cur.overloaded + cur.quota - prev.overloaded - prev.quota) as f64,
            )
            .num(
                "errors_delta",
                (cur.internal_errors + cur.worker_lost - prev.internal_errors - prev.worker_lost)
                    as f64,
            )
            .num("slo_short_burn", slo.short_burn)
            .num("slo_long_burn", slo.long_burn)
            .raw("serve", &serve_json)
            .finish();
        // A failed write means the subscriber hung up: stop streaming.
        if !conn.send_ok(&line) {
            return;
        }
        prev = cur;
        tick += 1;
    }
    let _ = conn.send_ok(
        &ResponseLine::new("", status::OK)
            .str("op", "subscribe_end")
            .num("ticks", tick as f64)
            .finish(),
    );
}
