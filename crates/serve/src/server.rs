//! The resident daemon: accept loop, admission control, worker pool.
//!
//! Concurrency layout (std-only, sized for small machines):
//!
//! - one **accept thread** polls a nonblocking unix listener;
//! - one **reader thread per connection** parses request lines and
//!   answers control ops and rejections in line;
//! - a fixed pool of **serve workers** drains the admission queue and
//!   runs analyses through a shared [`Engine`] (one work-stealing match
//!   pool and one bounded LRU match cache across all requests).
//!
//! Admission is a single bounded queue guarded by one mutex/condvar
//! pair; the same lock covers the drain protocol, so a request can
//! never slip into the queue after the workers have decided to exit.
//! Per-connection backpressure is a counting window: a reader that has
//! `conn_window` requests in flight blocks before parsing more, which
//! pushes back on the client through the kernel socket buffer.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use obs::Counter;
use repro_engine::{AnalysisRequest, Engine, EngineConfig, EngineError, EngineMetrics};
use serde::Serialize;

use crate::protocol::{error_line, parse_request, status, AnalyzeRequest, Request, ResponseLine};
use crate::quota::{QuotaConfig, TenantQuotas};

/// Daemon knobs. Defaults are sized for a small CI box: two serve
/// workers over a two-thread match pool, a 64-deep admission queue,
/// and quotas off.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    pub socket: PathBuf,
    /// Serve workers (concurrent analyses). 0 means 2.
    pub workers: usize,
    /// Match-pool threads inside the shared engine. 0 means 2.
    pub analysis_threads: usize,
    /// Admission queue bound; a full queue rejects with `overloaded`.
    pub admission_capacity: usize,
    /// Per-connection in-flight window (backpressure), minimum 1.
    pub conn_window: usize,
    pub quota: QuotaConfig,
    /// Shared match-cache entry bound (0 = unbounded).
    pub cache_capacity: usize,
    /// Default per-sub-DDG match budget when the request names none.
    pub default_budget_ms: u64,
    /// Default whole-request deadline when the request names none.
    pub default_deadline_ms: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            socket: PathBuf::from("repro-serve.sock"),
            workers: 2,
            analysis_threads: 2,
            admission_capacity: 64,
            conn_window: 8,
            quota: QuotaConfig::default(),
            cache_capacity: repro_engine::cache::DEFAULT_CACHE_CAPACITY,
            default_budget_ms: 60_000,
            default_deadline_ms: Some(10_000),
        }
    }
}

/// Serve-side counter snapshot. The same counts are registered in the
/// obs metrics registry under `serve.*`.
#[derive(Clone, Copy, Debug, Default, serde::Serialize)]
pub struct ServeMetrics {
    pub connections: u64,
    pub requests: u64,
    pub ok: u64,
    pub degraded: u64,
    pub overloaded: u64,
    pub quota: u64,
    pub bad_requests: u64,
    pub trace_errors: u64,
    pub worker_lost: u64,
    pub internal_errors: u64,
}

/// One serve counter: a per-server count plus the process-global
/// `serve.*` registry counter (the registry is shared, so a test
/// process running several servers still gets exact per-server
/// numbers from the local half).
struct Stat {
    local: std::sync::atomic::AtomicU64,
    global: Counter,
}

impl Stat {
    fn new(name: &str) -> Stat {
        Stat {
            local: std::sync::atomic::AtomicU64::new(0),
            global: obs::counter(name),
        }
    }

    fn inc(&self) {
        self.local.fetch_add(1, Ordering::Relaxed);
        self.global.inc();
    }

    fn get(&self) -> u64 {
        self.local.load(Ordering::Relaxed)
    }
}

struct Counters {
    connections: Stat,
    requests: Stat,
    ok: Stat,
    degraded: Stat,
    overloaded: Stat,
    quota: Stat,
    bad_requests: Stat,
    trace_errors: Stat,
    worker_lost: Stat,
    internal_errors: Stat,
}

impl Counters {
    fn new() -> Counters {
        Counters {
            connections: Stat::new("serve.connections"),
            requests: Stat::new("serve.requests"),
            ok: Stat::new("serve.ok"),
            degraded: Stat::new("serve.degraded"),
            overloaded: Stat::new("serve.overloaded"),
            quota: Stat::new("serve.quota"),
            bad_requests: Stat::new("serve.bad_requests"),
            trace_errors: Stat::new("serve.trace_errors"),
            worker_lost: Stat::new("serve.worker_lost"),
            internal_errors: Stat::new("serve.internal_errors"),
        }
    }

    fn snapshot(&self) -> ServeMetrics {
        ServeMetrics {
            connections: self.connections.get(),
            requests: self.requests.get(),
            ok: self.ok.get(),
            degraded: self.degraded.get(),
            overloaded: self.overloaded.get(),
            quota: self.quota.get(),
            bad_requests: self.bad_requests.get(),
            trace_errors: self.trace_errors.get(),
            worker_lost: self.worker_lost.get(),
            internal_errors: self.internal_errors.get(),
        }
    }
}

/// One admitted analyze request waiting for (or on) a worker.
struct Job {
    req: Box<AnalyzeRequest>,
    conn: Arc<Conn>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    /// Jobs currently on a worker.
    active: usize,
    /// Set once; after this no job enters the queue, and the queue
    /// going idle (empty + no active) is final.
    draining: bool,
}

/// Per-connection write half and backpressure window.
struct Conn {
    stream: UnixStream,
    write: Mutex<()>,
    inflight: Mutex<usize>,
    inflight_cv: Condvar,
}

impl Conn {
    fn send(&self, line: &str) {
        let _guard = self.write.lock().unwrap_or_else(|e| e.into_inner());
        // A vanished client is not a daemon error; drop the response.
        let mut s = &self.stream;
        let _ = s
            .write_all(line.as_bytes())
            .and_then(|_| s.write_all(b"\n"))
            .and_then(|_| s.flush());
    }

    fn acquire_window(&self, limit: usize) {
        let mut n = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        while *n >= limit {
            n = self.inflight_cv.wait(n).unwrap_or_else(|e| e.into_inner());
        }
        *n += 1;
    }

    fn release_window(&self) {
        let mut n = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        *n = n.saturating_sub(1);
        self.inflight_cv.notify_all();
    }
}

struct Shared {
    config: ServeConfig,
    engine: Engine,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    quotas: TenantQuotas,
    counters: Counters,
    stop: AtomicBool,
    conns: Mutex<Vec<Arc<Conn>>>,
    /// Compiled starbench programs, keyed `"name:version"`.
    programs: Mutex<HashMap<String, repro_ir::Program>>,
    started: Instant,
}

/// A running daemon. [`Server::start`] binds and spawns the threads;
/// shutdown arrives either over the wire (`{"op":"shutdown"}`) or via
/// [`Server::shutdown`], and [`Server::join`] blocks until the drain
/// completes and every thread has exited.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let socket = config.socket.clone();
        if socket.exists() {
            // A live daemon answers a connect; a stale socket file
            // (crashed daemon) refuses it and is safe to replace.
            if UnixStream::connect(&socket).is_ok() {
                return Err(std::io::Error::new(
                    ErrorKind::AddrInUse,
                    format!("{} already has a live daemon", socket.display()),
                ));
            }
            std::fs::remove_file(&socket)?;
        }
        let listener = UnixListener::bind(&socket)?;
        listener.set_nonblocking(true)?;

        let engine = Engine::new(EngineConfig {
            workers: if config.analysis_threads == 0 {
                2
            } else {
                config.analysis_threads
            },
            max_concurrent_requests: 1,
            use_cache: true,
            cache_capacity: config.cache_capacity,
            ..EngineConfig::default()
        });
        let worker_count = if config.workers == 0 {
            2
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            engine,
            quotas: TenantQuotas::new(config.quota),
            counters: Counters::new(),
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                active: 0,
                draining: false,
            }),
            queue_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            programs: Mutex::new(HashMap::new()),
            started: Instant::now(),
            config,
        });

        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn serve worker")
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(listener, &shared))
                .expect("spawn accept loop")
        };
        Ok(Server {
            shared,
            accept: Some(accept),
            workers,
        })
    }

    pub fn socket(&self) -> &Path {
        &self.shared.config.socket
    }

    pub fn metrics(&self) -> ServeMetrics {
        self.shared.counters.snapshot()
    }

    pub fn engine_metrics(&self) -> EngineMetrics {
        self.shared.engine.metrics()
    }

    /// Programmatic shutdown: drain in-flight work, then stop every
    /// thread. Equivalent to a wire `shutdown` minus the response.
    pub fn shutdown(&self) {
        begin_drain(&self.shared);
        wait_drained(&self.shared);
        stop_all(&self.shared);
    }

    /// Blocks until the daemon has fully stopped (after a wire or
    /// programmatic shutdown) and the socket file is gone.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn begin_drain(shared: &Shared) {
    let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
    q.draining = true;
    shared.queue_cv.notify_all();
}

fn wait_drained(shared: &Shared) {
    let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
    while q.active > 0 || !q.jobs.is_empty() {
        q = shared.queue_cv.wait(q).unwrap_or_else(|e| e.into_inner());
    }
}

/// Stops the accept loop and unblocks every connection reader.
fn stop_all(shared: &Shared) {
    shared.stop.store(true, Ordering::SeqCst);
    let conns = shared.conns.lock().unwrap_or_else(|e| e.into_inner());
    for conn in conns.iter() {
        // EOF the readers; pending writes still flush.
        let _ = conn.stream.shutdown(std::net::Shutdown::Read);
    }
}

fn accept_loop(listener: UnixListener, shared: &Arc<Shared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.counters.connections.inc();
                let conn = Arc::new(Conn {
                    stream,
                    write: Mutex::new(()),
                    inflight: Mutex::new(0),
                    inflight_cv: Condvar::new(),
                });
                shared
                    .conns
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(Arc::clone(&conn));
                let shared = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || reader_loop(&shared, &conn));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
    let _ = std::fs::remove_file(&shared.config.socket);
}

fn reader_loop(shared: &Arc<Shared>, conn: &Arc<Conn>) {
    let Ok(read_half) = conn.stream.try_clone() else {
        return;
    };
    let _ = read_half.set_nonblocking(false);
    let reader = BufReader::new(read_half);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line) {
            Err(msg) => {
                shared.counters.requests.inc();
                shared.counters.bad_requests.inc();
                conn.send(&error_line("", status::BAD_REQUEST, &msg));
            }
            Ok(Request::Ping) => {
                conn.send(&ResponseLine::new("", status::OK).str("op", "ping").finish());
            }
            Ok(Request::Stats) => conn.send(&stats_line(shared)),
            Ok(Request::TraceDump { path }) => conn.send(&trace_dump_line(shared, &path)),
            Ok(Request::Shutdown) => {
                begin_drain(shared);
                wait_drained(shared);
                conn.send(
                    &ResponseLine::new("", status::OK)
                        .str("op", "shutdown")
                        .num("served", shared.counters.requests.get() as f64)
                        .finish(),
                );
                stop_all(shared);
            }
            Ok(Request::Analyze(req)) => admit(shared, conn, req),
        }
    }
}

/// Runs admission for one analyze request: quota, then backpressure
/// window, then the bounded queue — all rejections answered in line.
fn admit(shared: &Arc<Shared>, conn: &Arc<Conn>, req: Box<AnalyzeRequest>) {
    shared.counters.requests.inc();
    if !shared.quotas.admit(&req.tenant) {
        shared.counters.quota.inc();
        conn.send(&error_line(
            &req.id,
            status::QUOTA,
            &format!("tenant {:?} is out of tokens", req.tenant),
        ));
        return;
    }
    conn.acquire_window(shared.config.conn_window.max(1));
    let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
    if q.draining {
        drop(q);
        conn.release_window();
        shared.counters.overloaded.inc();
        conn.send(&error_line(
            &req.id,
            status::OVERLOADED,
            "daemon is draining for shutdown",
        ));
    } else if q.jobs.len() >= shared.config.admission_capacity.max(1) {
        drop(q);
        conn.release_window();
        shared.counters.overloaded.inc();
        conn.send(&error_line(
            &req.id,
            status::OVERLOADED,
            &format!(
                "admission queue full (capacity {})",
                shared.config.admission_capacity.max(1)
            ),
        ));
    } else {
        q.jobs.push_back(Job {
            req,
            conn: Arc::clone(conn),
        });
        shared.queue_cv.notify_all();
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    q.active += 1;
                    break job;
                }
                if q.draining {
                    return;
                }
                q = shared.queue_cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        // Zero worker loss: a panic anywhere in request processing is
        // contained to an `internal_error` response for that request.
        let line =
            catch_unwind(AssertUnwindSafe(|| process(shared, &job.req))).unwrap_or_else(|_| {
                shared.counters.internal_errors.inc();
                error_line(
                    &job.req.id,
                    status::INTERNAL_ERROR,
                    "serve worker panicked; request aborted",
                )
            });
        job.conn.send(&line);
        job.conn.release_window();
        let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.active -= 1;
        if q.draining && q.active == 0 && q.jobs.is_empty() {
            shared.queue_cv.notify_all();
        }
    }
}

/// Resolves the program/input pair an analyze request names.
fn resolve(
    shared: &Shared,
    req: &AnalyzeRequest,
) -> Result<(repro_ir::Program, trace::RunConfig), String> {
    if let Some(name) = &req.bench {
        let Some(bench) = starbench::benchmark(name) else {
            return Err(unknown_bench_message(name));
        };
        let version = match req.version.as_str() {
            "seq" => starbench::Version::Seq,
            "pthreads" => starbench::Version::Pthreads,
            other => {
                return Err(format!(
                    "unknown version {other:?} (expected \"seq\" or \"pthreads\")"
                ))
            }
        };
        let key = format!("{name}:{}", req.version);
        let mut programs = shared.programs.lock().unwrap_or_else(|e| e.into_inner());
        let program = programs
            .entry(key)
            .or_insert_with(|| bench.program(version))
            .clone();
        Ok((program, (bench.analysis_input)()))
    } else {
        let source = req.source.as_deref().unwrap_or_default();
        let program = minc::compile("inline", source).map_err(|e| format!("minc: {e}"))?;
        let mut input = trace::RunConfig::default();
        for (name, data) in &req.inputs {
            input = input.with_f64(name, data);
        }
        Ok((program, input))
    }
}

/// The friendly unknown-benchmark message, shared with the CLI tools.
pub fn unknown_bench_message(name: &str) -> String {
    starbench::unknown_benchmark_message(name)
}

fn process(shared: &Shared, req: &AnalyzeRequest) -> String {
    let mut span = obs::span_args("serve.request", || {
        vec![("tenant", obs::ArgValue::Str(req.tenant.clone()))]
    });
    let (program, input) = match resolve(shared, req) {
        Ok(pair) => pair,
        Err(msg) => {
            shared.counters.bad_requests.inc();
            return error_line(&req.id, status::BAD_REQUEST, &msg);
        }
    };
    let mut config = discovery::FinderConfig {
        budget: discovery::MatchBudget {
            time: Duration::from_millis(req.budget_ms.unwrap_or(shared.config.default_budget_ms)),
            deadline: None,
        },
        ..discovery::FinderConfig::default()
    };
    if let Some(ms) = req.deadline_ms.or(shared.config.default_deadline_ms) {
        config.deadline = Some(Duration::from_millis(ms));
    }
    let result = shared.engine.analyze_one(AnalysisRequest {
        id: req.id.clone(),
        program,
        input,
        config,
    });
    match &result.outcome {
        Ok(analysis) => {
            shared.counters.ok.inc();
            let f = &analysis.result;
            if f.degraded {
                shared.counters.degraded.inc();
            }
            let kinds: Vec<&str> = f
                .found
                .iter()
                .filter(|p| p.reported)
                .map(|p| p.pattern.kind.short())
                .collect();
            span.arg("patterns", obs::ArgValue::U64(kinds.len() as u64));
            ResponseLine::new(&req.id, status::OK)
                .num("patterns", kinds.len() as f64)
                .strs("kinds", &kinds)
                .num("iterations", f.iterations as f64)
                .num("ddg_size", f.ddg_size as f64)
                .bool("degraded", f.degraded)
                .num("trace_ms", result.metrics.trace_time.as_secs_f64() * 1e3)
                .num("find_ms", result.metrics.find_time.as_secs_f64() * 1e3)
                .num("cache_hits", result.metrics.cache_hits as f64)
                .num("cache_misses", result.metrics.cache_misses as f64)
                .finish()
        }
        Err(EngineError::Trace(e)) => {
            shared.counters.trace_errors.inc();
            error_line(&req.id, status::TRACE_ERROR, &e.to_string())
        }
        Err(EngineError::WorkerLost { missing }) => {
            shared.counters.worker_lost.inc();
            error_line(
                &req.id,
                status::WORKER_LOST,
                &format!("match workers lost with {missing} outcomes missing"),
            )
        }
    }
}

fn stats_line(shared: &Shared) -> String {
    let engine = shared.engine.metrics();
    obs::gauge("cache.bytes").set(engine.cache_bytes as f64);
    obs::gauge("cache.entries").set(engine.cache_entries as f64);
    let mut engine_json = String::new();
    engine.serialize_json(&mut engine_json);
    let mut serve_json = String::new();
    shared.counters.snapshot().serialize_json(&mut serve_json);
    ResponseLine::new("", status::OK)
        .str("op", "stats")
        .num("uptime_ms", shared.started.elapsed().as_secs_f64() * 1e3)
        .raw("serve", &serve_json)
        .raw("engine", &engine_json)
        .finish()
}

fn trace_dump_line(shared: &Shared, path: &str) -> String {
    let _ = shared;
    if !obs::enabled() {
        return error_line(
            "",
            status::BAD_REQUEST,
            "observability is disabled; restart the daemon with --obs",
        );
    }
    let threads = obs::take_events();
    match obs::write_chrome_trace(Path::new(path), &threads) {
        Ok(()) => ResponseLine::new("", status::OK)
            .str("op", "trace_dump")
            .str("path", path)
            .num("threads", threads.len() as f64)
            .finish(),
        Err(e) => error_line("", status::INTERNAL_ERROR, &format!("{path}: {e}")),
    }
}
