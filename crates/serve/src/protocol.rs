//! The wire protocol: newline-delimited JSON over a unix socket.
//!
//! Every request is one JSON object on one line; every request gets
//! exactly one JSON object back on one line. Analyze responses may
//! arrive out of order relative to other requests on the same
//! connection (workers finish when they finish) — the echoed `id`
//! correlates them. Rejections (`overloaded`, `quota`, `bad_request`)
//! are written in line by the connection reader, so a rejected request
//! is answered immediately.
//!
//! ```text
//! → {"op":"analyze","id":"r1","tenant":"team-a","bench":"rgbyuv","version":"seq"}
//! ← {"id":"r1","status":"ok","patterns":2,"kinds":["m","m"],...}
//! → {"op":"analyze","id":"r2","source":"float out[4]; void main() {...}"}
//! → {"op":"stats"}
//! → {"op":"trace_dump","path":"/tmp/serve-trace.json"}
//! → {"op":"shutdown"}
//! ```

use obs::json::{parse, Json};
use serde::{ser_key, ser_str, Serialize};
use std::io::BufRead;

/// One parsed request line.
#[derive(Debug)]
pub enum Request {
    Analyze(Box<AnalyzeRequest>),
    /// Metrics snapshot: engine + serve counters as an embedded report.
    Stats,
    /// Drain the recorded spans into a Chrome trace file on the daemon
    /// host (requires the daemon to run with observability enabled).
    TraceDump {
        path: String,
    },
    /// Dump the flight recorder (always on) to a file on the daemon
    /// host and answer with the ring accounting.
    Blackbox {
        path: String,
    },
    /// Stream periodic newline-JSON metric deltas on this connection
    /// until `ticks` have been sent (0 = until the client disconnects).
    Subscribe {
        interval_ms: u64,
        ticks: u64,
    },
    /// One-shot Prometheus text exposition of the metrics registry.
    Prometheus,
    /// Stop accepting work, drain in-flight requests, answer, exit.
    Shutdown,
    /// Liveness probe (used by the load generator to await boot).
    Ping,
}

/// An `analyze` request: a starbench benchmark name *or* inline minc
/// source, plus per-request finder knobs.
#[derive(Debug)]
pub struct AnalyzeRequest {
    /// Caller-chosen identifier, echoed in the response.
    pub id: String,
    /// Quota key; requests without a tenant share the `"anon"` bucket.
    pub tenant: String,
    /// Starbench benchmark name (mutually exclusive with `source`).
    pub bench: Option<String>,
    /// Benchmark version: `"seq"` (default) or `"pthreads"`.
    pub version: String,
    /// Inline minc translation unit (mutually exclusive with `bench`).
    pub source: Option<String>,
    /// Float array inputs for `source` programs, by array name.
    pub inputs: Vec<(String, Vec<f64>)>,
    /// Per-sub-DDG match budget override (ms).
    pub budget_ms: Option<u64>,
    /// Whole-request deadline override (ms).
    pub deadline_ms: Option<u64>,
}

/// Parses one request line. Errors are protocol-level (malformed JSON,
/// unknown op, contradictory fields) and map to a `bad_request`
/// response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
    if !doc.is_obj() {
        return Err("request must be a JSON object".into());
    }
    let op = doc.get("op").and_then(Json::as_str).unwrap_or("analyze");
    match op {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "trace_dump" => {
            let path = doc
                .get("path")
                .and_then(Json::as_str)
                .ok_or("trace_dump needs a \"path\" string")?;
            Ok(Request::TraceDump { path: path.into() })
        }
        "blackbox" => {
            let path = doc
                .get("path")
                .and_then(Json::as_str)
                .ok_or("blackbox needs a \"path\" string")?;
            Ok(Request::Blackbox { path: path.into() })
        }
        "subscribe" => {
            let num_field = |key: &str, default: u64| -> Result<u64, String> {
                match doc.get(key) {
                    None | Some(Json::Null) => Ok(default),
                    Some(Json::Num(n)) if *n >= 0.0 => Ok(*n as u64),
                    Some(other) => Err(format!(
                        "\"{key}\" must be a non-negative number, got {other:?}"
                    )),
                }
            };
            Ok(Request::Subscribe {
                // Floor keeps one hostile subscriber from turning the
                // metrics stream into a busy loop.
                interval_ms: num_field("interval_ms", 500)?.max(10),
                ticks: num_field("ticks", 0)?,
            })
        }
        "prometheus" => Ok(Request::Prometheus),
        "analyze" => parse_analyze(&doc).map(|a| Request::Analyze(Box::new(a))),
        other => Err(format!(
            "unknown op {other:?} (expected analyze, stats, trace_dump, blackbox, \
             subscribe, prometheus, shutdown, or ping)"
        )),
    }
}

/// Validates a daemon-side dump target (`trace_dump`/`blackbox`)
/// *before* any io: the parent directory must exist and the path must
/// not name a directory. Violations answer a structured `bad_request`
/// instead of surfacing as a worker-side io failure.
pub fn validate_dump_path(path: &str) -> Result<(), String> {
    if path.is_empty() {
        return Err("dump path is empty".into());
    }
    let p = std::path::Path::new(path);
    if p.is_dir() {
        return Err(format!("dump path {path:?} is a directory"));
    }
    match p.parent() {
        // `Path::parent` returns `""` for bare filenames — that is the
        // daemon's cwd, which exists.
        Some(parent) if !parent.as_os_str().is_empty() && !parent.is_dir() => Err(format!(
            "dump path parent {:?} does not exist",
            parent.display()
        )),
        _ => Ok(()),
    }
}

fn parse_analyze(doc: &Json) -> Result<AnalyzeRequest, String> {
    let str_field = |key: &str| -> Result<Option<String>, String> {
        match doc.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(Json::Str(s)) => Ok(Some(s.clone())),
            Some(other) => Err(format!("\"{key}\" must be a string, got {other:?}")),
        }
    };
    let ms_field = |key: &str| -> Result<Option<u64>, String> {
        match doc.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(Json::Num(n)) if *n >= 0.0 => Ok(Some(*n as u64)),
            Some(other) => Err(format!(
                "\"{key}\" must be a non-negative number, got {other:?}"
            )),
        }
    };
    let bench = str_field("bench")?;
    let source = str_field("source")?;
    match (&bench, &source) {
        (None, None) => return Err("analyze needs a \"bench\" name or minc \"source\"".into()),
        (Some(_), Some(_)) => return Err("\"bench\" and \"source\" are mutually exclusive".into()),
        _ => {}
    }
    let mut inputs = Vec::new();
    match doc.get("inputs") {
        None | Some(Json::Null) => {}
        Some(Json::Obj(members)) => {
            for (name, value) in members {
                let arr = value
                    .as_arr()
                    .ok_or_else(|| format!("input {name:?} must be an array of numbers"))?;
                let vals = arr
                    .iter()
                    .map(|v| {
                        v.as_f64()
                            .ok_or_else(|| format!("input {name:?} holds a non-number"))
                    })
                    .collect::<Result<Vec<f64>, String>>()?;
                inputs.push((name.clone(), vals));
            }
        }
        Some(other) => return Err(format!("\"inputs\" must be an object, got {other:?}")),
    }
    // `request_id` is the telemetry-plane spelling; `id` the original
    // wire field. Either works; both present must agree (a mismatch is
    // a caller bug worth failing loudly on, since the id is the only
    // cross-layer correlation key).
    let id = match (str_field("id")?, str_field("request_id")?) {
        (Some(a), Some(b)) if a != b => {
            return Err(format!("\"id\" {a:?} and \"request_id\" {b:?} disagree"))
        }
        (a, b) => a.or(b).unwrap_or_default(),
    };
    Ok(AnalyzeRequest {
        id,
        tenant: str_field("tenant")?.unwrap_or_else(|| "anon".into()),
        bench,
        version: str_field("version")?.unwrap_or_else(|| "seq".into()),
        source,
        inputs,
        budget_ms: ms_field("budget_ms")?,
        deadline_ms: ms_field("deadline_ms")?,
    })
}

/// One read off the connection's framing layer.
#[derive(Debug)]
pub enum LineRead {
    /// A complete line (newline stripped, lossily decoded — garbage
    /// bytes become replacement characters and fail `parse_request`
    /// with a labeled error instead of killing the reader).
    Line(String),
    /// Clean end of stream.
    Eof,
    /// The line outgrew `max_bytes` before a newline arrived. The
    /// buffer is discarded; the caller should answer `protocol_error`
    /// and drop the connection — one hostile client must not grow an
    /// unbounded buffer in the daemon.
    TooLong,
}

/// Reads one newline-terminated line, refusing to buffer more than
/// `max_bytes` of it. Unlike `BufRead::read_line`, this (a) caps the
/// resident buffer, and (b) tolerates invalid UTF-8 (decoded lossily,
/// surfacing as a parse error rather than an io error).
pub fn read_bounded_line(reader: &mut impl BufRead, max_bytes: usize) -> std::io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if buf.is_empty() {
                LineRead::Eof
            } else {
                // Trailing unterminated data: hand it up; the parse
                // layer labels it.
                LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                if buf.len() + nl > max_bytes {
                    reader.consume(nl + 1);
                    return Ok(LineRead::TooLong);
                }
                buf.extend_from_slice(&chunk[..nl]);
                reader.consume(nl + 1);
                return Ok(LineRead::Line(String::from_utf8_lossy(&buf).into_owned()));
            }
            None => {
                let n = chunk.len();
                if buf.len() + n > max_bytes {
                    reader.consume(n);
                    return Ok(LineRead::TooLong);
                }
                buf.extend_from_slice(chunk);
                reader.consume(n);
            }
        }
    }
}

/// Response statuses. The load gate relies on two invariants: every
/// request line receives exactly one response line, and every response
/// carries one of these labels.
pub mod status {
    /// Analysis completed (check `degraded` for best-so-far results).
    pub const OK: &str = "ok";
    /// Rejected: the admission queue was full, or the daemon is
    /// draining for shutdown.
    pub const OVERLOADED: &str = "overloaded";
    /// Rejected: the tenant's token bucket is empty.
    pub const QUOTA: &str = "quota";
    /// The request line did not parse or validate.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The connection violated framing rules (e.g. a line longer than
    /// the daemon's bound); answered once, then the connection drops.
    pub const PROTOCOL_ERROR: &str = "protocol_error";
    /// The traced program faulted (bad source, step limit, deadline).
    pub const TRACE_ERROR: &str = "trace_error";
    /// Match workers died mid-request — the gate requires zero of these.
    pub const WORKER_LOST: &str = "worker_lost";
    /// The serve worker itself panicked; the request is answered and
    /// the daemon lives on.
    pub const INTERNAL_ERROR: &str = "internal_error";
}

/// One response line under construction. Fields appear in insertion
/// order; `finish` closes the object (no trailing newline).
pub struct ResponseLine {
    out: String,
}

impl ResponseLine {
    pub fn new(id: &str, status: &str) -> ResponseLine {
        let mut r = ResponseLine {
            out: String::with_capacity(128),
        };
        r.out.push('{');
        ser_key(&mut r.out, "id");
        ser_str(&mut r.out, id);
        r.out.push(',');
        ser_key(&mut r.out, "status");
        ser_str(&mut r.out, status);
        r
    }

    fn sep(&mut self) {
        self.out.push(',');
    }

    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.sep();
        ser_key(&mut self.out, key);
        ser_str(&mut self.out, value);
        self
    }

    pub fn num(mut self, key: &str, value: f64) -> Self {
        self.sep();
        ser_key(&mut self.out, key);
        if value.fract() == 0.0 && value.abs() < 9e15 {
            self.out.push_str(&format!("{}", value as i64));
        } else {
            value.serialize_json(&mut self.out);
        }
        self
    }

    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.sep();
        ser_key(&mut self.out, key);
        value.serialize_json(&mut self.out);
        self
    }

    pub fn strs(mut self, key: &str, values: &[&str]) -> Self {
        self.sep();
        ser_key(&mut self.out, key);
        self.out.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            ser_str(&mut self.out, v);
        }
        self.out.push(']');
        self
    }

    /// Embeds already-serialized JSON verbatim (e.g. an `ObsReport`).
    pub fn raw(mut self, key: &str, json: &str) -> Self {
        self.sep();
        ser_key(&mut self.out, key);
        self.out.push_str(json);
        self
    }

    pub fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

/// Shorthand for an error-shaped response.
pub fn error_line(id: &str, status_label: &str, message: &str) -> String {
    ResponseLine::new(id, status_label)
        .str("error", message)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_bench_analyze_with_defaults() {
        let r = parse_request(r#"{"op":"analyze","bench":"rgbyuv"}"#).unwrap();
        let Request::Analyze(a) = r else { panic!() };
        assert_eq!(a.bench.as_deref(), Some("rgbyuv"));
        assert_eq!(a.version, "seq");
        assert_eq!(a.tenant, "anon");
        assert_eq!(a.id, "");
        assert!(a.source.is_none());
        assert_eq!(a.budget_ms, None);
    }

    #[test]
    fn analyze_is_the_default_op() {
        let r = parse_request(r#"{"bench":"md5","tenant":"t1","id":"x","budget_ms":500}"#).unwrap();
        let Request::Analyze(a) = r else { panic!() };
        assert_eq!(a.tenant, "t1");
        assert_eq!(a.id, "x");
        assert_eq!(a.budget_ms, Some(500));
    }

    #[test]
    fn parses_source_with_inputs() {
        let r = parse_request(
            r#"{"source":"void main() {}","inputs":{"in":[1,2.5]},"deadline_ms":100}"#,
        )
        .unwrap();
        let Request::Analyze(a) = r else { panic!() };
        assert_eq!(a.inputs, vec![("in".to_string(), vec![1.0, 2.5])]);
        assert_eq!(a.deadline_ms, Some(100));
    }

    #[test]
    fn rejects_contradictory_and_missing_programs() {
        assert!(parse_request(r#"{"op":"analyze"}"#)
            .unwrap_err()
            .contains("\"bench\" name or minc \"source\""));
        assert!(
            parse_request(r#"{"bench":"md5","source":"void main() {}"}"#)
                .unwrap_err()
                .contains("mutually exclusive")
        );
    }

    #[test]
    fn rejects_malformed_lines_and_unknown_ops() {
        assert!(parse_request("not json").unwrap_err().contains("malformed"));
        assert!(parse_request("[1,2]").unwrap_err().contains("object"));
        assert!(parse_request(r#"{"op":"fly"}"#)
            .unwrap_err()
            .contains("unknown op"));
    }

    #[test]
    fn parses_control_ops() {
        assert!(matches!(
            parse_request(r#"{"op":"ping"}"#),
            Ok(Request::Ping)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"stats"}"#),
            Ok(Request::Stats)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown"}"#),
            Ok(Request::Shutdown)
        ));
        let Ok(Request::TraceDump { path }) =
            parse_request(r#"{"op":"trace_dump","path":"/tmp/t.json"}"#)
        else {
            panic!()
        };
        assert_eq!(path, "/tmp/t.json");
    }

    #[test]
    fn request_id_aliases_id_and_mismatches_are_rejected() {
        let r = parse_request(r#"{"bench":"md5","request_id":"req-7"}"#).unwrap();
        let Request::Analyze(a) = r else { panic!() };
        assert_eq!(a.id, "req-7");

        let r = parse_request(r#"{"bench":"md5","id":"x","request_id":"x"}"#).unwrap();
        let Request::Analyze(a) = r else { panic!() };
        assert_eq!(a.id, "x");

        assert!(
            parse_request(r#"{"bench":"md5","id":"x","request_id":"y"}"#)
                .unwrap_err()
                .contains("disagree")
        );
    }

    #[test]
    fn parses_telemetry_ops() {
        let Ok(Request::Blackbox { path }) =
            parse_request(r#"{"op":"blackbox","path":"/tmp/b.json"}"#)
        else {
            panic!()
        };
        assert_eq!(path, "/tmp/b.json");
        assert!(parse_request(r#"{"op":"blackbox"}"#)
            .unwrap_err()
            .contains("path"));

        let Ok(Request::Subscribe { interval_ms, ticks }) = parse_request(r#"{"op":"subscribe"}"#)
        else {
            panic!()
        };
        assert_eq!((interval_ms, ticks), (500, 0));
        let Ok(Request::Subscribe { interval_ms, ticks }) =
            parse_request(r#"{"op":"subscribe","interval_ms":1,"ticks":3}"#)
        else {
            panic!()
        };
        assert_eq!((interval_ms, ticks), (10, 3), "interval is floored");

        assert!(matches!(
            parse_request(r#"{"op":"prometheus"}"#),
            Ok(Request::Prometheus)
        ));
    }

    #[test]
    fn dump_paths_are_validated_before_io() {
        let dir = std::env::temp_dir();
        let ok = dir.join("serve-proto-dump-ok.json");
        assert!(validate_dump_path(ok.to_str().unwrap()).is_ok());
        assert!(validate_dump_path("bare-filename.json").is_ok());

        assert!(validate_dump_path("").unwrap_err().contains("empty"));
        assert!(validate_dump_path(dir.to_str().unwrap())
            .unwrap_err()
            .contains("directory"));
        let missing = dir.join("no-such-parent-dir/x.json");
        assert!(validate_dump_path(missing.to_str().unwrap())
            .unwrap_err()
            .contains("does not exist"));
    }

    #[test]
    fn response_lines_are_single_line_json() {
        let line = ResponseLine::new("r1", status::OK)
            .num("patterns", 2.0)
            .strs("kinds", &["m", "r"])
            .num("find_ms", 1.25)
            .bool("degraded", false)
            .finish();
        assert!(!line.contains('\n'));
        let doc = parse(&line).unwrap();
        assert_eq!(doc.get("id").unwrap().as_str(), Some("r1"));
        assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(doc.get("patterns").unwrap().as_f64(), Some(2.0));
        assert_eq!(doc.get("find_ms").unwrap().as_f64(), Some(1.25));
        assert_eq!(doc.get("kinds").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(doc.get("degraded"), Some(&Json::Bool(false)));
    }

    #[test]
    fn bounded_reads_split_lines_and_cap_length() {
        let mut r = std::io::Cursor::new(b"{\"op\":\"ping\"}\nsecond line\n".to_vec());
        let LineRead::Line(a) = read_bounded_line(&mut r, 64).unwrap() else {
            panic!()
        };
        assert_eq!(a, "{\"op\":\"ping\"}");
        let LineRead::Line(b) = read_bounded_line(&mut r, 64).unwrap() else {
            panic!()
        };
        assert_eq!(b, "second line");
        assert!(matches!(
            read_bounded_line(&mut r, 64).unwrap(),
            LineRead::Eof
        ));
    }

    #[test]
    fn oversized_lines_are_refused_without_buffering_them() {
        let mut big = vec![b'x'; 10_000];
        big.push(b'\n');
        big.extend_from_slice(b"after\n");
        let mut r = std::io::Cursor::new(big);
        assert!(matches!(
            read_bounded_line(&mut r, 1024).unwrap(),
            LineRead::TooLong
        ));
    }

    #[test]
    fn invalid_utf8_decays_to_a_parseable_line_not_an_io_error() {
        let mut r = std::io::Cursor::new(b"\xff\xfe{bad}\n".to_vec());
        let LineRead::Line(l) = read_bounded_line(&mut r, 64).unwrap() else {
            panic!()
        };
        assert!(
            parse_request(&l).is_err(),
            "garbage parses to a labeled error"
        );
    }

    #[test]
    fn unterminated_trailing_data_is_still_delivered() {
        let mut r = std::io::Cursor::new(b"{\"op\":\"stats\"}".to_vec());
        let LineRead::Line(l) = read_bounded_line(&mut r, 64).unwrap() else {
            panic!()
        };
        assert!(matches!(parse_request(&l), Ok(Request::Stats)));
    }

    #[test]
    fn error_lines_carry_the_message() {
        let line = error_line("x", status::QUOTA, "tenant \"a\" out of tokens");
        let doc = parse(&line).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("quota"));
        assert!(doc
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("out of tokens"));
    }
}
