//! Per-tenant token buckets.
//!
//! Each tenant (the `tenant` field on analyze requests) gets an
//! independent bucket holding up to `burst` tokens, refilled at
//! `refill_per_sec` tokens per second. Admitting a request costs one
//! token; an empty bucket means a `quota` rejection. A `burst` of zero
//! disables quota enforcement entirely.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Quota knobs, shared by every tenant.
#[derive(Clone, Copy, Debug)]
pub struct QuotaConfig {
    /// Maximum stored tokens per tenant (0 = quotas disabled).
    pub burst: u32,
    /// Steady-state refill rate, tokens per second.
    pub refill_per_sec: f64,
}

impl Default for QuotaConfig {
    fn default() -> Self {
        QuotaConfig {
            burst: 0,
            refill_per_sec: 0.0,
        }
    }
}

struct TokenBucket {
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    fn try_take(&mut self, config: &QuotaConfig, now: Instant) -> bool {
        let elapsed = now.saturating_duration_since(self.last).as_secs_f64();
        // Never rewind `last`: a backwards clock (skew injection, or a
        // suspended host) must freeze refill, not bank a huge refill
        // for the moment the clock recovers.
        self.last = self.last.max(now);
        self.tokens = (self.tokens + elapsed * config.refill_per_sec).min(config.burst as f64);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// The tenant → bucket table. New tenants start with a full bucket.
pub struct TenantQuotas {
    config: QuotaConfig,
    buckets: Mutex<HashMap<String, TokenBucket>>,
    /// Injected clock skew (milliseconds, signed) applied to every
    /// refill computation — the chaos harness's lever for proving the
    /// buckets survive a clock that jumps either way. Zero in
    /// production; skew never mints more than `burst` tokens (the cap)
    /// and a backwards clock refills nothing (saturating elapsed).
    skew_ms: AtomicI64,
}

impl TenantQuotas {
    pub fn new(config: QuotaConfig) -> TenantQuotas {
        TenantQuotas {
            config,
            buckets: Mutex::new(HashMap::new()),
            skew_ms: AtomicI64::new(0),
        }
    }

    /// Takes one token from `tenant`'s bucket; `false` means the
    /// request must be rejected with a `quota` status.
    pub fn admit(&self, tenant: &str) -> bool {
        self.admit_at(tenant, self.skewed_now())
    }

    /// Skews the quota clock by `ms` (chaos injection). The next admit
    /// sees `now + ms`; negative skew freezes refill rather than
    /// panicking or minting tokens.
    pub fn set_skew_ms(&self, ms: i64) {
        self.skew_ms.store(ms, Ordering::Relaxed);
    }

    fn skewed_now(&self) -> Instant {
        let now = Instant::now();
        let ms = self.skew_ms.load(Ordering::Relaxed);
        if ms >= 0 {
            now.checked_add(Duration::from_millis(ms as u64))
                .unwrap_or(now)
        } else {
            now.checked_sub(Duration::from_millis(ms.unsigned_abs()))
                .unwrap_or(now)
        }
    }

    fn admit_at(&self, tenant: &str, now: Instant) -> bool {
        if self.config.burst == 0 {
            return true;
        }
        let mut buckets = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        let bucket = buckets.entry(tenant.to_string()).or_insert(TokenBucket {
            tokens: self.config.burst as f64,
            last: now,
        });
        bucket.try_take(&self.config, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn quotas(burst: u32, refill_per_sec: f64) -> TenantQuotas {
        TenantQuotas::new(QuotaConfig {
            burst,
            refill_per_sec,
        })
    }

    #[test]
    fn zero_burst_disables_enforcement() {
        let q = quotas(0, 0.0);
        for _ in 0..1000 {
            assert!(q.admit("anyone"));
        }
    }

    #[test]
    fn bursts_are_per_tenant_and_bounded() {
        let q = quotas(3, 0.0);
        let t0 = Instant::now();
        for _ in 0..3 {
            assert!(q.admit_at("a", t0));
        }
        assert!(!q.admit_at("a", t0), "bucket a is empty");
        // Tenant b's bucket is untouched by a's exhaustion.
        for _ in 0..3 {
            assert!(q.admit_at("b", t0));
        }
        assert!(!q.admit_at("b", t0));
    }

    #[test]
    fn refill_restores_tokens_but_never_past_burst() {
        let q = quotas(2, 10.0);
        let t0 = Instant::now();
        assert!(q.admit_at("t", t0));
        assert!(q.admit_at("t", t0));
        assert!(!q.admit_at("t", t0));
        // 100 ms at 10 tokens/s refills exactly one token.
        let t1 = t0 + Duration::from_millis(100);
        assert!(q.admit_at("t", t1));
        assert!(!q.admit_at("t", t1));
        // A long idle period caps at `burst`, not elapsed × rate.
        let t2 = t1 + Duration::from_secs(3600);
        assert!(q.admit_at("t", t2));
        assert!(q.admit_at("t", t2));
        assert!(!q.admit_at("t", t2));
    }

    #[test]
    fn clock_skew_never_mints_past_burst_and_never_panics_backwards() {
        let q = quotas(2, 1000.0);
        // Drain the bucket at real time.
        assert!(q.admit("t"));
        assert!(q.admit("t"));
        // A huge forward jump refills — but only to `burst`.
        q.set_skew_ms(3_600_000);
        assert!(q.admit("t"));
        assert!(q.admit("t"));
        assert!(!q.admit("t"), "skew caps at burst, not elapsed × rate");
        // A huge backward jump: elapsed saturates to zero, refill
        // freezes, nothing panics, and enforcement continues.
        q.set_skew_ms(-3_600_000);
        assert!(!q.admit("t"));
        assert!(!q.admit("t"));
        // Back to real time: enforcement still sane.
        q.set_skew_ms(0);
        assert!(!q.admit("t"), "no free tokens from the round trip");
    }
}
