//! Per-tenant token buckets.
//!
//! Each tenant (the `tenant` field on analyze requests) gets an
//! independent bucket holding up to `burst` tokens, refilled at
//! `refill_per_sec` tokens per second. Admitting a request costs one
//! token; an empty bucket means a `quota` rejection. A `burst` of zero
//! disables quota enforcement entirely.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Quota knobs, shared by every tenant.
#[derive(Clone, Copy, Debug)]
pub struct QuotaConfig {
    /// Maximum stored tokens per tenant (0 = quotas disabled).
    pub burst: u32,
    /// Steady-state refill rate, tokens per second.
    pub refill_per_sec: f64,
}

impl Default for QuotaConfig {
    fn default() -> Self {
        QuotaConfig {
            burst: 0,
            refill_per_sec: 0.0,
        }
    }
}

struct TokenBucket {
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    fn try_take(&mut self, config: &QuotaConfig, now: Instant) -> bool {
        let elapsed = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + elapsed * config.refill_per_sec).min(config.burst as f64);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// The tenant → bucket table. New tenants start with a full bucket.
pub struct TenantQuotas {
    config: QuotaConfig,
    buckets: Mutex<HashMap<String, TokenBucket>>,
}

impl TenantQuotas {
    pub fn new(config: QuotaConfig) -> TenantQuotas {
        TenantQuotas {
            config,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Takes one token from `tenant`'s bucket; `false` means the
    /// request must be rejected with a `quota` status.
    pub fn admit(&self, tenant: &str) -> bool {
        self.admit_at(tenant, Instant::now())
    }

    fn admit_at(&self, tenant: &str, now: Instant) -> bool {
        if self.config.burst == 0 {
            return true;
        }
        let mut buckets = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        let bucket = buckets.entry(tenant.to_string()).or_insert(TokenBucket {
            tokens: self.config.burst as f64,
            last: now,
        });
        bucket.try_take(&self.config, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn quotas(burst: u32, refill_per_sec: f64) -> TenantQuotas {
        TenantQuotas::new(QuotaConfig {
            burst,
            refill_per_sec,
        })
    }

    #[test]
    fn zero_burst_disables_enforcement() {
        let q = quotas(0, 0.0);
        for _ in 0..1000 {
            assert!(q.admit("anyone"));
        }
    }

    #[test]
    fn bursts_are_per_tenant_and_bounded() {
        let q = quotas(3, 0.0);
        let t0 = Instant::now();
        for _ in 0..3 {
            assert!(q.admit_at("a", t0));
        }
        assert!(!q.admit_at("a", t0), "bucket a is empty");
        // Tenant b's bucket is untouched by a's exhaustion.
        for _ in 0..3 {
            assert!(q.admit_at("b", t0));
        }
        assert!(!q.admit_at("b", t0));
    }

    #[test]
    fn refill_restores_tokens_but_never_past_burst() {
        let q = quotas(2, 10.0);
        let t0 = Instant::now();
        assert!(q.admit_at("t", t0));
        assert!(q.admit_at("t", t0));
        assert!(!q.admit_at("t", t0));
        // 100 ms at 10 tokens/s refills exactly one token.
        let t1 = t0 + Duration::from_millis(100);
        assert!(q.admit_at("t", t1));
        assert!(!q.admit_at("t", t1));
        // A long idle period caps at `burst`, not elapsed × rate.
        let t2 = t1 + Duration::from_secs(3600);
        assert!(q.admit_at("t", t2));
        assert!(q.admit_at("t", t2));
        assert!(!q.admit_at("t", t2));
    }
}
