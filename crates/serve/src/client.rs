//! A resilient daemon client: jittered connect backoff, a per-process
//! retry budget, deadline propagation, and per-tenant circuit breakers.
//!
//! The raw protocol is trivial (one JSON line each way); what this
//! module adds is the discipline around transport failure:
//!
//! - **connect backoff** — jittered exponential delays between connect
//!   attempts, bounded by a hard deadline, so a daemon that never
//!   comes up fails the caller in bounded time instead of spinning;
//! - **retry budget** — transport-level retries (reconnect + resend)
//!   draw from one per-process [`RetryBudget`]; when a flaky daemon
//!   has consumed it, further failures surface immediately instead of
//!   amplifying load with retries;
//! - **deadline propagation** — every retry, backoff sleep, and socket
//!   read is clipped to the caller's deadline; the client never
//!   retries past it;
//! - **circuit breakers** — consecutive `overloaded`/`internal_error`
//!   answers for a tenant open that tenant's breaker
//!   ([`Breakers`]); while open, requests fail fast with
//!   [`ClientError::BreakerOpen`] (never sent), and after a cooldown a
//!   single half-open probe decides whether to close it.
//!
//! Analyze requests are idempotent (the daemon recomputes or serves
//! from cache), which is what makes resend-on-reconnect safe.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use obs::json::{parse, Json};

/// SplitMix64: a tiny deterministic PRNG for backoff jitter (and for
/// the chaos harness's fault schedules). Not cryptographic; seedable
/// so chaos runs replay byte-identically.
pub struct SplitMix64(u64);

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)` (0 when `n` is 0).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Seeded, collision-checked request-id generator. Every id a process
/// sends should come from one of these: the suffix comes from a
/// deterministic PRNG (so runs replay), the caller's prefix names the
/// logical stream, and a per-generator set guarantees no id is handed
/// out twice — the flight recorder and trace correlate purely on id,
/// so a duplicate would merge two requests' histories.
pub struct RequestIds {
    rng: SplitMix64,
    issued: std::collections::HashSet<String>,
}

impl RequestIds {
    pub fn new(seed: u64) -> RequestIds {
        RequestIds {
            rng: SplitMix64::new(seed),
            issued: std::collections::HashSet::new(),
        }
    }

    /// The next unique id, `<prefix>-<8 hex digits>`. Collisions (the
    /// suffix space is 32 bits) re-roll until fresh.
    pub fn next(&mut self, prefix: &str) -> String {
        loop {
            let id = format!("{prefix}-{:08x}", self.rng.next_u64() as u32);
            if self.issued.insert(id.clone()) {
                return id;
            }
        }
    }

    /// How many ids this generator has handed out.
    pub fn issued(&self) -> usize {
        self.issued.len()
    }
}

/// Client knobs. Defaults suit a local daemon: fast first retry,
/// half-second cap, breakers that open after four consecutive
/// capacity-style failures and probe again 250 ms later.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    pub socket: PathBuf,
    /// First backoff step (doubles per attempt, jittered ±50%).
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Jitter seed (deterministic per client).
    pub seed: u64,
    /// Consecutive `overloaded`/`internal_error` answers that open a
    /// tenant's breaker (0 disables breakers).
    pub breaker_threshold: u32,
    /// How long an open breaker rejects before allowing a half-open
    /// probe.
    pub breaker_cooldown: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            socket: PathBuf::from("repro-serve.sock"),
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            seed: 0x5eed,
            breaker_threshold: 4,
            breaker_cooldown: Duration::from_millis(250),
        }
    }
}

/// Why a request failed client-side. Daemon-side rejections
/// (`overloaded`, `quota`, …) are *answers*, not errors — they come
/// back as parsed responses.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure with no deadline or budget left to retry.
    Io(std::io::Error),
    /// The caller's deadline expired (possibly mid-retry).
    DeadlineExceeded,
    /// The per-process retry budget is exhausted.
    RetryBudgetExhausted,
    /// The tenant's circuit breaker is open; the request was not sent.
    BreakerOpen,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport failed: {e}"),
            ClientError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ClientError::RetryBudgetExhausted => write!(f, "retry budget exhausted"),
            ClientError::BreakerOpen => write!(f, "circuit breaker open"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A per-process budget of transport retries, shared by every client
/// in the process. One flaky connection must not retry without bound,
/// and a hundred clients must not each bring their own bound.
pub struct RetryBudget {
    remaining: AtomicI64,
    used: AtomicI64,
}

impl RetryBudget {
    pub fn new(budget: u64) -> Arc<RetryBudget> {
        Arc::new(RetryBudget {
            remaining: AtomicI64::new(budget.min(i64::MAX as u64) as i64),
            used: AtomicI64::new(0),
        })
    }

    /// Takes one retry token; `false` means fail instead of retrying.
    pub fn try_take(&self) -> bool {
        if self.remaining.fetch_sub(1, Ordering::Relaxed) > 0 {
            self.used.fetch_add(1, Ordering::Relaxed);
            obs::counter("client.retries").inc();
            true
        } else {
            self.remaining.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed).max(0) as u64
    }

    pub fn remaining(&self) -> u64 {
        self.remaining.load(Ordering::Relaxed).max(0) as u64
    }
}

struct BreakerState {
    consecutive: u32,
    open_until: Option<Instant>,
    /// A half-open probe is in flight; hold other requests out until
    /// it reports.
    probing: bool,
}

/// Per-tenant circuit breakers, shared across the process's clients.
pub struct Breakers {
    threshold: u32,
    cooldown: Duration,
    map: Mutex<HashMap<String, BreakerState>>,
    opens: std::sync::atomic::AtomicU64,
    skipped: std::sync::atomic::AtomicU64,
}

impl Breakers {
    pub fn new(threshold: u32, cooldown: Duration) -> Arc<Breakers> {
        Arc::new(Breakers {
            threshold,
            cooldown,
            map: Mutex::new(HashMap::new()),
            opens: std::sync::atomic::AtomicU64::new(0),
            skipped: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// May a request for `tenant` go out? `false` counts a skip. After
    /// the cooldown one caller is admitted as the half-open probe; its
    /// outcome (via [`Breakers::record`]) closes or re-opens the
    /// breaker.
    pub fn admit(&self, tenant: &str) -> bool {
        if self.threshold == 0 {
            return true;
        }
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        let Some(st) = map.get_mut(tenant) else {
            return true;
        };
        match st.open_until {
            None => true,
            Some(until) => {
                if Instant::now() < until || st.probing {
                    self.skipped.fetch_add(1, Ordering::Relaxed);
                    obs::counter("client.breaker_skipped").inc();
                    false
                } else {
                    st.probing = true;
                    true
                }
            }
        }
    }

    /// Records an answer for `tenant`. Capacity-style failures
    /// (`overloaded`, `internal_error`) accumulate; anything else
    /// resets and closes.
    pub fn record(&self, tenant: &str, failure: bool) {
        if self.threshold == 0 {
            return;
        }
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        let st = map.entry(tenant.to_string()).or_insert(BreakerState {
            consecutive: 0,
            open_until: None,
            probing: false,
        });
        st.probing = false;
        if failure {
            st.consecutive = st.consecutive.saturating_add(1);
            if st.consecutive >= self.threshold {
                if st.open_until.is_none() {
                    self.opens.fetch_add(1, Ordering::Relaxed);
                    obs::counter("client.breaker_opens").inc();
                    obs::gauge("client.breaker_open").add(1.0);
                    obs::flight::event(
                        "breaker_trip",
                        "",
                        format!("tenant={tenant} consecutive={}", st.consecutive),
                    );
                }
                st.open_until = Some(Instant::now() + self.cooldown);
            }
        } else {
            if st.open_until.is_some() {
                obs::gauge("client.breaker_open").add(-1.0);
            }
            st.consecutive = 0;
            st.open_until = None;
        }
    }

    /// Closed→open transitions so far.
    pub fn opens(&self) -> u64 {
        self.opens.load(Ordering::Relaxed)
    }

    /// Requests rejected client-side because a breaker was open.
    pub fn skipped(&self) -> u64 {
        self.skipped.load(Ordering::Relaxed)
    }

    /// Breakers open right now.
    pub fn open_now(&self) -> usize {
        let map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        let now = Instant::now();
        map.values()
            .filter(|st| st.open_until.is_some_and(|u| now < u))
            .count()
    }
}

/// One resilient connection to the daemon. Synchronous: one request in
/// flight at a time (pipelined load stays in `repro-loadgen`'s raw
/// connections; this client is the reliability layer for boot probes,
/// chaos traffic, and tests).
pub struct Client {
    config: ClientConfig,
    stream: Option<(UnixStream, BufReader<UnixStream>)>,
    rng: SplitMix64,
    budget: Arc<RetryBudget>,
    breakers: Arc<Breakers>,
}

impl Client {
    /// Builds a client and connects with jittered backoff, giving up
    /// at `deadline`. The daemon must answer a ping to count as up.
    pub fn connect(
        config: ClientConfig,
        budget: Arc<RetryBudget>,
        breakers: Arc<Breakers>,
        deadline: Instant,
    ) -> Result<Client, ClientError> {
        let mut c = Client {
            rng: SplitMix64::new(config.seed),
            config,
            stream: None,
            budget,
            breakers,
        };
        c.ensure_connected(deadline, true)?;
        Ok(c)
    }

    /// Waits (jittered exponential backoff) until the daemon on
    /// `socket` answers a ping, or `deadline` passes. The boot probe
    /// used by `repro-loadgen` and `repro-chaos`.
    pub fn await_ready(socket: &Path, deadline: Instant, seed: u64) -> bool {
        let config = ClientConfig {
            socket: socket.to_path_buf(),
            seed,
            ..ClientConfig::default()
        };
        Client::connect(
            config,
            RetryBudget::new(0),
            Breakers::new(0, Duration::ZERO),
            deadline,
        )
        .is_ok()
    }

    /// One jittered exponential backoff sleep for attempt `attempt`,
    /// clipped so it never sleeps past `deadline`.
    fn backoff(&mut self, attempt: u32, deadline: Instant) {
        let base = self.config.base_backoff.as_millis() as u64;
        let cap = self.config.max_backoff.as_millis() as u64;
        let step = base.saturating_mul(1u64 << attempt.min(16)).min(cap.max(1));
        // Jitter in [step/2, step): desynchronizes a thundering herd
        // without ever collapsing to zero.
        let jittered = step / 2 + self.rng.below(step.max(2) / 2);
        let remaining = deadline.saturating_duration_since(Instant::now());
        std::thread::sleep(Duration::from_millis(jittered).min(remaining));
    }

    /// Connects (with backoff) if not connected. `probe` additionally
    /// requires a ping round-trip, so "connected" means "serving", not
    /// just "listening".
    fn ensure_connected(&mut self, deadline: Instant, probe: bool) -> Result<(), ClientError> {
        if self.stream.is_some() {
            return Ok(());
        }
        let mut attempt: u32 = 0;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(ClientError::DeadlineExceeded);
            }
            if let Ok(stream) = UnixStream::connect(&self.config.socket) {
                let _ = stream.set_read_timeout(Some(remaining));
                let mut reader = BufReader::new(stream.try_clone().map_err(ClientError::Io)?);
                let ok = if probe {
                    let mut s = &stream;
                    let mut line = String::new();
                    s.write_all(b"{\"op\":\"ping\"}\n").is_ok()
                        && reader.read_line(&mut line).is_ok_and(|n| n > 0)
                        && line.contains("\"ok\"")
                } else {
                    true
                };
                if ok {
                    self.stream = Some((stream, reader));
                    return Ok(());
                }
            }
            self.backoff(attempt, deadline);
            attempt += 1;
        }
    }

    fn drop_connection(&mut self) {
        self.stream = None;
    }

    /// Sends `line` and reads the response whose echoed id is `id`,
    /// retrying through transport failures within `deadline` and the
    /// shared retry budget. The tenant's breaker is consulted before
    /// the first byte goes out and fed with the answer.
    pub fn request(
        &mut self,
        id: &str,
        tenant: &str,
        line: &str,
        deadline: Instant,
    ) -> Result<Json, ClientError> {
        if !self.breakers.admit(tenant) {
            obs::flight::event("breaker_skip", id, format!("tenant={tenant}"));
            return Err(ClientError::BreakerOpen);
        }
        let mut attempt: u32 = 0;
        loop {
            match self.try_once(id, line, deadline) {
                Ok(doc) => {
                    let status = doc.get("status").and_then(Json::as_str).unwrap_or("");
                    let failure = status == "overloaded" || status == "internal_error";
                    self.breakers.record(tenant, failure);
                    return Ok(doc);
                }
                Err(e) => {
                    self.drop_connection();
                    // Deadline first: never retry past the caller's
                    // deadline, whatever the budget says.
                    if Instant::now() >= deadline {
                        self.breakers.record(tenant, false);
                        return Err(match e {
                            ClientError::Io(_) | ClientError::DeadlineExceeded => {
                                ClientError::DeadlineExceeded
                            }
                            other => other,
                        });
                    }
                    if !self.budget.try_take() {
                        self.breakers.record(tenant, false);
                        return Err(ClientError::RetryBudgetExhausted);
                    }
                    obs::flight::event("retry", id, format!("attempt={}", attempt + 1));
                    self.backoff(attempt, deadline);
                    attempt += 1;
                }
            }
        }
    }

    /// One send/receive attempt over the current (or a fresh)
    /// connection. Any io failure, EOF, or unparseable frame is an
    /// `Err`; responses to other ids (stale answers from an earlier
    /// incarnation of this connection) are skipped.
    fn try_once(&mut self, id: &str, line: &str, deadline: Instant) -> Result<Json, ClientError> {
        self.ensure_connected(deadline, false)?;
        let (stream, reader) = self.stream.as_mut().expect("just connected");
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(ClientError::DeadlineExceeded);
        }
        let _ = stream.set_read_timeout(Some(remaining));
        let mut s = &*stream;
        s.write_all(line.as_bytes())
            .and_then(|_| s.write_all(b"\n"))
            .and_then(|_| s.flush())
            .map_err(ClientError::Io)?;
        loop {
            let mut resp = String::new();
            match reader.read_line(&mut resp) {
                Ok(0) => {
                    return Err(ClientError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "daemon closed the connection mid-request",
                    )))
                }
                Ok(_) => {}
                Err(e) => return Err(ClientError::Io(e)),
            }
            let doc = parse(resp.trim_end()).map_err(|e| {
                ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unparseable response: {e}"),
                ))
            })?;
            if doc.get("id").and_then(Json::as_str) == Some(id) {
                return Ok(doc);
            }
            // Not ours (stale duplicate): keep reading within the
            // deadline.
            if Instant::now() >= deadline {
                return Err(ClientError::DeadlineExceeded);
            }
        }
    }

    /// Writes `line` without waiting for the answer (chaos harness
    /// building block for mid-request disconnects).
    pub fn send_only(&mut self, line: &str, deadline: Instant) -> Result<(), ClientError> {
        self.ensure_connected(deadline, false)?;
        let (stream, _) = self.stream.as_mut().expect("just connected");
        let mut s = &*stream;
        s.write_all(line.as_bytes())
            .and_then(|_| s.write_all(b"\n"))
            .and_then(|_| s.flush())
            .map_err(ClientError::Io)
    }

    /// Abruptly drops the connection (chaos harness: simulates a
    /// client crash mid-request; the daemon sees a disconnect with a
    /// request possibly in flight). The next request reconnects.
    pub fn inject_disconnect(&mut self) {
        if let Some((stream, _)) = self.stream.take() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }

    pub fn breakers(&self) -> &Arc<Breakers> {
        &self.breakers
    }

    pub fn budget(&self) -> &Arc<RetryBudget> {
        &self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(8);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut r = SplitMix64::new(9);
        for _ in 0..100 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn request_ids_are_unique_and_seed_deterministic() {
        let mut a = RequestIds::new(42);
        let mut b = RequestIds::new(42);
        let ids_a: Vec<String> = (0..1000).map(|_| a.next("r")).collect();
        let ids_b: Vec<String> = (0..1000).map(|_| b.next("r")).collect();
        assert_eq!(ids_a, ids_b, "same seed, same ids");
        let unique: std::collections::HashSet<&String> = ids_a.iter().collect();
        assert_eq!(unique.len(), ids_a.len(), "no duplicates");
        assert_eq!(a.issued(), 1000);
        assert!(ids_a[0].starts_with("r-") && ids_a[0].len() == "r-".len() + 8);

        let mut c = RequestIds::new(43);
        assert_ne!(c.next("r"), ids_a[0], "different seed, different stream");
        // Prefixes partition the id space even within one generator.
        assert!(c.next("hot").starts_with("hot-"));
    }

    #[test]
    fn retry_budget_is_shared_and_bounded() {
        let budget = RetryBudget::new(2);
        assert!(budget.try_take());
        assert!(budget.try_take());
        assert!(!budget.try_take(), "third retry refused");
        assert!(!budget.try_take(), "refusal is stable, not oscillating");
        assert_eq!(budget.used(), 2);
        assert_eq!(budget.remaining(), 0);
    }

    #[test]
    fn breaker_opens_after_threshold_and_half_open_probes() {
        let b = Breakers::new(3, Duration::from_millis(30));
        // Two failures: still closed.
        b.record("t", true);
        b.record("t", true);
        assert!(b.admit("t"));
        // Third consecutive failure opens it.
        b.record("t", true);
        assert_eq!(b.opens(), 1);
        assert_eq!(b.open_now(), 1);
        assert!(!b.admit("t"), "open breaker rejects");
        assert!(b.skipped() >= 1);
        // Other tenants are unaffected.
        assert!(b.admit("other"));
        // After the cooldown, exactly one probe gets through.
        std::thread::sleep(Duration::from_millis(40));
        assert!(b.admit("t"), "half-open probe admitted");
        assert!(!b.admit("t"), "only one probe at a time");
        // Probe succeeds: breaker closes and traffic resumes.
        b.record("t", false);
        assert!(b.admit("t"));
        assert_eq!(b.open_now(), 0);
        assert_eq!(b.opens(), 1, "close does not recount");
    }

    #[test]
    fn failed_probe_reopens_without_recounting() {
        let b = Breakers::new(2, Duration::from_millis(20));
        b.record("t", true);
        b.record("t", true);
        assert_eq!(b.opens(), 1);
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.admit("t"), "probe admitted");
        b.record("t", true); // probe fails → re-open
        assert!(!b.admit("t"));
        assert_eq!(b.opens(), 1, "re-open extends, not recounts");
    }

    #[test]
    fn zero_threshold_disables_breakers() {
        let b = Breakers::new(0, Duration::from_millis(10));
        for _ in 0..100 {
            b.record("t", true);
            assert!(b.admit("t"));
        }
        assert_eq!(b.opens(), 0);
    }

    #[test]
    fn connect_to_a_missing_daemon_fails_within_the_deadline() {
        let sock = std::env::temp_dir().join(format!(
            "repro-client-test-{}-noone.sock",
            std::process::id()
        ));
        let started = Instant::now();
        let deadline = started + Duration::from_millis(200);
        let ok = Client::await_ready(&sock, deadline, 1);
        assert!(!ok, "no daemon, no readiness");
        let waited = started.elapsed();
        assert!(
            waited >= Duration::from_millis(150) && waited < Duration::from_secs(5),
            "bounded by the deadline, not a spin or a hang: {waited:?}"
        );
    }
}
