//! Deterministic chaos injection for the daemon (`fault-inject` only).
//!
//! A [`ChaosPlan`] scripts service-level faults the way the engine's
//! `FaultPlan` scripts match-job faults: everything is keyed by a
//! deterministic ordinal — the global serve-job sequence for worker
//! faults, the per-process write/read sequences for socket faults — so
//! a seeded run reproduces the same fault schedule regardless of
//! thread interleaving. The plan itself is built by `repro-chaos` from
//! one seed; this module just executes it and counts what fired.
//!
//! Fault classes:
//!
//! - **worker kill** — the serve worker popping job `n` exits abruptly
//!   with the job parked in its slot; the watchdog must requeue the
//!   orphan and respawn the slot;
//! - **worker stall** — the worker sleeps mid-request, freezing its
//!   heartbeat; the watchdog must supersede it with a replacement;
//! - **torn write** — a response line is written in tiny chunks with
//!   delays between them, exercising client-side reassembly;
//! - **delayed read** — the connection reader sleeps before handling a
//!   request line, simulating a daemon that is slow to schedule reads.
//!
//! Quota-clock skew rides alongside via
//! [`Server::set_quota_skew_ms`](crate::Server::set_quota_skew_ms).
//! None of this compiles into production builds; a daemon built
//! without `fault-inject` is byte-for-byte the PR 6 daemon.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The scripted fault schedule. Ordinals are 0-based.
#[derive(Clone, Debug, Default)]
pub struct ChaosPlan {
    /// Serve-job ordinals at which the popping worker dies mid-request.
    pub kill_at_jobs: Vec<u64>,
    /// Serve-job ordinals at which the worker stalls for the given
    /// duration before processing (heartbeat goes stale while busy).
    pub stall_at_jobs: Vec<(u64, Duration)>,
    /// Every `torn_write_every`-th response write is torn into
    /// `torn_chunk`-byte pieces with `torn_delay` sleeps between (0 =
    /// off).
    pub torn_write_every: u64,
    pub torn_chunk: usize,
    pub torn_delay: Duration,
    /// Every `read_delay_every`-th request line sleeps `read_delay`
    /// before being handled (0 = off).
    pub read_delay_every: u64,
    pub read_delay: Duration,
}

/// What one serve job should suffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobChaos {
    None,
    /// The worker thread exits abruptly, stranding the parked job.
    Kill,
    /// The worker sleeps this long before processing.
    Stall(Duration),
}

/// Counters of faults that actually fired (the chaos report's
/// ground truth for "faults injected").
#[derive(Clone, Copy, Debug, Default, serde::Serialize)]
pub struct ChaosMetrics {
    pub worker_kills: u64,
    pub worker_stalls: u64,
    pub torn_writes: u64,
    pub read_delays: u64,
}

/// Live injection state: the plan plus the deterministic sequences.
pub struct ChaosState {
    plan: ChaosPlan,
    job_seq: AtomicU64,
    write_seq: AtomicU64,
    read_seq: AtomicU64,
    kills: AtomicU64,
    stalls: AtomicU64,
    torn: AtomicU64,
    delayed: AtomicU64,
}

impl ChaosState {
    pub fn new(plan: ChaosPlan) -> ChaosState {
        ChaosState {
            plan,
            job_seq: AtomicU64::new(0),
            write_seq: AtomicU64::new(0),
            read_seq: AtomicU64::new(0),
            kills: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            torn: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
        }
    }

    /// Claims the next serve-job ordinal and returns its fault.
    pub(crate) fn next_job_fault(&self) -> JobChaos {
        let n = self.job_seq.fetch_add(1, Ordering::Relaxed);
        if self.plan.kill_at_jobs.contains(&n) {
            self.kills.fetch_add(1, Ordering::Relaxed);
            obs::instant("chaos.worker_kill");
            return JobChaos::Kill;
        }
        if let Some((_, d)) = self.plan.stall_at_jobs.iter().find(|(at, _)| *at == n) {
            self.stalls.fetch_add(1, Ordering::Relaxed);
            obs::instant("chaos.worker_stall");
            return JobChaos::Stall(*d);
        }
        JobChaos::None
    }

    /// Claims the next response-write ordinal; `Some` means tear this
    /// write into `(chunk, delay)` pieces.
    pub(crate) fn torn_write(&self) -> Option<(usize, Duration)> {
        if self.plan.torn_write_every == 0 {
            return None;
        }
        let n = self.write_seq.fetch_add(1, Ordering::Relaxed);
        if (n + 1).is_multiple_of(self.plan.torn_write_every) {
            self.torn.fetch_add(1, Ordering::Relaxed);
            obs::instant("chaos.torn_write");
            Some((self.plan.torn_chunk.max(1), self.plan.torn_delay))
        } else {
            None
        }
    }

    /// Claims the next request-read ordinal; `Some` means sleep before
    /// handling the line.
    pub(crate) fn read_delay(&self) -> Option<Duration> {
        if self.plan.read_delay_every == 0 {
            return None;
        }
        let n = self.read_seq.fetch_add(1, Ordering::Relaxed);
        if (n + 1).is_multiple_of(self.plan.read_delay_every) {
            self.delayed.fetch_add(1, Ordering::Relaxed);
            obs::instant("chaos.read_delay");
            Some(self.plan.read_delay)
        } else {
            None
        }
    }

    pub fn metrics(&self) -> ChaosMetrics {
        ChaosMetrics {
            worker_kills: self.kills.load(Ordering::Relaxed),
            worker_stalls: self.stalls.load(Ordering::Relaxed),
            torn_writes: self.torn.load(Ordering::Relaxed),
            read_delays: self.delayed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_faults_fire_at_their_ordinals_exactly_once() {
        let state = ChaosState::new(ChaosPlan {
            kill_at_jobs: vec![1],
            stall_at_jobs: vec![(3, Duration::from_millis(5))],
            ..ChaosPlan::default()
        });
        let faults: Vec<JobChaos> = (0..5).map(|_| state.next_job_fault()).collect();
        assert_eq!(
            faults,
            vec![
                JobChaos::None,
                JobChaos::Kill,
                JobChaos::None,
                JobChaos::Stall(Duration::from_millis(5)),
                JobChaos::None,
            ]
        );
        let m = state.metrics();
        assert_eq!((m.worker_kills, m.worker_stalls), (1, 1));
    }

    #[test]
    fn write_and_read_faults_follow_their_cadence() {
        let state = ChaosState::new(ChaosPlan {
            torn_write_every: 2,
            torn_chunk: 3,
            torn_delay: Duration::from_millis(1),
            read_delay_every: 3,
            read_delay: Duration::from_millis(2),
            ..ChaosPlan::default()
        });
        let torn: Vec<bool> = (0..6).map(|_| state.torn_write().is_some()).collect();
        assert_eq!(torn, vec![false, true, false, true, false, true]);
        let delayed: Vec<bool> = (0..6).map(|_| state.read_delay().is_some()).collect();
        assert_eq!(delayed, vec![false, false, true, false, false, true]);
        let m = state.metrics();
        assert_eq!((m.torn_writes, m.read_delays), (3, 2));
    }
}
