//! Load generator for the analysis daemon: replays a concurrent mix of
//! `analyze` requests over starbench benchmarks against a live
//! `repro-serve`, then writes the `BENCH_serve.json` report CI gates on
//! (`obs_check --serve`).
//!
//! ```text
//! repro-loadgen --socket /tmp/repro.sock --requests 1000 \
//!               --connections 32 --tenants 4 --out BENCH_serve.json --shutdown
//! ```
//!
//! Every connection pipelines up to `--pipeline` requests and matches
//! responses back by the echoed `id`; any response that fails to
//! parse, lacks a status, or answers an unknown id counts as a
//! protocol error — the gate requires zero.

use obs::json::{parse, Json};
use obs::ObsReport;
use repro_serve::{unknown_bench_message, Client, RequestIds};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::Shutdown;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

struct Opts {
    socket: PathBuf,
    requests: usize,
    connections: usize,
    tenants: usize,
    pipeline: usize,
    benches: Vec<String>,
    out: Option<PathBuf>,
    shutdown: bool,
    subscribe: bool,
    boot_wait_ms: u64,
}

fn parse_flag<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(value) = value else {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    };
    value.parse().unwrap_or_else(|_| {
        eprintln!("invalid value for {flag}: got {value:?}");
        std::process::exit(2);
    })
}

fn opts() -> Opts {
    let mut o = Opts {
        socket: PathBuf::from("repro-serve.sock"),
        requests: 1000,
        connections: 32,
        tenants: 4,
        pipeline: 4,
        benches: Vec::new(),
        out: None,
        shutdown: false,
        subscribe: false,
        boot_wait_ms: 30_000,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => o.socket = parse_flag(&arg, args.next()),
            "--requests" => o.requests = parse_flag(&arg, args.next()),
            "--connections" => o.connections = parse_flag(&arg, args.next()),
            "--tenants" => o.tenants = parse_flag(&arg, args.next()),
            "--pipeline" => o.pipeline = parse_flag(&arg, args.next()),
            "--bench" => {
                let name: String = parse_flag(&arg, args.next());
                if starbench::benchmark(&name).is_none() {
                    eprintln!("{}", unknown_bench_message(&name));
                    std::process::exit(2);
                }
                o.benches.push(name);
            }
            "--out" => o.out = Some(parse_flag(&arg, args.next())),
            "--shutdown" => o.shutdown = true,
            "--subscribe" => o.subscribe = true,
            "--boot-wait-ms" => o.boot_wait_ms = parse_flag(&arg, args.next()),
            other => {
                eprintln!(
                    "unknown flag {other:?}\n\
                     usage: repro-loadgen [--socket PATH] [--requests N] [--connections N]\n\
                     \x20                    [--tenants N] [--pipeline N] [--bench NAME ...]\n\
                     \x20                    [--out PATH] [--boot-wait-ms MS] [--subscribe] [--shutdown]"
                );
                std::process::exit(2);
            }
        }
    }
    if o.benches.is_empty() {
        o.benches = starbench::all_benchmarks()
            .iter()
            .map(|b| b.name.to_string())
            .collect();
    }
    o.requests = o.requests.max(1);
    o.connections = o.connections.max(1).min(o.requests);
    o.tenants = o.tenants.max(1);
    o.pipeline = o.pipeline.max(1);
    o
}

/// Waits for the daemon to answer a ping through the resilient
/// client's jittered exponential backoff (no fixed-interval spin),
/// with a hard deadline: a daemon that never comes up fails the run in
/// bounded time.
fn await_boot(o: &Opts) {
    let deadline = Instant::now() + Duration::from_millis(o.boot_wait_ms);
    if !Client::await_ready(&o.socket, deadline, 0x10ad) {
        eprintln!(
            "repro-loadgen: no daemon on {} after {} ms",
            o.socket.display(),
            o.boot_wait_ms
        );
        std::process::exit(1);
    }
}

#[derive(Default)]
struct Tally {
    latencies_ms: Vec<f64>,
    by_status: HashMap<String, u64>,
    /// Per-tenant latencies of answered requests, for tenant p50/p99.
    by_tenant: HashMap<String, Vec<f64>>,
    protocol_errors: u64,
}

/// One connection worker: pipelines its slice of the request ids,
/// matching responses by id.
fn run_connection(o: &Opts, conn_index: usize, indices: &[usize]) -> Tally {
    let mut tally = Tally::default();
    let Ok(stream) = UnixStream::connect(&o.socket) else {
        tally.protocol_errors += indices.len() as u64;
        return tally;
    };
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = &stream;
    // Seeded per connection: ids are collision-checked, reproducible,
    // and globally unique thanks to the `c{conn}` prefix.
    let mut ids = RequestIds::new(0x10adc0de ^ conn_index as u64);
    let prefix = format!("c{conn_index}");
    let mut outstanding: HashMap<String, (String, Instant)> = HashMap::new();
    let mut next = 0usize;

    while next < indices.len() || !outstanding.is_empty() {
        while next < indices.len() && outstanding.len() < o.pipeline {
            let n = indices[next];
            next += 1;
            let id = ids.next(&prefix);
            let tenant = format!("t{}", n % o.tenants);
            let line = format!(
                "{{\"op\":\"analyze\",\"request_id\":{id:?},\"tenant\":{tenant:?},\"bench\":{:?}}}\n",
                o.benches[n % o.benches.len()],
            );
            outstanding.insert(id, (tenant, Instant::now()));
            if writer.write_all(line.as_bytes()).is_err() {
                tally.protocol_errors += outstanding.len() as u64;
                return tally;
            }
        }
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(n) if n > 0 => {}
            _ => {
                // EOF or error with requests still unanswered.
                tally.protocol_errors += outstanding.len() as u64;
                return tally;
            }
        }
        let Ok(doc) = parse(line.trim_end()) else {
            tally.protocol_errors += 1;
            continue;
        };
        let id = doc.get("id").and_then(Json::as_str).unwrap_or("");
        let status = doc.get("status").and_then(Json::as_str);
        match (outstanding.remove(id), status) {
            (Some((tenant, sent)), Some(status)) => {
                let ms = sent.elapsed().as_secs_f64() * 1e3;
                tally.latencies_ms.push(ms);
                tally.by_tenant.entry(tenant).or_default().push(ms);
                *tally.by_status.entry(status.to_string()).or_default() += 1;
            }
            _ => tally.protocol_errors += 1,
        }
    }
    tally
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// A live metrics subscription held open for the duration of the load:
/// a reader thread counts `metrics` ticks until the stream is shut
/// down, exercising the streaming egress path under real traffic.
struct Subscription {
    stream: UnixStream,
    reader: std::thread::JoinHandle<u64>,
}

fn start_subscription(o: &Opts) -> Option<Subscription> {
    let stream = UnixStream::connect(&o.socket).ok()?;
    let mut w = &stream;
    w.write_all(b"{\"op\":\"subscribe\",\"interval_ms\":100}\n")
        .ok()?;
    let mut reader = BufReader::new(stream.try_clone().ok()?);
    let handle = std::thread::spawn(move || {
        let mut ticks = 0u64;
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(n) if n > 0 => {}
                _ => return ticks,
            }
            if let Ok(doc) = parse(line.trim_end()) {
                if doc.get("op").and_then(Json::as_str) == Some("metrics") {
                    ticks += 1;
                }
            }
        }
    });
    Some(Subscription {
        stream,
        reader: handle,
    })
}

impl Subscription {
    /// Hangs up and returns how many metric ticks arrived.
    fn finish(self) -> u64 {
        let _ = self.stream.shutdown(Shutdown::Both);
        self.reader.join().unwrap_or(0)
    }
}

/// One synchronous control request on a fresh connection.
fn control(o: &Opts, request: &str) -> Option<Json> {
    let stream = UnixStream::connect(&o.socket).ok()?;
    let mut reader = BufReader::new(stream.try_clone().ok()?);
    let mut s = &stream;
    s.write_all(request.as_bytes()).ok()?;
    s.write_all(b"\n").ok()?;
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    parse(line.trim_end()).ok()
}

fn num(doc: Option<&Json>, key: &str) -> f64 {
    doc.and_then(|d| d.get(key))
        .and_then(Json::as_f64)
        .unwrap_or(0.0)
}

/// Re-serializes a parsed [`Json`] value (the shim's value tree has no
/// serializer of its own — its derives are fully typed).
fn render(json: &Json, out: &mut String) {
    match json {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) if n.fract() == 0.0 && n.abs() < 9e15 => {
            out.push_str(&format!("{}", *n as i64));
        }
        Json::Num(n) => out.push_str(&format!("{n}")),
        Json::Str(s) => out.push_str(&format!("{s:?}")),
        Json::Arr(items) => {
            out.push('[');
            for (i, v) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(v, out);
            }
            out.push(']');
        }
        Json::Obj(members) => {
            out.push('{');
            for (i, (k, v)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{k:?}:"));
                render(v, out);
            }
            out.push('}');
        }
    }
}

fn main() {
    let o = opts();
    await_boot(&o);

    // Static partition: connection c takes request indices c, c+C, ...
    let slices: Vec<Vec<usize>> = (0..o.connections)
        .map(|c| (c..o.requests).step_by(o.connections).collect())
        .collect();
    let tallies: Mutex<Vec<Tally>> = Mutex::new(Vec::new());
    let subscription = if o.subscribe {
        let s = start_subscription(&o);
        if s.is_none() {
            eprintln!("repro-loadgen: could not open metrics subscription");
        }
        s
    } else {
        None
    };
    let started = Instant::now();
    std::thread::scope(|scope| {
        for (c, slice) in slices.iter().enumerate() {
            let (o, tallies) = (&o, &tallies);
            scope.spawn(move || {
                let t = run_connection(o, c, slice);
                tallies.lock().unwrap().push(t);
            });
        }
    });
    let elapsed = started.elapsed();
    let subscribe_ticks = subscription.map(Subscription::finish);

    let mut latencies: Vec<f64> = Vec::with_capacity(o.requests);
    let mut by_status: HashMap<String, u64> = HashMap::new();
    let mut by_tenant: HashMap<String, Vec<f64>> = HashMap::new();
    let mut protocol_errors = 0u64;
    for t in tallies.into_inner().unwrap() {
        latencies.extend(t.latencies_ms);
        protocol_errors += t.protocol_errors;
        for (k, v) in t.by_status {
            *by_status.entry(k).or_default() += v;
        }
        for (k, v) in t.by_tenant {
            by_tenant.entry(k).or_default().extend(v);
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let answered: u64 = by_status.values().sum();
    let count = |k: &str| by_status.get(k).copied().unwrap_or(0);
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let throughput = answered as f64 / elapsed.as_secs_f64().max(1e-9);

    // Per-tenant latency quantiles, client-side.
    let mut tenant_stats: Vec<(String, u64, f64, f64)> = by_tenant
        .iter_mut()
        .map(|(tenant, ms)| {
            ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
            (
                tenant.clone(),
                ms.len() as u64,
                percentile(ms, 0.50),
                percentile(ms, 0.99),
            )
        })
        .collect();
    tenant_stats.sort_by(|a, b| a.0.cmp(&b.0));

    // Daemon-side cache, serve, and SLO state, via the stats op.
    let stats = control(&o, "{\"op\":\"stats\"}");
    let engine = stats.as_ref().and_then(|d| d.get("engine"));
    let serve = stats.as_ref().and_then(|d| d.get("serve"));
    let slo = stats.as_ref().and_then(|d| d.get("slo"));
    let hits = num(engine, "cache_hits");
    let misses = num(engine, "cache_misses");
    let hit_rate = if hits + misses > 0.0 {
        hits / (hits + misses)
    } else {
        0.0
    };
    let evictions = num(engine, "cache_evictions");
    let worker_lost = count("worker_lost") + num(serve, "worker_lost") as u64;

    println!(
        "repro-loadgen: {answered}/{} answered in {:.2}s ({throughput:.0} req/s) over {} conns, {} tenants",
        o.requests,
        elapsed.as_secs_f64(),
        o.connections,
        o.tenants
    );
    println!("  latency  p50 {p50:.2} ms   p99 {p99:.2} ms   protocol errors {protocol_errors}");
    println!(
        "  status   ok {}  overloaded {}  quota {}  trace_error {}  bad_request {}  worker_lost {}  internal {}",
        count("ok"),
        count("overloaded"),
        count("quota"),
        count("trace_error"),
        count("bad_request"),
        worker_lost,
        count("internal_error"),
    );
    println!(
        "  cache    hit rate {:.1}%  evictions {}  entries {}  bytes {}",
        hit_rate * 100.0,
        evictions,
        num(engine, "cache_entries"),
        num(engine, "cache_bytes"),
    );
    for (tenant, n, t50, t99) in &tenant_stats {
        println!("  tenant   {tenant}: {n} answered  p50 {t50:.2} ms  p99 {t99:.2} ms");
    }
    println!(
        "  slo      short burn {:.3}  long burn {:.3}  (target {}, threshold {} ms)",
        num(slo, "short_burn"),
        num(slo, "long_burn"),
        num(slo, "target"),
        num(slo, "latency_threshold_ms"),
    );
    if let Some(ticks) = subscribe_ticks {
        println!("  stream   {ticks} metric ticks received while loading");
    }

    if let Some(out) = &o.out {
        let mut report = ObsReport::snapshot();
        report.meta("experiment", "serve_load");
        report.meta_raw(
            "benches",
            format!(
                "[{}]",
                o.benches
                    .iter()
                    .map(|b| format!("{b:?}"))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        );
        report.meta_num("requests", o.requests as f64);
        report.meta_num("answered", answered as f64);
        report.meta_num("connections", o.connections as f64);
        report.meta_num("tenants", o.tenants as f64);
        report.meta_num("pipeline", o.pipeline as f64);
        report.meta_num("elapsed_s", elapsed.as_secs_f64());
        report.meta_num("throughput_rps", throughput);
        report.meta_num("p50_ms", p50);
        report.meta_num("p99_ms", p99);
        report.meta_num("protocol_errors", protocol_errors as f64);
        report.meta_num("ok", count("ok") as f64);
        report.meta_num("overloaded", count("overloaded") as f64);
        report.meta_num("quota", count("quota") as f64);
        report.meta_num("trace_errors", count("trace_error") as f64);
        report.meta_num("bad_requests", count("bad_request") as f64);
        report.meta_num("internal_errors", count("internal_error") as f64);
        report.meta_num("worker_lost", worker_lost as f64);
        report.meta_num("cache_hit_rate", hit_rate);
        report.meta_num("cache_evictions", evictions);
        report.meta_num("cache_entries", num(engine, "cache_entries"));
        report.meta_num("cache_bytes", num(engine, "cache_bytes"));
        report.meta_num("slo_short_burn", num(slo, "short_burn"));
        report.meta_num("slo_long_burn", num(slo, "long_burn"));
        report.meta_num("slo_total", num(slo, "total"));
        report.meta_num("slo_good", num(slo, "good"));
        report.meta_num("slo_bad", num(slo, "bad"));
        if let Some(ticks) = subscribe_ticks {
            report.meta_num("subscribe_ticks", ticks as f64);
        }
        let tenants_json = format!(
            "{{{}}}",
            tenant_stats
                .iter()
                .map(|(tenant, n, t50, t99)| format!(
                    "{tenant:?}:{{\"answered\":{n},\"p50_ms\":{t50:.3},\"p99_ms\":{t99:.3}}}"
                ))
                .collect::<Vec<_>>()
                .join(",")
        );
        report.section_raw("tenants", tenants_json);
        if let Some(doc @ Json::Obj(_)) = slo {
            let mut json = String::new();
            render(doc, &mut json);
            report.section_raw("slo", json);
        }
        if let Some(doc @ Json::Obj(_)) = serve {
            let mut json = String::new();
            render(doc, &mut json);
            report.section_raw("serve", json);
        }
        if let Some(doc @ Json::Obj(_)) = engine {
            let mut json = String::new();
            render(doc, &mut json);
            report.section_raw("engine", json);
        }
        report.write(out).unwrap_or_else(|e| {
            eprintln!("repro-loadgen: cannot write {}: {e}", out.display());
            std::process::exit(1);
        });
        println!("  report   {}", out.display());
    }

    if o.shutdown {
        match control(&o, "{\"op\":\"shutdown\"}") {
            Some(doc) if doc.get("status").and_then(Json::as_str) == Some("ok") => {
                println!("  daemon   drained and stopped");
            }
            _ => {
                eprintln!("repro-loadgen: shutdown request failed");
                std::process::exit(1);
            }
        }
    }

    if protocol_errors > 0 || answered < o.requests as u64 {
        eprintln!(
            "repro-loadgen: {} of {} requests unanswered, {} protocol errors",
            o.requests as u64 - answered,
            o.requests,
            protocol_errors
        );
        std::process::exit(1);
    }
}
