//! The daemon entrypoint. Binds the unix socket, serves until a wire
//! `shutdown`, then drains and exits.
//!
//! ```text
//! repro-serve --socket /tmp/repro.sock --workers 2 --admission 64 \
//!             --quota-burst 100 --quota-rate 50 --obs
//! ```

use repro_serve::server::{ServeConfig, Server};
use repro_serve::QuotaConfig;

fn usage() -> ! {
    eprintln!(
        "usage: repro-serve [--socket PATH] [--workers N] [--threads N]\n\
         \x20                  [--admission N] [--window N] [--cache-capacity N]\n\
         \x20                  [--cache-capacity-bytes N] [--trace-workers N]\n\
         \x20                  [--quota-burst N] [--quota-rate PER_SEC]\n\
         \x20                  [--budget-ms MS] [--deadline-ms MS] [--max-line-bytes N]\n\
         \x20                  [--watchdog-ms MS] [--stall-timeout-ms MS] [--probe-timeout-ms MS]\n\
         \x20                  [--slo-latency-ms MS] [--slo-target F] [--flight-capacity N]\n\
         \x20                  [--blackbox-out PATH] [--cache-dir DIR] [--obs]\n\
         \n\
         \x20 --socket PATH        unix socket to listen on (default repro-serve.sock)\n\
         \x20 --workers N          concurrent analyses (default 2)\n\
         \x20 --threads N          match-pool threads (default 2)\n\
         \x20 --admission N        admission queue bound (default 64)\n\
         \x20 --window N           per-connection in-flight window (default 8)\n\
         \x20 --cache-capacity N   match-cache entries, 0 = unbounded (default 4096)\n\
         \x20 --cache-capacity-bytes N  match-cache bytes, 0 = unbounded (default 0);\n\
         \x20                      whichever cap trips first drives eviction\n\
         \x20 --trace-workers N    trace-ingestion workers per analysis (default 1;\n\
         \x20                      >= 2 shards the tracer, byte-identical output)\n\
         \x20 --quota-burst N      tokens per tenant bucket, 0 = quotas off (default 0)\n\
         \x20 --quota-rate R       bucket refill, tokens/second (default 0)\n\
         \x20 --budget-ms MS       default per-sub-DDG match budget (default 60000)\n\
         \x20 --deadline-ms MS     default whole-request deadline (default 10000)\n\
         \x20 --max-line-bytes N   request-line cap; longer lines get protocol_error (default 262144)\n\
         \x20 --watchdog-ms MS     watchdog sweep interval (default 100)\n\
         \x20 --stall-timeout-ms MS  supersede a worker busy this long on one request (default 10000)\n\
         \x20 --probe-timeout-ms MS  startup wait for a predecessor daemon's ping answer (default 500)\n\
         \x20 --slo-latency-ms MS  an ok answer slower than this counts as an SLO miss (default 2000)\n\
         \x20 --slo-target F       availability objective in (0,1); burn = bad_frac/(1-F) (default 0.99)\n\
         \x20 --flight-capacity N  flight-recorder ring capacity in events (default 4096)\n\
         \x20 --blackbox-out PATH  where automatic blackbox dumps land (default SOCKET.blackbox.json)\n\
         \x20 --cache-dir DIR      persistent query cache: loaded at startup, rewritten on\n\
         \x20                      clean shutdown (default: memory-only)\n\
         \x20 --obs                enable span tracing (for trace_dump)"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(value) = value else {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    };
    value.parse().unwrap_or_else(|_| {
        eprintln!("invalid value for {flag}: got {value:?}");
        std::process::exit(2);
    })
}

fn main() {
    let mut config = ServeConfig::default();
    let mut quota = QuotaConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => config.socket = parse(&arg, args.next()),
            "--workers" => config.workers = parse(&arg, args.next()),
            "--threads" => config.analysis_threads = parse(&arg, args.next()),
            "--admission" => config.admission_capacity = parse(&arg, args.next()),
            "--window" => config.conn_window = parse(&arg, args.next()),
            "--cache-capacity" => config.cache_capacity = parse(&arg, args.next()),
            "--cache-capacity-bytes" => config.cache_capacity_bytes = parse(&arg, args.next()),
            "--trace-workers" => config.trace_workers = parse(&arg, args.next()),
            "--quota-burst" => quota.burst = parse(&arg, args.next()),
            "--quota-rate" => quota.refill_per_sec = parse(&arg, args.next()),
            "--budget-ms" => config.default_budget_ms = parse(&arg, args.next()),
            "--deadline-ms" => {
                let ms: u64 = parse(&arg, args.next());
                config.default_deadline_ms = if ms == 0 { None } else { Some(ms) };
            }
            "--max-line-bytes" => config.max_line_bytes = parse(&arg, args.next()),
            "--watchdog-ms" => config.watchdog_interval_ms = parse(&arg, args.next()),
            "--stall-timeout-ms" => config.stall_timeout_ms = parse(&arg, args.next()),
            "--probe-timeout-ms" => config.probe_timeout_ms = parse(&arg, args.next()),
            "--slo-latency-ms" => config.slo.latency_threshold_ms = parse(&arg, args.next()),
            "--slo-target" => {
                let target: f64 = parse(&arg, args.next());
                if !(0.0..1.0).contains(&target) {
                    eprintln!("--slo-target must be in (0,1): got {target}");
                    std::process::exit(2);
                }
                config.slo.target = target;
            }
            "--flight-capacity" => {
                let capacity: usize = parse(&arg, args.next());
                if !obs::flight::configure(capacity) {
                    eprintln!(
                        "repro-serve: flight recorder already sized, --flight-capacity ignored"
                    );
                }
            }
            "--blackbox-out" => config.blackbox_path = Some(parse(&arg, args.next())),
            "--cache-dir" => config.cache_dir = Some(parse(&arg, args.next())),
            "--obs" => obs::enable(),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    config.quota = quota;

    let socket = config.socket.clone();
    let server = Server::start(config).unwrap_or_else(|e| {
        eprintln!("repro-serve: cannot bind {}: {e}", socket.display());
        std::process::exit(1);
    });
    eprintln!("repro-serve: listening on {}", socket.display());
    server.join();
    eprintln!("repro-serve: drained and stopped");
}
