//! Chaos harness: runs an in-process daemon under a seeded fault
//! schedule while realistic traffic flows through the resilient
//! client, then writes the `BENCH_chaos.json` report CI gates on
//! (`obs_check --chaos`).
//!
//! ```text
//! repro-chaos --seed 42 --requests 300 --out BENCH_chaos.json
//! ```
//!
//! One run injects every fault class at once:
//!
//! - scripted **worker kills** and **stalls** (watchdog must requeue,
//!   respawn, supersede);
//! - **torn writes** and **delayed reads** on the socket;
//! - client-side **mid-request disconnects** (the resilient client
//!   reconnects and resends);
//! - two **slow-loris** connections dribbling a request byte by byte;
//! - one **oversized line** that must be refused with
//!   `protocol_error`;
//! - **quota-clock skew** (an hour forward, then back) under live
//!   load;
//! - a **breaker phase** that wedges the workers and drives one tenant
//!   into its circuit breaker via deadline shedding.
//!
//! The invariant the report proves: `requests == answered +
//! breaker_skipped` with `lost == 0` — chaos may slow or reject
//! requests, but every request not rejected client-side gets a labeled
//! answer, and every killed worker is respawned.
//!
//! The daemon runs in-process, so the process-global flight recorder
//! holds both the server's and the resilient client's events. After
//! the run, every request id this harness sent — including retried,
//! shed, and breaker-skipped ones — must be reconstructable from the
//! recorder: a non-empty trail in sequence order ending in a labeled
//! outcome, and every injected fault class must have left its marker
//! events (`worker_dead`, `stall_supersede`, `retry`).

use obs::json::Json;
use obs::ObsReport;
use repro_serve::chaos::ChaosPlan;
use repro_serve::{
    Breakers, Client, ClientConfig, ClientError, QuotaConfig, RequestIds, RetryBudget, ServeConfig,
    Server, SplitMix64,
};
use serde::Serialize;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The same fast inline source the daemon tests use: a 4-element map,
/// milliseconds end to end.
const FAST_SRC: &str = "float in[4];\nfloat out[4];\nvoid main() {\n  int i;\n  \
     for (i = 0; i < 4; i++) {\n    out[i] = in[i] * 2.0 + 1.0;\n  }\n  output(out);\n}\n";

/// A slower source (serial inner loop) used to wedge the workers for
/// the breaker phase.
const SLOW_SRC: &str = "float out[16];\nvoid main() {\n  int i;\n  int j;\n  \
     for (i = 0; i < 16; i++) {\n    float acc = 0.0;\n    \
     for (j = 0; j < 100; j++) {\n      acc = acc + 0.5;\n    }\n    out[i] = acc;\n  }\n  \
     output(out);\n}\n";

struct Opts {
    socket: PathBuf,
    requests: usize,
    clients: usize,
    seed: u64,
    out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
}

fn parse_flag<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(value) = value else {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    };
    value.parse().unwrap_or_else(|_| {
        eprintln!("invalid value for {flag}: got {value:?}");
        std::process::exit(2);
    })
}

fn opts() -> Opts {
    let mut o = Opts {
        socket: std::env::temp_dir().join(format!("repro-chaos-{}.sock", std::process::id())),
        requests: 300,
        clients: 6,
        seed: 42,
        out: None,
        trace_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => o.socket = parse_flag(&arg, args.next()),
            "--requests" => o.requests = parse_flag(&arg, args.next()),
            "--clients" => o.clients = parse_flag(&arg, args.next()),
            "--seed" => o.seed = parse_flag(&arg, args.next()),
            "--out" => o.out = Some(parse_flag(&arg, args.next())),
            "--trace-out" => o.trace_out = Some(parse_flag(&arg, args.next())),
            other => {
                eprintln!(
                    "unknown flag {other:?}\n\
                     usage: repro-chaos [--socket PATH] [--requests N] [--clients N]\n\
                     \x20                  [--seed N] [--out PATH] [--trace-out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    o.requests = o.requests.max(50);
    o.clients = o.clients.clamp(1, o.requests);
    o
}

/// Builds the whole fault schedule from one seed. Ordinals are spread
/// so the kills land in distinct phases of the run and never collide.
fn plan_from_seed(seed: u64, requests: u64) -> (ChaosPlan, u64) {
    let mut rng = SplitMix64::new(seed);
    let n = requests.max(50);
    let kill1 = 5 + rng.below(n / 4);
    let kill2 = n / 2 + rng.below(n / 4);
    let stall_at = n / 3 + rng.below(n / 8);
    let plan = ChaosPlan {
        kill_at_jobs: vec![kill1, kill2],
        stall_at_jobs: vec![(stall_at, Duration::from_millis(900))],
        torn_write_every: 5 + rng.below(5),
        torn_chunk: 3 + rng.below(6) as usize,
        torn_delay: Duration::from_millis(1),
        read_delay_every: 7 + rng.below(7),
        read_delay: Duration::from_millis(2),
    };
    // Client-side fault cadence: every `disconnect_every`-th request
    // index is sent, the connection torn down mid-flight, then retried.
    let disconnect_every = 17 + rng.below(7);
    (plan, disconnect_every)
}

fn analyze_line(id: &str, tenant: &str, source: &str, deadline_ms: Option<u64>) -> String {
    let mut line = String::new();
    line.push_str("{\"op\":\"analyze\",\"id\":");
    serde::ser_str(&mut line, id);
    line.push_str(",\"tenant\":");
    serde::ser_str(&mut line, tenant);
    line.push_str(",\"source\":");
    serde::ser_str(&mut line, source);
    if let Some(ms) = deadline_ms {
        line.push_str(&format!(",\"deadline_ms\":{ms}"));
    }
    line.push('}');
    line
}

#[derive(Default)]
struct Tally {
    latencies_ms: Vec<f64>,
    by_status: HashMap<String, u64>,
    /// Every request id this tally's thread sent (for trail checks).
    ids: Vec<String>,
    lost: u64,
    skipped: u64,
    disconnects: u64,
}

/// One client thread: drives its slice of the request indices through
/// a resilient [`Client`], injecting a mid-request disconnect (tear
/// down the socket after sending, reconnect, resend) on its scheduled
/// ordinals.
#[allow(clippy::too_many_arguments)]
fn run_client(
    o: &Opts,
    me: usize,
    budget: &std::sync::Arc<RetryBudget>,
    breakers: &std::sync::Arc<Breakers>,
    disconnect_every: u64,
) -> Tally {
    let mut tally = Tally::default();
    let config = ClientConfig {
        socket: o.socket.clone(),
        seed: o.seed ^ (me as u64).wrapping_mul(0x9e37_79b9),
        ..ClientConfig::default()
    };
    let boot = Instant::now() + Duration::from_secs(30);
    let Ok(mut client) = Client::connect(
        config,
        std::sync::Arc::clone(budget),
        std::sync::Arc::clone(breakers),
        boot,
    ) else {
        tally.lost += ((me..o.requests).step_by(o.clients).count()) as u64;
        return tally;
    };
    // Seeded, collision-checked ids; the `c{me}` prefix keeps threads
    // globally unique and the seed keeps reruns byte-identical.
    let mut ids = RequestIds::new(o.seed ^ (me as u64).rotate_left(17));
    let prefix = format!("c{me}");
    for n in (me..o.requests).step_by(o.clients) {
        let id = ids.next(&prefix);
        tally.ids.push(id.clone());
        let tenant = format!("t{}", n % 4);
        let line = analyze_line(&id, &tenant, FAST_SRC, None);
        let deadline = Instant::now() + Duration::from_secs(30);
        if disconnect_every > 0 && (n as u64 + 1).is_multiple_of(disconnect_every) {
            // Mid-request disconnect: the request may or may not have
            // reached the daemon; either way the retry below must win.
            let _ = client.send_only(&line, deadline);
            client.inject_disconnect();
            tally.disconnects += 1;
            obs::instant("chaos.client_disconnect");
        }
        let started = Instant::now();
        match client.request(&id, &tenant, &line, deadline) {
            Ok(doc) => {
                tally
                    .latencies_ms
                    .push(started.elapsed().as_secs_f64() * 1e3);
                let status = doc
                    .get("status")
                    .and_then(Json::as_str)
                    .unwrap_or("unlabeled");
                *tally.by_status.entry(status.to_string()).or_default() += 1;
            }
            Err(ClientError::BreakerOpen) => tally.skipped += 1,
            Err(_) => tally.lost += 1,
        }
    }
    tally
}

/// Slow-loris: dribbles one whole request a byte at a time with sleeps
/// between, then waits for its answer. The daemon's bounded reader
/// must tolerate the dribble (the line is under the cap) and answer.
fn slow_loris(o: &Opts, tag: usize) -> bool {
    let Ok(stream) = UnixStream::connect(&o.socket) else {
        return false;
    };
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return false,
    });
    let id = format!("loris{tag}");
    let mut line = analyze_line(&id, "loris", FAST_SRC, None);
    line.push('\n');
    let mut s = &stream;
    for byte in line.as_bytes() {
        if s.write_all(std::slice::from_ref(byte))
            .and_then(|_| s.flush())
            .is_err()
        {
            return false;
        }
        std::thread::sleep(Duration::from_millis(3));
    }
    let mut resp = String::new();
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    if reader.read_line(&mut resp).unwrap_or(0) == 0 {
        return false;
    }
    obs::json::parse(resp.trim_end())
        .ok()
        .and_then(|d| d.get("id").and_then(Json::as_str).map(|i| i == id))
        .unwrap_or(false)
}

/// Oversized line: sends a request far past `max_line_bytes` and
/// expects a labeled `protocol_error` before the daemon drops the
/// connection.
fn oversized_probe(o: &Opts, max_line_bytes: usize) -> bool {
    let Ok(stream) = UnixStream::connect(&o.socket) else {
        return false;
    };
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return false,
    });
    let mut line = String::with_capacity(max_line_bytes * 2 + 64);
    line.push_str("{\"op\":\"analyze\",\"id\":\"huge\",\"source\":\"");
    while line.len() < max_line_bytes * 2 {
        line.push_str("padding padding padding ");
    }
    line.push_str("\"}\n");
    let mut s = &stream;
    if s.write_all(line.as_bytes())
        .and_then(|_| s.flush())
        .is_err()
    {
        // The daemon may drop the connection before the whole flood is
        // written — that still counts as refusing the line, but we
        // want the labeled error, so report failure and let the gate
        // catch it if it ever regresses.
        return false;
    }
    let mut resp = String::new();
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    if reader.read_line(&mut resp).unwrap_or(0) == 0 {
        return false;
    }
    resp.contains("protocol_error")
}

/// The breaker phase: wedge the workers with pipelined slow requests,
/// then fire a burst for one tenant whose deadline is already consumed
/// (0 ms — a caller that spent its whole budget before asking), which
/// guarantees deadline shedding (`overloaded` answers) until the
/// tenant's breaker opens client-side and rejects the rest unsent.
fn breaker_phase(
    o: &Opts,
    budget: &std::sync::Arc<RetryBudget>,
    breakers: &std::sync::Arc<Breakers>,
) -> (Tally, u64) {
    let mut tally = Tally::default();
    let mut plugs_answered = 0u64;

    let plug_conn = UnixStream::connect(&o.socket).ok();
    let plug_count = 6usize;
    if let Some(stream) = &plug_conn {
        let mut s = stream;
        for i in 0..plug_count {
            let id = format!("plug{i}");
            let line = analyze_line(&id, "plug", SLOW_SRC, None);
            if s.write_all(line.as_bytes())
                .and_then(|_| s.write_all(b"\n"))
                .is_err()
            {
                break;
            }
            tally.ids.push(id);
        }
    }
    // Give the plugs a moment to be admitted and occupy the workers.
    std::thread::sleep(Duration::from_millis(20));

    let config = ClientConfig {
        socket: o.socket.clone(),
        seed: o.seed ^ 0xb12ea4e5,
        breaker_threshold: 3,
        breaker_cooldown: Duration::from_millis(250),
        ..ClientConfig::default()
    };
    let deadline = Instant::now() + Duration::from_secs(30);
    if let Ok(mut client) = Client::connect(
        config,
        std::sync::Arc::clone(budget),
        std::sync::Arc::clone(breakers),
        deadline,
    ) {
        for j in 0..12 {
            let id = format!("hot{j}");
            tally.ids.push(id.clone());
            // The first three carry an already-consumed deadline, so
            // the daemon must shed them (`overloaded`) no matter how
            // fast the plugs drain; three consecutive sheds open the
            // tenant's breaker and the rest are rejected client-side.
            let deadline_ms = if j < 3 { 0 } else { 1 };
            let line = analyze_line(&id, "hot", FAST_SRC, Some(deadline_ms));
            let deadline = Instant::now() + Duration::from_secs(30);
            match client.request(&id, "hot", &line, deadline) {
                Ok(doc) => {
                    let status = doc
                        .get("status")
                        .and_then(Json::as_str)
                        .unwrap_or("unlabeled");
                    *tally.by_status.entry(status.to_string()).or_default() += 1;
                }
                Err(ClientError::BreakerOpen) => tally.skipped += 1,
                Err(_) => tally.lost += 1,
            }
        }
    } else {
        tally.lost += 12;
    }

    // Collect the plug answers (they are real requests too).
    if let Some(stream) = plug_conn {
        let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
        let mut reader = BufReader::new(stream);
        for _ in 0..plug_count {
            let mut resp = String::new();
            if reader.read_line(&mut resp).unwrap_or(0) == 0 {
                break;
            }
            if resp.contains("\"id\":\"plug") {
                plugs_answered += 1;
            }
        }
    }
    tally.lost += plug_count as u64 - plugs_answered;
    let mut plugs = HashMap::new();
    plugs.insert("ok".to_string(), plugs_answered);
    for (k, v) in plugs {
        *tally.by_status.entry(k).or_default() += v;
    }
    (tally, plug_count as u64)
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// One synchronous control request on a fresh connection (used for the
/// on-demand `blackbox` op).
fn control(o: &Opts, request: &str) -> Option<Json> {
    let stream = UnixStream::connect(&o.socket).ok()?;
    let mut reader = BufReader::new(stream.try_clone().ok()?);
    let mut s = &stream;
    s.write_all(request.as_bytes()).ok()?;
    s.write_all(b"\n").ok()?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    obs::json::parse(line.trim_end()).ok()
}

/// A request's trail must end in one of these: the daemon answered it,
/// shed it, refused it at admission, or the client's breaker rejected
/// it before it was ever sent. Anything else means the id vanished.
const TERMINAL_KINDS: [&str; 5] = ["answer", "shed", "overloaded", "quota_deny", "breaker_skip"];

/// Checks that every sent request id is reconstructable from the
/// flight recorder with consistent ordering: a non-empty trail whose
/// last event is a labeled outcome, every `pickup` preceded by an
/// `enqueue`, and every `answer` preceded by a `pickup`. Returns the
/// offending descriptions (empty = complete).
fn verify_trails(sent: &[String]) -> Vec<String> {
    let snap = obs::flight::snapshot();
    let mut by_id: HashMap<&str, Vec<&obs::FlightEvent>> = HashMap::new();
    for e in &snap {
        // snapshot() is seq-sorted, so each per-id trail is too.
        by_id.entry(e.request_id.as_str()).or_default().push(e);
    }
    let mut problems = Vec::new();
    for id in sent {
        let Some(trail) = by_id.get(id.as_str()) else {
            problems.push(format!("{id}: no flight events"));
            continue;
        };
        let last = trail.last().expect("trails are non-empty");
        if !TERMINAL_KINDS.contains(&last.kind) {
            problems.push(format!(
                "{id}: trail ends with {:?} ({}), not a labeled outcome",
                last.kind, last.detail
            ));
        }
        let first = |kind: &str| trail.iter().position(|e| e.kind == kind);
        if let Some(p) = first("pickup") {
            if first("enqueue").is_none_or(|q| q > p) {
                problems.push(format!("{id}: pickup without a preceding enqueue"));
            }
        }
        if let Some(a) = first("answer") {
            if first("pickup").is_none_or(|p| p > a) {
                problems.push(format!("{id}: answer without a preceding pickup"));
            }
        }
    }
    problems
}

fn main() {
    let o = opts();
    if o.trace_out.is_some() {
        obs::enable();
    }
    let (plan, disconnect_every) = plan_from_seed(o.seed, o.requests as u64);
    // Size the flight ring so nothing from this run is evicted: the
    // trail assertions below need every event, and a request produces
    // only a handful (enqueue/pickup/answer plus fault markers).
    obs::flight::configure(o.requests * 16 + 4096);
    let config = ServeConfig {
        socket: o.socket.clone(),
        workers: 3,
        analysis_threads: 2,
        admission_capacity: 64,
        conn_window: 8,
        quota: QuotaConfig {
            burst: 1_000_000,
            refill_per_sec: 1e6,
        },
        watchdog_interval_ms: 50,
        stall_timeout_ms: 300,
        max_line_bytes: 64 * 1024,
        default_deadline_ms: Some(60_000),
        ..ServeConfig::default()
    };
    let max_line_bytes = config.max_line_bytes;
    let (server, chaos) = Server::start_with_chaos(config, plan.clone()).unwrap_or_else(|e| {
        eprintln!("repro-chaos: cannot start daemon: {e}");
        std::process::exit(1);
    });
    println!(
        "repro-chaos: seed {} → kills at jobs {:?}, stall at {:?}, torn every {}, read delay every {}, disconnect every {}",
        o.seed,
        plan.kill_at_jobs,
        plan.stall_at_jobs.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
        plan.torn_write_every,
        plan.read_delay_every,
        disconnect_every,
    );

    let budget = RetryBudget::new(64);
    let breakers = Breakers::new(3, Duration::from_millis(250));
    let tallies: Mutex<Vec<Tally>> = Mutex::new(Vec::new());
    let loris_ids: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let loris_ok = AtomicU64::new(0);
    let quota_skews = AtomicU64::new(0);
    let started = Instant::now();

    std::thread::scope(|scope| {
        for me in 0..o.clients {
            let budget = &budget;
            let breakers = &breakers;
            let tallies = &tallies;
            let o = &o;
            scope.spawn(move || {
                let t = run_client(o, me, budget, breakers, disconnect_every);
                tallies.lock().unwrap().push(t);
            });
        }
        for tag in 0..2 {
            let o = &o;
            let loris_ok = &loris_ok;
            let loris_ids = &loris_ids;
            scope.spawn(move || {
                if slow_loris(o, tag) {
                    loris_ok.fetch_add(1, Ordering::Relaxed);
                    loris_ids.lock().unwrap().push(format!("loris{tag}"));
                }
            });
        }
        // Quota-clock skew under live load: an hour forward, an hour
        // back, then recovery. The buckets must neither mint tokens
        // past the burst nor wedge (the main load keeps flowing).
        let server = &server;
        let quota_skews = &quota_skews;
        scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            server.set_quota_skew_ms(3_600_000);
            quota_skews.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(100));
            server.set_quota_skew_ms(-3_600_000);
            quota_skews.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(100));
            server.set_quota_skew_ms(0);
        });
    });

    let oversized_answered = if oversized_probe(&o, max_line_bytes) {
        1u64
    } else {
        0
    };
    let (breaker_tally, plug_count) = breaker_phase(&o, &budget, &breakers);

    let elapsed = started.elapsed();
    // Let the watchdog finish any in-progress respawn before reading
    // the final counters.
    std::thread::sleep(Duration::from_millis(200));

    let mut latencies: Vec<f64> = Vec::new();
    let mut by_status: HashMap<String, u64> = HashMap::new();
    let mut sent_ids: Vec<String> = loris_ids.into_inner().unwrap();
    let mut lost = 0u64;
    let mut disconnects = 0u64;
    let mut client_skips = 0u64;
    for t in tallies
        .into_inner()
        .unwrap()
        .into_iter()
        .chain(std::iter::once(breaker_tally))
    {
        latencies.extend(t.latencies_ms);
        sent_ids.extend(t.ids);
        lost += t.lost;
        disconnects += t.disconnects;
        client_skips += t.skipped;
        for (k, v) in t.by_status {
            *by_status.entry(k).or_default() += v;
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let answered: u64 = by_status.values().sum();
    let loris_answered = loris_ok.load(Ordering::Relaxed);
    // The two loris requests are part of the accounting: answered if
    // their response came back, lost otherwise.
    let total_requests = o.requests as u64 + plug_count + 12 + 2;
    let answered = answered + loris_answered;
    let lost = lost + (2 - loris_answered);
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);

    let serve = server.metrics();
    let engine = server.engine_metrics();
    let chaos_metrics = chaos.metrics();
    let count = |k: &str| by_status.get(k).copied().unwrap_or(0);

    println!(
        "repro-chaos: {answered}/{total_requests} answered, {lost} lost, {client_skips} breaker-skipped in {:.2}s",
        elapsed.as_secs_f64()
    );
    println!(
        "  faults   kills {}  stalls {}  torn writes {}  read delays {}  disconnects {disconnects}  skews {}",
        chaos_metrics.worker_kills,
        chaos_metrics.worker_stalls,
        chaos_metrics.torn_writes,
        chaos_metrics.read_delays,
        quota_skews.load(Ordering::Relaxed),
    );
    println!(
        "  healing  respawned {}  stalled {}  shed {}  loris answered {loris_answered}/2  oversized refused {oversized_answered}  breaker opens {}",
        serve.workers_respawned,
        serve.workers_stalled,
        serve.shed,
        breakers.opens(),
    );
    println!(
        "  status   ok {}  overloaded {}  quota {}  internal {}  worker_lost {}  | p50 {p50:.2} ms  p99 {p99:.2} ms",
        count("ok"),
        count("overloaded"),
        count("quota"),
        count("internal_error"),
        count("worker_lost"),
    );

    if let Some(path) = &o.trace_out {
        let threads = obs::take_events();
        match obs::write_chrome_trace(path, &threads) {
            Ok(()) => println!("  trace    {} ({} threads)", path.display(), threads.len()),
            Err(e) => eprintln!("repro-chaos: cannot write trace {}: {e}", path.display()),
        }
    }

    // On-demand blackbox dump through the wire op, next to the report.
    let blackbox_path = o
        .out
        .as_ref()
        .map(|p| format!("{}.blackbox.json", p.display()))
        .unwrap_or_else(|| {
            std::env::temp_dir()
                .join(format!("repro-chaos-{}.blackbox.json", std::process::id()))
                .display()
                .to_string()
        });
    let blackbox_events = control(
        &o,
        &format!("{{\"op\":\"blackbox\",\"path\":{blackbox_path:?}}}"),
    )
    .filter(|d| d.get("status").and_then(Json::as_str) == Some("ok"))
    .map(|d| d.get("events").and_then(Json::as_f64).unwrap_or(0.0) as u64);

    // The daemon's own SLO view of the run, for the report.
    let stats = control(&o, "{\"op\":\"stats\"}");
    let slo_num = |key: &str| {
        stats
            .as_ref()
            .and_then(|d| d.get("slo"))
            .and_then(|s| s.get(key))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };

    server.shutdown();
    server.join();

    // All worker threads are joined: the flight recorder now holds the
    // complete run. Reconstruct every sent id's trail.
    let trail_problems = verify_trails(&sent_ids);
    let snap = obs::flight::snapshot();
    let kind_count = |kind: &str| snap.iter().filter(|e| e.kind == kind).count() as u64;
    println!(
        "  flight   {} events recorded ({} retained), {} ids checked, {} incomplete trails, blackbox {}",
        obs::flight::recorded(),
        snap.len(),
        sent_ids.len(),
        trail_problems.len(),
        match blackbox_events {
            Some(n) => format!("{n} events → {blackbox_path}"),
            None => "FAILED".to_string(),
        },
    );
    for p in trail_problems.iter().take(10) {
        eprintln!("  trail    {p}");
    }

    if let Some(out) = &o.out {
        let mut report = ObsReport::snapshot();
        report.meta("experiment", "serve_chaos");
        report.meta_num("seed", o.seed as f64);
        report.meta_num("requests", total_requests as f64);
        report.meta_num("answered", answered as f64);
        report.meta_num("lost", lost as f64);
        report.meta_num("breaker_skipped", client_skips as f64);
        report.meta_num("elapsed_s", elapsed.as_secs_f64());
        report.meta_num("p50_ms", p50);
        report.meta_num("p99_ms", p99);
        report.meta_num("ok", count("ok") as f64);
        report.meta_num("overloaded", count("overloaded") as f64);
        report.meta_num("quota", count("quota") as f64);
        report.meta_num("internal_errors", count("internal_error") as f64);
        report.meta_num("worker_lost", count("worker_lost") as f64);
        report.meta_num("worker_kills", chaos_metrics.worker_kills as f64);
        report.meta_num("worker_stalls", chaos_metrics.worker_stalls as f64);
        report.meta_num("torn_writes", chaos_metrics.torn_writes as f64);
        report.meta_num("read_delays", chaos_metrics.read_delays as f64);
        report.meta_num("disconnects", disconnects as f64);
        report.meta_num("quota_skews", quota_skews.load(Ordering::Relaxed) as f64);
        report.meta_num("slow_loris", loris_answered as f64);
        report.meta_num("oversized_answered", oversized_answered as f64);
        report.meta_num("workers_respawned", serve.workers_respawned as f64);
        report.meta_num("workers_stalled", serve.workers_stalled as f64);
        report.meta_num("shed", serve.shed as f64);
        report.meta_num("breaker_opens", breakers.opens() as f64);
        report.meta_num("retries_used", budget.used() as f64);
        report.meta_num("flight_events", obs::flight::recorded() as f64);
        report.meta_num("blackbox_events", blackbox_events.unwrap_or(0) as f64);
        report.meta_num("ids_sent", sent_ids.len() as f64);
        report.meta_num("trail_incomplete", trail_problems.len() as f64);
        report.meta_num(
            "trail_complete",
            if trail_problems.is_empty() { 1.0 } else { 0.0 },
        );
        report.meta_num("slo_short_burn", slo_num("short_burn"));
        report.meta_num("slo_long_burn", slo_num("long_burn"));
        report.meta_num("slo_total", slo_num("total"));
        report.meta_num("slo_good", slo_num("good"));
        report.meta_num("slo_bad", slo_num("bad"));
        let mut serve_json = String::new();
        serve.serialize_json(&mut serve_json);
        report.section_raw("serve", serve_json);
        let mut engine_json = String::new();
        engine.serialize_json(&mut engine_json);
        report.section_raw("engine", engine_json);
        let mut chaos_json = String::new();
        chaos_metrics.serialize_json(&mut chaos_json);
        report.section_raw("chaos", chaos_json);
        report.write(out).unwrap_or_else(|e| {
            eprintln!("repro-chaos: cannot write {}: {e}", out.display());
            std::process::exit(1);
        });
        println!("  report   {}", out.display());
    }

    let kills = chaos_metrics.worker_kills;
    if lost > 0 {
        eprintln!("repro-chaos: FAIL — {lost} requests lost under chaos");
        std::process::exit(1);
    }
    if serve.workers_respawned < kills {
        eprintln!(
            "repro-chaos: FAIL — {} workers killed but only {} respawned",
            kills, serve.workers_respawned
        );
        std::process::exit(1);
    }
    if !trail_problems.is_empty() {
        eprintln!(
            "repro-chaos: FAIL — {} of {} request ids are not reconstructable from the flight recorder",
            trail_problems.len(),
            sent_ids.len()
        );
        std::process::exit(1);
    }
    // Every injected fault class must have left its marker events.
    if kind_count("worker_dead") < kills {
        eprintln!(
            "repro-chaos: FAIL — {kills} kills injected but only {} worker_dead events recorded",
            kind_count("worker_dead")
        );
        std::process::exit(1);
    }
    if kind_count("stall_supersede") < serve.workers_stalled {
        eprintln!(
            "repro-chaos: FAIL — {} stalls healed but only {} stall_supersede events recorded",
            serve.workers_stalled,
            kind_count("stall_supersede")
        );
        std::process::exit(1);
    }
    if blackbox_events.unwrap_or(0) == 0 {
        eprintln!("repro-chaos: FAIL — on-demand blackbox dump missing or empty");
        std::process::exit(1);
    }
    println!(
        "  verdict  zero lost requests; all killed workers respawned; all {} request trails reconstructable",
        sent_ids.len()
    );
}
