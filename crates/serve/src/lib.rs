//! `repro-serve`: a resident analysis daemon.
//!
//! Instead of paying process startup, program compilation, and cold
//! caches per batch, the daemon keeps one [`repro_engine::Engine`] —
//! work-stealing match pool plus bounded shared LRU match cache —
//! alive behind a unix socket and serves `analyze` requests over a
//! newline-delimited JSON protocol ([`protocol`]).
//!
//! The service layer adds what a long-lived process needs and a batch
//! run does not:
//!
//! - **admission control** — a bounded queue; a full queue answers
//!   `overloaded` instead of buffering without bound ([`server`]);
//! - **backpressure** — a per-connection in-flight window that stalls
//!   the connection reader, not the daemon;
//! - **per-tenant quotas** — token buckets keyed by the request's
//!   `tenant` field ([`quota`]);
//! - **graceful shutdown** — drain in-flight and queued work, answer
//!   the shutdown request last, then exit;
//! - **self-healing** — a watchdog thread that requeues work stranded
//!   by dead serve workers, respawns them, supersedes stalled ones,
//!   and heals the engine's match pool ([`server`]);
//! - **load shedding** — requests whose queue wait has already
//!   consumed their deadline answer `overloaded` immediately instead
//!   of burning a worker on an answer nobody is waiting for;
//! - **observability** — `serve.*` counters and `serve.request` spans
//!   through the obs registry, with on-demand Chrome-trace dumps.
//!
//! The [`client`] module is the other half of the reliability story: a
//! resilient caller with jittered connect backoff, a per-process retry
//! budget, deadline propagation, and per-tenant circuit breakers.
//!
//! The `repro-serve` binary runs the daemon; `repro-loadgen` replays
//! concurrent request mixes against it and writes the
//! `BENCH_serve.json` report that CI gates on. Under the
//! `fault-inject` feature, the [`chaos`] module scripts deterministic
//! service-level faults and the `repro-chaos` binary drives them into
//! a live daemon, writing the `BENCH_chaos.json` report CI gates with
//! `obs_check --chaos`.

#[cfg(feature = "fault-inject")]
pub mod chaos;
pub mod client;
pub mod protocol;
pub mod quota;
pub mod server;

#[cfg(feature = "fault-inject")]
pub use chaos::{ChaosMetrics, ChaosPlan, ChaosState};
pub use client::{
    Breakers, Client, ClientConfig, ClientError, RequestIds, RetryBudget, SplitMix64,
};
pub use protocol::{
    parse_request, status, validate_dump_path, AnalyzeRequest, Request, ResponseLine,
};
pub use quota::{QuotaConfig, TenantQuotas};
pub use server::{unknown_bench_message, ServeConfig, ServeMetrics, Server};
