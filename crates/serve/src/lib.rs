//! `repro-serve`: a resident analysis daemon.
//!
//! Instead of paying process startup, program compilation, and cold
//! caches per batch, the daemon keeps one [`repro_engine::Engine`] —
//! work-stealing match pool plus bounded shared LRU match cache —
//! alive behind a unix socket and serves `analyze` requests over a
//! newline-delimited JSON protocol ([`protocol`]).
//!
//! The service layer adds what a long-lived process needs and a batch
//! run does not:
//!
//! - **admission control** — a bounded queue; a full queue answers
//!   `overloaded` instead of buffering without bound ([`server`]);
//! - **backpressure** — a per-connection in-flight window that stalls
//!   the connection reader, not the daemon;
//! - **per-tenant quotas** — token buckets keyed by the request's
//!   `tenant` field ([`quota`]);
//! - **graceful shutdown** — drain in-flight and queued work, answer
//!   the shutdown request last, then exit;
//! - **observability** — `serve.*` counters and `serve.request` spans
//!   through the obs registry, with on-demand Chrome-trace dumps.
//!
//! The `repro-serve` binary runs the daemon; `repro-loadgen` replays
//! concurrent request mixes against it and writes the
//! `BENCH_serve.json` report that CI gates on.

pub mod protocol;
pub mod quota;
pub mod server;

pub use protocol::{parse_request, status, AnalyzeRequest, Request, ResponseLine};
pub use quota::{QuotaConfig, TenantQuotas};
pub use server::{unknown_bench_message, ServeConfig, ServeMetrics, Server};
