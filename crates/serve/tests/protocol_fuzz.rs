//! Protocol fuzz/property tests: the wire parser must be total (never
//! panic) and the daemon must answer every malformed line with a
//! labeled error — truncated JSON, garbage bytes, oversized ids,
//! frames split across arbitrary write boundaries — without ever
//! hanging or crashing the connection it does not have to drop.

use proptest::prelude::*;
use repro_serve::protocol::{read_bounded_line, LineRead};
use repro_serve::{parse_request, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

const FAST_SRC: &str = "float in[4];\nfloat out[4];\nvoid main() {\n  int i;\n  \
     for (i = 0; i < 4; i++) {\n    out[i] = in[i] * 2.0 + 1.0;\n  }\n  output(out);\n}\n";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary printable garbage never panics the parser.
    #[test]
    fn parse_request_is_total_on_garbage(line in "[ -~\\n\\t]{0,300}") {
        let _ = parse_request(&line);
    }

    /// JSON-shaped fragments — braces, quotes, colons — probe deeper
    /// parser states than uniform garbage.
    #[test]
    fn parse_request_is_total_on_json_shaped_noise(
        line in "[{}\\[\\]\",:a-z0-9 .\\\\-]{0,200}"
    ) {
        let _ = parse_request(&line);
    }

    /// Every truncation prefix of a valid request parses or errors,
    /// never panics, and no strict prefix is accepted as `analyze`.
    #[test]
    fn truncated_requests_error_cleanly(cut in 0usize..120) {
        let full = r#"{"op":"analyze","id":"x","tenant":"t","source":"void main() {}","budget_ms":5,"deadline_ms":100}"#;
        let cut = cut.min(full.len().saturating_sub(1));
        let prefix = &full[..cut];
        if let Ok(req) = parse_request(prefix) {
            prop_assert!(
                !matches!(req, repro_serve::Request::Analyze(_)),
                "strict prefix accepted as analyze: {prefix:?}"
            );
        }
    }

    /// Wrong-typed fields produce an error string, not a panic.
    #[test]
    fn wrong_typed_fields_error_cleanly(n in any::<i64>()) {
        let line = format!(
            "{{\"op\":\"analyze\",\"id\":{n},\"source\":{n},\"budget_ms\":\"x\",\"deadline_ms\":[{n}]}}"
        );
        let _ = parse_request(&line);
    }

    /// `read_bounded_line` is total over arbitrary byte soup (including
    /// invalid UTF-8) and never yields a line beyond the cap.
    #[test]
    fn read_bounded_line_is_total_on_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..300),
        cap in 1usize..128
    ) {
        let mut reader = BufReader::new(&bytes[..]);
        loop {
            match read_bounded_line(&mut reader, cap) {
                // Lossy decoding can widen invalid bytes into 3-byte
                // replacement chars, but never adds characters: the
                // char count is the bounded quantity.
                Ok(LineRead::Line(l)) => prop_assert!(l.chars().count() <= cap),
                Ok(LineRead::Eof) => break,
                Ok(LineRead::TooLong) => break,
                Err(_) => break,
            }
        }
    }
}

fn sock(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "repro-serve-fuzz-{}-{tag}.sock",
        std::process::id()
    ))
}

fn start(tag: &str, max_line_bytes: usize) -> Server {
    Server::start(ServeConfig {
        socket: sock(tag),
        workers: 2,
        analysis_threads: 2,
        max_line_bytes,
        ..ServeConfig::default()
    })
    .expect("start daemon")
}

struct Wire {
    stream: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Wire {
    fn connect(server: &Server) -> Wire {
        let stream = UnixStream::connect(server.socket()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Wire { stream, reader }
    }

    fn send_bytes(&mut self, bytes: &[u8]) {
        let mut s = &self.stream;
        s.write_all(bytes).expect("send");
        s.flush().expect("flush");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "daemon closed the connection unexpectedly");
        line
    }

    /// Reads one line or None on clean EOF (connection dropped).
    fn recv_or_eof(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line),
            Err(e) => panic!("read failed instead of clean close: {e}"),
        }
    }
}

fn analyze_line(id: &str) -> String {
    let mut line = String::new();
    line.push_str("{\"op\":\"analyze\",\"id\":");
    serde::ser_str(&mut line, id);
    line.push_str(",\"tenant\":\"t\",\"source\":");
    serde::ser_str(&mut line, FAST_SRC);
    line.push('}');
    line
}

#[test]
fn garbage_lines_get_labeled_errors_and_the_connection_survives() {
    let server = start("garbage", 64 * 1024);
    let mut wire = Wire::connect(&server);
    // Invalid UTF-8, truncated JSON, bare words — each answered inline.
    let probes: [&[u8]; 4] = [
        b"\xff\xfe{{{\n",
        b"{\"op\":\"analyze\",\"id\":\"trunc\n",
        b"hello daemon\n",
        b"{\"op\":17}\n",
    ];
    for probe in probes {
        wire.send_bytes(probe);
        let answer = wire.recv();
        assert!(
            answer.contains("bad_request"),
            "malformed line must be labeled bad_request: {answer:?}"
        );
    }
    // The same connection still serves real work afterwards.
    wire.send_bytes(format!("{}\n", analyze_line("after-garbage")).as_bytes());
    let answer = wire.recv();
    assert!(answer.contains("\"ok\""), "{answer:?}");
    server.shutdown();
    server.join();
}

#[test]
fn frames_split_across_write_boundaries_reassemble() {
    let server = start("split", 64 * 1024);
    let mut wire = Wire::connect(&server);
    let line = format!("{}\n", analyze_line("split-frame"));
    // Dribble the frame out in 3-byte flushed writes with pauses: the
    // daemon's bounded reader must reassemble one intact request.
    for chunk in line.as_bytes().chunks(3) {
        wire.send_bytes(chunk);
        std::thread::sleep(Duration::from_millis(1));
    }
    let answer = wire.recv();
    assert!(answer.contains("split-frame"), "{answer:?}");
    assert!(answer.contains("\"ok\""), "{answer:?}");
    server.shutdown();
    server.join();
}

#[test]
fn oversized_lines_get_protocol_error_then_the_connection_drops() {
    let server = start("oversize", 4096);
    let mut victim = Wire::connect(&server);
    // An id alone larger than the line cap: the daemon must answer
    // protocol_error and hang up without buffering the whole line.
    let huge = format!("{}\n", analyze_line(&"x".repeat(16 * 1024)));
    victim.send_bytes(huge.as_bytes());
    let answer = victim.recv();
    assert!(
        answer.contains("protocol_error"),
        "oversized line must be labeled protocol_error: {answer:?}"
    );
    assert_eq!(
        victim.recv_or_eof(),
        None,
        "the oversized connection must be dropped after the error"
    );
    // Other connections are unaffected.
    let mut bystander = Wire::connect(&server);
    bystander.send_bytes(format!("{}\n", analyze_line("bystander")).as_bytes());
    let answer = bystander.recv();
    assert!(answer.contains("\"ok\""), "{answer:?}");
    assert!(server.metrics().oversized_lines >= 1);
    server.shutdown();
    server.join();
}

#[test]
fn oversized_id_within_the_line_cap_is_answered_not_dropped() {
    // A 16 KiB id fits under the default cap: it is valid protocol, so
    // the daemon must echo it back rather than treat it as an attack.
    let server = start("bigid", 256 * 1024);
    let mut wire = Wire::connect(&server);
    let id = "i".repeat(16 * 1024);
    wire.send_bytes(format!("{}\n", analyze_line(&id)).as_bytes());
    let answer = wire.recv();
    assert!(answer.contains(&id), "big id echoed back");
    assert!(answer.contains("\"ok\""), "{answer:?}");
    server.shutdown();
    server.join();
}
