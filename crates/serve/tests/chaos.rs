//! Fault-injection tests for the daemon's self-healing (`fault-inject`
//! feature only). Each test scripts a deterministic [`ChaosPlan`]
//! against a private daemon and asserts the one invariant chaos must
//! not break: every admitted request is answered exactly once, with a
//! labeled status — through worker deaths, stalls, torn writes, and a
//! skewed quota clock.

use obs::json::{parse, Json};
use repro_serve::{ChaosPlan, QuotaConfig, ServeConfig, Server};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

const FAST_SRC: &str = "float in[4];\nfloat out[4];\nvoid main() {\n  int i;\n  \
     for (i = 0; i < 4; i++) {\n    out[i] = in[i] * 2.0 + 1.0;\n  }\n  output(out);\n}\n";

fn sock(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "repro-serve-chaos-{}-{tag}.sock",
        std::process::id()
    ))
}

fn config(tag: &str) -> ServeConfig {
    ServeConfig {
        socket: sock(tag),
        workers: 2,
        analysis_threads: 2,
        watchdog_interval_ms: 20,
        ..ServeConfig::default()
    }
}

fn analyze_line(id: &str, tenant: &str, source: &str) -> String {
    let mut line = String::new();
    line.push_str("{\"op\":\"analyze\",\"id\":");
    serde::ser_str(&mut line, id);
    line.push_str(",\"tenant\":");
    serde::ser_str(&mut line, tenant);
    line.push_str(",\"source\":");
    serde::ser_str(&mut line, source);
    line.push('}');
    line
}

struct Client {
    stream: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = UnixStream::connect(server.socket()).expect("connect to daemon");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        let mut s = &self.stream;
        s.write_all(line.as_bytes()).expect("send request");
        s.write_all(b"\n").expect("send newline");
        s.flush().expect("flush request");
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "daemon closed the connection mid-conversation");
        parse(line.trim_end()).expect("response parses as JSON")
    }

    fn request(&mut self, line: &str) -> Json {
        self.send(line);
        self.recv()
    }
}

fn status_of(doc: &Json) -> &str {
    doc.get("status")
        .and_then(Json::as_str)
        .expect("status field")
}

fn collect(client: &mut Client, n: usize) -> HashMap<String, String> {
    (0..n)
        .map(|_| {
            let doc = client.recv();
            (
                doc.get("id")
                    .and_then(Json::as_str)
                    .expect("id field")
                    .to_string(),
                status_of(&doc).to_string(),
            )
        })
        .collect()
}

#[test]
fn killed_workers_are_respawned_and_their_jobs_survive() {
    // The worker popping the very first job dies abruptly with the job
    // parked in its slot. The watchdog must requeue the orphan,
    // respawn the slot, and the job must still be answered.
    let (server, chaos) = Server::start_with_chaos(
        config("kill"),
        ChaosPlan {
            kill_at_jobs: vec![0],
            ..ChaosPlan::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(&server);
    for i in 0..3 {
        client.send(&analyze_line(&format!("k{i}"), "t", FAST_SRC));
    }
    let statuses = collect(&mut client, 3);
    assert_eq!(statuses.len(), 3, "every id answered exactly once");
    assert!(
        statuses.values().all(|s| s == "ok"),
        "a killed worker must not surface as a request error: {statuses:?}"
    );
    assert_eq!(chaos.metrics().worker_kills, 1);
    let m = server.metrics();
    assert!(m.workers_respawned >= 1, "{m:?}");
    assert_eq!(m.worker_lost, 0);
    assert_eq!(m.internal_errors, 0);
    server.shutdown();
    server.join();
}

#[test]
fn stalled_workers_are_superseded_and_still_answer_exactly_once() {
    // One worker, stalled 400 ms on the first job against a 50 ms
    // stall timeout: the watchdog supersedes it so the second job is
    // served by a fresh worker while the first still completes on the
    // stalled thread. Both answered, neither twice.
    let mut cfg = config("stall");
    cfg.workers = 1;
    cfg.stall_timeout_ms = 50;
    let (server, chaos) = Server::start_with_chaos(
        cfg,
        ChaosPlan {
            stall_at_jobs: vec![(0, Duration::from_millis(400))],
            ..ChaosPlan::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(&server);
    client.send(&analyze_line("s0", "t", FAST_SRC));
    client.send(&analyze_line("s1", "t", FAST_SRC));
    let statuses = collect(&mut client, 2);
    assert_eq!(statuses.len(), 2);
    assert!(statuses.values().all(|s| s == "ok"), "{statuses:?}");
    // A ping answered next proves there is no stray third response
    // buffered (the stalled thread did not double-answer).
    let doc = client.request(r#"{"op":"ping"}"#);
    assert_eq!(doc.get("op").and_then(Json::as_str), Some("ping"));
    assert_eq!(chaos.metrics().worker_stalls, 1);
    let m = server.metrics();
    assert!(m.workers_stalled >= 1, "{m:?}");
    assert!(m.workers_respawned >= 1, "{m:?}");
    server.shutdown();
    server.join();
}

#[test]
fn torn_writes_still_deliver_whole_frames() {
    // Every response goes out in 2-byte flushed pieces with sleeps
    // between; the client's line-based reader must see intact frames.
    let (server, chaos) = Server::start_with_chaos(
        config("torn"),
        ChaosPlan {
            torn_write_every: 1,
            torn_chunk: 2,
            torn_delay: Duration::from_millis(1),
            ..ChaosPlan::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(&server);
    for i in 0..3 {
        let doc = client.request(&analyze_line(&format!("t{i}"), "t", FAST_SRC));
        assert_eq!(status_of(&doc), "ok", "{doc:?}");
        assert_eq!(doc.get("patterns").and_then(Json::as_f64), Some(1.0));
    }
    assert!(chaos.metrics().torn_writes >= 3);
    server.shutdown();
    server.join();
}

#[test]
fn delayed_reads_slow_the_connection_not_the_answers() {
    let (server, chaos) = Server::start_with_chaos(
        config("readdelay"),
        ChaosPlan {
            read_delay_every: 1,
            read_delay: Duration::from_millis(5),
            ..ChaosPlan::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(&server);
    for i in 0..3 {
        let doc = client.request(&analyze_line(&format!("d{i}"), "t", FAST_SRC));
        assert_eq!(status_of(&doc), "ok", "{doc:?}");
    }
    assert!(chaos.metrics().read_delays >= 3);
    server.shutdown();
    server.join();
}

#[test]
fn quota_clock_skew_neither_mints_tokens_nor_wedges_enforcement() {
    let mut cfg = config("skew");
    cfg.quota = QuotaConfig {
        burst: 1,
        refill_per_sec: 0.01,
    };
    let (server, _chaos) = Server::start_with_chaos(cfg, ChaosPlan::default()).unwrap();
    let mut client = Client::connect(&server);

    // Burn the burst at real time.
    let doc = client.request(&analyze_line("q0", "t", FAST_SRC));
    assert_eq!(status_of(&doc), "ok", "{doc:?}");
    let doc = client.request(&analyze_line("q1", "t", FAST_SRC));
    assert_eq!(status_of(&doc), "quota", "{doc:?}");

    // An hour of forward skew refills — but only to the burst cap.
    server.set_quota_skew_ms(3_600_000);
    let doc = client.request(&analyze_line("q2", "t", FAST_SRC));
    assert_eq!(status_of(&doc), "ok", "skew refills at most burst: {doc:?}");
    let doc = client.request(&analyze_line("q3", "t", FAST_SRC));
    assert_eq!(status_of(&doc), "quota", "{doc:?}");

    // An hour of backward skew freezes refill; the daemon neither
    // panics nor admits for free.
    server.set_quota_skew_ms(-3_600_000);
    let doc = client.request(&analyze_line("q4", "t", FAST_SRC));
    assert_eq!(status_of(&doc), "quota", "{doc:?}");

    server.set_quota_skew_ms(0);
    let doc = client.request(&analyze_line("q5", "t", FAST_SRC));
    assert_eq!(
        status_of(&doc),
        "quota",
        "no free tokens from the round trip: {doc:?}"
    );

    let m = server.metrics();
    assert_eq!(m.ok, 2);
    assert_eq!(m.quota, 4);
    server.shutdown();
    server.join();
}

#[test]
fn a_kill_during_drain_does_not_hang_shutdown() {
    // The worker dies on the only queued job, then shutdown drains.
    // The watchdog must requeue + respawn so the drain completes and
    // the job is answered before the shutdown response.
    let mut cfg = config("kill-drain");
    cfg.workers = 1;
    let (server, chaos) = Server::start_with_chaos(
        cfg,
        ChaosPlan {
            kill_at_jobs: vec![0],
            ..ChaosPlan::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(&server);
    client.send(&analyze_line("last", "t", FAST_SRC));
    client.send(r#"{"op":"shutdown"}"#);
    let first = client.recv();
    assert_eq!(status_of(&first), "ok", "{first:?}");
    assert_eq!(first.get("id").and_then(Json::as_str), Some("last"));
    let second = client.recv();
    assert_eq!(second.get("op").and_then(Json::as_str), Some("shutdown"));
    assert_eq!(chaos.metrics().worker_kills, 1);
    server.join();
}
