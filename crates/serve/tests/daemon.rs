//! Daemon lifecycle tests over a real unix socket: admission control
//! under overload, per-tenant quota fairness, per-connection
//! backpressure, graceful shutdown draining, and inline protocol
//! errors. Every test runs its own daemon on its own socket; the
//! shared invariant throughout is *one labeled response per request* —
//! nothing hangs, nothing is dropped, no worker is lost.

use obs::json::{parse, Json};
use repro_serve::{QuotaConfig, ServeConfig, Server};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

/// A fast inline request: a 4-element map, a few milliseconds end to
/// end even in debug builds.
const FAST_SRC: &str = "float in[4];\nfloat out[4];\nvoid main() {\n  int i;\n  \
     for (i = 0; i < 4; i++) {\n    out[i] = in[i] * 2.0 + 1.0;\n  }\n  output(out);\n}\n";

/// A slow inline request: 1600 serial inner iterations give the match
/// phase a ~100 ms DDG, long enough to keep a worker visibly busy.
const SLOW_SRC: &str = "float out[16];\nvoid main() {\n  int i;\n  int j;\n  \
     for (i = 0; i < 16; i++) {\n    float acc = 0.0;\n    \
     for (j = 0; j < 100; j++) {\n      acc = acc + 0.5;\n    }\n    out[i] = acc;\n  }\n  \
     output(out);\n}\n";

fn sock(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "repro-serve-test-{}-{tag}.sock",
        std::process::id()
    ))
}

fn config(tag: &str) -> ServeConfig {
    ServeConfig {
        socket: sock(tag),
        workers: 2,
        analysis_threads: 2,
        ..ServeConfig::default()
    }
}

fn analyze_line(id: &str, tenant: &str, source: &str) -> String {
    let mut line = String::new();
    line.push_str("{\"op\":\"analyze\",\"id\":");
    serde::ser_str(&mut line, id);
    line.push_str(",\"tenant\":");
    serde::ser_str(&mut line, tenant);
    line.push_str(",\"source\":");
    serde::ser_str(&mut line, source);
    line.push('}');
    line
}

struct Client {
    stream: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = UnixStream::connect(server.socket()).expect("connect to daemon");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        let mut s = &self.stream;
        s.write_all(line.as_bytes()).expect("send request");
        s.write_all(b"\n").expect("send newline");
        s.flush().expect("flush request");
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "daemon closed the connection mid-conversation");
        parse(line.trim_end()).expect("response parses as JSON")
    }

    fn request(&mut self, line: &str) -> Json {
        self.send(line);
        self.recv()
    }
}

fn status_of(doc: &Json) -> &str {
    doc.get("status")
        .and_then(Json::as_str)
        .expect("status field")
}

fn id_of(doc: &Json) -> &str {
    doc.get("id").and_then(Json::as_str).expect("id field")
}

/// Reads `n` responses and buckets them: id → status.
fn collect(client: &mut Client, n: usize) -> HashMap<String, String> {
    (0..n)
        .map(|_| {
            let doc = client.recv();
            (id_of(&doc).to_string(), status_of(&doc).to_string())
        })
        .collect()
}

#[test]
fn analyze_stats_and_shutdown_round_trip() {
    let server = Server::start(config("roundtrip")).unwrap();
    let mut client = Client::connect(&server);

    let doc = client.request(r#"{"op":"ping"}"#);
    assert_eq!(status_of(&doc), "ok");

    for i in 0..3 {
        let doc = client.request(&analyze_line(&format!("r{i}"), "t", FAST_SRC));
        assert_eq!(status_of(&doc), "ok", "{doc:?}");
        assert_eq!(id_of(&doc), format!("r{i}"));
        assert_eq!(doc.get("patterns").and_then(Json::as_f64), Some(1.0));
        assert_eq!(doc.get("degraded"), Some(&Json::Bool(false)));
        // Identical repeats are answered out of the query store.
        assert_eq!(doc.get("query_hit"), Some(&Json::Bool(i > 0)), "{doc:?}");
    }
    // The repeats hit the shared query store above the match cache.
    let doc = client.request(r#"{"op":"stats"}"#);
    assert_eq!(status_of(&doc), "ok");
    let serve = doc.get("serve").expect("serve section");
    assert_eq!(serve.get("requests").and_then(Json::as_f64), Some(3.0));
    assert_eq!(serve.get("ok").and_then(Json::as_f64), Some(3.0));
    assert_eq!(serve.get("worker_lost").and_then(Json::as_f64), Some(0.0));
    let engine = doc.get("engine").expect("engine section");
    assert!(engine.get("cache_capacity").and_then(Json::as_f64).unwrap() > 0.0);
    let query = doc.get("query").expect("query section");
    assert_eq!(query.get("full"), Some(&Json::Bool(true)));
    let trace = query.get("trace").expect("trace stage");
    assert!(
        trace.get("hits").and_then(Json::as_f64).unwrap() >= 2.0,
        "repeat requests must be trace-stage hits: {query:?}"
    );

    let doc = client.request(r#"{"op":"shutdown"}"#);
    assert_eq!(status_of(&doc), "ok");
    server.join();
    assert!(!sock("roundtrip").exists(), "socket file survives shutdown");
}

#[test]
fn tenant_quotas_are_independent_under_exhaustion() {
    let mut cfg = config("quota");
    cfg.quota = QuotaConfig {
        burst: 3,
        refill_per_sec: 0.0,
    };
    let server = Server::start(cfg).unwrap();
    let mut client = Client::connect(&server);

    // The flooding tenant gets exactly its burst, then labeled
    // rejections — not hangs, not errors.
    let mut flood_ok = 0;
    let mut flood_quota = 0;
    for i in 0..6 {
        let doc = client.request(&analyze_line(&format!("f{i}"), "flood", FAST_SRC));
        match status_of(&doc) {
            "ok" => flood_ok += 1,
            "quota" => {
                flood_quota += 1;
                let msg = doc.get("error").and_then(Json::as_str).unwrap();
                assert!(msg.contains("flood"), "error names the tenant: {msg}");
            }
            other => panic!("unexpected status {other}"),
        }
    }
    assert_eq!((flood_ok, flood_quota), (3, 3));

    // A calm tenant is untouched by the flood next door.
    for i in 0..3 {
        let doc = client.request(&analyze_line(&format!("c{i}"), "calm", FAST_SRC));
        assert_eq!(status_of(&doc), "ok", "{doc:?}");
    }

    let m = server.metrics();
    assert_eq!(m.quota, 3);
    assert_eq!(m.ok, 6);
    server.shutdown();
    server.join();
}

#[test]
fn full_admission_queue_rejects_with_overloaded() {
    let mut cfg = config("overload");
    cfg.workers = 1;
    cfg.analysis_threads = 1;
    cfg.admission_capacity = 1;
    cfg.conn_window = 16;
    let server = Server::start(cfg).unwrap();
    let mut client = Client::connect(&server);

    // One slow request occupies the single worker; ten fast requests
    // pile onto a one-deep queue.
    client.send(&analyze_line("slow", "t", SLOW_SRC));
    for i in 0..10 {
        client.send(&analyze_line(&format!("fast{i}"), "t", FAST_SRC));
    }
    let statuses = collect(&mut client, 11);

    // The invariant under overload: every request answered, every
    // answer labeled, nothing lost.
    assert_eq!(statuses.len(), 11, "every id answered exactly once");
    assert_eq!(statuses["slow"], "ok");
    let overloaded = statuses.values().filter(|s| *s == "overloaded").count();
    let ok = statuses.values().filter(|s| *s == "ok").count();
    assert_eq!(ok + overloaded, 11, "{statuses:?}");
    assert!(overloaded >= 8, "tiny queue must shed load: {statuses:?}");

    let m = server.metrics();
    assert_eq!(m.overloaded as usize, overloaded);
    assert_eq!(m.worker_lost, 0);
    server.shutdown();
    server.join();
}

#[test]
fn conn_window_backpressures_without_losing_requests() {
    let mut cfg = config("window");
    cfg.conn_window = 1;
    let server = Server::start(cfg).unwrap();
    let mut client = Client::connect(&server);

    // Six pipelined requests against a window of one: the daemon's
    // reader stalls instead of queueing, and every request still gets
    // its answer.
    for i in 0..6 {
        client.send(&analyze_line(&format!("w{i}"), "t", FAST_SRC));
    }
    let statuses = collect(&mut client, 6);
    assert_eq!(statuses.len(), 6);
    assert!(
        statuses.values().all(|s| s == "ok"),
        "window is backpressure, not rejection: {statuses:?}"
    );
    assert_eq!(server.metrics().overloaded, 0);
    server.shutdown();
    server.join();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let mut cfg = config("drain");
    cfg.workers = 2;
    let server = Server::start(cfg).unwrap();
    let mut client = Client::connect(&server);

    // Pipeline four requests (the slow ones keep workers busy) and a
    // shutdown right behind them on the same connection.
    client.send(&analyze_line("d0", "t", SLOW_SRC));
    client.send(&analyze_line("d1", "t", FAST_SRC));
    client.send(&analyze_line("d2", "t", SLOW_SRC));
    client.send(&analyze_line("d3", "t", FAST_SRC));
    client.send(r#"{"op":"shutdown"}"#);

    // Every in-flight analysis completes with a result; the shutdown
    // response arrives strictly after them.
    let mut seen = Vec::new();
    for _ in 0..5 {
        let doc = client.recv();
        assert_eq!(status_of(&doc), "ok", "{doc:?}");
        seen.push((
            id_of(&doc).to_string(),
            doc.get("op").and_then(Json::as_str).map(str::to_string),
        ));
    }
    assert_eq!(
        seen.last().unwrap().1.as_deref(),
        Some("shutdown"),
        "shutdown answers after the drain: {seen:?}"
    );
    let analyzed: Vec<&str> = seen[..4].iter().map(|(id, _)| id.as_str()).collect();
    for id in ["d0", "d1", "d2", "d3"] {
        assert!(analyzed.contains(&id), "{id} unanswered: {seen:?}");
    }

    let m = server.metrics();
    assert_eq!(m.ok, 4);
    assert_eq!(m.worker_lost, 0);
    assert_eq!(m.internal_errors, 0);
    server.join();
    assert!(!sock("drain").exists(), "socket file survives shutdown");
}

#[test]
fn requests_after_drain_are_rejected_as_overloaded() {
    let server = Server::start(config("after-drain")).unwrap();
    let mut warm = Client::connect(&server);
    assert_eq!(
        status_of(&warm.request(&analyze_line("a", "t", FAST_SRC))),
        "ok"
    );

    // A second connection is mid-conversation while the daemon drains.
    let mut late = Client::connect(&server);
    let done = warm.request(r#"{"op":"shutdown"}"#);
    assert_eq!(status_of(&done), "ok");
    late.send(&analyze_line("late", "t", FAST_SRC));
    // The late request gets a labeled rejection or a clean EOF (the
    // daemon may already have closed the socket) — never a hang.
    let mut line = String::new();
    let n = late.reader.read_line(&mut line).unwrap_or(0);
    if n > 0 {
        let doc = parse(line.trim_end()).expect("response parses");
        assert_eq!(status_of(&doc), "overloaded", "{doc:?}");
    }
    server.join();
}

#[test]
fn protocol_errors_are_answered_inline_and_do_not_wedge_the_daemon() {
    let server = Server::start(config("bad")).unwrap();
    let mut client = Client::connect(&server);

    let doc = client.request("this is not json");
    assert_eq!(status_of(&doc), "bad_request");
    assert!(doc
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("malformed"));

    let doc = client.request(r#"{"op":"analyze","id":"x","bench":"linpack"}"#);
    assert_eq!(status_of(&doc), "bad_request");
    let msg = doc.get("error").and_then(Json::as_str).unwrap();
    assert!(msg.contains("unknown benchmark \"linpack\""), "{msg}");
    assert!(msg.contains("available:"), "{msg}");
    assert!(msg.contains("rgbyuv"), "{msg}");

    let doc = client.request(r#"{"op":"analyze","id":"x","bench":"rgbyuv","version":"cuda"}"#);
    assert_eq!(status_of(&doc), "bad_request");

    let doc = client.request(r#"{"op":"analyze","id":"x","source":"void main() {"}"#);
    assert_eq!(status_of(&doc), "bad_request");
    assert!(doc
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("minc"));

    let doc = client.request(r#"{"op":"trace_dump","path":"/tmp/unused.json"}"#);
    assert_eq!(status_of(&doc), "bad_request");
    assert!(doc
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("--obs"));

    // The daemon is unimpressed and keeps serving.
    let doc = client.request(&analyze_line("after", "t", FAST_SRC));
    assert_eq!(status_of(&doc), "ok");
    let m = server.metrics();
    assert_eq!(m.bad_requests, 4);
    assert_eq!(m.ok, 1);
    server.shutdown();
    server.join();
}

#[test]
fn deadline_consumed_in_queue_sheds_instead_of_working() {
    // One worker pinned on a slow request; a queued request whose
    // deadline is already spent must be answered `overloaded` without
    // burning the worker on doomed work.
    let mut cfg = config("shed");
    cfg.workers = 1;
    cfg.analysis_threads = 1;
    let server = Server::start(cfg).unwrap();
    let mut client = Client::connect(&server);
    client.send(&analyze_line("plug", "t", SLOW_SRC));
    let mut doomed = String::new();
    doomed.push_str(
        "{\"op\":\"analyze\",\"id\":\"doomed\",\"tenant\":\"t\",\"deadline_ms\":0,\"source\":",
    );
    serde::ser_str(&mut doomed, FAST_SRC);
    doomed.push('}');
    client.send(&doomed);
    let statuses = collect(&mut client, 2);
    assert_eq!(statuses["plug"], "ok", "{statuses:?}");
    assert_eq!(statuses["doomed"], "overloaded", "{statuses:?}");
    let m = server.metrics();
    assert!(
        m.shed >= 1,
        "shed counter must record the early answer: {m:?}"
    );
    // Shed answers carry an explanatory message.
    let doc = client.request(r#"{"op":"stats"}"#);
    let serve = doc.get("serve").expect("serve section");
    assert!(serve.get("shed").and_then(Json::as_f64).unwrap() >= 1.0);
    server.shutdown();
    server.join();
}

#[test]
fn stats_report_uptime_and_resilience_counters() {
    let server = Server::start(config("stats-resil")).unwrap();
    let mut client = Client::connect(&server);
    std::thread::sleep(std::time::Duration::from_millis(10));
    let doc = client.request(r#"{"op":"stats"}"#);
    assert_eq!(status_of(&doc), "ok");
    assert!(doc.get("uptime_ms").and_then(Json::as_f64).unwrap() >= 10.0);
    assert!(doc.get("breaker_opens").and_then(Json::as_f64).is_some());
    assert!(doc.get("breaker_open").and_then(Json::as_f64).is_some());
    let serve = doc.get("serve").expect("serve section");
    for key in [
        "shed",
        "workers_respawned",
        "workers_stalled",
        "oversized_lines",
        "stale_takeovers",
    ] {
        assert_eq!(
            serve.get(key).and_then(Json::as_f64),
            Some(0.0),
            "calm daemon reports zero {key}"
        );
    }
    server.shutdown();
    server.join();
}

#[test]
fn startup_takes_over_a_crashed_predecessors_stale_socket() {
    // A predecessor that crashed leaves its socket file behind with
    // nothing listening. Startup must detect the corpse and take over.
    let path = sock("stale");
    let _ = std::fs::remove_file(&path);
    drop(std::os::unix::net::UnixListener::bind(&path).expect("plant stale socket"));
    assert!(path.exists(), "stale socket file planted");

    let mut cfg = config("stale");
    cfg.probe_timeout_ms = 200;
    let server = Server::start(cfg).expect("take over the stale socket");
    let mut client = Client::connect(&server);
    let doc = client.request(&analyze_line("reborn", "t", FAST_SRC));
    assert_eq!(status_of(&doc), "ok");
    assert_eq!(server.metrics().stale_takeovers, 1);
    server.shutdown();
    server.join();
}

#[test]
fn startup_takes_over_a_hung_predecessors_socket() {
    // A predecessor that still accepts but never answers ping (hung
    // accept loop) is as dead as a corpse: the probe times out and the
    // new daemon takes the address.
    let path = sock("hung");
    let _ = std::fs::remove_file(&path);
    let hung = std::os::unix::net::UnixListener::bind(&path).expect("plant hung daemon");
    let keepalive = std::thread::spawn(move || {
        // Accept connections and hold them open without answering.
        let mut held = Vec::new();
        while let Ok((conn, _)) = hung.accept() {
            held.push(conn);
            if held.len() >= 2 {
                break;
            }
        }
    });

    let mut cfg = config("hung");
    cfg.probe_timeout_ms = 100;
    let server = Server::start(cfg).expect("take over the hung socket");
    let mut client = Client::connect(&server);
    let doc = client.request(r#"{"op":"ping"}"#);
    assert_eq!(status_of(&doc), "ok");
    assert_eq!(server.metrics().stale_takeovers, 1);
    server.shutdown();
    server.join();
    drop(keepalive); // the hung listener thread dies with the process
}

#[test]
fn startup_refuses_to_evict_a_live_daemon() {
    let server = Server::start(config("live")).unwrap();
    let err = match Server::start(config("live")) {
        Ok(_) => panic!("second daemon must refuse to start"),
        Err(e) => e,
    };
    assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse, "{err}");
    // The incumbent is unharmed by the probe.
    let mut client = Client::connect(&server);
    let doc = client.request(&analyze_line("still-here", "t", FAST_SRC));
    assert_eq!(status_of(&doc), "ok");
    server.shutdown();
    server.join();
}

#[test]
fn bench_requests_share_the_compiled_program_and_cache() {
    let server = Server::start(config("bench")).unwrap();
    let mut client = Client::connect(&server);
    for i in 0..4 {
        let doc = client.request(&format!(
            r#"{{"op":"analyze","id":"b{i}","tenant":"t","bench":"rgbyuv"}}"#
        ));
        assert_eq!(status_of(&doc), "ok", "{doc:?}");
        assert!(doc.get("patterns").and_then(Json::as_f64).unwrap() >= 1.0);
        // Identical repeats never recompute: they replay from the query store.
        assert_eq!(doc.get("query_hit"), Some(&Json::Bool(i > 0)), "{doc:?}");
    }
    let em = server.engine_metrics();
    assert_eq!(em.cache_evictions, 0);
    server.shutdown();
    server.join();
}

#[test]
fn request_id_alias_is_accepted_and_echoed() {
    let server = Server::start(config("reqid")).unwrap();
    let mut client = Client::connect(&server);
    let doc = client.request(&format!(
        r#"{{"op":"analyze","request_id":"corr-1","tenant":"t","source":{FAST_SRC:?}}}"#
    ));
    assert_eq!(status_of(&doc), "ok", "{doc:?}");
    assert_eq!(id_of(&doc), "corr-1");
    server.shutdown();
    server.join();
}

#[test]
fn stats_surface_slo_latency_and_rates() {
    let server = Server::start(config("slostats")).unwrap();
    let mut client = Client::connect(&server);
    for i in 0..3 {
        let doc = client.request(&analyze_line(&format!("s{i}"), "acme", FAST_SRC));
        assert_eq!(status_of(&doc), "ok", "{doc:?}");
    }
    let doc = client.request(r#"{"op":"stats"}"#);
    assert_eq!(status_of(&doc), "ok");
    for key in ["uptime_ms", "requests_per_s", "ok_per_s", "flight_recorded"] {
        assert!(
            doc.get(key).and_then(Json::as_f64).is_some(),
            "stats missing {key}: {doc:?}"
        );
    }
    assert!(doc.get("requests_per_s").and_then(Json::as_f64).unwrap() > 0.0);
    let slo = doc.get("slo").expect("slo section");
    assert_eq!(slo.get("total").and_then(Json::as_f64), Some(3.0));
    assert_eq!(slo.get("bad").and_then(Json::as_f64), Some(0.0));
    assert_eq!(slo.get("short_burn").and_then(Json::as_f64), Some(0.0));
    assert_eq!(slo.get("long_burn").and_then(Json::as_f64), Some(0.0));
    // Per-op and per-tenant latency quantiles from the daemon's own
    // histograms (shared registry: filter to this server's tenant).
    let latency = doc.get("latency").and_then(Json::as_arr).expect("latency");
    let names: Vec<&str> = latency
        .iter()
        .filter_map(|h| h.get("name").and_then(Json::as_str))
        .collect();
    assert!(
        names.contains(&"serve.latency.op.analyze"),
        "latency section lacks the analyze op histogram: {names:?}"
    );
    assert!(
        names.contains(&"serve.latency.tenant.acme"),
        "latency section lacks the tenant histogram: {names:?}"
    );
    for h in latency {
        if h.get("name").and_then(Json::as_str) == Some("serve.latency.tenant.acme") {
            assert_eq!(h.get("count").and_then(Json::as_f64), Some(3.0));
            let p50 = h.get("p50_ms").and_then(Json::as_f64).unwrap();
            let p999 = h.get("p999_ms").and_then(Json::as_f64).unwrap();
            assert!(p50 > 0.0 && p999 >= p50, "p50 {p50} p999 {p999}");
        }
    }
    server.shutdown();
    server.join();
}

#[test]
fn blackbox_op_dumps_the_flight_recorder() {
    let server = Server::start(config("blackbox")).unwrap();
    let mut client = Client::connect(&server);
    let doc = client.request(&analyze_line("bb1", "t", FAST_SRC));
    assert_eq!(status_of(&doc), "ok");

    let path = std::env::temp_dir().join(format!("repro-blackbox-{}.json", std::process::id()));
    let doc = client.request(&format!(
        r#"{{"op":"blackbox","path":{:?}}}"#,
        path.display()
    ));
    assert_eq!(status_of(&doc), "ok", "{doc:?}");
    let events = doc.get("events").and_then(Json::as_f64).expect("events");
    assert!(events >= 3.0, "enqueue+pickup+answer at minimum: {doc:?}");
    let dump = std::fs::read_to_string(&path).expect("dump written");
    let parsed = parse(&dump).expect("dump parses");
    let listed = parsed.get("events").and_then(Json::as_arr).expect("events");
    assert_eq!(listed.len() as f64, events);
    // The analyze request's trail is reconstructable from the dump.
    for kind in ["enqueue", "pickup", "answer"] {
        assert!(
            listed.iter().any(|e| {
                e.get("kind").and_then(Json::as_str) == Some(kind)
                    && e.get("request_id").and_then(Json::as_str) == Some("bb1")
            }),
            "no {kind} event for bb1 in the dump"
        );
    }
    std::fs::remove_file(&path).ok();
    server.shutdown();
    server.join();
}

#[test]
fn dump_ops_refuse_bad_paths_with_structured_errors() {
    let server = Server::start(config("badpath")).unwrap();
    let mut client = Client::connect(&server);
    let dir = std::env::temp_dir();
    let missing_parent = dir.join("no-such-dir-for-sure").join("dump.json");
    for op in ["trace_dump", "blackbox"] {
        // Missing parent directory: a structured bad_request, not an
        // io panic or internal_error.
        let doc = client.request(&format!(
            r#"{{"op":{op:?},"path":{:?}}}"#,
            missing_parent.display()
        ));
        assert_eq!(status_of(&doc), "bad_request", "{op}: {doc:?}");
        // A directory as the target: same.
        let doc = client.request(&format!(r#"{{"op":{op:?},"path":{:?}}}"#, dir.display()));
        assert_eq!(status_of(&doc), "bad_request", "{op}: {doc:?}");
    }
    // The daemon is still healthy afterwards.
    let doc = client.request(r#"{"op":"ping"}"#);
    assert_eq!(status_of(&doc), "ok");
    let metrics = server.metrics();
    assert_eq!(metrics.internal_errors, 0);
    server.shutdown();
    server.join();
}

#[test]
fn subscribe_streams_metric_deltas_and_ends() {
    let server = Server::start(config("subscribe")).unwrap();
    let mut client = Client::connect(&server);
    let ack = client.request(r#"{"op":"subscribe","interval_ms":20,"ticks":3}"#);
    assert_eq!(status_of(&ack), "ok");
    assert_eq!(
        ack.get("op").and_then(Json::as_str),
        Some("subscribe"),
        "{ack:?}"
    );
    // Drive some load from a second connection while the stream runs.
    let mut worker = Client::connect(&server);
    for i in 0..2 {
        let doc = worker.request(&analyze_line(&format!("sub{i}"), "t", FAST_SRC));
        assert_eq!(status_of(&doc), "ok");
    }
    let mut ticks = 0u64;
    loop {
        let doc = client.recv();
        match doc.get("op").and_then(Json::as_str) {
            Some("metrics") => {
                ticks += 1;
                for key in [
                    "tick",
                    "uptime_ms",
                    "queue_depth",
                    "requests_delta",
                    "ok_delta",
                    "rejected_delta",
                    "errors_delta",
                    "slo_short_burn",
                    "slo_long_burn",
                ] {
                    assert!(
                        doc.get(key).and_then(Json::as_f64).is_some(),
                        "metrics tick missing {key}: {doc:?}"
                    );
                }
                assert!(doc.get("serve").is_some(), "tick lacks serve counters");
            }
            Some("subscribe_end") => break,
            other => panic!("unexpected stream line op {other:?}: {doc:?}"),
        }
    }
    assert_eq!(ticks, 3, "bounded subscription delivers exactly its ticks");
    // The deltas across the stream must have seen the worker's load.
    server.shutdown();
    server.join();
}

#[test]
fn prometheus_op_returns_a_valid_scrape() {
    let server = Server::start(config("prom")).unwrap();
    let mut client = Client::connect(&server);
    let doc = client.request(&analyze_line("p1", "t", FAST_SRC));
    assert_eq!(status_of(&doc), "ok");
    let doc = client.request(r#"{"op":"prometheus"}"#);
    assert_eq!(status_of(&doc), "ok", "{doc:?}");
    assert_eq!(
        doc.get("content_type").and_then(Json::as_str),
        Some("text/plain; version=0.0.4")
    );
    let text = doc.get("text").and_then(Json::as_str).expect("text");
    let summary = obs::validate_prometheus_text(text).expect("scrape validates");
    assert!(summary.samples > 0);
    assert!(
        summary
            .families
            .iter()
            .any(|f| f == "modernize_serve_requests_total"),
        "scrape lacks the serve request counter: {:?}",
        summary.families
    );
    assert!(
        summary
            .families
            .iter()
            .any(|f| f.starts_with("modernize_serve_latency_op_analyze")),
        "scrape lacks the analyze latency summary: {:?}",
        summary.families
    );
    server.shutdown();
    server.join();
}

#[test]
fn restart_with_populated_cache_serves_first_repeat_as_query_hit() {
    let dir = std::env::temp_dir().join(format!("repro-serve-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // First life: populate the store, then shut down cleanly — the
    // clean stop rewrites the persistent segments.
    let mut cfg = config("restart-a");
    cfg.cache_dir = Some(dir.clone());
    let server = Server::start(cfg).unwrap();
    let mut client = Client::connect(&server);
    let doc = client.request(&analyze_line("warm", "t", FAST_SRC));
    assert_eq!(status_of(&doc), "ok", "{doc:?}");
    assert_eq!(doc.get("query_hit"), Some(&Json::Bool(false)), "{doc:?}");
    let doc = client.request(r#"{"op":"shutdown"}"#);
    assert_eq!(status_of(&doc), "ok");
    server.join();

    // Second life: the very first repeated request must replay from
    // the reloaded store, never re-tracing.
    let mut cfg = config("restart-b");
    cfg.cache_dir = Some(dir.clone());
    let server = Server::start(cfg).unwrap();
    let mut client = Client::connect(&server);
    let doc = client.request(&analyze_line("replay", "t", FAST_SRC));
    assert_eq!(status_of(&doc), "ok", "{doc:?}");
    assert_eq!(
        doc.get("query_hit"),
        Some(&Json::Bool(true)),
        "first repeat after restart must be a query hit: {doc:?}"
    );
    let doc = client.request(r#"{"op":"stats"}"#);
    let load = doc.get("cache_load").expect("cache_load section");
    assert!(
        load.get("records_loaded").and_then(Json::as_f64).unwrap() >= 2.0,
        "restart must reload the trace and find segments: {load:?}"
    );
    assert_eq!(
        load.get("corrupt_records").and_then(Json::as_f64),
        Some(0.0)
    );
    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_identical_requests_coalesce_into_one_computation() {
    let server = Server::start(config("coalesce")).unwrap();
    let mut a = Client::connect(&server);
    let mut b = Client::connect(&server);

    // The leader starts a slow analysis; the identical follower lands
    // while it is in flight and must share the computation rather than
    // recompute (or queue behind it in the store — the coalesce path is
    // what the counter proves).
    a.send(&analyze_line("leader", "t", SLOW_SRC));
    b.send(&analyze_line("follower", "t", SLOW_SRC));
    let ra = a.recv();
    let rb = b.recv();
    assert_eq!(status_of(&ra), "ok", "{ra:?}");
    assert_eq!(status_of(&rb), "ok", "{rb:?}");
    assert_eq!(id_of(&ra), "leader");
    assert_eq!(id_of(&rb), "follower");
    // Both see the same analysis.
    assert_eq!(ra.get("patterns"), rb.get("patterns"));

    let doc = a.request(r#"{"op":"stats"}"#);
    let serve = doc.get("serve").expect("serve section");
    assert!(
        serve.get("coalesced").and_then(Json::as_f64).unwrap() >= 1.0,
        "identical in-flight requests must coalesce: {serve:?}"
    );
    server.shutdown();
    server.join();
}
