//! `ddg` — dynamic dataflow graphs (DDGs) and the graph algorithms the
//! pattern finder is built on.
//!
//! A DDG is a directed acyclic graph in which every node corresponds to a
//! *single execution* of an IR operation and there is an arc `(u, v)`
//! whenever execution `v` uses a value defined by execution `u` (Nethercote
//! & Mycroft's Redux representation, as adopted by the paper's §3). Nodes
//! carry the context the finder needs:
//!
//! * an interned **operation label** (`fadd`, `call.sqrt`, …) driving the
//!   relaxed isomorphism and associativity constraints;
//! * the **static operation id** and **source location**, so patterns can be
//!   reported back at their exact source position;
//! * the executing **thread**, making parallel and sequential executions
//!   uniform;
//! * the dynamic **loop scope** — the stack of (loop, instance, iteration)
//!   frames active when the node executed — which powers loop
//!   decomposition and compaction.
//!
//! The crate is independent of the IR and the tracer: the `trace` crate
//! populates a [`DdgBuilder`]; the `discovery` crate consumes [`Ddg`]s.

pub mod algo;
pub mod bitset;
pub mod dot;
pub mod graph;
pub mod structural;

pub use algo::{is_convex, is_weakly_connected, reachable_from, topo_order, Reachability};
pub use bitset::BitSet;
pub use graph::{Ddg, DdgBuilder, LabelId, Node, NodeId, ScopeEntry};
pub use structural::{grouped_key, KeyBuilder, StructuralKey};
