//! The DDG graph type and its builder.

use crate::bitset::BitSet;
use serde::{Deserialize, Serialize};

/// Index of a DDG node (one execution of one IR operation).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Interned operation label (`fadd`, `call.sqrt`, …).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct LabelId(pub u32);

/// One frame of a node's dynamic loop scope: the node executed within
/// iteration `iter` of dynamic activation `instance` of static loop
/// `loop_id`. A loop body re-entered by several threads (the worker loops of
/// Pthreads code) yields several instances of the same static loop — which
/// is exactly why the paper's loop DDGs span threads.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct ScopeEntry {
    pub loop_id: u32,
    pub instance: u32,
    pub iter: u32,
}

/// Minimal bitflags implementation (avoids an extra dependency).
macro_rules! bitflags_lite {
    (
        $(#[$meta:meta])* pub struct $name:ident : $ty:ty {
            $($(#[$fmeta:meta])* const $flag:ident = $value:expr;)*
        }
    ) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, Default, Debug, Serialize, Deserialize)]
        pub struct $name(pub $ty);
        impl $name {
            $($(#[$fmeta])* pub const $flag: $name = $name($value);)*
            #[inline]
            pub fn contains(self, other: $name) -> bool {
                self.0 & other.0 == other.0
            }
            #[inline]
            pub fn insert(&mut self, other: $name) {
                self.0 |= other.0;
            }
        }
        impl std::ops::BitOr for $name {
            type Output = $name;
            fn bitor(self, rhs: $name) -> $name {
                $name(self.0 | rhs.0)
            }
        }
    };
}

bitflags_lite! {
    /// Per-node boolean facts recorded by the tracer.
    pub struct NodeFlags: u8 {
        /// The node's value was consumed as a memory address at least once.
        const ADDRESS_USED = 1;
        /// The node's value was consumed by a branch condition.
        const CONTROL_USED = 2;
        /// The node executes an operation classified as loop traversal by
        /// generalized iterator recognition.
        const ITERATOR = 4;
        /// At least one operand was read from raw program input (memory
        /// initialized by the host rather than a traced operation) — the
        /// paper's "sourceless arcs".
        const READS_INPUT = 8;
        /// The node's value reached program output (e.g. a buffer handed to
        /// `fwrite`, which the paper traces as a standard-function call).
        const WRITES_OUTPUT = 16;
    }
}

/// A DDG node: one dynamic execution of a static operation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Interned operation label.
    pub label: LabelId,
    /// Static operation id (`repro_ir::OpId` raw value).
    pub static_op: u32,
    /// Source position (file index, 1-based line/col; 0 = none).
    pub file: u16,
    pub line: u32,
    pub col: u32,
    /// Executing thread.
    pub thread: u16,
    /// Dynamic loop scope, outermost first.
    pub scope: Box<[ScopeEntry]>,
    /// Tracer-recorded facts.
    pub flags: NodeFlags,
}

/// An immutable dynamic dataflow graph.
///
/// Adjacency is stored in CSR form — one offsets array plus one flat
/// arcs array per direction — so the whole graph is four allocations
/// instead of two `Vec`s per node, and [`Self::succs`]/[`Self::preds`]
/// are offset-window slices. Per-node lists are sorted and deduplicated
/// by construction ([`DdgBuilder::finish`] and [`Self::induced`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Ddg {
    labels: Vec<String>,
    label_assoc: Vec<bool>,
    nodes: Vec<Node>,
    succ_offsets: Vec<u32>,
    succ_arcs: Vec<NodeId>,
    pred_offsets: Vec<u32>,
    pred_arcs: Vec<NodeId>,
}

impl Ddg {
    /// Number of nodes — the paper's "DDG size".
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total number of arcs.
    pub fn arc_count(&self) -> usize {
        self.succ_arcs.len()
    }

    /// The node record.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Value-flow successors of a node.
    #[inline]
    pub fn succs(&self, id: NodeId) -> &[NodeId] {
        let i = id.index();
        &self.succ_arcs[self.succ_offsets[i] as usize..self.succ_offsets[i + 1] as usize]
    }

    /// Value-flow predecessors of a node.
    #[inline]
    pub fn preds(&self, id: NodeId) -> &[NodeId] {
        let i = id.index();
        &self.pred_arcs[self.pred_offsets[i] as usize..self.pred_offsets[i + 1] as usize]
    }

    /// The string of a label.
    pub fn label_str(&self, l: LabelId) -> &str {
        &self.labels[l.0 as usize]
    }

    /// Whether the operation behind a label is known associative.
    pub fn label_is_associative(&self, l: LabelId) -> bool {
        self.label_assoc[l.0 as usize]
    }

    /// Looks up a label by string.
    pub fn find_label(&self, s: &str) -> Option<LabelId> {
        self.labels
            .iter()
            .position(|l| l == s)
            .map(|i| LabelId(i as u32))
    }

    /// All arcs `(u, v)`.
    pub fn arcs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.node_ids()
            .flat_map(move |u| self.succs(u).iter().map(move |&v| (u, v)))
    }

    /// The innermost loop scope frame of a node, if it executed in a loop.
    pub fn innermost_scope(&self, id: NodeId) -> Option<ScopeEntry> {
        self.node(id).scope.last().copied()
    }

    /// Restricts the graph to `keep`, dropping all other nodes and every
    /// arc touching them. Returns the new graph and the mapping from old
    /// node ids to new ones.
    ///
    /// Subset-local: walks only the kept nodes' successor lists, never
    /// the whole arc array, so the cost is O(|keep| + arcs leaving kept
    /// nodes) regardless of how big the rest of the graph is.
    pub fn induced(&self, keep: &BitSet) -> (Ddg, Vec<Option<NodeId>>) {
        let (g, map, _visited) = self.induced_counted(keep);
        (g, map)
    }

    /// [`Self::induced`], also returning the number of adjacency entries
    /// visited — exactly the sum of the kept nodes' out-degrees. Exposed
    /// so callers can report the extraction cost (and tests can pin the
    /// subset-locality bound).
    pub fn induced_counted(&self, keep: &BitSet) -> (Ddg, Vec<Option<NodeId>>, u64) {
        let mut map: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        let mut nodes = Vec::with_capacity(keep.len());
        for (new_idx, old_idx) in keep.iter().enumerate() {
            map[old_idx] = Some(NodeId(new_idx as u32));
            nodes.push(self.nodes[old_idx].clone());
        }
        let n = nodes.len();
        let mut visited = 0u64;

        // Successor CSR: kept nodes in ascending old-id order, each list
        // filtered to kept targets. Old lists are sorted and the id map
        // is monotone, so the new lists stay sorted without a re-sort.
        let mut succ_offsets = Vec::with_capacity(n + 1);
        succ_offsets.push(0u32);
        let mut succ_arcs = Vec::new();
        let mut pred_counts = vec![0u32; n];
        for old_idx in keep.iter() {
            let succs = self.succs(NodeId(old_idx as u32));
            visited += succs.len() as u64;
            for &v in succs {
                if let Some(nv) = map[v.index()] {
                    succ_arcs.push(nv);
                    pred_counts[nv.index()] += 1;
                }
            }
            succ_offsets.push(succ_arcs.len() as u32);
        }

        // Predecessor CSR by counting sort over the successor arcs;
        // filling in ascending source order keeps each list sorted.
        let mut pred_offsets = vec![0u32; n + 1];
        for i in 0..n {
            pred_offsets[i + 1] = pred_offsets[i] + pred_counts[i];
        }
        let mut cursor: Vec<u32> = pred_offsets[..n].to_vec();
        let mut pred_arcs = vec![NodeId(0); succ_arcs.len()];
        for u in 0..n {
            let window = succ_offsets[u] as usize..succ_offsets[u + 1] as usize;
            for arc in &succ_arcs[window] {
                let v = arc.index();
                pred_arcs[cursor[v] as usize] = NodeId(u as u32);
                cursor[v] += 1;
            }
        }

        (
            Ddg {
                labels: self.labels.clone(),
                label_assoc: self.label_assoc.clone(),
                nodes,
                succ_offsets,
                succ_arcs,
                pred_offsets,
                pred_arcs,
            },
            map,
            visited,
        )
    }

    /// Assembles a graph directly from CSR arrays, for builders that
    /// already produce flattened adjacency (the parallel tracer's
    /// segment merge). Callers must supply per-node lists that are
    /// sorted, deduplicated, and mutually consistent (`pred` must be
    /// the exact transpose of `succ`); both invariants are checked in
    /// debug builds.
    #[allow(clippy::too_many_arguments)]
    pub fn from_csr_parts(
        labels: Vec<String>,
        label_assoc: Vec<bool>,
        nodes: Vec<Node>,
        succ_offsets: Vec<u32>,
        succ_arcs: Vec<NodeId>,
        pred_offsets: Vec<u32>,
        pred_arcs: Vec<NodeId>,
    ) -> Ddg {
        assert_eq!(labels.len(), label_assoc.len());
        assert_eq!(succ_offsets.len(), nodes.len() + 1);
        assert_eq!(pred_offsets.len(), nodes.len() + 1);
        assert_eq!(succ_arcs.len(), pred_arcs.len());
        let g = Ddg {
            labels,
            label_assoc,
            nodes,
            succ_offsets,
            succ_arcs,
            pred_offsets,
            pred_arcs,
        };
        #[cfg(debug_assertions)]
        {
            for id in g.node_ids() {
                debug_assert!(
                    g.succs(id).windows(2).all(|w| w[0] < w[1]),
                    "succs of {id:?} not sorted+deduped"
                );
                debug_assert!(
                    g.preds(id).windows(2).all(|w| w[0] < w[1]),
                    "preds of {id:?} not sorted+deduped"
                );
            }
            let mut fwd: Vec<(NodeId, NodeId)> = g.arcs().collect();
            let mut rev: Vec<(NodeId, NodeId)> = g
                .node_ids()
                .flat_map(|v| g.preds(v).iter().map(move |&u| (u, v)))
                .collect();
            fwd.sort_unstable();
            rev.sort_unstable();
            debug_assert_eq!(fwd, rev, "pred CSR is not the transpose of succ CSR");
        }
        g
    }
}

/// Incrementally builds a [`Ddg`]; used by the tracer.
#[derive(Default)]
pub struct DdgBuilder {
    labels: Vec<String>,
    label_assoc: Vec<bool>,
    label_index: std::collections::HashMap<String, LabelId>,
    nodes: Vec<Node>,
    succs: Vec<Vec<NodeId>>,
    preds: Vec<Vec<NodeId>>,
}

impl DdgBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an operation label with its associativity fact.
    pub fn intern_label(&mut self, s: &str, associative: bool) -> LabelId {
        if let Some(&id) = self.label_index.get(s) {
            return id;
        }
        let id = LabelId(self.labels.len() as u32);
        self.labels.push(s.to_string());
        self.label_assoc.push(associative);
        self.label_index.insert(s.to_string(), id);
        id
    }

    /// Appends a node, returning its id.
    #[allow(clippy::too_many_arguments)]
    pub fn add_node(
        &mut self,
        label: LabelId,
        static_op: u32,
        file: u16,
        line: u32,
        col: u32,
        thread: u16,
        scope: Vec<ScopeEntry>,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            label,
            static_op,
            file,
            line,
            col,
            thread,
            scope: scope.into_boxed_slice(),
            flags: NodeFlags::default(),
        });
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        id
    }

    /// Records a def-use arc. Duplicate arcs collapse at [`Self::finish`].
    #[inline]
    pub fn add_arc(&mut self, from: NodeId, to: NodeId) {
        self.succs[from.index()].push(to);
        self.preds[to.index()].push(from);
    }

    /// Marks a node's value as consumed at an address position.
    pub fn mark_address_use(&mut self, id: NodeId) {
        self.nodes[id.index()].flags.insert(NodeFlags::ADDRESS_USED);
    }

    /// Marks a node's value as consumed by a branch condition.
    pub fn mark_control_use(&mut self, id: NodeId) {
        self.nodes[id.index()].flags.insert(NodeFlags::CONTROL_USED);
    }

    /// Marks a node as executing a traversal (iterator) operation.
    pub fn mark_iterator(&mut self, id: NodeId) {
        self.nodes[id.index()].flags.insert(NodeFlags::ITERATOR);
    }

    /// Marks a node as consuming raw program input.
    pub fn mark_reads_input(&mut self, id: NodeId) {
        self.nodes[id.index()].flags.insert(NodeFlags::READS_INPUT);
    }

    /// Marks a node's value as reaching program output.
    pub fn mark_writes_output(&mut self, id: NodeId) {
        self.nodes[id.index()]
            .flags
            .insert(NodeFlags::WRITES_OUTPUT);
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no node has been added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Freezes into an immutable graph, deduplicating arcs and flattening
    /// the per-node lists into the CSR arrays.
    pub fn finish(mut self) -> Ddg {
        for list in self.succs.iter_mut().chain(self.preds.iter_mut()) {
            list.sort_unstable();
            list.dedup();
        }
        fn flatten(lists: Vec<Vec<NodeId>>) -> (Vec<u32>, Vec<NodeId>) {
            let total: usize = lists.iter().map(Vec::len).sum();
            let mut offsets = Vec::with_capacity(lists.len() + 1);
            offsets.push(0u32);
            let mut arcs = Vec::with_capacity(total);
            for list in lists {
                arcs.extend_from_slice(&list);
                offsets.push(arcs.len() as u32);
            }
            (offsets, arcs)
        }
        let (succ_offsets, succ_arcs) = flatten(self.succs);
        let (pred_offsets, pred_arcs) = flatten(self.preds);
        Ddg {
            labels: self.labels,
            label_assoc: self.label_assoc,
            nodes: self.nodes,
            succ_offsets,
            succ_arcs,
            pred_offsets,
            pred_arcs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A diamond: n0 -> n1, n0 -> n2, n1 -> n3, n2 -> n3.
    pub(crate) fn diamond() -> Ddg {
        let mut b = DdgBuilder::new();
        let add = b.intern_label("fadd", true);
        let mul = b.intern_label("fmul", true);
        let n0 = b.add_node(add, 0, 0, 1, 1, 0, vec![]);
        let n1 = b.add_node(mul, 1, 0, 2, 1, 0, vec![]);
        let n2 = b.add_node(mul, 1, 0, 2, 1, 1, vec![]);
        let n3 = b.add_node(add, 2, 0, 3, 1, 0, vec![]);
        b.add_arc(n0, n1);
        b.add_arc(n0, n2);
        b.add_arc(n1, n3);
        b.add_arc(n2, n3);
        b.add_arc(n1, n3); // duplicate, must collapse
        b.finish()
    }

    #[test]
    fn builds_and_dedups() {
        let g = diamond();
        assert_eq!(g.len(), 4);
        assert_eq!(g.arc_count(), 4);
        assert_eq!(g.succs(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(g.preds(NodeId(3)), &[NodeId(1), NodeId(2)]);
    }

    #[test]
    fn labels_and_associativity() {
        let g = diamond();
        let fadd = g.find_label("fadd").unwrap();
        assert_eq!(g.label_str(fadd), "fadd");
        assert!(g.label_is_associative(fadd));
        assert!(g.find_label("missing").is_none());
    }

    #[test]
    fn induced_subgraph_remaps_ids() {
        let g = diamond();
        let keep = BitSet::from_iter(4, [0, 1, 3]);
        let (sub, map) = g.induced(&keep);
        assert_eq!(sub.len(), 3);
        // arcs kept: n0->n1, n1->n3 (via remapped ids)
        assert_eq!(sub.arc_count(), 2);
        assert_eq!(map[2], None);
        let n3_new = map[3].unwrap();
        assert_eq!(sub.preds(n3_new).len(), 1);
    }

    #[test]
    fn flags_are_recorded() {
        let mut b = DdgBuilder::new();
        let l = b.intern_label("mul", true);
        let n = b.add_node(l, 0, 0, 1, 1, 0, vec![]);
        b.mark_address_use(n);
        b.mark_iterator(n);
        let g = b.finish();
        assert!(g.node(n).flags.contains(NodeFlags::ADDRESS_USED));
        assert!(g.node(n).flags.contains(NodeFlags::ITERATOR));
        assert!(!g.node(n).flags.contains(NodeFlags::CONTROL_USED));
    }

    #[test]
    fn scopes_are_stored() {
        let mut b = DdgBuilder::new();
        let l = b.intern_label("fadd", true);
        let scope = vec![ScopeEntry {
            loop_id: 0,
            instance: 2,
            iter: 5,
        }];
        let n = b.add_node(l, 0, 0, 1, 1, 3, scope);
        let g = b.finish();
        assert_eq!(
            g.innermost_scope(n),
            Some(ScopeEntry {
                loop_id: 0,
                instance: 2,
                iter: 5
            })
        );
        assert_eq!(g.node(n).thread, 3);
    }
}
