//! Graphviz (DOT) export of DDGs — the tool behind figures like the
//! paper's Fig. 2c and Fig. 5.

use crate::bitset::BitSet;
use crate::graph::{Ddg, NodeId};
use std::fmt::Write;

/// Renders the whole graph, nodes labeled `op@thread`.
pub fn to_dot(g: &Ddg) -> String {
    to_dot_highlighted(g, &[])
}

/// Renders the graph with each set in `highlight` drawn as a filled
/// cluster (pattern components, sub-DDGs, …), in grayscale like the
/// paper's figures.
pub fn to_dot_highlighted(g: &Ddg, highlight: &[&BitSet]) -> String {
    let mut out =
        String::from("digraph ddg {\n  rankdir=TB;\n  node [shape=circle, fontsize=10];\n");
    let shade = |i: usize| match i % 3 {
        0 => "lightgray",
        1 => "gray",
        _ => "darkgray",
    };
    let mut colored: Vec<Option<usize>> = vec![None; g.len()];
    for (hi, set) in highlight.iter().enumerate() {
        for n in set.iter() {
            colored[n] = Some(hi);
        }
    }
    for id in g.node_ids() {
        let node = g.node(id);
        let style = match colored[id.index()] {
            Some(hi) => format!(", style=filled, fillcolor={}", shade(hi)),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\\nt{}\"{}];",
            id.0,
            g.label_str(node.label),
            node.thread,
            style
        );
    }
    for (u, v) in g.arcs() {
        let _ = writeln!(out, "  n{} -> n{};", u.0, v.0);
    }
    out.push_str("}\n");
    out
}

/// Renders only the subgraph induced by `nodes` (plus one-hop context).
pub fn subgraph_to_dot(g: &Ddg, nodes: &BitSet) -> String {
    let mut context = nodes.clone();
    for n in nodes.iter() {
        for &s in g
            .succs(NodeId(n as u32))
            .iter()
            .chain(g.preds(NodeId(n as u32)))
        {
            context.insert(s.index());
        }
    }
    let (sub, map) = g.induced(&context);
    // Re-map the highlight set into the new index space.
    let mut hl = BitSet::new(sub.len());
    for n in nodes.iter() {
        if let Some(new) = map[n] {
            hl.insert(new.index());
        }
    }
    to_dot_highlighted(&sub, &[&hl])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DdgBuilder;

    fn tiny() -> Ddg {
        let mut b = DdgBuilder::new();
        let add = b.intern_label("fadd", true);
        let mul = b.intern_label("fmul", true);
        let a = b.add_node(mul, 0, 0, 1, 1, 0, vec![]);
        let c = b.add_node(add, 1, 0, 2, 1, 1, vec![]);
        b.add_arc(a, c);
        b.finish()
    }

    #[test]
    fn dot_contains_nodes_and_arcs() {
        let g = tiny();
        let dot = to_dot(&g);
        assert!(dot.contains("digraph ddg"));
        assert!(dot.contains("n0 [label=\"fmul\\nt0\"]"));
        assert!(dot.contains("n0 -> n1;"));
    }

    #[test]
    fn highlighting_fills_members() {
        let g = tiny();
        let set = BitSet::from_iter(2, [1]);
        let dot = to_dot_highlighted(&g, &[&set]);
        assert!(dot.contains("fillcolor=lightgray"));
        assert!(!dot.contains("n0 [label=\"fmul\\nt0\", style=filled"));
    }

    #[test]
    fn subgraph_adds_one_hop_context() {
        let g = tiny();
        let set = BitSet::from_iter(2, [1]);
        let dot = subgraph_to_dot(&g, &set);
        // Node 0 appears as context of node 1.
        assert!(dot.contains("fmul"));
        assert!(dot.contains("fadd"));
    }
}
