//! Structural keys for compacted (grouped) sub-DDG views.
//!
//! A [`StructuralKey`] is a canonical byte-exact encoding of everything a
//! pattern matcher can observe about a grouped sub-DDG under the paper's
//! §4 isomorphism relaxations:
//!
//! - per group, the sorted multiset of member operation labels with their
//!   associativity flags, and the member count (relaxed op-isomorphism);
//! - per group, external input/output availability and any-in/any-out
//!   flags (constraints 2c/2d/3e/3f);
//! - the deduplicated inter-group arcs, in group-index order;
//! - group-level reachability through the *full* graph, including paths
//!   through nodes outside the subset (convexity 1e, chaining 3c);
//! - the equality pattern of member static operations, canonically
//!   renumbered by first occurrence ("a reduction repeats one static
//!   operation");
//! - convexity of the whole subset within the full graph.
//!
//! Two sub-DDGs with equal keys are *op-isomorphic at the group level*
//! (same label multisets, flags, arc shape, reachability shape, and
//! static-op equality pattern, group-by-group in index order), so a
//! matcher that only consumes those facts — which the pattern models do —
//! must produce the same verdict for both. That is what makes the key
//! safe to use as a memo-cache key for match results. The encoding is
//! used directly as the cache key (no lossy hashing), so colliding hashes
//! cannot produce false cache hits.

use crate::algo::{is_convex, reachable_from};
use crate::bitset::BitSet;
use crate::graph::{Ddg, NodeFlags, NodeId};
use std::collections::HashMap;

/// A canonical structural encoding; equality ⇒ group-level
/// op-isomorphism of the encoded views.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct StructuralKey {
    words: Vec<u64>,
}

impl StructuralKey {
    /// A short fingerprint for metrics/logging (FNV-1a over the words).
    /// Only the full key is used for cache lookups.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &w in &self.words {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        h
    }

    /// Size of the encoding in 64-bit words (diagnostics only).
    pub fn len_words(&self) -> usize {
        self.words.len()
    }
}

/// Streaming encoder producing [`StructuralKey`]s. Every record is
/// length- or tag-prefixed so distinct fact sequences can never encode to
/// the same word stream.
pub struct KeyBuilder {
    words: Vec<u64>,
}

impl KeyBuilder {
    pub fn new(tag: u64) -> Self {
        KeyBuilder { words: vec![tag] }
    }

    pub fn word(&mut self, w: u64) {
        self.words.push(w);
    }

    /// Length-prefixed UTF-8 bytes packed into words.
    pub fn str(&mut self, s: &str) {
        let bytes = s.as_bytes();
        self.words.push(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut w = 0u64;
            for (i, &b) in chunk.iter().enumerate() {
                w |= (b as u64) << (i * 8);
            }
            self.words.push(w);
        }
    }

    /// Length-prefixed word sequence.
    pub fn words(&mut self, ws: impl IntoIterator<Item = u64>) {
        let start = self.words.len();
        self.words.push(0);
        let mut n = 0u64;
        for w in ws {
            self.words.push(w);
            n += 1;
        }
        self.words[start] = n;
    }

    pub fn finish(self) -> StructuralKey {
        StructuralKey { words: self.words }
    }
}

/// Computes the structural key of the grouped view of `groups` within
/// `g`. `tag` distinguishes encodings that share a shape but are matched
/// differently (callers pass the sub-DDG kind discriminant).
///
/// The group semantics mirror the finder's quotient view: flags and
/// reachability are computed against the *full* graph, so the key sees
/// exactly the facts the matcher's compaction would. Every graph fact
/// (per-group reachability, convexity) comes from targeted searches
/// bounded by the view's own cone — keying never pays for an all-pairs
/// closure of the full graph.
pub fn grouped_key(g: &Ddg, groups: &[Vec<NodeId>], tag: u64) -> StructuralKey {
    let mut b = KeyBuilder::new(tag);

    // node -> group index for membership tests.
    let mut group_of: Vec<Option<u32>> = vec![None; g.len()];
    for (gi, members) in groups.iter().enumerate() {
        for &m in members {
            group_of[m.index()] = Some(gi as u32);
        }
    }

    // Canonical static-op numbering by first occurrence across the whole
    // member stream; preserves the equality pattern, drops raw ids.
    let mut op_canon: HashMap<u32, u64> = HashMap::new();

    b.word(groups.len() as u64);
    for members in groups {
        // Label multiset: (string, associativity) sorted by string so the
        // encoding is independent of label-id interning order.
        let mut labels: Vec<(&str, bool)> = members
            .iter()
            .map(|&m| {
                let l = g.node(m).label;
                (g.label_str(l), g.label_is_associative(l))
            })
            .collect();
        labels.sort_unstable();
        b.word(labels.len() as u64);
        for (s, assoc) in labels {
            b.str(s);
            b.word(assoc as u64);
        }

        // Flags, mirroring the quotient's definitions.
        let ext_in = members.iter().any(|&m| {
            g.node(m).flags.contains(NodeFlags::READS_INPUT)
                || g.preds(m).iter().any(|p| group_of[p.index()].is_none())
        });
        let ext_out = members.iter().any(|&m| {
            g.node(m).flags.contains(NodeFlags::WRITES_OUTPUT)
                || g.succs(m).iter().any(|s| group_of[s.index()].is_none())
        });
        let any_in = ext_in || members.iter().any(|&m| !g.preds(m).is_empty());
        let any_out = ext_out || members.iter().any(|&m| !g.succs(m).is_empty());
        b.word(
            (ext_in as u64) | (ext_out as u64) << 1 | (any_in as u64) << 2 | (any_out as u64) << 3,
        );

        // Static-op equality pattern over members, in member order.
        let ops: Vec<u64> = members
            .iter()
            .map(|&m| {
                let id = g.node(m).static_op;
                let fresh = op_canon.len() as u64;
                *op_canon.entry(id).or_insert(fresh)
            })
            .collect();
        b.words(ops);
    }

    // Inter-group arcs, deduplicated, in index order.
    let n = groups.len();
    let mut arc_set: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (gi, members) in groups.iter().enumerate() {
        for &m in members {
            for &s in g.succs(m) {
                if let Some(ti) = group_of[s.index()] {
                    let ti = ti as usize;
                    if ti != gi {
                        arc_set[gi].push(ti);
                    }
                }
            }
        }
    }
    let mut arc_words = Vec::new();
    for (gi, list) in arc_set.iter_mut().enumerate() {
        list.sort_unstable();
        list.dedup();
        for &t in list.iter() {
            arc_words.push(((gi as u64) << 32) | t as u64);
        }
    }
    b.words(arc_words);

    // Group-level reachability through the full graph (irreflexive).
    let mut reach_words = Vec::new();
    for (gi, members) in groups.iter().enumerate() {
        let closure = reachable_from(g, members.iter().copied());
        let mut targets: Vec<usize> = Vec::new();
        for x in closure.iter() {
            if let Some(t) = group_of[x] {
                let t = t as usize;
                if t != gi {
                    targets.push(t);
                }
            }
        }
        targets.sort_unstable();
        targets.dedup();
        for t in targets {
            reach_words.push(((gi as u64) << 32) | t as u64);
        }
    }
    b.words(reach_words);

    // Convexity of the member union within the full graph.
    let mut subset = BitSet::new(g.len());
    for members in groups {
        for &m in members {
            subset.insert(m.index());
        }
    }
    b.word(is_convex(g, &subset) as u64);

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DdgBuilder;

    fn two_group_graph(label_order_swapped: bool) -> (Ddg, Vec<Vec<NodeId>>) {
        let mut b = DdgBuilder::new();
        // Interning order must not affect the key.
        let (f, a) = if label_order_swapped {
            let a = b.intern_label("fadd", true);
            let f = b.intern_label("fmul", true);
            (f, a)
        } else {
            let f = b.intern_label("fmul", true);
            let a = b.intern_label("fadd", true);
            (f, a)
        };
        let n: Vec<NodeId> = vec![
            b.add_node(f, 0, 0, 1, 1, 0, vec![]),
            b.add_node(a, 1, 0, 2, 1, 0, vec![]),
            b.add_node(f, 0, 0, 1, 1, 0, vec![]),
            b.add_node(a, 1, 0, 2, 1, 0, vec![]),
        ];
        b.add_arc(n[0], n[1]);
        b.add_arc(n[1], n[2]);
        b.add_arc(n[2], n[3]);
        b.mark_reads_input(n[0]);
        b.mark_writes_output(n[3]);
        let g = b.finish();
        (g, vec![vec![n[0], n[1]], vec![n[2], n[3]]])
    }

    #[test]
    fn key_is_independent_of_label_interning_order() {
        let (g1, groups1) = two_group_graph(false);
        let (g2, groups2) = two_group_graph(true);
        assert_eq!(grouped_key(&g1, &groups1, 0), grouped_key(&g2, &groups2, 0));
    }

    #[test]
    fn key_is_independent_of_static_op_ids() {
        let mut b = DdgBuilder::new();
        let l = b.intern_label("fadd", true);
        // Same shape as a 3-chain but with static op 7 instead of 0.
        let n: Vec<NodeId> = (0..3)
            .map(|_| b.add_node(l, 7, 0, 1, 1, 0, vec![]))
            .collect();
        b.add_arc(n[0], n[1]);
        b.add_arc(n[1], n[2]);
        let g_renamed = b.finish();

        let mut b = DdgBuilder::new();
        let l = b.intern_label("fadd", true);
        let n: Vec<NodeId> = (0..3)
            .map(|_| b.add_node(l, 0, 0, 1, 1, 0, vec![]))
            .collect();
        b.add_arc(n[0], n[1]);
        b.add_arc(n[1], n[2]);
        let g = b.finish();

        let groups: Vec<Vec<NodeId>> = (0..3).map(|i| vec![NodeId(i)]).collect();
        assert_eq!(
            grouped_key(&g, &groups, 1),
            grouped_key(&g_renamed, &groups, 1)
        );
    }

    #[test]
    fn distinct_ops_get_distinct_numbers() {
        // Two nodes with DIFFERENT static ops in one group must not key
        // equal to two nodes with the SAME static op.
        let build = |ops: [u32; 2]| {
            let mut b = DdgBuilder::new();
            let l = b.intern_label("fadd", true);
            let x = b.add_node(l, ops[0], 0, 1, 1, 0, vec![]);
            let y = b.add_node(l, ops[1], 0, 1, 1, 0, vec![]);
            let g = b.finish();
            grouped_key(&g, &[vec![x, y]], 0)
        };
        assert_ne!(build([0, 0]), build([0, 1]));
        assert_eq!(
            build([3, 9]),
            build([0, 1]),
            "only the equality pattern matters"
        );
    }

    #[test]
    fn tag_and_shape_changes_change_the_key() {
        let (g, groups) = two_group_graph(false);
        let base = grouped_key(&g, &groups, 0);
        assert_ne!(base, grouped_key(&g, &groups, 1), "tag");

        // Dropping the cross-group arc changes arcs and reachability.
        let mut b = DdgBuilder::new();
        let f = b.intern_label("fmul", true);
        let a = b.intern_label("fadd", true);
        let n: Vec<NodeId> = vec![
            b.add_node(f, 0, 0, 1, 1, 0, vec![]),
            b.add_node(a, 1, 0, 2, 1, 0, vec![]),
            b.add_node(f, 0, 0, 1, 1, 0, vec![]),
            b.add_node(a, 1, 0, 2, 1, 0, vec![]),
        ];
        b.add_arc(n[0], n[1]);
        b.add_arc(n[2], n[3]);
        b.mark_reads_input(n[0]);
        b.mark_writes_output(n[3]);
        let g2 = b.finish();
        let groups2 = vec![vec![n[0], n[1]], vec![n[2], n[3]]];
        assert_ne!(base, grouped_key(&g2, &groups2, 0));
    }

    #[test]
    fn string_encoding_is_unambiguous() {
        // ["ab"] in one group vs ["a", "b"]-ish shapes must differ even
        // though the concatenated bytes agree.
        let build = |names: &[&str]| {
            let mut b = DdgBuilder::new();
            let ids: Vec<_> = names.iter().map(|s| b.intern_label(s, false)).collect();
            let nodes: Vec<NodeId> = ids
                .iter()
                .map(|&l| b.add_node(l, 0, 0, 1, 1, 0, vec![]))
                .collect();
            let g = b.finish();
            grouped_key(&g, &[nodes], 0)
        };
        assert_ne!(build(&["ab"]), build(&["a", "b"]));
    }

    #[test]
    fn reach_through_outside_is_part_of_the_key() {
        // 0 -> 1 -> 2 with only {0, 2} in the view: reach must be seen.
        let mut b = DdgBuilder::new();
        let l = b.intern_label("fadd", true);
        let n: Vec<NodeId> = (0..3)
            .map(|i| b.add_node(l, i, 0, 1, 1, 0, vec![]))
            .collect();
        b.add_arc(n[0], n[1]);
        b.add_arc(n[1], n[2]);
        let g = b.finish();

        let mut b = DdgBuilder::new();
        let l = b.intern_label("fadd", true);
        let m: Vec<NodeId> = (0..3)
            .map(|i| b.add_node(l, i, 0, 1, 1, 0, vec![]))
            .collect();
        // No arcs at all.
        let g_disjoint = b.finish();
        let _ = &m;

        let view = |g: &Ddg, a: NodeId, c: NodeId| grouped_key(g, &[vec![a], vec![c]], 0);
        assert_ne!(view(&g, n[0], n[2]), view(&g_disjoint, m[0], m[2]));
    }
}
