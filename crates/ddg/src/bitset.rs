//! A dense, fixed-capacity bit set over node indices.
//!
//! Node sets are the currency of the pattern finder: sub-DDGs, pattern
//! components, subtraction and fusion are all set operations over the nodes
//! of one traced DDG. A word-packed bitset keeps them cheap — the paper's
//! finder routinely manipulates tens of thousands of nodes.

use serde::{Deserialize, Serialize};

/// A set of `usize` indices below a fixed capacity.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// An empty set able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// A set containing every index in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for i in 0..capacity {
            s.insert(i);
        }
        s
    }

    /// Builds a set from an iterator of indices.
    pub fn from_iter(capacity: usize, iter: impl IntoIterator<Item = usize>) -> Self {
        let mut s = Self::new(capacity);
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// The capacity (exclusive upper bound of indices).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Adds `i`; returns whether it was newly inserted.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(
            i < self.capacity,
            "index {i} out of capacity {}",
            self.capacity
        );
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Removes `i`; returns whether it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let present = *w & mask != 0;
        *w &= !mask;
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        i < self.capacity && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place set difference (`self -= other`).
    pub fn subtract(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// New set: union.
    pub fn union(&self, other: &BitSet) -> BitSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// New set: difference.
    pub fn difference(&self, other: &BitSet) -> BitSet {
        let mut s = self.clone();
        s.subtract(other);
        s
    }

    /// New set: intersection.
    pub fn intersection(&self, other: &BitSet) -> BitSet {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// True when the two sets share at least one element.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// True when every element of `self` is in `other`.
    pub fn is_subset_of(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// The smallest element, if any.
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }

    /// Clears all elements.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "second insert reports already present");
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn set_operations() {
        let a = BitSet::from_iter(100, [1, 2, 3, 70]);
        let b = BitSet::from_iter(100, [2, 3, 4, 99]);
        assert_eq!(a.union(&b).len(), 6);
        assert_eq!(a.intersection(&b).len(), 2);
        let d = a.difference(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 70]);
        assert!(a.intersects(&b));
        assert!(!BitSet::from_iter(100, [5]).intersects(&b));
    }

    #[test]
    fn subset_relation() {
        let a = BitSet::from_iter(64, [1, 2]);
        let b = BitSet::from_iter(64, [1, 2, 3]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_subset_of(&a));
    }

    #[test]
    fn iteration_order_is_increasing() {
        let s = BitSet::from_iter(200, [199, 0, 63, 64, 65]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 65, 199]);
        assert_eq!(s.first(), Some(0));
        assert_eq!(BitSet::new(10).first(), None);
    }

    #[test]
    fn full_and_clear() {
        let mut s = BitSet::full(70);
        assert_eq!(s.len(), 70);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn empty_capacity_zero() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }
}
