//! Graph algorithms over DDGs and node subsets.
//!
//! The pattern definitions are phrased in terms of three graph properties
//! (paper §4): *reachability* (convexity 1e, reduction chaining 3c, tiled
//! channeling 4d), *weak connectivity* (1d), and arcs between node sets
//! (2b, 3d, 4e). These helpers implement them over [`Ddg`]s restricted to
//! [`BitSet`] subsets, which is how the finder manipulates sub-DDGs.

use crate::bitset::BitSet;
use crate::graph::{Ddg, NodeId};

/// A topological order of the DAG (sources first).
///
/// DDGs are acyclic by construction (a use can only refer to an earlier
/// definition), so this always succeeds for tracer-produced graphs; cycles
/// introduced by hand-built test graphs panic.
pub fn topo_order(g: &Ddg) -> Vec<NodeId> {
    let n = g.len();
    let mut indeg: Vec<u32> = vec![0; n];
    for (_, v) in g.arcs() {
        indeg[v.index()] += 1;
    }
    let mut queue: std::collections::VecDeque<NodeId> =
        g.node_ids().filter(|id| indeg[id.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in g.succs(u) {
            indeg[v.index()] -= 1;
            if indeg[v.index()] == 0 {
                queue.push_back(v);
            }
        }
    }
    assert_eq!(order.len(), n, "DDG contains a cycle");
    order
}

/// The set of nodes reachable from `sources` (excluding the sources
/// themselves unless re-reached) following arcs forward.
pub fn reachable_from(g: &Ddg, sources: impl IntoIterator<Item = NodeId>) -> BitSet {
    let mut seen = BitSet::new(g.len());
    let mut stack: Vec<NodeId> = Vec::new();
    for s in sources {
        for &v in g.succs(s) {
            if seen.insert(v.index()) {
                stack.push(v);
            }
        }
    }
    while let Some(u) = stack.pop() {
        for &v in g.succs(u) {
            if seen.insert(v.index()) {
                stack.push(v);
            }
        }
    }
    seen
}

/// True when the subgraph induced by `subset` is weakly connected
/// (its undirected version is connected). The empty set is not connected;
/// singletons are.
pub fn is_weakly_connected(g: &Ddg, subset: &BitSet) -> bool {
    let Some(start) = subset.first() else {
        return false;
    };
    let mut seen = BitSet::new(g.len());
    seen.insert(start);
    let mut stack = vec![NodeId(start as u32)];
    let mut count = 1;
    while let Some(u) = stack.pop() {
        for &v in g.succs(u).iter().chain(g.preds(u)) {
            if subset.contains(v.index()) && seen.insert(v.index()) {
                stack.push(v);
                count += 1;
            }
        }
    }
    count == subset.len()
}

/// Splits `subset` into its weakly connected components, each returned
/// as its member list (traversal order). Components come out ordered by
/// their smallest member.
///
/// One scratch `visited` set (allocated once, full width) serves every
/// component, and start candidates come from iterating `subset` in
/// order — no per-component `BitSet` allocation, no rescans from bit 0.
/// Callers that need a set representation build one only for the
/// components they keep.
pub fn weakly_connected_components(g: &Ddg, subset: &BitSet) -> Vec<Vec<NodeId>> {
    weakly_connected_components_counted(g, subset).0
}

/// [`weakly_connected_components`], also returning the number of
/// adjacency entries examined — the sum of the subset nodes' total
/// degrees, independent of the rest of the graph.
pub fn weakly_connected_components_counted(g: &Ddg, subset: &BitSet) -> (Vec<Vec<NodeId>>, u64) {
    let mut visited = BitSet::new(g.len());
    let mut comps = Vec::new();
    let mut stack: Vec<NodeId> = Vec::new();
    let mut arcs_visited = 0u64;
    for start in subset.iter() {
        if visited.contains(start) {
            continue;
        }
        visited.insert(start);
        let mut members = vec![NodeId(start as u32)];
        stack.push(NodeId(start as u32));
        while let Some(u) = stack.pop() {
            let (succs, preds) = (g.succs(u), g.preds(u));
            arcs_visited += (succs.len() + preds.len()) as u64;
            for &v in succs.iter().chain(preds) {
                if subset.contains(v.index()) && visited.insert(v.index()) {
                    members.push(v);
                    stack.push(v);
                }
            }
        }
        comps.push(members);
    }
    (comps, arcs_visited)
}

/// Pattern convexity (paper constraint 1e) for `pattern` within `g`: no
/// path may leave the pattern and re-enter it. Checked with a targeted
/// forward search from the pattern's exit arcs — cost is bounded by the
/// exits' downstream cone, never the whole graph, and no all-pairs
/// closure is needed.
pub fn is_convex(g: &Ddg, pattern: &BitSet) -> bool {
    // Collect the exits (outside successors of pattern nodes).
    let mut exits: Vec<NodeId> = Vec::new();
    for u in pattern.iter() {
        for &v in g.succs(NodeId(u as u32)) {
            if !pattern.contains(v.index()) {
                exits.push(v);
            }
        }
    }
    exits.sort_unstable();
    exits.dedup();
    // BFS from the exits; hitting the pattern again means non-convex.
    let mut seen = BitSet::new(g.len());
    let mut stack = exits;
    while let Some(u) = stack.pop() {
        if pattern.contains(u.index()) {
            return false;
        }
        if !seen.insert(u.index()) {
            continue;
        }
        for &v in g.succs(u) {
            if !seen.contains(v.index()) {
                stack.push(v);
            }
        }
    }
    true
}

/// Precomputed all-pairs reachability over a (small) graph, stored as one
/// forward-closure bitset per node. Used by the matcher's convexity and
/// chaining constraints, where the graphs in play are compacted sub-DDGs
/// of at most a few thousand nodes.
pub struct Reachability {
    closure: Vec<BitSet>,
}

impl Reachability {
    /// Computes the transitive closure in reverse topological order.
    pub fn compute(g: &Ddg) -> Self {
        let order = topo_order(g);
        let mut closure: Vec<BitSet> = (0..g.len()).map(|_| BitSet::new(g.len())).collect();
        for &u in order.iter().rev() {
            // closure(u) = union over succs v of {v} ∪ closure(v)
            let mut acc = BitSet::new(g.len());
            for &v in g.succs(u) {
                acc.insert(v.index());
                acc.union_with(&closure[v.index()]);
            }
            closure[u.index()] = acc;
        }
        Reachability { closure }
    }

    /// True when a path `u ⇝ v` of length ≥ 1 exists.
    #[inline]
    pub fn reaches(&self, u: NodeId, v: NodeId) -> bool {
        self.closure[u.index()].contains(v.index())
    }

    /// The forward closure of `u` (nodes reachable via ≥ 1 arc).
    pub fn closure_of(&self, u: NodeId) -> &BitSet {
        &self.closure[u.index()]
    }

    /// Checks pattern convexity (paper constraint 1e) for the node set
    /// `pattern`: no path may leave the pattern and re-enter it. Returns
    /// `true` when convex.
    pub fn is_convex(&self, g: &Ddg, pattern: &BitSet) -> bool {
        // For every arc u->x with u ∈ P, x ∉ P: x must not reach any node
        // of P (otherwise some u ⇝ x ⇝ w with u, w ∈ P, x ∉ P exists).
        for u in pattern.iter() {
            for &x in g.succs(NodeId(u as u32)) {
                if !pattern.contains(x.index()) && self.closure_of(x).intersects(pattern) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DdgBuilder;

    /// chain 0 -> 1 -> 2 -> 3, plus a detour 1 -> 4 -> 3.
    fn chain_with_detour() -> Ddg {
        let mut b = DdgBuilder::new();
        let l = b.intern_label("fadd", true);
        let n: Vec<NodeId> = (0..5)
            .map(|i| b.add_node(l, i, 0, 1, 1, 0, vec![]))
            .collect();
        b.add_arc(n[0], n[1]);
        b.add_arc(n[1], n[2]);
        b.add_arc(n[2], n[3]);
        b.add_arc(n[1], n[4]);
        b.add_arc(n[4], n[3]);
        b.finish()
    }

    #[test]
    fn topo_order_respects_arcs() {
        let g = chain_with_detour();
        let order = topo_order(&g);
        let pos: Vec<usize> = {
            let mut p = vec![0; g.len()];
            for (i, id) in order.iter().enumerate() {
                p[id.index()] = i;
            }
            p
        };
        for (u, v) in g.arcs() {
            assert!(pos[u.index()] < pos[v.index()]);
        }
    }

    #[test]
    fn reachability_closure() {
        let g = chain_with_detour();
        let r = Reachability::compute(&g);
        assert!(r.reaches(NodeId(0), NodeId(3)));
        assert!(r.reaches(NodeId(1), NodeId(4)));
        assert!(!r.reaches(NodeId(3), NodeId(0)));
        assert!(!r.reaches(NodeId(2), NodeId(4)));
        // No self-reachability in a DAG.
        assert!(!r.reaches(NodeId(2), NodeId(2)));
    }

    #[test]
    fn reachable_from_multiple_sources() {
        let g = chain_with_detour();
        let reach = reachable_from(&g, [NodeId(2), NodeId(4)]);
        assert_eq!(reach.iter().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn weak_connectivity() {
        let g = chain_with_detour();
        assert!(is_weakly_connected(&g, &BitSet::from_iter(5, [0, 1, 2])));
        // {0, 3} are only connected through nodes outside the subset.
        assert!(!is_weakly_connected(&g, &BitSet::from_iter(5, [0, 3])));
        assert!(is_weakly_connected(&g, &BitSet::from_iter(5, [2])));
        assert!(!is_weakly_connected(&g, &BitSet::new(5)));
    }

    #[test]
    fn connected_components_split() {
        let g = chain_with_detour();
        let comps = weakly_connected_components(&g, &BitSet::from_iter(5, [0, 2, 3]));
        // {0} alone; {2,3} joined by the arc 2->3.
        assert_eq!(comps.len(), 2);
        let sizes: Vec<usize> = comps.iter().map(|c| c.len()).collect();
        assert!(sizes.contains(&1) && sizes.contains(&2));
    }

    #[test]
    fn connected_components_count_subset_degrees_only() {
        let g = chain_with_detour();
        let subset = BitSet::from_iter(5, [0, 2, 3]);
        let (comps, arcs_visited) = weakly_connected_components_counted(&g, &subset);
        assert_eq!(comps.len(), 2);
        // Exactly the subset nodes' degrees: deg(0)=1, deg(2)=2, deg(3)=2.
        let expected: u64 = subset
            .iter()
            .map(|i| (g.succs(NodeId(i as u32)).len() + g.preds(NodeId(i as u32)).len()) as u64)
            .sum();
        assert_eq!(arcs_visited, expected);
    }

    #[test]
    fn convexity_detects_escaping_paths() {
        let g = chain_with_detour();
        let r = Reachability::compute(&g);
        // {1, 3}: path 1 -> 2 -> 3 exits through 2 — not convex.
        assert!(!r.is_convex(&g, &BitSet::from_iter(5, [1, 3])));
        // {1, 2, 3}: path through 4 still escapes and re-enters — not convex.
        assert!(!r.is_convex(&g, &BitSet::from_iter(5, [1, 2, 3])));
        // {1, 2, 3, 4} closes both paths — convex.
        assert!(r.is_convex(&g, &BitSet::from_iter(5, [1, 2, 3, 4])));
        // {0, 1} prefix — convex.
        assert!(r.is_convex(&g, &BitSet::from_iter(5, [0, 1])));
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn topo_order_panics_on_cycle() {
        let mut b = DdgBuilder::new();
        let l = b.intern_label("add", true);
        let a = b.add_node(l, 0, 0, 1, 1, 0, vec![]);
        let c = b.add_node(l, 1, 0, 2, 1, 0, vec![]);
        b.add_arc(a, c);
        b.add_arc(c, a);
        let g = b.finish();
        topo_order(&g);
    }
}
