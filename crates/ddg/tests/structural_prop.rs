//! Property tests of the structural cache key: equal keys must imply
//! group-level op-isomorphism of the compacted views (no false cache
//! hits), and op-preserving renamings must not change the key (no
//! spurious misses for isomorphic views).
//!
//! The oracle re-derives the §4-relevant facts with independent code
//! (naive DFS reachability, set-based encodings) so encoder bugs such as
//! ambiguous concatenation cannot hide.

use ddg::{grouped_key, BitSet, Ddg, DdgBuilder, NodeId};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};

const LABEL_BANK: [(&str, bool); 3] = [("fadd", true), ("fmul", true), ("call.sqrt", false)];

/// Specification of a random grouped view: a DAG (arcs forced low → high)
/// plus a partition of a node subset into consecutive groups.
#[derive(Clone, Debug)]
struct Spec {
    n: usize,
    arcs: Vec<(usize, usize)>,
    labels: Vec<usize>,
    ops: Vec<u32>,
    reads: Vec<bool>,
    writes: Vec<bool>,
    group_sizes: Vec<usize>,
}

fn spec_strategy(max_n: usize) -> impl Strategy<Value = Spec> {
    (
        1usize..max_n,
        prop::collection::vec((0usize..8, 0usize..8), 0..10),
        prop::collection::vec(0usize..3, 8),
        prop::collection::vec(0u32..3, 8),
        prop::collection::vec(any::<bool>(), 8),
        prop::collection::vec(any::<bool>(), 8),
        prop::collection::vec(1usize..3, 1..4),
    )
        .prop_map(|(n, arcs, labels, ops, reads, writes, group_sizes)| Spec {
            n,
            arcs,
            labels,
            ops,
            reads,
            writes,
            group_sizes,
        })
}

/// Materializes a spec. `label_perm` controls label interning order and
/// `op_offset` renames static ops — op-isomorphic transformations that
/// must not affect the key.
fn build(spec: &Spec, label_perm: bool, op_offset: u32) -> (Ddg, Vec<Vec<NodeId>>) {
    let mut b = DdgBuilder::new();
    let mut ids = HashMap::new();
    let order: Vec<usize> = if label_perm {
        vec![2, 1, 0]
    } else {
        vec![0, 1, 2]
    };
    for &k in &order {
        let (s, assoc) = LABEL_BANK[k];
        ids.insert(k, b.intern_label(s, assoc));
    }
    let nodes: Vec<NodeId> = (0..spec.n)
        .map(|i| {
            b.add_node(
                ids[&spec.labels[i]],
                spec.ops[i] + op_offset,
                0,
                1,
                1,
                0,
                vec![],
            )
        })
        .collect();
    for (i, &node) in nodes.iter().enumerate() {
        if spec.reads[i] {
            b.mark_reads_input(node);
        }
        if spec.writes[i] {
            b.mark_writes_output(node);
        }
    }
    for &(u, v) in &spec.arcs {
        let (u, v) = (u % spec.n, v % spec.n);
        if u < v {
            b.add_arc(nodes[u], nodes[v]);
        }
    }
    let g = b.finish();

    // Partition a prefix of the nodes into consecutive groups.
    let mut groups = Vec::new();
    let mut next = 0usize;
    for &size in &spec.group_sizes {
        let end = (next + size).min(spec.n);
        if next < end {
            groups.push((next..end).map(|i| nodes[i]).collect::<Vec<_>>());
        }
        next = end;
    }
    if groups.is_empty() {
        groups.push(vec![nodes[0]]);
    }
    (g, groups)
}

/// Per-group observables: sorted (label, assoc) pairs, the four
/// external/any-arc flags, and the canonical op sequence.
type GroupFacts = (Vec<(String, bool)>, [bool; 4], Vec<u64>);

/// Everything a §4 matcher can observe, derived with naive algorithms.
#[derive(PartialEq, Eq, Debug)]
struct Facts {
    groups: Vec<GroupFacts>,
    arcs: BTreeSet<(usize, usize)>,
    reaches: BTreeSet<(usize, usize)>,
    convex: bool,
}

fn naive_reach(g: &Ddg) -> Vec<BTreeSet<usize>> {
    let n = g.len();
    let mut reach: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for u in (0..n).rev() {
        let mut r = BTreeSet::new();
        for &v in g.succs(NodeId(u as u32)) {
            r.insert(v.index());
            r.extend(reach[v.index()].iter().copied());
        }
        reach[u] = r;
    }
    reach
}

fn facts(g: &Ddg, groups: &[Vec<NodeId>]) -> Facts {
    let mut group_of: HashMap<usize, usize> = HashMap::new();
    for (gi, members) in groups.iter().enumerate() {
        for &m in members {
            group_of.insert(m.index(), gi);
        }
    }
    let reach = naive_reach(g);

    let mut op_canon: HashMap<u32, u64> = HashMap::new();
    let mut out_groups = Vec::new();
    for members in groups {
        let mut labels: Vec<(String, bool)> = members
            .iter()
            .map(|&m| {
                let l = g.node(m).label;
                (g.label_str(l).to_string(), g.label_is_associative(l))
            })
            .collect();
        labels.sort();
        let ext_in = members.iter().any(|&m| {
            g.node(m).flags.contains(ddg::graph::NodeFlags::READS_INPUT)
                || g.preds(m)
                    .iter()
                    .any(|p| !group_of.contains_key(&p.index()))
        });
        let ext_out = members.iter().any(|&m| {
            g.node(m)
                .flags
                .contains(ddg::graph::NodeFlags::WRITES_OUTPUT)
                || g.succs(m)
                    .iter()
                    .any(|s| !group_of.contains_key(&s.index()))
        });
        let any_in = ext_in || members.iter().any(|&m| !g.preds(m).is_empty());
        let any_out = ext_out || members.iter().any(|&m| !g.succs(m).is_empty());
        let ops: Vec<u64> = members
            .iter()
            .map(|&m| {
                let fresh = op_canon.len() as u64;
                *op_canon.entry(g.node(m).static_op).or_insert(fresh)
            })
            .collect();
        out_groups.push((labels, [ext_in, ext_out, any_in, any_out], ops));
    }

    let mut arcs = BTreeSet::new();
    for (u, v) in g.arcs() {
        if let (Some(&gu), Some(&gv)) = (group_of.get(&u.index()), group_of.get(&v.index())) {
            if gu != gv {
                arcs.insert((gu, gv));
            }
        }
    }

    let mut reaches = BTreeSet::new();
    for (gi, members) in groups.iter().enumerate() {
        for &m in members {
            for &t in &reach[m.index()] {
                if let Some(&gt) = group_of.get(&t) {
                    if gt != gi {
                        reaches.insert((gi, gt));
                    }
                }
            }
        }
    }

    // Convex iff no outside node sits on a path between two subset nodes.
    let subset: BTreeSet<usize> = group_of.keys().copied().collect();
    let mut convex = true;
    for w in 0..g.len() {
        if subset.contains(&w) {
            continue;
        }
        let from_subset = subset.iter().any(|&u| reach[u].contains(&w));
        let to_subset = subset.iter().any(|&v| reach[w].contains(&v));
        if from_subset && to_subset {
            convex = false;
        }
    }

    Facts {
        groups: out_groups,
        arcs,
        reaches,
        convex,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Completeness: label-interning order and static-op renaming are
    /// invisible to the key (op-isomorphic views share a cache line).
    #[test]
    fn op_isomorphic_renaming_preserves_key(spec in spec_strategy(8)) {
        let (g1, groups1) = build(&spec, false, 0);
        let (g2, groups2) = build(&spec, true, 1000);
        prop_assert_eq!(
            grouped_key(&g1, &groups1, 3),
            grouped_key(&g2, &groups2, 3)
        );
    }

    /// Soundness: equal keys imply equal matcher-visible facts — a cache
    /// hit can never hand a sub-DDG a verdict derived from a view that a
    /// matcher could distinguish from it.
    #[test]
    fn equal_keys_imply_equal_facts(
        a in spec_strategy(4),
        b in spec_strategy(4),
    ) {
        let (ga, groups_a) = build(&a, false, 0);
        let (gb, groups_b) = build(&b, false, 0);
        if grouped_key(&ga, &groups_a, 0) == grouped_key(&gb, &groups_b, 0) {
            prop_assert_eq!(facts(&ga, &groups_a), facts(&gb, &groups_b));
        }
    }

    /// The key agrees with the oracle on convexity of the grouped subset.
    #[test]
    fn convexity_bit_matches_naive_oracle(spec in spec_strategy(8)) {
        let (g, groups) = build(&spec, false, 0);
        let mut subset = BitSet::new(g.len());
        for members in &groups {
            for m in members {
                subset.insert(m.index());
            }
        }
        let fast = ddg::Reachability::compute(&g).is_convex(&g, &subset);
        prop_assert_eq!(fast, facts(&g, &groups).convex);
    }
}
