//! Property-based tests of the graph algorithms against naive oracles.

use ddg::{BitSet, Ddg, DdgBuilder, NodeId};
use proptest::prelude::*;
use std::collections::HashSet;

/// Builds a random DAG with `n` nodes; arcs only go from lower to higher
/// indices (acyclic by construction).
fn random_dag(n: usize, arcs: &[(usize, usize)]) -> Ddg {
    let mut b = DdgBuilder::new();
    let l = b.intern_label("fadd", true);
    let ids: Vec<NodeId> = (0..n)
        .map(|i| b.add_node(l, i as u32, 0, 1, 1, 0, vec![]))
        .collect();
    for &(u, v) in arcs {
        let (u, v) = (u % n, v % n);
        if u < v {
            b.add_arc(ids[u], ids[v]);
        }
    }
    b.finish()
}

/// The pre-CSR adjacency representation: one sorted, deduplicated
/// `Vec<NodeId>` per node and direction, built directly from the arc
/// list exactly as the old `Vec<Vec<_>>`-backed `DdgBuilder` did.
fn naive_adjacency(n: usize, arcs: &[(usize, usize)]) -> (Vec<Vec<NodeId>>, Vec<Vec<NodeId>>) {
    let mut succs = vec![Vec::new(); n];
    let mut preds = vec![Vec::new(); n];
    for &(u, v) in arcs {
        let (u, v) = (u % n, v % n);
        if u < v {
            succs[u].push(NodeId(v as u32));
            preds[v].push(NodeId(u as u32));
        }
    }
    for list in succs.iter_mut().chain(preds.iter_mut()) {
        list.sort_unstable();
        list.dedup();
    }
    (succs, preds)
}

/// Naive O(V·E) reachability oracle.
fn naive_reach(g: &Ddg) -> Vec<HashSet<usize>> {
    let n = g.len();
    let mut reach: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    for u in (0..n).rev() {
        let mut r = HashSet::new();
        for &v in g.succs(NodeId(u as u32)) {
            r.insert(v.index());
            r.extend(reach[v.index()].iter().copied());
        }
        reach[u] = r;
    }
    reach
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reachability_matches_naive(
        n in 1usize..40,
        arcs in prop::collection::vec((0usize..40, 0usize..40), 0..120),
    ) {
        let g = random_dag(n, &arcs);
        let oracle = naive_reach(&g);
        let fast = ddg::Reachability::compute(&g);
        for (u, reach_u) in oracle.iter().enumerate() {
            for v in 0..n {
                prop_assert_eq!(
                    fast.reaches(NodeId(u as u32), NodeId(v as u32)),
                    reach_u.contains(&v),
                    "reach({}, {})", u, v
                );
            }
        }
    }

    #[test]
    fn topo_order_is_consistent(
        n in 1usize..40,
        arcs in prop::collection::vec((0usize..40, 0usize..40), 0..120),
    ) {
        let g = random_dag(n, &arcs);
        let order = ddg::topo_order(&g);
        prop_assert_eq!(order.len(), n);
        let mut pos = vec![0usize; n];
        for (i, id) in order.iter().enumerate() {
            pos[id.index()] = i;
        }
        for (u, v) in g.arcs() {
            prop_assert!(pos[u.index()] < pos[v.index()]);
        }
    }

    #[test]
    fn connected_components_partition(
        n in 1usize..40,
        arcs in prop::collection::vec((0usize..40, 0usize..40), 0..100),
        subset_bits in prop::collection::vec(any::<bool>(), 40),
    ) {
        let g = random_dag(n, &arcs);
        let subset = BitSet::from_iter(
            n,
            (0..n).filter(|&i| subset_bits[i]),
        );
        let comps = ddg::algo::weakly_connected_components(&g, &subset);
        // Partition: disjoint union equals the subset.
        let mut union = BitSet::new(n);
        for members in &comps {
            let c = BitSet::from_iter(n, members.iter().map(|id| id.index()));
            prop_assert_eq!(c.len(), members.len(), "duplicate members");
            prop_assert!(!union.intersects(&c), "components overlap");
            union.union_with(&c);
            prop_assert!(ddg::is_weakly_connected(&g, &c), "component not connected");
        }
        prop_assert_eq!(union, subset);
    }

    #[test]
    fn wcc_visit_count_is_the_subset_degree_sum(
        n in 1usize..40,
        arcs in prop::collection::vec((0usize..40, 0usize..40), 0..100),
        subset_bits in prop::collection::vec(any::<bool>(), 40),
    ) {
        let g = random_dag(n, &arcs);
        let subset = BitSet::from_iter(n, (0..n).filter(|&i| subset_bits[i]));
        let (_, arcs_visited) =
            ddg::algo::weakly_connected_components_counted(&g, &subset);
        let expected: u64 = subset
            .iter()
            .map(|i| {
                let id = NodeId(i as u32);
                (g.succs(id).len() + g.preds(id).len()) as u64
            })
            .sum();
        prop_assert_eq!(arcs_visited, expected);
    }

    #[test]
    fn csr_adjacency_matches_the_old_vec_of_vecs(
        n in 1usize..40,
        arcs in prop::collection::vec((0usize..40, 0usize..40), 0..120),
    ) {
        let g = random_dag(n, &arcs);
        let (succs, preds) = naive_adjacency(n, &arcs);
        for u in 0..n {
            let id = NodeId(u as u32);
            prop_assert_eq!(g.succs(id), succs[u].as_slice(), "succs({})", u);
            prop_assert_eq!(g.preds(id), preds[u].as_slice(), "preds({})", u);
        }
        prop_assert_eq!(g.arc_count(), succs.iter().map(Vec::len).sum::<usize>());
    }

    #[test]
    fn induced_matches_the_old_full_arc_scan(
        n in 1usize..30,
        arcs in prop::collection::vec((0usize..30, 0usize..30), 0..80),
        keep_bits in prop::collection::vec(any::<bool>(), 30),
    ) {
        let g = random_dag(n, &arcs);
        let keep = BitSet::from_iter(n, (0..n).filter(|&i| keep_bits[i]));
        let (sub, map) = g.induced(&keep);

        // Oracle: the old implementation — remap kept ids, then scan
        // *every* arc of the whole graph, pushing the surviving ones.
        let mut old_map: Vec<Option<NodeId>> = vec![None; n];
        for (new_idx, old_idx) in keep.iter().enumerate() {
            old_map[old_idx] = Some(NodeId(new_idx as u32));
        }
        let mut old_succs = vec![Vec::new(); keep.len()];
        let mut old_preds = vec![Vec::new(); keep.len()];
        for (u, v) in g.arcs() {
            if let (Some(nu), Some(nv)) = (old_map[u.index()], old_map[v.index()]) {
                old_succs[nu.index()].push(nv);
                old_preds[nv.index()].push(nu);
            }
        }

        prop_assert_eq!(map, old_map);
        for u in 0..keep.len() {
            let id = NodeId(u as u32);
            prop_assert_eq!(sub.succs(id), old_succs[u].as_slice(), "succs({})", u);
            prop_assert_eq!(sub.preds(id), old_preds[u].as_slice(), "preds({})", u);
        }
    }

    #[test]
    fn induced_visit_count_is_subset_local(
        n in 1usize..30,
        arcs in prop::collection::vec((0usize..30, 0usize..30), 0..80),
        keep_bits in prop::collection::vec(any::<bool>(), 30),
    ) {
        let g = random_dag(n, &arcs);
        let keep = BitSet::from_iter(n, (0..n).filter(|&i| keep_bits[i]));
        let (_, _, visited) = g.induced_counted(&keep);
        // Exactly the kept nodes' out-degrees: extraction never looks at
        // arcs leaving dropped nodes.
        let expected: u64 = keep
            .iter()
            .map(|i| g.succs(NodeId(i as u32)).len() as u64)
            .sum();
        prop_assert_eq!(visited, expected);
    }

    #[test]
    fn induced_subgraph_preserves_internal_arcs(
        n in 1usize..30,
        arcs in prop::collection::vec((0usize..30, 0usize..30), 0..80),
        keep_bits in prop::collection::vec(any::<bool>(), 30),
    ) {
        let g = random_dag(n, &arcs);
        let keep = BitSet::from_iter(n, (0..n).filter(|&i| keep_bits[i]));
        let (sub, map) = g.induced(&keep);
        prop_assert_eq!(sub.len(), keep.len());
        // Arc count in the subgraph = arcs of g with both ends kept.
        let expected = g
            .arcs()
            .filter(|(u, v)| keep.contains(u.index()) && keep.contains(v.index()))
            .count();
        prop_assert_eq!(sub.arc_count(), expected);
        // Mapping is a bijection onto the new index space.
        let mapped: HashSet<u32> =
            map.iter().flatten().map(|id| id.0).collect();
        prop_assert_eq!(mapped.len(), keep.len());
    }

    #[test]
    fn targeted_convexity_matches_the_dense_closure(
        n in 1usize..30,
        arcs in prop::collection::vec((0usize..30, 0usize..30), 0..80),
        pattern_bits in prop::collection::vec(any::<bool>(), 30),
    ) {
        let g = random_dag(n, &arcs);
        let pattern = BitSet::from_iter(n, (0..n).filter(|&i| pattern_bits[i]));
        let dense = ddg::Reachability::compute(&g).is_convex(&g, &pattern);
        prop_assert_eq!(ddg::is_convex(&g, &pattern), dense);
    }

    #[test]
    fn bitset_behaves_like_hashset(
        ops in prop::collection::vec((0usize..3, 0usize..64), 0..200),
    ) {
        let mut bs = BitSet::new(64);
        let mut hs: HashSet<usize> = HashSet::new();
        for (op, v) in ops {
            match op {
                0 => {
                    prop_assert_eq!(bs.insert(v), hs.insert(v));
                }
                1 => {
                    prop_assert_eq!(bs.remove(v), hs.remove(&v));
                }
                _ => {
                    prop_assert_eq!(bs.contains(v), hs.contains(&v));
                }
            }
            prop_assert_eq!(bs.len(), hs.len());
        }
        let from_iter: HashSet<usize> = bs.iter().collect();
        prop_assert_eq!(from_iter, hs);
    }

    #[test]
    fn bitset_algebra_laws(
        a_bits in prop::collection::vec(any::<bool>(), 70),
        b_bits in prop::collection::vec(any::<bool>(), 70),
    ) {
        let a = BitSet::from_iter(70, (0..70).filter(|&i| a_bits[i]));
        let b = BitSet::from_iter(70, (0..70).filter(|&i| b_bits[i]));
        // |A ∪ B| + |A ∩ B| = |A| + |B|
        prop_assert_eq!(
            a.union(&b).len() + a.intersection(&b).len(),
            a.len() + b.len()
        );
        // A − B ⊆ A; (A − B) ∩ B = ∅
        prop_assert!(a.difference(&b).is_subset_of(&a));
        prop_assert!(!a.difference(&b).intersects(&b) || b.is_empty());
        // De Morgan-ish: (A ∪ B) − B = A − B
        prop_assert_eq!(a.union(&b).difference(&b), a.difference(&b));
    }
}

/// Extraction cost must not depend on the graph outside the kept subset:
/// piling arcs onto dropped nodes leaves the visit count unchanged.
#[test]
fn induced_cost_ignores_arcs_outside_the_subset() {
    let kept_arcs = [(0, 1), (1, 2), (0, 2)];
    let sparse = random_dag(20, &kept_arcs);
    let dense_extra: Vec<(usize, usize)> = (3..20)
        .flat_map(|u| ((u + 1)..20).map(move |v| (u, v)))
        .chain(kept_arcs)
        .collect();
    let dense = random_dag(20, &dense_extra);
    assert!(dense.arc_count() > sparse.arc_count() * 10);

    let keep = BitSet::from_iter(20, [0, 1, 2]);
    let (_, _, visited_sparse) = sparse.induced_counted(&keep);
    let (_, _, visited_dense) = dense.induced_counted(&keep);
    assert_eq!(visited_sparse, visited_dense);
    assert_eq!(visited_sparse, 3, "out-degrees of nodes 0..3");
}
