//! Property-based tests of the graph algorithms against naive oracles.

use ddg::{BitSet, Ddg, DdgBuilder, NodeId};
use proptest::prelude::*;
use std::collections::HashSet;

/// Builds a random DAG with `n` nodes; arcs only go from lower to higher
/// indices (acyclic by construction).
fn random_dag(n: usize, arcs: &[(usize, usize)]) -> Ddg {
    let mut b = DdgBuilder::new();
    let l = b.intern_label("fadd", true);
    let ids: Vec<NodeId> = (0..n)
        .map(|i| b.add_node(l, i as u32, 0, 1, 1, 0, vec![]))
        .collect();
    for &(u, v) in arcs {
        let (u, v) = (u % n, v % n);
        if u < v {
            b.add_arc(ids[u], ids[v]);
        }
    }
    b.finish()
}

/// Naive O(V·E) reachability oracle.
fn naive_reach(g: &Ddg) -> Vec<HashSet<usize>> {
    let n = g.len();
    let mut reach: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    for u in (0..n).rev() {
        let mut r = HashSet::new();
        for &v in g.succs(NodeId(u as u32)) {
            r.insert(v.index());
            r.extend(reach[v.index()].iter().copied());
        }
        reach[u] = r;
    }
    reach
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reachability_matches_naive(
        n in 1usize..40,
        arcs in prop::collection::vec((0usize..40, 0usize..40), 0..120),
    ) {
        let g = random_dag(n, &arcs);
        let oracle = naive_reach(&g);
        let fast = ddg::Reachability::compute(&g);
        for (u, reach_u) in oracle.iter().enumerate() {
            for v in 0..n {
                prop_assert_eq!(
                    fast.reaches(NodeId(u as u32), NodeId(v as u32)),
                    reach_u.contains(&v),
                    "reach({}, {})", u, v
                );
            }
        }
    }

    #[test]
    fn topo_order_is_consistent(
        n in 1usize..40,
        arcs in prop::collection::vec((0usize..40, 0usize..40), 0..120),
    ) {
        let g = random_dag(n, &arcs);
        let order = ddg::topo_order(&g);
        prop_assert_eq!(order.len(), n);
        let mut pos = vec![0usize; n];
        for (i, id) in order.iter().enumerate() {
            pos[id.index()] = i;
        }
        for (u, v) in g.arcs() {
            prop_assert!(pos[u.index()] < pos[v.index()]);
        }
    }

    #[test]
    fn connected_components_partition(
        n in 1usize..40,
        arcs in prop::collection::vec((0usize..40, 0usize..40), 0..100),
        subset_bits in prop::collection::vec(any::<bool>(), 40),
    ) {
        let g = random_dag(n, &arcs);
        let subset = BitSet::from_iter(
            n,
            (0..n).filter(|&i| subset_bits[i]),
        );
        let comps = ddg::algo::weakly_connected_components(&g, &subset);
        // Partition: disjoint union equals the subset.
        let mut union = BitSet::new(n);
        for c in &comps {
            prop_assert!(!union.intersects(c), "components overlap");
            union.union_with(c);
            prop_assert!(ddg::is_weakly_connected(&g, c), "component not connected");
        }
        prop_assert_eq!(union, subset);
    }

    #[test]
    fn induced_subgraph_preserves_internal_arcs(
        n in 1usize..30,
        arcs in prop::collection::vec((0usize..30, 0usize..30), 0..80),
        keep_bits in prop::collection::vec(any::<bool>(), 30),
    ) {
        let g = random_dag(n, &arcs);
        let keep = BitSet::from_iter(n, (0..n).filter(|&i| keep_bits[i]));
        let (sub, map) = g.induced(&keep);
        prop_assert_eq!(sub.len(), keep.len());
        // Arc count in the subgraph = arcs of g with both ends kept.
        let expected = g
            .arcs()
            .filter(|(u, v)| keep.contains(u.index()) && keep.contains(v.index()))
            .count();
        prop_assert_eq!(sub.arc_count(), expected);
        // Mapping is a bijection onto the new index space.
        let mapped: HashSet<u32> =
            map.iter().flatten().map(|id| id.0).collect();
        prop_assert_eq!(mapped.len(), keep.len());
    }

    #[test]
    fn bitset_behaves_like_hashset(
        ops in prop::collection::vec((0usize..3, 0usize..64), 0..200),
    ) {
        let mut bs = BitSet::new(64);
        let mut hs: HashSet<usize> = HashSet::new();
        for (op, v) in ops {
            match op {
                0 => {
                    prop_assert_eq!(bs.insert(v), hs.insert(v));
                }
                1 => {
                    prop_assert_eq!(bs.remove(v), hs.remove(&v));
                }
                _ => {
                    prop_assert_eq!(bs.contains(v), hs.contains(&v));
                }
            }
            prop_assert_eq!(bs.len(), hs.len());
        }
        let from_iter: HashSet<usize> = bs.iter().collect();
        prop_assert_eq!(from_iter, hs);
    }

    #[test]
    fn bitset_algebra_laws(
        a_bits in prop::collection::vec(any::<bool>(), 70),
        b_bits in prop::collection::vec(any::<bool>(), 70),
    ) {
        let a = BitSet::from_iter(70, (0..70).filter(|&i| a_bits[i]));
        let b = BitSet::from_iter(70, (0..70).filter(|&i| b_bits[i]));
        // |A ∪ B| + |A ∩ B| = |A| + |B|
        prop_assert_eq!(
            a.union(&b).len() + a.intersection(&b).len(),
            a.len() + b.len()
        );
        // A − B ⊆ A; (A − B) ∩ B = ∅
        prop_assert!(a.difference(&b).is_subset_of(&a));
        prop_assert!(!a.difference(&b).intersects(&b) || b.is_empty());
        // De Morgan-ish: (A ∪ B) − B = A − B
        prop_assert_eq!(a.union(&b).difference(&b), a.difference(&b));
    }
}
