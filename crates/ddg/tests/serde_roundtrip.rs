//! Serialization round trips: DDGs survive JSON (de)serialization intact —
//! the harness persists graphs and experiment records this way.

use ddg::{Ddg, DdgBuilder, ScopeEntry};

fn sample() -> Ddg {
    let mut b = DdgBuilder::new();
    let add = b.intern_label("fadd", true);
    let sqrt = b.intern_label("call.sqrt", false);
    let n0 = b.add_node(
        add,
        0,
        0,
        3,
        7,
        1,
        vec![ScopeEntry {
            loop_id: 2,
            instance: 0,
            iter: 5,
        }],
    );
    let n1 = b.add_node(sqrt, 1, 1, 9, 2, 2, vec![]);
    b.add_arc(n0, n1);
    b.mark_reads_input(n0);
    b.mark_writes_output(n1);
    b.mark_address_use(n0);
    b.finish()
}

#[test]
fn json_round_trip_preserves_everything() {
    let g = sample();
    let json = serde_json::to_string(&g).expect("serializes");
    let back: Ddg = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back.len(), g.len());
    assert_eq!(back.arc_count(), g.arc_count());
    for (a, b) in g.node_ids().zip(back.node_ids()) {
        let (na, nb) = (g.node(a), back.node(b));
        assert_eq!(na.static_op, nb.static_op);
        assert_eq!(na.thread, nb.thread);
        assert_eq!(na.flags, nb.flags);
        assert_eq!(na.scope, nb.scope);
        assert_eq!(g.label_str(na.label), back.label_str(nb.label));
    }
    assert_eq!(
        g.arcs().collect::<Vec<_>>(),
        back.arcs().collect::<Vec<_>>()
    );
}

#[test]
fn associativity_facts_survive() {
    let g = sample();
    let json = serde_json::to_string(&g).unwrap();
    let back: Ddg = serde_json::from_str(&json).unwrap();
    let fadd = back.find_label("fadd").unwrap();
    let sqrt = back.find_label("call.sqrt").unwrap();
    assert!(back.label_is_associative(fadd));
    assert!(!back.label_is_associative(sqrt));
}
