//! Criterion micro-benchmarks of the constraint-solver kernel (the
//! Chuffed stand-in) and the skeleton backends.

use cp::search::search_with;
use cp::{AllDifferent, NotEqual, Propagator, VarId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skeletons::ExecPlan;

fn queens_search(n: u32) -> cp::Search {
    search_with(|store| {
        let qs: Vec<VarId> = (0..n).map(|_| store.new_var(0, n - 1)).collect();
        let mut props: Vec<Box<dyn Propagator>> = vec![Box::new(AllDifferent::new(qs.clone()))];
        for i in 0..n as usize {
            for j in (i + 1)..n as usize {
                let d = (j - i) as i64;
                props.push(Box::new(NotEqual::with_offset(qs[i], qs[j], d)));
                props.push(Box::new(NotEqual::with_offset(qs[i], qs[j], -d)));
            }
        }
        props
    })
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("cp-queens");
    for n in [8u32, 10, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| queens_search(n).solve_first())
        });
    }
    group.finish();
}

fn bench_skeletons(c: &mut Criterion) {
    let input: Vec<f64> = (0..100_000).map(|i| (i as f64).sin()).collect();
    let mut group = c.benchmark_group("skeleton-map-reduce");
    for plan in [
        ExecPlan::Sequential,
        ExecPlan::CpuThreads(2),
        ExecPlan::cpu_auto(),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(plan), &plan, |b, &plan| {
            b.iter(|| skeletons::map_reduce(plan, &input, |x| x * x, 0.0, |a, b| a + b))
        });
    }
    group.finish();
}

fn bench_native_streamcluster(c: &mut Criterion) {
    let pts = starbench::native::Points::synthetic(50_000, 32, 3);
    let weights: Vec<f64> = (0..pts.len()).map(|i| 1.0 + (i % 3) as f64 * 0.1).collect();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut group = c.benchmark_group("streamcluster-hiz");
    group.bench_function("sequential", |b| {
        b.iter(|| starbench::native::hiz_sequential(&pts, &weights))
    });
    group.bench_function("legacy-pthreads", |b| {
        b.iter(|| starbench::native::hiz_pthreads(&pts, &weights, cores))
    });
    group.bench_function("modernized-skeleton", |b| {
        b.iter(|| starbench::native::hiz_modernized(&pts, &weights, ExecPlan::CpuThreads(cores)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_solver, bench_skeletons, bench_native_streamcluster
}
criterion_main!(benches);
