//! Criterion micro-benchmarks of the analysis pipeline: tracing
//! throughput, DDG simplification, decomposition, and end-to-end pattern
//! finding per benchmark — the cost centers behind Fig. 7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use starbench::{all_benchmarks, Version};

fn bench_tracing(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracing");
    for bench in all_benchmarks() {
        let program = bench.program(Version::Pthreads);
        let cfg = (bench.analysis_input)();
        group.bench_with_input(BenchmarkId::from_parameter(bench.name), &(), |b, ()| {
            b.iter(|| trace::run(&program, &cfg).unwrap())
        });
    }
    group.finish();
}

fn bench_finder_phases(c: &mut Criterion) {
    let bench = starbench::benchmark("streamcluster").unwrap();
    let program = bench.program(Version::Pthreads);
    let cfg = (bench.analysis_input)();
    let raw = trace::run(&program, &cfg).unwrap().ddg.unwrap();

    c.bench_function("simplify/streamcluster", |b| {
        b.iter(|| discovery::simplify(&raw))
    });
    let (simplified, _, _) = discovery::simplify(&raw);
    c.bench_function("decompose/streamcluster", |b| {
        b.iter(|| discovery::decompose::decompose(&simplified))
    });
    c.bench_function("find_patterns/streamcluster", |b| {
        b.iter(|| discovery::find_patterns(&raw, &discovery::FinderConfig::default()))
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("find_patterns");

    for bench in all_benchmarks() {
        for version in Version::BOTH {
            let program = bench.program(version);
            let cfg = (bench.analysis_input)();
            let ddg = trace::run(&program, &cfg).unwrap().ddg.unwrap();
            let id = format!("{}-{}", bench.name, version.name());
            group.bench_with_input(BenchmarkId::from_parameter(id), &(), |b, ()| {
                b.iter(|| discovery::find_patterns(&ddg, &discovery::FinderConfig::default()))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_tracing, bench_finder_phases, bench_end_to_end
}
criterion_main!(benches);
