//! Regenerates paper Fig. 8: speedups of the legacy Pthreads, modernized
//! (skeleton), and Rodinia CUDA streamcluster on the two evaluation
//! architectures, over sequential execution on the CPU-centric machine.
//!
//! The cross-architecture numbers come from the calibrated model in
//! `skeletons::model` (we have neither machine nor a GPU — see DESIGN.md);
//! the binary additionally measures *real* host scaling of the three
//! native implementations to show the legacy/modernized equivalence is
//! not an artifact of the model.

use repro_bench::{render_table, write_record};
use serde::Serialize;
use skeletons::model::{speedup, Impl, KernelProfile};
use skeletons::{ExecPlan, Machine};
use starbench::native::{hiz_modernized, hiz_pthreads, hiz_sequential, Points};
use std::time::Instant;

#[derive(Serialize)]
struct Record {
    modeled: Vec<(String, String, f64)>,
    host_speedups: Vec<(String, f64)>,
}

fn main() {
    println!("Fig. 8: speedup over sequential on the CPU-centric architecture.\n");
    let baseline = Machine::cpu_centric();
    let profile = KernelProfile::streamcluster_reference();
    let machines = [Machine::cpu_centric(), Machine::gpu_centric()];
    let impls = [Impl::LegacyPthreads, Impl::Modernized, Impl::RodiniaCuda];
    let paper = [
        [10.0, 9.6, 2.4], // CPU-centric
        [4.3, 15.6, 7.1], // GPU-centric
    ];

    let mut rows = Vec::new();
    let mut modeled = Vec::new();
    for (mi, m) in machines.iter().enumerate() {
        for (ii, imp) in impls.iter().enumerate() {
            let s = speedup(*imp, m, &baseline, &profile);
            rows.push(vec![
                m.name.to_string(),
                imp.label().to_string(),
                format!("{s:.1}x"),
                format!("{:.1}x", paper[mi][ii]),
            ]);
            modeled.push((m.name.to_string(), imp.label().to_string(), s));
        }
    }
    println!(
        "{}",
        render_table(
            &["architecture", "implementation", "modeled", "paper"],
            &rows
        )
    );

    // Real host execution: the modernized skeleton call must match the
    // hand-written threaded code on actual hardware.
    println!("\nReal host execution (hiz kernel, 300k points x 64 dims):");
    let pts = Points::synthetic(300_000, 64, 7);
    let weights: Vec<f64> = (0..pts.len())
        .map(|i| 1.0 + (i % 7) as f64 * 0.05)
        .collect();
    let time = |f: &dyn Fn() -> f64| -> f64 {
        // One warmup, then best of three.
        let _ = f();
        (0..3)
            .map(|_| {
                let t = Instant::now();
                std::hint::black_box(f());
                t.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let t_seq = time(&|| hiz_sequential(&pts, &weights));
    let t_legacy = time(&|| hiz_pthreads(&pts, &weights, cores));
    let t_modern = time(&|| hiz_modernized(&pts, &weights, ExecPlan::CpuThreads(cores)));
    let mut host = Vec::new();
    for (name, t) in [
        ("sequential", t_seq),
        ("legacy pthreads", t_legacy),
        ("modernized skeleton", t_modern),
    ] {
        println!("  {name:<22} {:.1} ms  ({:.2}x)", t * 1e3, t_seq / t);
        host.push((name.to_string(), t_seq / t));
    }
    println!(
        "\n(host has {cores} core(s); with one core both parallel versions track the \
         sequential baseline — the point is that the modernized skeleton matches the \
         hand-written threading. The cross-architecture bars above reproduce the \
         paper's shape: modernized ~= legacy on the CPU-centric machine, fastest of \
         all on the GPU-centric one.)"
    );

    write_record(
        "fig8",
        &Record {
            modeled,
            host_speedups: host,
        },
    );
}
