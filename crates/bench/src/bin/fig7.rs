//! Regenerates paper Fig. 7: pattern-finding time by DDG size, plus the
//! §5/§6.2 companion statistics — the simplification reduction factor
//! (paper: 3.82× average), the phase-time breakdown (paper: tracing ≈ 1%,
//! matching ≈ 48%, other phases ≈ 51%), and the Pthreads-vs-sequential
//! DDG size and time deltas (paper: +15% size, +28% time).
//!
//! The whole benchmark × version × factor series runs as one batch on
//! the `repro-engine` work-stealing engine; per-point timings come from
//! the engine's per-request metrics. `--workers <n>` sizes the match
//! pool, `--budget-ms <ms>` caps each solver run, and
//! `--deadline-ms <ms>` bounds each request wall-clock (expired runs
//! report best-so-far patterns, flagged degraded).

use repro_bench::{
    cli, engine, export_obs, obs_report, parse_or_exit, print_engine_metrics, render_table,
    write_record,
};
use repro_engine::AnalysisRequest;
use serde::Serialize;
use starbench::{all_benchmarks, Version};

#[derive(Serialize)]
struct Point {
    benchmark: String,
    version: String,
    factor: usize,
    ddg_nodes: usize,
    trace_seconds: f64,
    find_seconds: f64,
    reduction: f64,
    /// Per-phase wall times (fractional ms) — the Fig. 7 breakdown.
    phases: discovery::PhaseTimes,
}

fn main() {
    let opts = cli();
    let factors = parse_factors(&opts.positional);
    println!("Fig. 7: pattern finding time by DDG size (scale factors {factors:?}).\n");

    // One request per (benchmark, version, factor); the engine overlaps
    // tracing and matching across the whole series.
    let mut meta = Vec::new();
    let mut requests = Vec::new();
    for bench in all_benchmarks() {
        for version in Version::BOTH {
            for &factor in &factors {
                meta.push((bench.name, version.name(), factor));
                requests.push(AnalysisRequest {
                    id: format!("{}-{}-x{factor}", bench.name, version.name()),
                    program: bench.program(version),
                    input: (bench.scaled_input)(factor).with_trace_workers(opts.trace_workers),
                    config: opts.config.clone(),
                });
            }
        }
    }
    let eng = engine(opts.workers);
    eprintln!("... analyzing {} runs", requests.len());
    let results = eng.analyze_all(requests);

    let mut points: Vec<Point> = Vec::new();
    let mut rows = Vec::new();
    let mut reductions = Vec::new();
    let mut phase = (0.0f64, 0.0f64, 0.0f64); // trace, match, other

    for (&(name, version, factor), res) in meta.iter().zip(&results) {
        let analysis = res
            .outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("{name} {version} x{factor}: {e}"));
        let result = &analysis.result;
        let trace_s = res.metrics.trace_time.as_secs_f64();
        let find_s = res.metrics.find_time.as_secs_f64();
        let t = &result.phase_times;
        phase.0 += trace_s;
        phase.1 += t.matching.as_secs_f64();
        phase.2 += t.simplify.as_secs_f64()
            + t.decompose.as_secs_f64()
            + t.combine.as_secs_f64()
            + t.merge.as_secs_f64();
        reductions.push(result.simplify_stats.reduction());
        rows.push(vec![
            name.to_string(),
            version.to_string(),
            factor.to_string(),
            result.ddg_size.to_string(),
            format!("{:.4}", trace_s),
            format!("{:.4}", find_s),
        ]);
        points.push(Point {
            benchmark: name.to_string(),
            version: version.to_string(),
            factor,
            ddg_nodes: result.ddg_size,
            trace_seconds: trace_s,
            find_seconds: find_s,
            reduction: result.simplify_stats.reduction(),
            phases: result.phase_times,
        });
    }

    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "version",
                "factor",
                "DDG nodes",
                "trace (s)",
                "find (s)"
            ],
            &rows
        )
    );

    // Scaling check: the paper reports linear scaling. Fit the log-log
    // slope of total time vs size over the scaled series.
    let sizes: Vec<f64> = points.iter().map(|p| p.ddg_nodes as f64).collect();
    let slope = loglog_slope(
        &sizes,
        &points
            .iter()
            .map(|p| (p.trace_seconds + p.find_seconds).max(1e-6))
            .collect::<Vec<_>>(),
    );
    println!("log-log slope of time vs DDG size: {slope:.2} (1.0 = linear; paper: linear)");

    // Per-phase slopes: a phase hiding a quadratic term shows up here
    // long before it dominates the total. Near-zero small-end times are
    // floored at 1 µs so the fit stays finite.
    let phase_slope = |time_s: fn(&discovery::PhaseTimes) -> f64| {
        loglog_slope(
            &sizes,
            &points
                .iter()
                .map(|p| time_s(&p.phases).max(1e-6))
                .collect::<Vec<_>>(),
        )
    };
    let slope_matching = phase_slope(|t| t.matching.as_secs_f64());
    let slope_simplify = phase_slope(|t| t.simplify.as_secs_f64());
    let slope_decompose = phase_slope(|t| t.decompose.as_secs_f64());
    let slope_trace = loglog_slope(
        &sizes,
        &points
            .iter()
            .map(|p| p.trace_seconds.max(1e-6))
            .collect::<Vec<_>>(),
    );
    println!(
        "per-phase slopes: matching {slope_matching:.2}, simplify {slope_simplify:.2}, \
         decompose {slope_decompose:.2}, trace {slope_trace:.2}"
    );

    let avg_red: f64 = reductions.iter().sum::<f64>() / reductions.len() as f64;
    println!("simplification reduces DDGs by {avg_red:.2}x on average (paper: 3.82x)");

    let total = phase.0 + phase.1 + phase.2;
    println!(
        "phase breakdown: tracing {:.0}%, matching {:.0}%, other finder phases {:.0}% \
         (paper: 1% / 48% / 51%)",
        100.0 * phase.0 / total,
        100.0 * phase.1 / total,
        100.0 * phase.2 / total,
    );

    // Pthreads vs sequential deltas at the largest factor.
    let last = *factors.last().unwrap();
    let (mut size_ratio, mut time_ratio, mut n) = (0.0, 0.0, 0);
    for bench in all_benchmarks() {
        let seq = points
            .iter()
            .find(|p| p.benchmark == bench.name && p.version == "seq" && p.factor == last)
            .unwrap();
        let pthr = points
            .iter()
            .find(|p| p.benchmark == bench.name && p.version == "pthreads" && p.factor == last)
            .unwrap();
        size_ratio += pthr.ddg_nodes as f64 / seq.ddg_nodes as f64;
        time_ratio += (pthr.trace_seconds + pthr.find_seconds).max(1e-6)
            / (seq.trace_seconds + seq.find_seconds).max(1e-6);
        n += 1;
    }
    println!(
        "Pthreads DDGs are {:.0}% larger and {:.0}% slower to analyze than sequential \
         (paper: +15% size, +28% time)",
        100.0 * (size_ratio / n as f64 - 1.0),
        100.0 * (time_ratio / n as f64 - 1.0),
    );
    print_engine_metrics(&eng);

    // Trace-scaling spot check (DESIGN.md §17): the ×16 Pthreads corpus
    // at 8 simulated threads, ingested sequentially and with 8 trace
    // workers. Pooled over the suite so one benchmark's noise cannot
    // dominate. On a single-core host the sharded tracer cannot beat
    // the machine; `trace_cores` lets `obs_check --trace` tell the two
    // situations apart.
    let trace_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut scaling = (0.0f64, 0.0f64); // (sequential, 8 workers)
    for bench in all_benchmarks() {
        let program = bench.program(Version::Pthreads);
        let cfg = (bench.scaled_input_nproc)(16, 8);
        for (workers, total) in [(1usize, &mut scaling.0), (8, &mut scaling.1)] {
            let cfg = cfg.clone().with_trace_workers(workers);
            let t0 = std::time::Instant::now();
            trace::run(&program, &cfg)
                .unwrap_or_else(|e| panic!("{} x16 nproc=8 at {workers} workers: {e}", bench.name));
            *total += t0.elapsed().as_secs_f64();
        }
    }
    let trace_speedup_x16 = scaling.0 / scaling.1.max(1e-9);
    println!(
        "parallel trace ingestion: x16 pthreads corpus {:.3}s sequential, {:.3}s at 8 workers \
         ({trace_speedup_x16:.2}x on {trace_cores} core(s))",
        scaling.0, scaling.1,
    );

    write_record("fig7", &points);

    // The repo's perf-trajectory seed: the full per-point phase breakdown
    // plus engine counters, written unconditionally as one ObsReport.
    let mut report = obs_report("fig7", &opts, &eng);
    report.meta_raw(
        "factors",
        format!(
            "[{}]",
            factors
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join(",")
        ),
    );
    report.meta_num("loglog_slope", slope);
    report.meta_num("slope_matching", slope_matching);
    report.meta_num("slope_simplify", slope_simplify);
    report.meta_num("slope_decompose", slope_decompose);
    report.meta_num("slope_trace", slope_trace);
    report.meta_num("trace_speedup_x16", trace_speedup_x16);
    report.meta_num("trace_cores", trace_cores as f64);
    report.meta_num("trace_workers", opts.trace_workers as f64);
    report.meta_num("avg_reduction", avg_red);
    report.section("points", &points);
    match report.write(std::path::Path::new("BENCH_fig7.json")) {
        Ok(()) => eprintln!("(phase breakdown written to BENCH_fig7.json)"),
        Err(e) => eprintln!("cannot write BENCH_fig7.json: {e}"),
    }
    export_obs(&opts, &report);
}

/// Scale factors from `--factors 1,4,16` (also accepted as a bare
/// positional comma list). Bad components exit 2 with the offending
/// value named rather than panicking.
fn parse_factors(positional: &[String]) -> Vec<usize> {
    let spec = positional
        .iter()
        .position(|a| a == "--factors")
        .map(|i| {
            positional.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("missing value for --factors");
                std::process::exit(2);
            })
        })
        .or_else(|| positional.iter().find(|a| !a.starts_with("--")).cloned());
    match spec {
        Some(list) => list
            .split(',')
            .map(|x| parse_or_exit("--factors", x.trim()))
            .collect(),
        None => vec![1, 4, 16, 64],
    }
}

/// Least-squares slope of ln(y) over ln(x).
fn loglog_slope(x: &[f64], y: &[f64]) -> f64 {
    let lx: Vec<f64> = x.iter().map(|v| v.ln()).collect();
    let ly: Vec<f64> = y.iter().map(|v| v.ln()).collect();
    let n = lx.len() as f64;
    let (sx, sy) = (lx.iter().sum::<f64>(), ly.iter().sum::<f64>());
    let sxy: f64 = lx.iter().zip(&ly).map(|(a, b)| a * b).sum();
    let sxx: f64 = lx.iter().map(|a| a * a).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}
