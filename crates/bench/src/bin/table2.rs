//! Regenerates paper Table 2: input parameters per benchmark.

use repro_bench::{render_table, write_record};
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    rows: Vec<(String, String, String)>,
}

fn main() {
    println!("Table 2. Input parameters for each Starbench benchmark.\n");
    let rows: Vec<Vec<String>> = starbench::inputs::TABLE2
        .iter()
        .map(|p| {
            vec![
                p.benchmark.to_string(),
                p.analysis.to_string(),
                p.reference.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["benchmark", "analysis", "reference"], &rows)
    );
    println!(
        "(c-ray and ray-rot share a row in the paper; analysis inputs are ~3 orders\n\
         of magnitude smaller than reference inputs, exactly as in §6.)"
    );
    write_record(
        "table2",
        &Record {
            rows: starbench::inputs::TABLE2
                .iter()
                .map(|p| {
                    (
                        p.benchmark.to_string(),
                        p.analysis.to_string(),
                        p.reference.to_string(),
                    )
                })
                .collect(),
        },
    );
}
