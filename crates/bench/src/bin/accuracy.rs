//! Regenerates the paper's §6.1 accuracy study.
//!
//! The finder reports patterns beyond those of Table 3. The paper's manual
//! analysis classified its 50 additional patterns as 48 true (valid for
//! every input) and 2 false (valid only for the analysis input — maps over
//! loops whose conditional reduction the input never triggered). We
//! automate the classification for the known false-pattern site: the
//! streamcluster check loop is re-analyzed under an input that *does*
//! trigger its conditional accumulation, and any map that disappears was a
//! false pattern.

use repro_bench::{analyze, cli, render_table, write_record};
use serde::Serialize;
use starbench::{all_benchmarks, Version};

#[derive(Serialize)]
struct Record {
    extras_total: usize,
    extras_by_kind: Vec<(String, usize)>,
    false_patterns: usize,
    accuracy_percent: f64,
}

fn main() {
    let opts = cli();
    println!("Accuracy study (paper §6.1).\n");

    // 1. Count the additional (beyond-Table-3) patterns per kind.
    let mut by_kind: std::collections::BTreeMap<&'static str, usize> =
        std::collections::BTreeMap::new();
    let mut extras_total = 0usize;
    let mut rows = Vec::new();
    for bench in all_benchmarks() {
        for version in Version::BOTH {
            let run = analyze(bench, version, &opts.config, opts.trace_workers);
            let n = run.evaluation.extras.len();
            extras_total += n;
            for f in &run.evaluation.extras {
                *by_kind.entry(f.pattern.kind.short()).or_default() += 1;
            }
            rows.push(vec![
                bench.name.to_string(),
                version.name().to_string(),
                n.to_string(),
                run.evaluation
                    .extras
                    .iter()
                    .map(|f| f.pattern.kind.short())
                    .collect::<Vec<_>>()
                    .join(","),
            ]);
        }
    }
    println!(
        "{}",
        render_table(&["benchmark", "version", "extras", "kinds"], &rows)
    );
    println!(
        "additional patterns: {extras_total} (paper: 50); by kind: {:?}",
        by_kind
    );

    // 2. The false patterns: re-run streamcluster with a triggering input.
    // Maps reported under the analysis input that are no longer maps when
    // the conditional reduction fires were input-dependent — false.
    let mut false_patterns = 0usize;
    for version in Version::BOTH {
        let bench = starbench::benchmark("streamcluster").unwrap();
        let baseline = analyze(bench, version, &opts.config, opts.trace_workers);
        let maps_before: Vec<Vec<u32>> = baseline
            .result
            .found
            .iter()
            .filter(|f| f.pattern.kind == discovery::PatternKind::Map && f.iteration == 1)
            .map(|f| f.pattern.loops.clone())
            .collect();

        // Trigger input: two negative coordinates activate the error
        // accumulation in the check loop.
        let program = bench.program(version);
        let mut pts = starbench::suite::streamcluster::analysis_points().to_vec();
        // Both negatives inside thread 0's chunk, so the accumulator chain
        // appears within one loop instance in the Pthreads version too.
        pts[0] = -1.5;
        pts[2] = -2.5;
        let cfg = starbench::suite::streamcluster::input_for_points(&pts, 2);
        let run = trace::run(&program, &cfg).expect("trigger run");
        let result = discovery::find_patterns(&run.ddg.unwrap(), &opts.config);
        let maps_after: Vec<Vec<u32>> = result
            .found
            .iter()
            .filter(|f| f.pattern.kind == discovery::PatternKind::Map && f.iteration == 1)
            .map(|f| f.pattern.loops.clone())
            .collect();

        for loops in &maps_before {
            if !maps_after.contains(loops) {
                false_patterns += 1;
                println!(
                    "false map confirmed in streamcluster ({}): loop {:?} loses its map \
                     under the triggering input",
                    version.name(),
                    loops
                );
            }
        }
    }
    let true_patterns = extras_total - false_patterns;
    let accuracy = 100.0 * true_patterns as f64 / extras_total.max(1) as f64;
    println!(
        "\nfalse patterns: {false_patterns} (paper: 2); true additional: {true_patterns} \
         (paper: 48); accuracy {accuracy:.0}% (paper: ~98% of 50 verified manually)"
    );

    write_record(
        "accuracy",
        &Record {
            extras_total,
            extras_by_kind: by_kind
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            false_patterns,
            accuracy_percent: accuracy,
        },
    );
}
