//! CI gate for the observability artefacts: validates a Chrome trace and
//! a metrics JSON produced by `--trace-out` / `--metrics-json`.
//!
//! ```sh
//! obs_check <trace.json> <metrics.json> [required-section ...] [--counter <name> ...]
//! obs_check --fig7 <BENCH_fig7.json> [--max-slope 1.05]
//! ```
//!
//! The trace must parse, contain events, and have balanced begin/end
//! pairs on every thread; the metrics document must carry the
//! `meta`/`counters`/`gauges`/`histograms`/`sections` keys plus every
//! required section (default: `engine`). Each `--counter <name>` asserts
//! that the named registry counter appears in the metrics document — CI
//! uses this to prove an instrumented run actually exercised an
//! instrumentation site. Exits nonzero with a message on the first
//! violation.
//!
//! `--fig7` gates the Fig. 7 scaling report instead: the numeric meta
//! fields (including the per-phase `slope_*` fits) must be JSON numbers
//! (not stringified), `factors` must be a JSON array, and none of the
//! total log-log slope of analysis time vs DDG size, the matching
//! phase's slope, or the simplify phase's slope may exceed
//! `--max-slope` (default 1.05 — superlinear extraction, matching, or
//! simplification regressions fail CI here).
//!
//! `--trace <BENCH_fig7.json> [--max-slope <s>] [--min-speedup <x>]`
//! gates trace ingestion (DESIGN.md §17): the trace phase's log-log
//! slope must stay at most `--max-slope`, and — when the recording host
//! had at least two cores — the ×16-corpus sharded-ingestion speedup
//! (`trace_speedup_x16`, 8 workers vs the sequential machine) must
//! reach `min(--min-speedup, 0.7 × trace_cores)`. On a single-core
//! host the speedup check is skipped with a note: the sharded tracer
//! cannot beat the machine without parallelism, and a wall-clock gate
//! there would only measure scheduler overhead.
//!
//! `--slo <report> [--max-burn <b>]` gates the SLO burn rates a load or
//! chaos run recorded into its report's meta (`slo_short_burn`,
//! `slo_long_burn`): both must be finite and at most `--max-burn`
//! (default 1.0 — burning the error budget faster than it refills fails
//! CI). `--prom <file> [required-name ...]` validates a scraped
//! Prometheus text exposition and asserts each required metric family
//! is present.

use obs::json::{parse, Json};
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--fig7") {
        fig7_gate(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("--trace") {
        trace_gate(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("--incr") {
        incr_gate(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("--serve") {
        serve_gate(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("--chaos") {
        chaos_gate(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("--slo") {
        slo_gate(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("--prom") {
        prom_gate(&args[1..]);
        return;
    }
    let (trace_path, metrics_path) = match (args.first(), args.get(1)) {
        (Some(t), Some(m)) => (t, m),
        _ => {
            eprintln!("usage: obs_check <trace.json> <metrics.json> [required-section ...]");
            eprintln!("       obs_check --fig7 <BENCH_fig7.json> [--max-slope <s>]");
            eprintln!(
                "       obs_check --trace <BENCH_fig7.json> [--max-slope <s>] [--min-speedup <x>]"
            );
            eprintln!(
                "       obs_check --incr <BENCH_incr.json> [--min-speedup <x>] [--min-hit-rate <r>]"
            );
            eprintln!("       obs_check --serve <BENCH_serve.json> [--max-p99-ms <ms>]");
            eprintln!("       obs_check --chaos <BENCH_chaos.json> [--max-p99-ms <ms>] [--min-requests <n>]");
            eprintln!("       obs_check --slo <report.json> [--max-burn <b>]");
            eprintln!("       obs_check --prom <scrape.txt> [required-name ...]");
            exit(2);
        }
    };
    // Trailing args: `--counter <name>` pairs assert registry counters;
    // everything else names a required section.
    let mut sections: Vec<&str> = Vec::new();
    let mut counters: Vec<&str> = Vec::new();
    let mut rest = args[2..].iter();
    while let Some(a) = rest.next() {
        if a == "--counter" {
            match rest.next() {
                Some(name) => counters.push(name),
                None => {
                    eprintln!("missing value for --counter");
                    exit(2);
                }
            }
        } else {
            sections.push(a);
        }
    }
    if sections.is_empty() {
        sections.push("engine");
    }

    let trace = read(trace_path);
    let summary = obs::validate_chrome_trace(&trace).unwrap_or_else(|e| {
        eprintln!("obs_check: {trace_path}: {e}");
        exit(1);
    });
    if summary.events == 0 {
        eprintln!("obs_check: {trace_path}: trace contains no events");
        exit(1);
    }
    if summary.begins != summary.ends {
        eprintln!(
            "obs_check: {trace_path}: {} begin events vs {} end events",
            summary.begins, summary.ends
        );
        exit(1);
    }

    let metrics = read(metrics_path);
    if let Err(e) = obs::validate_metrics_json(&metrics, &sections) {
        eprintln!("obs_check: {metrics_path}: {e}");
        exit(1);
    }
    if !counters.is_empty() {
        let doc = parse(&metrics).unwrap_or_else(|e| {
            eprintln!("obs_check: {metrics_path}: {e}");
            exit(1);
        });
        let registered: Vec<String> = match doc.get("counters") {
            Some(Json::Arr(items)) => items
                .iter()
                .filter_map(|c| match c.get("name") {
                    Some(Json::Str(s)) => Some(s.clone()),
                    _ => None,
                })
                .collect(),
            _ => Vec::new(),
        };
        for want in &counters {
            if !registered.iter().any(|name| name == want) {
                eprintln!(
                    "obs_check: {metrics_path}: required counter {want:?} not in the \
                     metrics registry — the instrumented run never reached its site"
                );
                exit(1);
            }
        }
    }

    println!(
        "obs_check: OK — {} events ({} spans, {} instants) on {} threads; \
         metrics sections {sections:?} present, counters {counters:?} present",
        summary.events, summary.begins, summary.instants, summary.threads
    );
}

/// The Fig. 7 scaling gate: `--fig7 <report> [--max-slope <s>]`.
fn fig7_gate(args: &[String]) {
    let path = args.first().unwrap_or_else(|| {
        eprintln!("usage: obs_check --fig7 <BENCH_fig7.json> [--max-slope <s>]");
        exit(2);
    });
    let mut max_slope = 1.05f64;
    if let Some(i) = args.iter().position(|a| a == "--max-slope") {
        let v = args.get(i + 1).unwrap_or_else(|| {
            eprintln!("missing value for --max-slope");
            exit(2);
        });
        max_slope = v.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for --max-slope: got {v:?}");
            exit(2);
        });
    }

    let doc = parse(&read(path)).unwrap_or_else(|e| {
        eprintln!("obs_check: {path}: {e}");
        exit(1);
    });
    let meta = doc.get("meta").unwrap_or_else(|| {
        eprintln!("obs_check: {path}: report has no \"meta\" object");
        exit(1);
    });

    // Typed-meta regression guard: run parameters and fit results must
    // be real JSON numbers, not stringified ("1.138").
    for key in [
        "workers",
        "budget_ms",
        "loglog_slope",
        "slope_matching",
        "slope_simplify",
        "slope_decompose",
        "slope_trace",
        "trace_speedup_x16",
        "trace_cores",
        "avg_reduction",
    ] {
        match meta.get(key) {
            Some(Json::Num(_)) => {}
            Some(Json::Str(s)) => {
                eprintln!("obs_check: {path}: meta.{key} is a JSON string ({s:?}), not a number");
                exit(1);
            }
            other => {
                eprintln!("obs_check: {path}: meta.{key} missing or non-numeric ({other:?})");
                exit(1);
            }
        }
    }
    match meta.get("factors") {
        Some(Json::Arr(_)) => {}
        other => {
            eprintln!("obs_check: {path}: meta.factors is not a JSON array ({other:?})");
            exit(1);
        }
    }

    let slope = meta.get("loglog_slope").and_then(Json::as_f64).unwrap();
    if !slope.is_finite() || slope > max_slope {
        eprintln!(
            "obs_check: {path}: log-log slope {slope:.3} exceeds {max_slope} — \
             pattern-finding time is growing superlinearly in DDG size"
        );
        exit(1);
    }
    // Per-phase gate: matching must scale linearly on its own, not just
    // hide inside a total dominated by tracing.
    let matching = meta.get("slope_matching").and_then(Json::as_f64).unwrap();
    if !matching.is_finite() || matching > max_slope {
        eprintln!(
            "obs_check: {path}: matching-phase slope {matching:.3} exceeds {max_slope} — \
             the match phase is growing superlinearly in DDG size"
        );
        exit(1);
    }
    // Simplification too: the worklist rewrite made it linear; a
    // superlinear regression here re-trips the very bug it fixed.
    let simplify = meta.get("slope_simplify").and_then(Json::as_f64).unwrap();
    if !simplify.is_finite() || simplify > max_slope {
        eprintln!(
            "obs_check: {path}: simplify-phase slope {simplify:.3} exceeds {max_slope} — \
             the simplify phase is growing superlinearly in DDG size"
        );
        exit(1);
    }
    println!(
        "obs_check: OK — fig7 log-log slope {slope:.3}, matching slope {matching:.3}, \
         simplify slope {simplify:.3} <= {max_slope}, meta fields typed"
    );
}

/// The trace-ingestion gate: `--trace <BENCH_fig7.json> [--max-slope <s>]
/// [--min-speedup <x>]` (DESIGN.md §17).
fn trace_gate(args: &[String]) {
    let path = args.first().unwrap_or_else(|| {
        eprintln!(
            "usage: obs_check --trace <BENCH_fig7.json> [--max-slope <s>] [--min-speedup <x>]"
        );
        exit(2);
    });
    let flag_val = |name: &str, default: f64| -> f64 {
        match args.iter().position(|a| a == name) {
            None => default,
            Some(i) => {
                let v = args.get(i + 1).unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    exit(2);
                });
                v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid value for {name}: got {v:?}");
                    exit(2);
                })
            }
        }
    };
    let max_slope = flag_val("--max-slope", 1.05);
    let min_speedup = flag_val("--min-speedup", 1.8);

    let doc = parse(&read(path)).unwrap_or_else(|e| {
        eprintln!("obs_check: {path}: {e}");
        exit(1);
    });
    let meta = doc.get("meta").unwrap_or_else(|| {
        eprintln!("obs_check: {path}: report has no \"meta\" object");
        exit(1);
    });
    let require_num = |key: &str| -> f64 {
        match meta.get(key) {
            Some(Json::Num(n)) => *n,
            other => {
                eprintln!("obs_check: {path}: meta.{key} missing or non-numeric ({other:?})");
                exit(1);
            }
        }
    };

    // Trace time must scale linearly in DDG size regardless of host.
    let slope = require_num("slope_trace");
    if !slope.is_finite() || slope > max_slope {
        eprintln!(
            "obs_check: {path}: trace-phase slope {slope:.3} exceeds {max_slope} — \
             trace ingestion is growing superlinearly in DDG size"
        );
        exit(1);
    }

    // The speedup gate only means something with real parallelism. The
    // effective floor scales with the recording host's cores (70% of
    // them, capped at --min-speedup) so a 2-core CI runner is held to
    // an achievable 1.4x, not the 8-worker ideal.
    let cores = require_num("trace_cores");
    let speedup = require_num("trace_speedup_x16");
    if cores >= 2.0 {
        let floor = min_speedup.min(0.7 * cores);
        if !speedup.is_finite() || speedup < floor {
            eprintln!(
                "obs_check: {path}: sharded-ingestion speedup {speedup:.2}x on {cores:.0} \
                 cores is below the {floor:.2}x floor (min(--min-speedup {min_speedup}, \
                 0.7 x cores)) — parallel trace ingestion is not paying for itself"
            );
            exit(1);
        }
        println!(
            "obs_check: OK — trace: slope {slope:.3} <= {max_slope}, \
             speedup {speedup:.2}x >= {floor:.2}x on {cores:.0} cores"
        );
    } else {
        println!(
            "obs_check: OK — trace: slope {slope:.3} <= {max_slope}; speedup check skipped \
             (recorded on a single-core host, {speedup:.2}x observed)"
        );
    }
}

/// The incremental-analysis gate: `--incr <BENCH_incr.json>
/// [--min-speedup <x>] [--min-hit-rate <r>]`.
///
/// Gates the query layer's reuse promises (DESIGN.md §18) on the
/// `repro-incr` report: replaying a one-loop constant edit against a
/// warmed store must be at least `--min-speedup` (default 5) times
/// faster than the same edit cold, the warm full-corpus trace-stage
/// hit rate must reach `--min-hit-rate` (default 0.8), every edit
/// replay must have come from a find-stage hit (not a silently-fast
/// fresh analysis), and replayed results must be byte-identical to
/// their cold baselines (`parity_mismatches` = 0).
fn incr_gate(args: &[String]) {
    let path = args.first().unwrap_or_else(|| {
        eprintln!(
            "usage: obs_check --incr <BENCH_incr.json> [--min-speedup <x>] [--min-hit-rate <r>]"
        );
        exit(2);
    });
    let flag_val = |name: &str, default: f64| -> f64 {
        match args.iter().position(|a| a == name) {
            None => default,
            Some(i) => {
                let v = args.get(i + 1).unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    exit(2);
                });
                v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid value for {name}: got {v:?}");
                    exit(2);
                })
            }
        }
    };
    let min_speedup = flag_val("--min-speedup", 5.0);
    let min_hit_rate = flag_val("--min-hit-rate", 0.8);

    let doc = parse(&read(path)).unwrap_or_else(|e| {
        eprintln!("obs_check: {path}: {e}");
        exit(1);
    });
    let meta = doc.get("meta").unwrap_or_else(|| {
        eprintln!("obs_check: {path}: report has no \"meta\" object");
        exit(1);
    });
    let require_num = |key: &str| -> f64 {
        match meta.get(key) {
            Some(Json::Num(n)) => *n,
            other => {
                eprintln!("obs_check: {path}: meta.{key} missing or non-numeric ({other:?})");
                exit(1);
            }
        }
    };

    let mismatches = require_num("parity_mismatches");
    if mismatches != 0.0 {
        eprintln!(
            "obs_check: {path}: {mismatches:.0} parity mismatches — a replayed result \
             differed from the cold analysis; the memo layer is returning wrong answers"
        );
        exit(1);
    }
    let hit_rate = require_num("warm_hit_rate");
    if !hit_rate.is_finite() || hit_rate < min_hit_rate {
        eprintln!(
            "obs_check: {path}: warm corpus trace-stage hit rate {:.0}% is below {:.0}% — \
             repeated requests are not being answered from the store",
            100.0 * hit_rate,
            100.0 * min_hit_rate,
        );
        exit(1);
    }
    let find_hits = require_num("edit_find_hits");
    let repeats = require_num("edit_repeats");
    if find_hits < repeats {
        eprintln!(
            "obs_check: {path}: only {find_hits:.0}/{repeats:.0} edit replays hit the find \
             stage — edited programs are being fully re-analyzed"
        );
        exit(1);
    }
    let speedup = require_num("speedup_edit");
    if !speedup.is_finite() || speedup < min_speedup {
        eprintln!(
            "obs_check: {path}: one-loop-edit speedup {speedup:.2}x is below {min_speedup}x \
             (cold {:.1} ms vs warm {:.1} ms) — incremental replay is not paying for itself",
            require_num("edit_cold_ms"),
            require_num("edit_warm_ms"),
        );
        exit(1);
    }
    println!(
        "obs_check: OK — incr: edit speedup {speedup:.2}x >= {min_speedup}x, warm hit rate \
         {:.0}% >= {:.0}%, {find_hits:.0}/{repeats:.0} find-stage replays, 0 parity mismatches",
        100.0 * hit_rate,
        100.0 * min_hit_rate,
    );
}

/// The serving load gate: `--serve <report> [--max-p99-ms <ms>]`.
///
/// Checks the invariants the daemon promises under load: every request
/// answered with a labeled status (full accounting, zero protocol
/// errors), zero lost workers, a bounded p99, and cache counters
/// present for trend tracking.
fn serve_gate(args: &[String]) {
    let path = args.first().unwrap_or_else(|| {
        eprintln!("usage: obs_check --serve <BENCH_serve.json> [--max-p99-ms <ms>]");
        exit(2);
    });
    let mut max_p99_ms = 60_000.0f64;
    if let Some(i) = args.iter().position(|a| a == "--max-p99-ms") {
        let v = args.get(i + 1).unwrap_or_else(|| {
            eprintln!("missing value for --max-p99-ms");
            exit(2);
        });
        max_p99_ms = v.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for --max-p99-ms: got {v:?}");
            exit(2);
        });
    }

    let doc = parse(&read(path)).unwrap_or_else(|e| {
        eprintln!("obs_check: {path}: {e}");
        exit(1);
    });
    let meta = doc.get("meta").unwrap_or_else(|| {
        eprintln!("obs_check: {path}: report has no \"meta\" object");
        exit(1);
    });
    let require_num = |key: &str| -> f64 {
        match meta.get(key) {
            Some(Json::Num(n)) => *n,
            other => {
                eprintln!("obs_check: {path}: meta.{key} missing or non-numeric ({other:?})");
                exit(1);
            }
        }
    };

    let requests = require_num("requests");
    if requests < 1.0 {
        eprintln!("obs_check: {path}: the load run made no requests");
        exit(1);
    }
    // Zero-loss invariants: nothing crashed, nothing went unanswered.
    for key in ["worker_lost", "internal_errors", "protocol_errors"] {
        let v = require_num(key);
        if v != 0.0 {
            eprintln!("obs_check: {path}: meta.{key} = {v} — the load run must be loss-free");
            exit(1);
        }
    }
    // Full accounting: every request resolved to exactly one labeled
    // outcome (rejections are outcomes; hangs and drops are not).
    let answered = require_num("answered");
    let accounted = require_num("ok")
        + require_num("overloaded")
        + require_num("quota")
        + require_num("trace_errors")
        + require_num("bad_requests");
    if answered != requests || accounted != requests {
        eprintln!(
            "obs_check: {path}: accounting leak — {requests} requests, {answered} answered, \
             {accounted} across status labels"
        );
        exit(1);
    }
    let p99 = require_num("p99_ms");
    if !p99.is_finite() || p99 > max_p99_ms {
        eprintln!("obs_check: {path}: p99 latency {p99:.1} ms exceeds {max_p99_ms} ms");
        exit(1);
    }
    let hit_rate = require_num("cache_hit_rate");
    if !(0.0..=1.0).contains(&hit_rate) {
        eprintln!("obs_check: {path}: cache_hit_rate {hit_rate} outside [0, 1]");
        exit(1);
    }
    let evictions = require_num("cache_evictions");
    require_num("throughput_rps");
    require_num("p50_ms");
    println!(
        "obs_check: OK — serve load: {requests} requests fully accounted, zero loss, \
         p99 {p99:.1} ms <= {max_p99_ms} ms, cache hit rate {:.1}% ({evictions} evictions)",
        hit_rate * 100.0
    );
}

/// The chaos gate: `--chaos <report> [--max-p99-ms <ms>] [--min-requests <n>]`.
///
/// Gates the invariants a seeded chaos run must uphold: the run was
/// big enough, every fault class actually fired (a chaos run that
/// injected nothing proves nothing), zero requests were lost, every
/// killed worker was respawned, the breaker opened, and every request
/// is accounted as answered or breaker-skipped.
fn chaos_gate(args: &[String]) {
    let path = args.first().unwrap_or_else(|| {
        eprintln!(
            "usage: obs_check --chaos <BENCH_chaos.json> [--max-p99-ms <ms>] [--min-requests <n>]"
        );
        exit(2);
    });
    let flag_val = |name: &str, default: f64| -> f64 {
        match args.iter().position(|a| a == name) {
            None => default,
            Some(i) => {
                let v = args.get(i + 1).unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    exit(2);
                });
                v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid value for {name}: got {v:?}");
                    exit(2);
                })
            }
        }
    };
    let max_p99_ms = flag_val("--max-p99-ms", 60_000.0);
    let min_requests = flag_val("--min-requests", 300.0);

    let doc = parse(&read(path)).unwrap_or_else(|e| {
        eprintln!("obs_check: {path}: {e}");
        exit(1);
    });
    let meta = doc.get("meta").unwrap_or_else(|| {
        eprintln!("obs_check: {path}: report has no \"meta\" object");
        exit(1);
    });
    let require_num = |key: &str| -> f64 {
        match meta.get(key) {
            Some(Json::Num(n)) => *n,
            other => {
                eprintln!("obs_check: {path}: meta.{key} missing or non-numeric ({other:?})");
                exit(1);
            }
        }
    };

    let requests = require_num("requests");
    if requests < min_requests {
        eprintln!(
            "obs_check: {path}: only {requests} requests under chaos (need >= {min_requests})"
        );
        exit(1);
    }
    // The run must have actually injected every fault class — a calm
    // "chaos" run that exercised nothing must not pass as proof.
    for (key, min) in [
        ("worker_kills", 2.0),
        ("worker_stalls", 1.0),
        ("torn_writes", 1.0),
        ("read_delays", 1.0),
        ("disconnects", 1.0),
        ("quota_skews", 1.0),
        ("slow_loris", 1.0),
        ("oversized_answered", 1.0),
        ("shed", 1.0),
        ("breaker_opens", 1.0),
    ] {
        let v = require_num(key);
        if v < min {
            eprintln!(
                "obs_check: {path}: meta.{key} = {v} (need >= {min}) — \
                 this fault class never fired, the chaos run proves nothing about it"
            );
            exit(1);
        }
    }
    // The invariants chaos must not break.
    let lost = require_num("lost");
    if lost != 0.0 {
        eprintln!("obs_check: {path}: {lost} requests LOST under chaos — answers were dropped");
        exit(1);
    }
    let kills = require_num("worker_kills");
    let respawned = require_num("workers_respawned");
    if respawned < kills {
        eprintln!(
            "obs_check: {path}: {kills} workers killed but only {respawned} respawned — \
             the watchdog failed to restore capacity"
        );
        exit(1);
    }
    for key in ["internal_errors", "worker_lost"] {
        let v = require_num(key);
        if v != 0.0 {
            eprintln!("obs_check: {path}: meta.{key} = {v} — chaos leaked into request errors");
            exit(1);
        }
    }
    let answered = require_num("answered");
    let skipped = require_num("breaker_skipped");
    if answered + skipped != requests {
        eprintln!(
            "obs_check: {path}: accounting leak — {requests} requests, {answered} answered \
             + {skipped} breaker-skipped"
        );
        exit(1);
    }
    let p99 = require_num("p99_ms");
    if !p99.is_finite() || p99 > max_p99_ms {
        eprintln!("obs_check: {path}: p99 latency under chaos {p99:.1} ms exceeds {max_p99_ms} ms");
        exit(1);
    }
    // The telemetry plane must have witnessed the whole run: every sent
    // request id reconstructable from the flight recorder, and the
    // on-demand blackbox dump non-empty.
    if require_num("trail_complete") != 1.0 {
        let incomplete = require_num("trail_incomplete");
        eprintln!(
            "obs_check: {path}: {incomplete} request ids are not reconstructable from the \
             flight recorder — faults left gaps in the event trail"
        );
        exit(1);
    }
    let blackbox_events = require_num("blackbox_events");
    if blackbox_events < 1.0 {
        eprintln!("obs_check: {path}: blackbox dump is missing or empty");
        exit(1);
    }
    let ids_sent = require_num("ids_sent");
    println!(
        "obs_check: OK — chaos: {requests} requests, 0 lost ({answered} answered + {skipped} \
         breaker-skipped), {kills} kills all respawned ({respawned}), p99 {p99:.1} ms <= {max_p99_ms} ms, \
         {ids_sent} request trails complete, blackbox {blackbox_events} events"
    );
}

/// The SLO burn-rate gate: `--slo <report> [--max-burn <b>]`.
///
/// Reads the `slo_*` meta a load or chaos run copied out of the
/// daemon's `stats`, and fails if either burn rate exceeds the cap. A
/// report with zero SLO-eligible outcomes fails too: a gate that never
/// measured anything proves nothing.
fn slo_gate(args: &[String]) {
    let path = args.first().unwrap_or_else(|| {
        eprintln!("usage: obs_check --slo <report.json> [--max-burn <b>]");
        exit(2);
    });
    let mut max_burn = 1.0f64;
    if let Some(i) = args.iter().position(|a| a == "--max-burn") {
        let v = args.get(i + 1).unwrap_or_else(|| {
            eprintln!("missing value for --max-burn");
            exit(2);
        });
        max_burn = v.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for --max-burn: got {v:?}");
            exit(2);
        });
    }

    let doc = parse(&read(path)).unwrap_or_else(|e| {
        eprintln!("obs_check: {path}: {e}");
        exit(1);
    });
    let meta = doc.get("meta").unwrap_or_else(|| {
        eprintln!("obs_check: {path}: report has no \"meta\" object");
        exit(1);
    });
    let require_num = |key: &str| -> f64 {
        match meta.get(key) {
            Some(Json::Num(n)) => *n,
            other => {
                eprintln!("obs_check: {path}: meta.{key} missing or non-numeric ({other:?})");
                exit(1);
            }
        }
    };

    let total = require_num("slo_total");
    if total < 1.0 {
        eprintln!(
            "obs_check: {path}: slo_total = {total} — the run recorded no SLO-eligible \
             outcomes, the burn gate measured nothing"
        );
        exit(1);
    }
    let short_burn = require_num("slo_short_burn");
    let long_burn = require_num("slo_long_burn");
    for (name, burn) in [("short", short_burn), ("long", long_burn)] {
        if !burn.is_finite() || burn > max_burn {
            eprintln!(
                "obs_check: {path}: {name}-window burn rate {burn:.3} exceeds {max_burn} — \
                 the error budget is being consumed faster than allowed"
            );
            exit(1);
        }
    }
    println!(
        "obs_check: OK — slo: {total} outcomes ({} good, {} bad), short burn {short_burn:.3}, \
         long burn {long_burn:.3} <= {max_burn}",
        require_num("slo_good"),
        require_num("slo_bad"),
    );
}

/// The Prometheus scrape gate: `--prom <scrape.txt> [required-name ...]`.
fn prom_gate(args: &[String]) {
    let path = args.first().unwrap_or_else(|| {
        eprintln!("usage: obs_check --prom <scrape.txt> [required-name ...]");
        exit(2);
    });
    let text = read(path);
    let summary = obs::validate_prometheus_text(&text).unwrap_or_else(|e| {
        eprintln!("obs_check: {path}: {e}");
        exit(1);
    });
    if summary.samples == 0 {
        eprintln!("obs_check: {path}: the scrape contains no samples");
        exit(1);
    }
    for want in &args[1..] {
        if !summary.families.iter().any(|f| f == want) {
            eprintln!(
                "obs_check: {path}: required metric family {want:?} not in the scrape \
                 (families: {:?})",
                summary.families
            );
            exit(1);
        }
    }
    println!(
        "obs_check: OK — prometheus: {} families, {} samples, required {:?} present",
        summary.families.len(),
        summary.samples,
        &args[1..]
    );
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("obs_check: cannot read {path}: {e}");
        exit(1);
    })
}
