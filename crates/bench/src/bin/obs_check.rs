//! CI gate for the observability artefacts: validates a Chrome trace and
//! a metrics JSON produced by `--trace-out` / `--metrics-json`.
//!
//! ```sh
//! obs_check <trace.json> <metrics.json> [required-section ...]
//! ```
//!
//! The trace must parse, contain events, and have balanced begin/end
//! pairs on every thread; the metrics document must carry the
//! `meta`/`counters`/`gauges`/`histograms`/`sections` keys plus every
//! required section (default: `engine`). Exits nonzero with a message on
//! the first violation.

use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (trace_path, metrics_path) = match (args.first(), args.get(1)) {
        (Some(t), Some(m)) => (t, m),
        _ => {
            eprintln!("usage: obs_check <trace.json> <metrics.json> [required-section ...]");
            exit(2);
        }
    };
    let sections: Vec<&str> = if args.len() > 2 {
        args[2..].iter().map(String::as_str).collect()
    } else {
        vec!["engine"]
    };

    let trace = read(trace_path);
    let summary = obs::validate_chrome_trace(&trace).unwrap_or_else(|e| {
        eprintln!("obs_check: {trace_path}: {e}");
        exit(1);
    });
    if summary.events == 0 {
        eprintln!("obs_check: {trace_path}: trace contains no events");
        exit(1);
    }
    if summary.begins != summary.ends {
        eprintln!(
            "obs_check: {trace_path}: {} begin events vs {} end events",
            summary.begins, summary.ends
        );
        exit(1);
    }

    let metrics = read(metrics_path);
    if let Err(e) = obs::validate_metrics_json(&metrics, &sections) {
        eprintln!("obs_check: {metrics_path}: {e}");
        exit(1);
    }

    println!(
        "obs_check: OK — {} events ({} spans, {} instants) on {} threads; \
         metrics sections {sections:?} present",
        summary.events, summary.begins, summary.instants, summary.threads
    );
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("obs_check: cannot read {path}: {e}");
        exit(1);
    })
}
