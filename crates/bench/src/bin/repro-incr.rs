//! Benchmarks the incremental query layer (DESIGN.md §18): how much of
//! the parse→IR→trace→sub-DDG→match pipeline is reused across repeated
//! and edited requests, and what that reuse buys in wall-clock.
//!
//! Three scenarios, one shared full [`QueryDb`]:
//!
//! 1. **Cold corpus** — all eight Starbench benchmarks, both versions,
//!    analysis-scale inputs, against an empty store. Every stage
//!    misses; this populates the database and records the baseline
//!    pattern signatures.
//! 2. **Warm corpus** — the identical requests again. The trace stage
//!    must answer nearly all of them (`warm_hit_rate`, gated ≥ 0.8 by
//!    `obs_check --incr`), and every replayed result must be
//!    byte-identical to its cold signature (`parity_mismatches`,
//!    gated = 0).
//! 3. **One-loop edit** — ray-rot seq at ×16, a same-length constant
//!    edit inside the rotate loop. The edit changes the program hash
//!    (compile and trace rerun) but not the DDG shape, so the find
//!    stage replays and the whole match phase is skipped. The median
//!    analysis time against a warmed store, over `--repeats` distinct
//!    edits, versus the same edits cold (`speedup_edit`, gated ≥ 5).
//!
//! Writes `BENCH_incr.json` with `speedup_edit`, `warm_hit_rate`, and
//! `parity_mismatches` in `meta` plus full query-store counters; CI
//! gates it via `obs_check --incr`.

use repro_bench::{cli, export_obs, obs_report, parse_or_exit, render_table};
use repro_engine::{AnalysisRequest, Engine, EngineConfig};
use repro_query::{pattern_signature, QueryConfig, QueryDb};
use starbench::{all_benchmarks, Benchmark, Version};
use std::sync::Arc;
use std::time::Instant;

/// The edit target: ray-rot's rotate loop scales by this constant.
/// Replacements are same-length digit edits, so the DDG shape — and
/// with it the find-stage key — is unchanged.
const EDIT_FROM: &str = "* 0.95;";
const EDIT_BENCH: &str = "ray-rot";
const EDIT_FACTOR: usize = 16;

fn full_db() -> Arc<QueryDb> {
    Arc::new(QueryDb::full(QueryConfig::default()))
}

fn engine_on(db: &Arc<QueryDb>, workers: usize) -> Engine {
    Engine::with_query(
        EngineConfig {
            workers,
            max_concurrent_requests: 1,
            ..EngineConfig::default()
        },
        Arc::clone(db),
    )
}

/// Compiles a benchmark version, optionally with a source substring
/// replaced (the "edit").
fn compile(bench: &Benchmark, v: Version, edit: Option<(&str, &str)>) -> repro_ir::Program {
    let files: Vec<(String, String)> = bench
        .files(v)
        .iter()
        .map(|(n, s)| {
            let s = match edit {
                Some((from, to)) => s.replace(from, to),
                None => s.to_string(),
            };
            (n.to_string(), s)
        })
        .collect();
    let refs: Vec<(&str, &str)> = files
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str()))
        .collect();
    minc::compile_files(&format!("{}-{}", bench.name, v.name()), &refs)
        .unwrap_or_else(|e| panic!("{} {}: {e}", bench.name, v.name()))
}

fn corpus_requests(opts: &repro_bench::Cli) -> Vec<AnalysisRequest> {
    let mut reqs = Vec::new();
    for bench in all_benchmarks() {
        for v in Version::BOTH {
            reqs.push(AnalysisRequest {
                id: format!("{}-{}", bench.name, v.name()),
                program: compile(bench, v, None),
                input: (bench.analysis_input)().with_trace_workers(opts.trace_workers),
                config: opts.config.clone(),
            });
        }
    }
    reqs
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let opts = cli();
    let repeats: usize = match opts.positional.iter().position(|a| a == "--repeats") {
        Some(i) => parse_or_exit(
            "--repeats",
            opts.positional.get(i + 1).map(String::as_str).unwrap_or(""),
        ),
        None => 3,
    };
    println!("Incremental analysis: cold vs warm corpus, one-loop-edit replay.\n");

    // Scenario 1+2: the corpus, cold then warm, on one shared store.
    let db = full_db();
    let engine = engine_on(&db, opts.workers);

    let mut cold_sigs = Vec::new();
    let mut rows = Vec::new();
    let mut parity_mismatches = 0usize;
    let mut corpus_cold_s = 0.0f64;
    for req in corpus_requests(&opts) {
        let id = req.id.clone();
        let t0 = Instant::now();
        let res = engine.analyze_one(req);
        corpus_cold_s += t0.elapsed().as_secs_f64();
        let a = res.outcome.as_ref().unwrap_or_else(|e| panic!("{id}: {e}"));
        cold_sigs.push((id, pattern_signature(&a.result)));
    }
    let stats_cold = db.stats();

    let mut corpus_warm_s = 0.0f64;
    for (req, (id, cold_sig)) in corpus_requests(&opts).into_iter().zip(&cold_sigs) {
        let t0 = Instant::now();
        let res = engine.analyze_one(req);
        let warm_s = t0.elapsed().as_secs_f64();
        corpus_warm_s += warm_s;
        let a = res.outcome.as_ref().unwrap_or_else(|e| panic!("{id}: {e}"));
        let sig = pattern_signature(&a.result);
        if sig != *cold_sig {
            parity_mismatches += 1;
            eprintln!("PARITY MISMATCH (warm corpus) {id}:\n--- cold\n{cold_sig}--- warm\n{sig}");
        }
        rows.push(vec![
            id.clone(),
            if res.metrics.query_analyze_hit {
                "trace+find".into()
            } else if res.metrics.query_find_hit {
                "find".into()
            } else {
                "miss".into()
            },
            format!("{:.1}", warm_s * 1e3),
        ]);
    }
    let stats_warm = db.stats();
    let n_corpus = cold_sigs.len() as f64;
    let warm_hits = (stats_warm.trace.hits - stats_cold.trace.hits) as f64;
    let warm_hit_rate = warm_hits / n_corpus;
    println!(
        "{}",
        render_table(&["request", "warm replay", "warm ms"], &rows)
    );
    println!(
        "corpus: {:.0} requests, cold {:.2}s, warm {:.2}s, trace-stage hit rate {:.0}% \
         (gate: >= 80%)",
        n_corpus,
        corpus_cold_s,
        corpus_warm_s,
        100.0 * warm_hit_rate,
    );

    // Scenario 3: one-loop constant edits on ray-rot seq x16. Each
    // repeat uses a distinct same-length constant so the program hash
    // always changes (no trace-stage shortcut) while the DDG shape —
    // and the find-stage key — stays identical.
    let bench = starbench::benchmark(EDIT_BENCH).unwrap();
    let edits: Vec<String> = (0..repeats).map(|i| format!("* 0.8{i};")).collect();
    let edit_req = |edit: &str| AnalysisRequest {
        id: format!("{EDIT_BENCH}-edit"),
        program: compile(bench, Version::Seq, Some((EDIT_FROM, edit))),
        input: (bench.scaled_input)(EDIT_FACTOR).with_trace_workers(opts.trace_workers),
        config: opts.config.clone(),
    };

    // Warm side: the shared store already knows the unedited program
    // from the corpus pass at factor 1; seed it at x16 too, then time
    // the edited replays.
    let seed = AnalysisRequest {
        id: format!("{EDIT_BENCH}-x{EDIT_FACTOR}-seed"),
        program: compile(bench, Version::Seq, None),
        input: (bench.scaled_input)(EDIT_FACTOR).with_trace_workers(opts.trace_workers),
        config: opts.config.clone(),
    };
    let seed_res = engine.analyze_one(seed);
    seed_res
        .outcome
        .as_ref()
        .unwrap_or_else(|e| panic!("seed: {e}"));

    let mut warm_ms = Vec::new();
    let mut cold_ms = Vec::new();
    let mut edit_find_hits = 0usize;
    for edit in &edits {
        // Cold: a fresh store sees the edited program for the first time.
        let cold_db = full_db();
        let cold_engine = engine_on(&cold_db, opts.workers);
        let t0 = Instant::now();
        let cold = cold_engine.analyze_one(edit_req(edit));
        cold_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        let cold_sig = pattern_signature(
            &cold
                .outcome
                .as_ref()
                .unwrap_or_else(|e| panic!("cold edit: {e}"))
                .result,
        );

        // Warm: the shared store replays everything below the re-trace.
        let t0 = Instant::now();
        let warm = engine.analyze_one(edit_req(edit));
        warm_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        let a = warm
            .outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("warm edit: {e}"));
        if warm.metrics.query_find_hit {
            edit_find_hits += 1;
        }
        eprintln!(
            "  edit {edit:?}: cold {:.0} ms (trace {:.0} find {:.0}) | warm {:.0} ms \
             (trace {:.0} find {:.0}, find_hit {})",
            cold_ms.last().unwrap(),
            cold.metrics.trace_time.as_secs_f64() * 1e3,
            cold.metrics.find_time.as_secs_f64() * 1e3,
            warm_ms.last().unwrap(),
            warm.metrics.trace_time.as_secs_f64() * 1e3,
            warm.metrics.find_time.as_secs_f64() * 1e3,
            warm.metrics.query_find_hit,
        );
        let warm_sig = pattern_signature(&a.result);
        if warm_sig != cold_sig {
            parity_mismatches += 1;
            eprintln!("PARITY MISMATCH (edit {edit:?}):\n--- cold\n{cold_sig}--- warm\n{warm_sig}");
        }
    }
    let cold_med = median(&mut cold_ms);
    let warm_med = median(&mut warm_ms);
    let speedup_edit = cold_med / warm_med.max(1e-9);
    println!(
        "one-loop edit ({EDIT_BENCH} seq x{EDIT_FACTOR}, {} edits): cold median {cold_med:.1} ms, \
         incremental median {warm_med:.1} ms — {speedup_edit:.2}x (gate: >= 5x); \
         {edit_find_hits}/{} edits replayed the find stage",
        edits.len(),
        edits.len(),
    );
    println!("parity mismatches: {parity_mismatches} (gate: 0)");

    let stats = db.stats();
    let mut report = obs_report("incr", &opts, &engine);
    report.meta_num("speedup_edit", speedup_edit);
    report.meta_num("warm_hit_rate", warm_hit_rate);
    report.meta_num("parity_mismatches", parity_mismatches as f64);
    report.meta_num("edit_cold_ms", cold_med);
    report.meta_num("edit_warm_ms", warm_med);
    report.meta_num("edit_find_hits", edit_find_hits as f64);
    report.meta_num("edit_repeats", edits.len() as f64);
    report.meta_num("corpus_requests", n_corpus);
    report.meta_num("corpus_cold_s", corpus_cold_s);
    report.meta_num("corpus_warm_s", corpus_warm_s);
    report.meta_num("trace_workers", opts.trace_workers as f64);
    report.section("query", &stats);
    match report.write(std::path::Path::new("BENCH_incr.json")) {
        Ok(()) => eprintln!("(incremental report written to BENCH_incr.json)"),
        Err(e) => eprintln!("cannot write BENCH_incr.json: {e}"),
    }
    export_obs(&opts, &report);
    if parity_mismatches > 0 {
        std::process::exit(1);
    }
}
