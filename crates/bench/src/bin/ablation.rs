//! Ablation of the finder's simplification phase (paper §5 claims the
//! phase is what keeps the analysis both accurate and scalable; §6.1's
//! kmeans discussion shows its accuracy cost on one benchmark).
//!
//! Runs every benchmark version with and without DDG simplification and
//! reports the size, time, and pattern-inventory deltas.

use repro_bench::{cli, render_table, write_record};
use serde::Serialize;
use starbench::{all_benchmarks, Version};
use std::time::Instant;

#[derive(Serialize)]
struct Row {
    benchmark: String,
    version: String,
    nodes_with: usize,
    nodes_without: usize,
    time_with_ms: f64,
    time_without_ms: f64,
    found_with: usize,
    found_without: usize,
    expected_with: usize,
    expected_without: usize,
}

fn main() {
    let opts = cli();
    println!("Ablation: DDG simplification on vs off.\n");
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for bench in all_benchmarks() {
        for version in Version::BOTH {
            let r = bench.run_analysis(version);
            let ddg = r.ddg.unwrap();

            let run = |enable_simplify: bool| {
                let cfg = discovery::FinderConfig {
                    enable_simplify,
                    ..opts.config.clone()
                };
                let t0 = Instant::now();
                let result = discovery::find_patterns(&ddg, &cfg);
                let secs = t0.elapsed().as_secs_f64();
                let eval = starbench::evaluate(bench.name, version, &result);
                (result, secs, eval)
            };
            let (res_on, t_on, eval_on) = run(true);
            let (res_off, t_off, eval_off) = run(false);

            rows.push(vec![
                bench.name.to_string(),
                version.name().to_string(),
                format!("{} / {}", res_on.simplified_size, res_off.simplified_size),
                format!("{:.1} / {:.1}", t_on * 1e3, t_off * 1e3),
                format!("{} / {}", res_on.found.len(), res_off.found.len()),
                format!("{} / {}", eval_on.found_count(), eval_off.found_count()),
            ]);
            records.push(Row {
                benchmark: bench.name.to_string(),
                version: version.name().to_string(),
                nodes_with: res_on.simplified_size,
                nodes_without: res_off.simplified_size,
                time_with_ms: t_on * 1e3,
                time_without_ms: t_off * 1e3,
                found_with: res_on.found.len(),
                found_without: res_off.found.len(),
                expected_with: eval_on.found_count(),
                expected_without: eval_off.found_count(),
            });
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "version",
                "nodes on/off",
                "time ms on/off",
                "found on/off",
                "expected hit on/off",
            ],
            &rows
        )
    );
    let (hit_on, hit_off): (usize, usize) = records.iter().fold((0, 0), |(a, b), r| {
        (a + r.expected_with, b + r.expected_without)
    });
    println!(
        "expected instances found: {hit_on}/36 with simplification, {hit_off}/36 without \
         — the phase is what separates pattern dataflow from bookkeeping\n\
         (the paper makes the same point for decomposition/compaction: disabling them\n\
         exhausted the solver's 32 GB on the smallest benchmark)"
    );
    write_record("ablation", &records);
}
