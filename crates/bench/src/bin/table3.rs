//! Regenerates paper Table 3: found and missed patterns per benchmark and
//! version, by finder iteration — the paper's headline effectiveness
//! result (36 of 42 instances found, 86%).
//!
//! All sixteen runs go through the `repro-engine` batch engine in one
//! submission; the structural-hash match cache is shared across them, so
//! repeated sub-DDG shapes (notably seq vs Pthreads versions of the same
//! kernel) are matched once. `--workers`/`--budget-ms`/`--deadline-ms`
//! apply.

use repro_bench::{
    cli, engine, export_obs, obs_report, print_engine_metrics, render_table, write_record,
};
use repro_engine::AnalysisRequest;
use serde::Serialize;
use starbench::{all_benchmarks, evaluate, Version};

#[derive(Serialize)]
struct Row {
    benchmark: String,
    version: String,
    found_by_iteration: Vec<String>,
    missed: Vec<String>,
    extras: usize,
}

fn main() {
    let opts = cli();
    println!("Table 3. Found and missed parallel patterns in Starbench.");
    println!("(m=map, cm=conditional map, fm=fused map, r=reduction, mr=map-reduction)\n");

    let mut meta = Vec::new();
    let mut requests = Vec::new();
    for bench in all_benchmarks() {
        for version in Version::BOTH {
            meta.push((bench, version));
            requests.push(AnalysisRequest {
                id: format!("{}-{}", bench.name, version.name()),
                program: bench.program(version),
                input: (bench.analysis_input)(),
                config: opts.config.clone(),
            });
        }
    }
    let eng = engine(opts.workers);
    let results = eng.analyze_all(requests);

    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut found_total = 0;
    let mut expected_total = 0;
    let mut missed_confirmed = 0;
    let mut extra_total = 0;

    for (&(bench, version), res) in meta.iter().zip(&results) {
        let analysis = res
            .outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("{} {}: {e}", bench.name, version.name()));
        (bench.verify)(&analysis.run)
            .unwrap_or_else(|e| panic!("{} {} wrong result: {e}", bench.name, version.name()));
        let eval = evaluate(bench.name, version, &analysis.result);

        // Found column: expected hits grouped by iteration.
        let max_it = analysis
            .result
            .found
            .iter()
            .map(|f| f.iteration)
            .max()
            .unwrap_or(0);
        let mut by_it: Vec<String> = Vec::new();
        for it in 1..=max_it.max(1) {
            let names: Vec<&str> = eval
                .hits
                .iter()
                .filter(|(e, ok)| e.found && *ok && e.iteration == it)
                .map(|(e, _)| e.kind)
                .collect();
            by_it.push(if names.is_empty() {
                "-".into()
            } else {
                names.join(",")
            });
        }
        let missed: Vec<String> = eval
            .hits
            .iter()
            .filter(|(e, _)| !e.found)
            .map(|(e, ok)| format!("{}{}", e.kind, if *ok { "" } else { " (!FOUND!)" }))
            .collect();

        found_total += eval.found_count();
        expected_total += eval.expected_count();
        missed_confirmed += eval.missed_confirmed();
        extra_total += eval.extras.len();

        rows.push(vec![
            bench.name.to_string(),
            version.name().to_string(),
            by_it.join(" | "),
            if missed.is_empty() {
                "-".into()
            } else {
                missed.join(", ")
            },
            eval.extras.len().to_string(),
        ]);
        records.push(Row {
            benchmark: bench.name.to_string(),
            version: version.name().to_string(),
            found_by_iteration: by_it,
            missed,
            extras: eval.extras.len(),
        });
    }

    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "version",
                "found (it.1 | it.2 | it.3)",
                "missed",
                "extra"
            ],
            &rows
        )
    );
    println!(
        "effectiveness: {found_total}/{} expected instances found ({:.0}%); \
         paper: 36/42 (86%)",
        expected_total + 6,
        100.0 * found_total as f64 / (expected_total + 6) as f64
    );
    println!("correctly missed: {missed_confirmed}/6 (the paper's six known limitations)");
    println!("additional patterns beyond Table 3: {extra_total} (see the accuracy binary)");
    print_engine_metrics(&eng);

    write_record("table3", &records);

    let mut report = obs_report("table3", &opts, &eng);
    report.meta_num("found", found_total as f64);
    report.meta_num("expected", (expected_total + 6) as f64);
    report.section("rows", &records);
    export_obs(&opts, &report);
}
