//! `repro-top`: a terminal view of a live `repro-serve` daemon, built
//! on the telemetry plane — the `subscribe` streaming op for per-tick
//! deltas, `stats` for quantiles and SLO burn, `prometheus` for a
//! text-format scrape, and `blackbox` for an on-demand flight-recorder
//! dump.
//!
//! ```text
//! repro-top --socket /tmp/repro.sock --ticks 10 --interval-ms 500
//! repro-top --socket /tmp/repro.sock --once
//! repro-top --socket /tmp/repro.sock --scrape-prom scrape.txt
//! repro-top --socket /tmp/repro.sock --blackbox dump.json
//! ```
//!
//! It is deliberately a *raw socket* client (no `repro-serve`
//! dependency): anything it can do, any program that can write
//! newline-JSON to a unix socket can do.

use obs::json::{parse, Json};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::exit;

struct Opts {
    socket: PathBuf,
    ticks: u64,
    interval_ms: u64,
    once: bool,
    scrape_prom: Option<PathBuf>,
    blackbox: Option<PathBuf>,
    shutdown: bool,
}

fn parse_flag<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(value) = value else {
        eprintln!("{flag} needs a value");
        exit(2);
    };
    value.parse().unwrap_or_else(|_| {
        eprintln!("invalid value for {flag}: got {value:?}");
        exit(2);
    })
}

fn opts() -> Opts {
    let mut o = Opts {
        socket: PathBuf::from("repro-serve.sock"),
        ticks: 5,
        interval_ms: 500,
        once: false,
        scrape_prom: None,
        blackbox: None,
        shutdown: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => o.socket = parse_flag(&arg, args.next()),
            "--ticks" => o.ticks = parse_flag(&arg, args.next()),
            "--interval-ms" => o.interval_ms = parse_flag(&arg, args.next()),
            "--once" => o.once = true,
            "--scrape-prom" => o.scrape_prom = Some(parse_flag(&arg, args.next())),
            "--blackbox" => o.blackbox = Some(parse_flag(&arg, args.next())),
            "--shutdown" => o.shutdown = true,
            other => {
                eprintln!(
                    "unknown flag {other:?}\n\
                     usage: repro-top [--socket PATH] [--ticks N] [--interval-ms MS] [--once]\n\
                     \x20                [--scrape-prom PATH] [--blackbox PATH] [--shutdown]"
                );
                exit(2);
            }
        }
    }
    o
}

/// One synchronous request/response on a fresh connection.
fn control(socket: &PathBuf, request: &str) -> Option<Json> {
    let stream = UnixStream::connect(socket).ok()?;
    let mut reader = BufReader::new(stream.try_clone().ok()?);
    let mut s = &stream;
    s.write_all(request.as_bytes()).ok()?;
    s.write_all(b"\n").ok()?;
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    parse(line.trim_end()).ok()
}

fn num(doc: &Json, key: &str) -> f64 {
    doc.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

fn must(doc: Option<Json>, what: &str) -> Json {
    doc.unwrap_or_else(|| {
        eprintln!("repro-top: {what} request failed — is the daemon up?");
        exit(1);
    })
}

/// Renders one `stats` response as the summary block.
fn print_stats(stats: &Json) {
    let serve = stats.get("serve");
    let s = |key: &str| serve.map_or(0.0, |d| num(d, key));
    println!(
        "uptime {:>8.1}s   {:>7.1} req/s   {:>7.1} ok/s   queue flight {:>6} events",
        num(stats, "uptime_ms") / 1e3,
        num(stats, "requests_per_s"),
        num(stats, "ok_per_s"),
        num(stats, "flight_recorded"),
    );
    println!(
        "requests {:>8}   ok {:>8}   overloaded {:>6}   quota {:>5}   internal {:>4}   worker_lost {:>4}",
        s("requests"),
        s("ok"),
        s("overloaded"),
        s("quota"),
        s("internal_errors"),
        s("worker_lost"),
    );
    if let Some(slo) = stats.get("slo") {
        println!(
            "slo      target {:.3}   threshold {:.0} ms   {} good / {} bad of {}   burn short {:.3} long {:.3}",
            num(slo, "target"),
            num(slo, "latency_threshold_ms"),
            num(slo, "good"),
            num(slo, "bad"),
            num(slo, "total"),
            num(slo, "short_burn"),
            num(slo, "long_burn"),
        );
    }
    if let Some(Json::Arr(hists)) = stats.get("latency") {
        for h in hists {
            let name = h.get("name").and_then(Json::as_str).unwrap_or("?");
            println!(
                "lat      {:<28} n {:>7}   p50 {:>8.2} ms   p90 {:>8.2} ms   p99 {:>8.2} ms   p999 {:>8.2} ms",
                name.strip_prefix("serve.latency.").unwrap_or(name),
                num(h, "count"),
                num(h, "p50_ms"),
                num(h, "p90_ms"),
                num(h, "p99_ms"),
                num(h, "p999_ms"),
            );
        }
    }
}

/// Follows the `subscribe` stream, printing one line per metrics tick.
fn follow(o: &Opts) {
    let Ok(stream) = UnixStream::connect(&o.socket) else {
        eprintln!(
            "repro-top: cannot connect to {} — is the daemon up?",
            o.socket.display()
        );
        exit(1);
    };
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut w = &stream;
    let line = format!(
        "{{\"op\":\"subscribe\",\"interval_ms\":{},\"ticks\":{}}}\n",
        o.interval_ms, o.ticks
    );
    if w.write_all(line.as_bytes()).is_err() {
        eprintln!("repro-top: subscribe write failed");
        exit(1);
    }
    println!(
        "{:>5} {:>10} {:>7} {:>8} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "tick", "uptime_s", "queue", "req/t", "ok/t", "rej/t", "err/t", "burn_5m", "burn_1h"
    );
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(n) if n > 0 => {}
            _ => return,
        }
        let Ok(doc) = parse(line.trim_end()) else {
            continue;
        };
        match doc.get("op").and_then(Json::as_str) {
            Some("metrics") => println!(
                "{:>5} {:>10.1} {:>7} {:>8} {:>8} {:>8} {:>8} {:>10.3} {:>10.3}",
                num(&doc, "tick"),
                num(&doc, "uptime_ms") / 1e3,
                num(&doc, "queue_depth"),
                num(&doc, "requests_delta"),
                num(&doc, "ok_delta"),
                num(&doc, "rejected_delta"),
                num(&doc, "errors_delta"),
                num(&doc, "slo_short_burn"),
                num(&doc, "slo_long_burn"),
            ),
            Some("subscribe_end") => return,
            _ => {}
        }
    }
}

fn main() {
    let o = opts();
    let mut acted = false;

    if let Some(path) = &o.scrape_prom {
        acted = true;
        let doc = must(
            control(&o.socket, "{\"op\":\"prometheus\"}"),
            "prometheus scrape",
        );
        let text = doc.get("text").and_then(Json::as_str).unwrap_or_else(|| {
            eprintln!("repro-top: prometheus response carried no text");
            exit(1);
        });
        std::fs::write(path, text).unwrap_or_else(|e| {
            eprintln!("repro-top: cannot write {}: {e}", path.display());
            exit(1);
        });
        println!(
            "repro-top: scraped {} bytes of prometheus text to {}",
            text.len(),
            path.display()
        );
    }

    if let Some(path) = &o.blackbox {
        acted = true;
        let line = format!("{{\"op\":\"blackbox\",\"path\":{:?}}}", path.display());
        let doc = must(control(&o.socket, &line), "blackbox dump");
        if doc.get("status").and_then(Json::as_str) != Some("ok") {
            eprintln!(
                "repro-top: blackbox dump refused: {}",
                doc.get("error").and_then(Json::as_str).unwrap_or("?")
            );
            exit(1);
        }
        println!(
            "repro-top: blackbox dumped {} of {} recorded events to {}",
            num(&doc, "events"),
            num(&doc, "recorded"),
            path.display()
        );
    }

    if o.once || (!acted && !o.shutdown) {
        // Default mode (and --once): a stats snapshot; without --once,
        // follow the live stream afterwards.
        let stats = must(control(&o.socket, "{\"op\":\"stats\"}"), "stats");
        print_stats(&stats);
        if !o.once {
            follow(&o);
        }
    }

    if o.shutdown {
        let doc = must(control(&o.socket, "{\"op\":\"shutdown\"}"), "shutdown");
        if doc.get("status").and_then(Json::as_str) == Some("ok") {
            println!("repro-top: daemon drained and stopped");
        } else {
            eprintln!("repro-top: shutdown request failed");
            exit(1);
        }
    }
}
