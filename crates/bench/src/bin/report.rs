//! Regenerates paper Fig. 6: an HTML report highlighting the found
//! patterns at their source lines.
//!
//! Usage: `report [benchmark] [seq|pthreads]` (default:
//! `streamcluster pthreads`, the paper's screenshot subject). Writes
//! `target/experiments/report-<benchmark>-<version>.html` and prints the
//! text form.

use starbench::Version;

fn main() {
    let opts = repro_bench::cli();
    let name = opts
        .positional
        .first()
        .cloned()
        .unwrap_or_else(|| "streamcluster".into());
    let version = match opts.positional.get(1).map(|s| s.as_str()) {
        Some("seq") => Version::Seq,
        _ => Version::Pthreads,
    };
    let bench = starbench::benchmark(&name).unwrap_or_else(|| {
        eprintln!("{}", starbench::unknown_benchmark_message(&name));
        std::process::exit(2);
    });
    let program = bench.program(version);
    let run = bench.run_analysis(version);
    let result = discovery::find_patterns(&run.ddg.unwrap(), &opts.config);

    println!("{}", discovery::report::render_text(&result, &program));

    let html = discovery::report::render_html(&result, &program);
    let dir = std::path::Path::new("target/experiments");
    std::fs::create_dir_all(dir).expect("create target/experiments");
    let path = dir.join(format!("report-{}-{}.html", bench.name, version.name()));
    std::fs::write(&path, html).expect("write report");
    println!("HTML report written to {}", path.display());
}
