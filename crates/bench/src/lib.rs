//! `repro-bench` — the experiment harness: one binary per table and
//! figure of the paper's evaluation (§6), plus Criterion micro-benches.
//!
//! | paper artifact | binary | what it regenerates |
//! |---|---|---|
//! | Table 2 | `table2` | analysis vs reference input parameters |
//! | Table 3 | `table3` | found/missed patterns per benchmark × version |
//! | §6.1 accuracy | `accuracy` | additional patterns; the false maps via a second input |
//! | Fig. 7 | `fig7` | finding time vs DDG size, phase breakdown, simplification stats |
//! | Fig. 8 | `fig8` | portability speedups on the two modeled machines |
//! | Fig. 6 | `report` | HTML report with highlighted source lines |
//!
//! Every binary prints a human-readable table and appends a JSON record
//! under `target/experiments/` for EXPERIMENTS.md bookkeeping.

use serde::Serialize;
use starbench::{evaluate, Benchmark, Evaluation, Version};
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Command-line options shared by the experiment binaries.
///
/// - `--budget-ms <ms>` — per-sub-DDG solver/matcher time budget
///   (default 60 000 ms, the paper's per-solver-run limit);
/// - `--deadline-ms <ms>` — wall-clock deadline per analysis request;
///   an expired request returns its best-so-far patterns flagged
///   `degraded` (default: none);
/// - `--workers <n>` — match workers for the engine-driven binaries
///   (default: one per hardware thread);
/// - `--trace-workers <n>` — trace-ingestion workers per analysis
///   (default 1 = the sequential machine; ≥ 2 shards the tracer,
///   byte-identical output — DESIGN.md §17);
/// - `--trace-out <path>` — enable span tracing and write a Chrome
///   trace-event JSON (open in <https://ui.perfetto.dev>) when the
///   binary finishes;
/// - `--metrics-json <path>` — enable metrics and write the flat
///   `ObsReport` JSON when the binary finishes;
/// - everything else passes through as positional arguments.
pub struct Cli {
    /// Finder configuration with the budget applied.
    pub config: discovery::FinderConfig,
    /// Engine worker count; 0 means the engine default.
    pub workers: usize,
    /// Trace-ingestion workers per analysis (1 = sequential machine).
    pub trace_workers: usize,
    /// Chrome trace output path (tracing enabled when set).
    pub trace_out: Option<PathBuf>,
    /// Flat metrics JSON output path (tracing enabled when set).
    pub metrics_json: Option<PathBuf>,
    pub positional: Vec<String>,
}

impl Cli {
    /// True when either observability output was requested.
    pub fn obs_requested(&self) -> bool {
        self.trace_out.is_some() || self.metrics_json.is_some()
    }
}

/// Parses the process arguments, switching the process-wide obs layer on
/// when `--trace-out`/`--metrics-json` ask for it (tracing is off — and
/// every instrumentation site inert — otherwise).
pub fn cli() -> Cli {
    let cli = parse_args(std::env::args().skip(1));
    if cli.obs_requested() {
        obs::enable();
    }
    cli
}

/// Parses one flag value, naming the flag in the error instead of
/// panicking with a bare `expect` backtrace.
pub fn parse_value<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("invalid value for {flag}: got {value:?}"))
}

/// [`parse_value`] for binaries: prints the error and exits 2 — a usage
/// failure, distinct from a failed check (1).
pub fn parse_or_exit<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    parse_value(flag, value).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

fn parse_args(args: impl Iterator<Item = String>) -> Cli {
    let mut config = discovery::FinderConfig::default();
    let mut workers = 0usize;
    let mut trace_workers = 1usize;
    let mut trace_out = None;
    let mut metrics_json = None;
    let mut positional = Vec::new();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--budget-ms" => {
                let ms: u64 = parse_or_exit("--budget-ms", &take("--budget-ms"));
                config.budget.time = Duration::from_millis(ms);
            }
            "--deadline-ms" => {
                let ms: u64 = parse_or_exit("--deadline-ms", &take("--deadline-ms"));
                config.deadline = Some(Duration::from_millis(ms));
            }
            "--workers" => {
                workers = parse_or_exit("--workers", &take("--workers"));
            }
            "--trace-workers" => {
                trace_workers =
                    parse_or_exit::<usize>("--trace-workers", &take("--trace-workers")).max(1);
            }
            "--trace-out" => {
                trace_out = Some(PathBuf::from(take("--trace-out")));
            }
            "--metrics-json" => {
                metrics_json = Some(PathBuf::from(take("--metrics-json")));
            }
            _ => positional.push(arg),
        }
    }
    Cli {
        config,
        workers,
        trace_workers,
        trace_out,
        metrics_json,
        positional,
    }
}

/// Writes the observability outputs the command line asked for: drains
/// the recorded spans into `--trace-out` and the caller-assembled
/// [`obs::ObsReport`] into `--metrics-json`. A no-op for paths that were
/// not requested, so binaries call it unconditionally at exit.
pub fn export_obs(opts: &Cli, report: &obs::ObsReport) {
    if let Some(path) = &opts.trace_out {
        let threads = obs::take_events();
        match obs::write_chrome_trace(path, &threads) {
            Ok(()) => eprintln!(
                "(trace with {} thread track(s) written to {})",
                threads.len(),
                path.display()
            ),
            Err(e) => eprintln!("cannot write trace {}: {e}", path.display()),
        }
    }
    if let Some(path) = &opts.metrics_json {
        match report.write(path) {
            Ok(()) => eprintln!("(metrics written to {})", path.display()),
            Err(e) => eprintln!("cannot write metrics {}: {e}", path.display()),
        }
    }
}

/// An engine sized by [`Cli::workers`] (0 = hardware threads).
pub fn engine(workers: usize) -> repro_engine::Engine {
    repro_engine::Engine::new(repro_engine::EngineConfig {
        workers,
        ..repro_engine::EngineConfig::default()
    })
}

/// Prints the engine-wide scheduler and cache counters, and — when the
/// batch saw any faults, degradation, or failures — the robustness
/// counters too.
pub fn print_engine_metrics(engine: &repro_engine::Engine) {
    let m = engine.metrics();
    println!(
        "engine: {} workers, {} match jobs ({} stolen, peak queue {}), \
         cache {:.0}% hit ({} hits / {} misses, {} entries)",
        m.workers,
        m.jobs_executed,
        m.jobs_stolen,
        m.peak_queue_depth,
        100.0 * m.cache_hit_rate(),
        m.cache_hits,
        m.cache_misses,
        m.cache_entries,
    );
    if m.jobs_panicked + m.match_faults + m.requests_degraded + m.requests_failed > 0
        || m.cache_poison_recoveries > 0
    {
        println!(
            "faults: {} match faults ({} worker panics contained), \
             {} requests degraded, {} failed, {} cache shards recovered",
            m.match_faults,
            m.jobs_panicked,
            m.requests_degraded,
            m.requests_failed,
            m.cache_poison_recoveries,
        );
    }
}

/// A standard [`obs::ObsReport`] for an engine-driven experiment: the
/// registry snapshot, run parameters, and the engine's own counters as
/// an embedded section.
pub fn obs_report(experiment: &str, opts: &Cli, engine: &repro_engine::Engine) -> obs::ObsReport {
    let mut r = obs::ObsReport::snapshot();
    r.meta("experiment", experiment);
    r.meta_num("workers", engine.metrics().workers as f64);
    r.meta_num("budget_ms", opts.config.budget.time.as_millis() as f64);
    r.section("engine", &engine.metrics());
    r
}

/// One analysis run: trace, find patterns, evaluate against Table 3.
pub struct AnalysisRun {
    pub benchmark: &'static str,
    pub version: Version,
    pub trace_seconds: f64,
    pub find_seconds: f64,
    pub result: discovery::FinderResult,
    pub evaluation: Evaluation,
}

/// Traces and analyzes one benchmark version on its analysis input.
/// `trace_workers` ≥ 2 runs the sharded tracer (byte-identical DDG).
pub fn analyze(
    bench: &'static Benchmark,
    version: Version,
    config: &discovery::FinderConfig,
    trace_workers: usize,
) -> AnalysisRun {
    let program = bench.program(version);
    let cfg = (bench.analysis_input)().with_trace_workers(trace_workers.max(1));
    let t0 = Instant::now();
    let run = trace::run(&program, &cfg)
        .unwrap_or_else(|e| panic!("{} {}: {e}", bench.name, version.name()));
    let trace_seconds = t0.elapsed().as_secs_f64();
    (bench.verify)(&run)
        .unwrap_or_else(|e| panic!("{} {} wrong result: {e}", bench.name, version.name()));
    let ddg = run.ddg.expect("tracing enabled");
    let t0 = Instant::now();
    let result = discovery::find_patterns(&ddg, config);
    let find_seconds = t0.elapsed().as_secs_f64();
    let evaluation = evaluate(bench.name, version, &result);
    AnalysisRun {
        benchmark: bench.name,
        version,
        trace_seconds,
        find_seconds,
        result,
        evaluation,
    }
}

/// Traces and analyzes a scaled input (the Fig. 7 size series). Returns
/// `(ddg size, trace seconds, find seconds, result)`.
pub fn analyze_scaled(
    bench: &'static Benchmark,
    version: Version,
    factor: usize,
    config: &discovery::FinderConfig,
    trace_workers: usize,
) -> (usize, f64, f64, discovery::FinderResult) {
    let program = bench.program(version);
    let cfg = (bench.scaled_input)(factor).with_trace_workers(trace_workers.max(1));
    let t0 = Instant::now();
    let run = trace::run(&program, &cfg)
        .unwrap_or_else(|e| panic!("{} {} x{factor}: {e}", bench.name, version.name()));
    let trace_seconds = t0.elapsed().as_secs_f64();
    let ddg = run.ddg.expect("tracing enabled");
    let size = ddg.len();
    let t0 = Instant::now();
    let result = discovery::find_patterns(&ddg, config);
    (size, trace_seconds, t0.elapsed().as_secs_f64(), result)
}

/// Renders a simple aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Writes an experiment record as JSON under `target/experiments/`.
pub fn write_record<T: Serialize>(name: &str, record: &T) {
    let dir = std::path::Path::new("target/experiments");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = writeln!(f, "{}", serde_json::to_string_pretty(record).unwrap());
        eprintln!("(record written to {})", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_runs_end_to_end() {
        let b = starbench::benchmark("rgbyuv").unwrap();
        let run = analyze(b, Version::Seq, &discovery::FinderConfig::default(), 1);
        assert!(run.evaluation.perfect());
        assert!(run.result.ddg_size > 0);
        assert!(run.find_seconds >= 0.0);
    }

    #[test]
    fn cli_parses_budget_workers_and_positionals() {
        let cli = parse_args(
            [
                "--budget-ms",
                "1500",
                "fig7",
                "--workers",
                "3",
                "--trace-workers",
                "8",
                "1,4",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(cli.config.budget.time, Duration::from_millis(1500));
        assert_eq!(cli.workers, 3);
        assert_eq!(cli.trace_workers, 8);
        assert_eq!(cli.positional, vec!["fig7".to_string(), "1,4".to_string()]);
        assert_eq!(cli.config.deadline, None);
    }

    #[test]
    fn cli_parses_a_request_deadline() {
        let cli = parse_args(
            ["--deadline-ms", "250", "table3"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(cli.config.deadline, Some(Duration::from_millis(250)));
        assert_eq!(cli.positional, vec!["table3".to_string()]);
    }

    #[test]
    fn parse_value_names_the_flag_in_its_error() {
        assert_eq!(parse_value::<u64>("--budget-ms", "1500"), Ok(1500));
        let err = parse_value::<u64>("--workers", "many").unwrap_err();
        assert_eq!(err, "invalid value for --workers: got \"many\"");
    }

    #[test]
    fn table_rendering_aligns_columns() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("long-name"));
    }
}
