//! Smoke tests for the benchmark binaries' CLI error handling: malformed
//! flag values must exit 2 with a message naming the flag and the
//! offending value — not panic with a bare `expect` backtrace.

use std::process::{Command, Output};

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        .output()
        .expect("spawn benchmark binary")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn fig7_rejects_a_malformed_factor_list() {
    let out = run(env!("CARGO_BIN_EXE_fig7"), &["--factors", "1,banana"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("invalid value for --factors"),
        "stderr: {}",
        stderr(&out)
    );
    assert!(stderr(&out).contains("banana"), "stderr: {}", stderr(&out));
}

#[test]
fn fig7_rejects_a_malformed_bare_factor_list() {
    // The legacy spelling (bare positional comma list) gets the same
    // friendly error.
    let out = run(env!("CARGO_BIN_EXE_fig7"), &["2,x"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("invalid value for --factors"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn fig7_rejects_a_malformed_workers_value() {
    let out = run(env!("CARGO_BIN_EXE_fig7"), &["--workers", "many"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("invalid value for --workers"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn fig7_rejects_a_malformed_budget_value() {
    let out = run(env!("CARGO_BIN_EXE_fig7"), &["--budget-ms", "soon"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("invalid value for --budget-ms"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn obs_check_fig7_gate_passes_a_linear_report() {
    let dir = std::env::temp_dir().join("obs_check_fig7_ok");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("report.json");
    std::fs::write(
        &path,
        r#"{"meta":{"workers":1,"budget_ms":60000,"factors":[1,4,16],"loglog_slope":0.98,"slope_matching":0.85,"slope_simplify":0.9,"slope_decompose":0.8,"avg_reduction":3.5},"counters":[],"gauges":[],"histograms":[],"sections":{}}"#,
    )
    .unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_obs_check"),
        &["--fig7", path.to_str().unwrap(), "--max-slope", "1.05"],
    );
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
}

#[test]
fn obs_check_fig7_gate_fails_a_superlinear_slope() {
    let dir = std::env::temp_dir().join("obs_check_fig7_slope");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("report.json");
    std::fs::write(
        &path,
        r#"{"meta":{"workers":1,"budget_ms":60000,"factors":[1,4,16],"loglog_slope":1.138,"slope_matching":0.85,"slope_simplify":0.9,"slope_decompose":0.8,"avg_reduction":3.5},"counters":[],"gauges":[],"histograms":[],"sections":{}}"#,
    )
    .unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_obs_check"),
        &["--fig7", path.to_str().unwrap(), "--max-slope", "1.05"],
    );
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("superlinearly"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn obs_check_fig7_gate_fails_a_superlinear_matching_phase() {
    // The total can look linear while the match phase alone is not —
    // that is exactly what the per-phase gate must catch.
    let dir = std::env::temp_dir().join("obs_check_fig7_match_slope");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("report.json");
    std::fs::write(
        &path,
        r#"{"meta":{"workers":1,"budget_ms":60000,"factors":[1,4,16],"loglog_slope":0.98,"slope_matching":1.41,"slope_simplify":0.9,"slope_decompose":0.8,"avg_reduction":3.5},"counters":[],"gauges":[],"histograms":[],"sections":{}}"#,
    )
    .unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_obs_check"),
        &["--fig7", path.to_str().unwrap(), "--max-slope", "1.05"],
    );
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("matching-phase slope"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn obs_check_fig7_gate_fails_stringified_meta_numbers() {
    let dir = std::env::temp_dir().join("obs_check_fig7_str");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("report.json");
    std::fs::write(
        &path,
        r#"{"meta":{"workers":"1","budget_ms":60000,"factors":[1,4,16],"loglog_slope":0.98,"slope_matching":0.85,"slope_simplify":0.9,"slope_decompose":0.8,"avg_reduction":3.5},"counters":[],"gauges":[],"histograms":[],"sections":{}}"#,
    )
    .unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_obs_check"),
        &["--fig7", path.to_str().unwrap()],
    );
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("meta.workers is a JSON string"),
        "stderr: {}",
        stderr(&out)
    );
}
