//! Smoke tests for the benchmark binaries' CLI error handling: malformed
//! flag values must exit 2 with a message naming the flag and the
//! offending value — not panic with a bare `expect` backtrace.

use std::process::{Command, Output};

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        .output()
        .expect("spawn benchmark binary")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn fig7_rejects_a_malformed_factor_list() {
    let out = run(env!("CARGO_BIN_EXE_fig7"), &["--factors", "1,banana"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("invalid value for --factors"),
        "stderr: {}",
        stderr(&out)
    );
    assert!(stderr(&out).contains("banana"), "stderr: {}", stderr(&out));
}

#[test]
fn fig7_rejects_a_malformed_bare_factor_list() {
    // The legacy spelling (bare positional comma list) gets the same
    // friendly error.
    let out = run(env!("CARGO_BIN_EXE_fig7"), &["2,x"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("invalid value for --factors"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn fig7_rejects_a_malformed_workers_value() {
    let out = run(env!("CARGO_BIN_EXE_fig7"), &["--workers", "many"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("invalid value for --workers"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn fig7_rejects_a_malformed_budget_value() {
    let out = run(env!("CARGO_BIN_EXE_fig7"), &["--budget-ms", "soon"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("invalid value for --budget-ms"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn report_rejects_an_unknown_benchmark_with_the_available_list() {
    let out = run(env!("CARGO_BIN_EXE_report"), &["linpack"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(
        err.contains("unknown benchmark \"linpack\""),
        "stderr: {err}"
    );
    // The error teaches the fix: it lists what exists.
    assert!(err.contains("available:"), "stderr: {err}");
    assert!(err.contains("rgbyuv"), "stderr: {err}");
    assert!(err.contains("streamcluster"), "stderr: {err}");
}

/// A loss-free serve-load report with `overrides` spliced into `meta`.
fn serve_report(dir: &str, overrides: &[(&str, &str)]) -> std::path::PathBuf {
    let mut meta: Vec<(&str, String)> = vec![
        ("requests", "100".into()),
        ("answered", "100".into()),
        ("ok", "90".into()),
        ("overloaded", "6".into()),
        ("quota", "4".into()),
        ("trace_errors", "0".into()),
        ("bad_requests", "0".into()),
        ("worker_lost", "0".into()),
        ("internal_errors", "0".into()),
        ("protocol_errors", "0".into()),
        ("p50_ms", "12.5".into()),
        ("p99_ms", "80.0".into()),
        ("throughput_rps", "450.0".into()),
        ("cache_hit_rate", "0.93".into()),
        ("cache_evictions", "3".into()),
    ];
    for (key, value) in overrides {
        let slot = meta.iter_mut().find(|(k, _)| k == key).unwrap();
        slot.1 = value.to_string();
    }
    let body = meta
        .iter()
        .map(|(k, v)| format!("{k:?}:{v}"))
        .collect::<Vec<_>>()
        .join(",");
    let dir = std::env::temp_dir().join(dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_serve.json");
    std::fs::write(
        &path,
        format!(
            r#"{{"meta":{{{body}}},"counters":[],"gauges":[],"histograms":[],"sections":{{}}}}"#
        ),
    )
    .unwrap();
    path
}

#[test]
fn obs_check_serve_gate_passes_a_loss_free_report() {
    let path = serve_report("obs_check_serve_ok", &[]);
    let out = run(
        env!("CARGO_BIN_EXE_obs_check"),
        &["--serve", path.to_str().unwrap(), "--max-p99-ms", "1000"],
    );
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
}

#[test]
fn obs_check_serve_gate_fails_worker_loss() {
    let path = serve_report("obs_check_serve_lost", &[("worker_lost", "1")]);
    let out = run(
        env!("CARGO_BIN_EXE_obs_check"),
        &["--serve", path.to_str().unwrap()],
    );
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("worker_lost"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn obs_check_serve_gate_fails_an_accounting_leak() {
    // One request vanished without a labeled response.
    let path = serve_report("obs_check_serve_leak", &[("ok", "89"), ("answered", "99")]);
    let out = run(
        env!("CARGO_BIN_EXE_obs_check"),
        &["--serve", path.to_str().unwrap()],
    );
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("accounting leak"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn obs_check_serve_gate_fails_an_unbounded_p99() {
    let path = serve_report("obs_check_serve_p99", &[("p99_ms", "1500.0")]);
    let out = run(
        env!("CARGO_BIN_EXE_obs_check"),
        &["--serve", path.to_str().unwrap(), "--max-p99-ms", "1000"],
    );
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("p99 latency"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn obs_check_fig7_gate_passes_a_linear_report() {
    let dir = std::env::temp_dir().join("obs_check_fig7_ok");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("report.json");
    std::fs::write(
        &path,
        r#"{"meta":{"workers":1,"budget_ms":60000,"factors":[1,4,16],"loglog_slope":0.98,"slope_matching":0.85,"slope_simplify":0.9,"slope_decompose":0.8,"slope_trace":0.9,"trace_speedup_x16":2.1,"trace_cores":4,"avg_reduction":3.5},"counters":[],"gauges":[],"histograms":[],"sections":{}}"#,
    )
    .unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_obs_check"),
        &["--fig7", path.to_str().unwrap(), "--max-slope", "1.05"],
    );
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
}

#[test]
fn obs_check_fig7_gate_fails_a_superlinear_slope() {
    let dir = std::env::temp_dir().join("obs_check_fig7_slope");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("report.json");
    std::fs::write(
        &path,
        r#"{"meta":{"workers":1,"budget_ms":60000,"factors":[1,4,16],"loglog_slope":1.138,"slope_matching":0.85,"slope_simplify":0.9,"slope_decompose":0.8,"slope_trace":0.9,"trace_speedup_x16":2.1,"trace_cores":4,"avg_reduction":3.5},"counters":[],"gauges":[],"histograms":[],"sections":{}}"#,
    )
    .unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_obs_check"),
        &["--fig7", path.to_str().unwrap(), "--max-slope", "1.05"],
    );
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("superlinearly"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn obs_check_fig7_gate_fails_a_superlinear_matching_phase() {
    // The total can look linear while the match phase alone is not —
    // that is exactly what the per-phase gate must catch.
    let dir = std::env::temp_dir().join("obs_check_fig7_match_slope");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("report.json");
    std::fs::write(
        &path,
        r#"{"meta":{"workers":1,"budget_ms":60000,"factors":[1,4,16],"loglog_slope":0.98,"slope_matching":1.41,"slope_simplify":0.9,"slope_decompose":0.8,"slope_trace":0.9,"trace_speedup_x16":2.1,"trace_cores":4,"avg_reduction":3.5},"counters":[],"gauges":[],"histograms":[],"sections":{}}"#,
    )
    .unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_obs_check"),
        &["--fig7", path.to_str().unwrap(), "--max-slope", "1.05"],
    );
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("matching-phase slope"),
        "stderr: {}",
        stderr(&out)
    );
}

/// A fig7 report with the given slope/speedup/cores trace meta.
fn fig7_report(dir: &str, trace_meta: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("report.json");
    std::fs::write(
        &path,
        format!(
            r#"{{"meta":{{"workers":1,"budget_ms":60000,"factors":[1,4,16],"loglog_slope":0.98,"slope_matching":0.85,"slope_simplify":0.9,"slope_decompose":0.8,{trace_meta},"avg_reduction":3.5}},"counters":[],"gauges":[],"histograms":[],"sections":{{}}}}"#
        ),
    )
    .unwrap();
    path
}

#[test]
fn obs_check_fig7_gate_fails_a_superlinear_simplify_phase() {
    let dir = std::env::temp_dir().join("obs_check_fig7_simplify_slope");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("report.json");
    std::fs::write(
        &path,
        r#"{"meta":{"workers":1,"budget_ms":60000,"factors":[1,4,16],"loglog_slope":0.98,"slope_matching":0.85,"slope_simplify":1.38,"slope_decompose":0.8,"slope_trace":0.9,"trace_speedup_x16":2.1,"trace_cores":4,"avg_reduction":3.5},"counters":[],"gauges":[],"histograms":[],"sections":{}}"#,
    )
    .unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_obs_check"),
        &["--fig7", path.to_str().unwrap(), "--max-slope", "1.05"],
    );
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("simplify-phase slope"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn obs_check_trace_gate_passes_a_fast_multicore_report() {
    let path = fig7_report(
        "obs_check_trace_ok",
        r#""slope_trace":0.97,"trace_speedup_x16":2.4,"trace_cores":8"#,
    );
    let out = run(
        env!("CARGO_BIN_EXE_obs_check"),
        &["--trace", path.to_str().unwrap(), "--min-speedup", "1.8"],
    );
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
}

#[test]
fn obs_check_trace_gate_fails_a_superlinear_trace_phase() {
    let path = fig7_report(
        "obs_check_trace_slope",
        r#""slope_trace":1.31,"trace_speedup_x16":2.4,"trace_cores":8"#,
    );
    let out = run(
        env!("CARGO_BIN_EXE_obs_check"),
        &["--trace", path.to_str().unwrap()],
    );
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("trace-phase slope"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn obs_check_trace_gate_fails_a_slow_multicore_speedup() {
    let path = fig7_report(
        "obs_check_trace_slow",
        r#""slope_trace":0.97,"trace_speedup_x16":1.1,"trace_cores":8"#,
    );
    let out = run(
        env!("CARGO_BIN_EXE_obs_check"),
        &["--trace", path.to_str().unwrap(), "--min-speedup", "1.8"],
    );
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("below the 1.80x floor"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn obs_check_trace_gate_scales_the_floor_to_a_small_host() {
    // 2 cores: the floor is min(1.8, 0.7 * 2) = 1.4, so 1.5x passes.
    let path = fig7_report(
        "obs_check_trace_two_cores",
        r#""slope_trace":0.97,"trace_speedup_x16":1.5,"trace_cores":2"#,
    );
    let out = run(
        env!("CARGO_BIN_EXE_obs_check"),
        &["--trace", path.to_str().unwrap(), "--min-speedup", "1.8"],
    );
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
}

#[test]
fn obs_check_trace_gate_skips_the_speedup_check_on_one_core() {
    // Single-core recording host: no speedup is achievable, so only the
    // slope gates; the skip is stated in the output.
    let path = fig7_report(
        "obs_check_trace_one_core",
        r#""slope_trace":0.97,"trace_speedup_x16":0.8,"trace_cores":1"#,
    );
    let out = run(
        env!("CARGO_BIN_EXE_obs_check"),
        &["--trace", path.to_str().unwrap(), "--min-speedup", "1.8"],
    );
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("speedup check skipped"), "stdout: {stdout}");
}

#[test]
fn obs_check_fig7_gate_fails_stringified_meta_numbers() {
    let dir = std::env::temp_dir().join("obs_check_fig7_str");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("report.json");
    std::fs::write(
        &path,
        r#"{"meta":{"workers":"1","budget_ms":60000,"factors":[1,4,16],"loglog_slope":0.98,"slope_matching":0.85,"slope_simplify":0.9,"slope_decompose":0.8,"slope_trace":0.9,"trace_speedup_x16":2.1,"trace_cores":4,"avg_reduction":3.5},"counters":[],"gauges":[],"histograms":[],"sections":{}}"#,
    )
    .unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_obs_check"),
        &["--fig7", path.to_str().unwrap()],
    );
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("meta.workers is a JSON string"),
        "stderr: {}",
        stderr(&out)
    );
}
