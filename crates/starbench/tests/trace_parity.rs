//! Parallel-tracer parity over the full benchmark suite: every
//! Starbench benchmark, both versions, at 1, 2, and 8 trace workers,
//! must produce the byte-identical DDG, arrays, return value, and step
//! count the sequential machine produces — and still satisfy each
//! benchmark's plain-Rust oracle.

use starbench::suite::{all_benchmarks, Version};

#[test]
fn all_benchmarks_replay_byte_identically_at_any_worker_count() {
    for b in all_benchmarks() {
        for v in Version::BOTH {
            let p = b.program(v);
            let cfg = (b.analysis_input)();
            let seq =
                trace::run(&p, &cfg).unwrap_or_else(|e| panic!("{} {} seq: {e}", b.name, v.name()));
            for workers in [1usize, 2, 8] {
                let par =
                    trace::run(&p, &cfg.clone().with_trace_workers(workers)).unwrap_or_else(|e| {
                        panic!("{} {} at {workers} workers: {e}", b.name, v.name())
                    });
                assert_eq!(
                    seq.ddg,
                    par.ddg,
                    "{} {} DDG diverges at {workers} workers",
                    b.name,
                    v.name()
                );
                assert_eq!(seq.arrays, par.arrays, "{} {}", b.name, v.name());
                assert_eq!(seq.return_value, par.return_value);
                assert_eq!(
                    seq.steps,
                    par.steps,
                    "{} {} step count diverges at {workers} workers",
                    b.name,
                    v.name()
                );
                (b.verify)(&par).unwrap_or_else(|e| {
                    panic!("{} {} oracle at {workers} workers: {e}", b.name, v.name())
                });
            }
        }
    }
}

#[test]
fn pthreads_at_eight_simulated_threads_replays_byte_identically() {
    // The trace-scaling configuration: more simulated threads than the
    // analysis default, so segment count, stripe traffic, and barrier
    // fan-out all grow. (×4 input keeps every benchmark's chunking
    // divisible by 8 and the run affordable.)
    for b in all_benchmarks() {
        let p = b.program(Version::Pthreads);
        let cfg = (b.scaled_input_nproc)(4, 8);
        let seq = trace::run(&p, &cfg).unwrap_or_else(|e| panic!("{} seq nproc=8: {e}", b.name));
        let par = trace::run(&p, &cfg.clone().with_trace_workers(8))
            .unwrap_or_else(|e| panic!("{} par nproc=8: {e}", b.name));
        assert_eq!(seq.ddg, par.ddg, "{} DDG diverges at nproc=8", b.name);
        assert_eq!(seq.arrays, par.arrays, "{}", b.name);
        assert_eq!(seq.steps, par.steps, "{}", b.name);
    }
}
