//! Native (host-Rust) streamcluster kernels for the portability study
//! (paper §6.3).
//!
//! Three implementations of the hiz computation — the pattern the paper's
//! analysis finds and modernizes:
//!
//! * [`hiz_sequential`] — the baseline;
//! * [`hiz_pthreads`] — the legacy structure: manual thread spawning,
//!   explicit chunking, a partial-sum table, and a final merge loop
//!   (exactly the code of paper Fig. 2a, in Rust clothes);
//! * [`hiz_modernized`] — the post-analysis form: one `map_reduce`
//!   skeleton call (paper Fig. 2b), freely retargetable through
//!   [`skeletons::ExecPlan`].
//!
//! These run for real on the host (the benches measure genuine CPU
//! scaling); Fig. 8's cross-architecture bars come from the calibrated
//! model in `skeletons::model`.

use skeletons::ExecPlan;

/// A point set: `n` points of `dim` coordinates, row-major.
#[derive(Clone, Debug)]
pub struct Points {
    pub dim: usize,
    pub coords: Vec<f64>,
}

impl Points {
    /// Deterministic synthetic point set (stand-in for the paper's
    /// reference input stream).
    pub fn synthetic(n: usize, dim: usize, seed: u64) -> Points {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Points {
            dim,
            coords: (0..n * dim).map(|_| rng.gen::<f64>() * 10.0).collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.coords.len() / self.dim
    }

    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    fn point(&self, i: usize) -> &[f64] {
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }
}

/// Euclidean distance between point `i` and point 0 (the computation the
/// paper's map components perform).
fn dist_to_first(pts: &Points, i: usize) -> f64 {
    let a = pts.point(i);
    let b = pts.point(0);
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Sequential baseline: a single fused loop.
pub fn hiz_sequential(pts: &Points, weights: &[f64]) -> f64 {
    (0..pts.len())
        .map(|i| dist_to_first(pts, i) * weights[i])
        .sum()
}

/// The legacy Pthreads structure: explicit threads, chunking, a partial
/// table sized by thread count, and a final merge — the shape the
/// analysis recognizes as a tiled map-reduction.
pub fn hiz_pthreads(pts: &Points, weights: &[f64], nproc: usize) -> f64 {
    let n = pts.len();
    let nproc = nproc.clamp(1, n.max(1));
    let mut hizs = vec![0.0f64; nproc];
    let chunk = n.div_ceil(nproc);
    std::thread::scope(|s| {
        for (pid, slot) in hizs.iter_mut().enumerate() {
            s.spawn(move || {
                let k1 = pid * chunk;
                let k2 = (k1 + chunk).min(n);
                let mut myhiz = 0.0;
                for (kk, w) in weights.iter().enumerate().take(k2).skip(k1) {
                    myhiz += dist_to_first(pts, kk) * w;
                }
                *slot = myhiz;
            });
        }
    });
    let mut hiz = 0.0;
    for partial in hizs {
        hiz += partial;
    }
    hiz
}

/// The modernized form: the found tiled map-reduction re-expressed as one
/// skeleton call (paper Fig. 2b).
pub fn hiz_modernized(pts: &Points, weights: &[f64], plan: ExecPlan) -> f64 {
    let indices: Vec<usize> = (0..pts.len()).collect();
    skeletons::map_reduce(
        plan,
        &indices,
        |&i| dist_to_first(pts, i) * weights[i],
        0.0,
        |a, b| a + b,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n: usize) -> (Points, Vec<f64>) {
        let pts = Points::synthetic(n, 8, 99);
        let weights: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64 * 0.1).collect();
        (pts, weights)
    }

    #[test]
    fn all_three_implementations_agree() {
        let (pts, w) = setup(1000);
        let seq = hiz_sequential(&pts, &w);
        for nproc in [1, 2, 7, 12] {
            let p = hiz_pthreads(&pts, &w, nproc);
            assert!((p - seq).abs() < 1e-6, "pthreads[{nproc}]: {p} vs {seq}");
        }
        for plan in [
            ExecPlan::Sequential,
            ExecPlan::CpuThreads(4),
            ExecPlan::SimGpu,
        ] {
            let m = hiz_modernized(&pts, &w, plan);
            assert!((m - seq).abs() < 1e-6, "{plan}: {m} vs {seq}");
        }
    }

    #[test]
    fn handles_degenerate_sizes() {
        let (pts, w) = setup(1);
        let seq = hiz_sequential(&pts, &w);
        assert_eq!(seq, 0.0, "distance of the first point to itself");
        assert_eq!(hiz_pthreads(&pts, &w, 8), seq);
        assert_eq!(hiz_modernized(&pts, &w, ExecPlan::CpuThreads(8)), seq);
    }

    #[test]
    fn synthetic_points_are_deterministic() {
        let a = Points::synthetic(10, 3, 5);
        let b = Points::synthetic(10, 3, 5);
        assert_eq!(a.coords, b.coords);
        assert_eq!(a.len(), 10);
    }
}
