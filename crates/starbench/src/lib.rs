//! `starbench` — the benchmark suite of the evaluation (paper §6),
//! rewritten in `minc`.
//!
//! Starbench (Andersch et al., 2012) is a parallel C/C++ suite whose
//! benchmarks exist in a sequential and an optimized Pthreads version;
//! the paper analyses all of them except the two pipeline benchmarks
//! (`bodytrack`, `h264dec`), which are out of the patterns' scope. This
//! crate provides the same eight benchmarks — `c-ray`, `ray-rot`, `md5`,
//! `rgbyuv`, `rotate`, `rot-cc`, `kmeans`, `streamcluster` — as `minc`
//! translation units faithful to the originals' loop, threading, and
//! dataflow structure, together with:
//!
//! * the analysis and reference input parameters of paper Table 2
//!   ([`inputs`]);
//! * the per-version expected-pattern ground truth of paper Table 3
//!   ([`ground_truth`]), evaluated against a finder run;
//! * correctness oracles (each benchmark is cross-checked against a plain
//!   Rust implementation of the same computation).

pub mod ground_truth;
pub mod inputs;
pub mod native;
pub mod suite;

pub use ground_truth::{evaluate, Evaluation, Expectation};
pub use inputs::InputParams;
pub use suite::{all_benchmarks, benchmark, unknown_benchmark_message, Benchmark, Version};
