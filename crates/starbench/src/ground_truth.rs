//! Ground truth: the expected patterns of paper Table 3, and the
//! evaluation that compares a finder run against them.
//!
//! Table 3 lists, per benchmark and version, the patterns reported by
//! earlier manual studies of Starbench — 42 in total — the iteration at
//! which the paper's finder matches each, and the six instances its
//! heuristics miss. Anything the finder reports beyond these expectations
//! is an *additional* pattern, the subject of the paper's accuracy study
//! (§6.1: 50 additional patterns, 48 true and 2 false).

use crate::suite::Version;
use discovery::{FinderResult, Found};

/// One expected pattern instance (a cell of paper Table 3).
#[derive(Clone, Copy, Debug)]
pub struct Expectation {
    pub benchmark: &'static str,
    /// `None` = both versions (the paper's "(both)" rows).
    pub version: Option<Version>,
    /// Table 3 legend: "m", "cm", "fm", "r", "mr".
    pub kind: &'static str,
    /// Iteration at which the paper's finder matches it (for found ones).
    pub iteration: usize,
    /// False for the six patterns the paper's heuristics miss.
    pub found: bool,
    /// A label that must appear in the matched pattern's operations —
    /// distinguishes, say, the kmeans assignment map (distance math) from
    /// incidental accumulation maps.
    pub needle: Option<&'static str>,
}

const fn exp(
    benchmark: &'static str,
    kind: &'static str,
    iteration: usize,
    needle: Option<&'static str>,
) -> Expectation {
    Expectation {
        benchmark,
        version: None,
        kind,
        iteration,
        found: true,
        needle,
    }
}

const fn missed(
    benchmark: &'static str,
    version: Option<Version>,
    kind: &'static str,
    needle: Option<&'static str>,
) -> Expectation {
    Expectation {
        benchmark,
        version,
        kind,
        iteration: 0,
        found: false,
        needle,
    }
}

/// The 42 expected pattern instances of paper Table 3 (entries without a
/// version apply to both versions).
pub fn table3() -> Vec<Expectation> {
    vec![
        exp("c-ray", "m", 1, Some("call.sqrt")),
        exp("md5", "m", 1, Some("xor")),
        exp("rgbyuv", "m", 1, Some("fmul")),
        exp("rotate", "cm", 1, Some("fmul")),
        exp("kmeans", "r", 1, Some("fadd")),
        missed("kmeans", None, "m", Some("fsub")),
        missed("kmeans", None, "mr", None),
        exp("rot-cc", "m", 1, Some("fmul")),
        exp("rot-cc", "cm", 1, Some("fmul")),
        exp("rot-cc", "fm", 2, None),
        // ray-rot differs between versions: the sequential ray map is
        // found immediately; the Pthreads one surfaces in iteration 2.
        Expectation {
            benchmark: "ray-rot",
            version: Some(Version::Seq),
            kind: "m",
            iteration: 1,
            found: true,
            needle: Some("call.sqrt"),
        },
        Expectation {
            benchmark: "ray-rot",
            version: Some(Version::Pthreads),
            kind: "m",
            iteration: 2,
            found: true,
            needle: Some("call.sqrt"),
        },
        exp("ray-rot", "cm", 1, None),
        missed("ray-rot", None, "fm", None),
        exp("streamcluster", "m", 1, Some("fmul")),
        exp("streamcluster", "cm", 1, None),
        exp("streamcluster", "cm", 1, None),
        exp("streamcluster", "cm", 1, None),
        exp("streamcluster", "r", 1, Some("fadd")),
        exp("streamcluster", "m", 2, Some("call.sqrt")),
        exp("streamcluster", "m", 2, Some("call.sqrt")),
        exp("streamcluster", "mr", 3, None),
    ]
}

/// The expectations that apply to one benchmark version.
pub fn expectations_for(benchmark: &str, version: Version) -> Vec<Expectation> {
    table3()
        .into_iter()
        .filter(|e| e.benchmark == benchmark && e.version.is_none_or(|v| v == version))
        .collect()
}

/// Outcome of evaluating one benchmark version.
#[derive(Debug)]
pub struct Evaluation {
    pub benchmark: String,
    pub version: Version,
    /// (expectation, satisfied).
    pub hits: Vec<(Expectation, bool)>,
    /// Found patterns beyond the expectations (the accuracy study's
    /// "additional patterns").
    pub extras: Vec<Found>,
}

impl Evaluation {
    /// Number of expected-found patterns actually found.
    pub fn found_count(&self) -> usize {
        self.hits.iter().filter(|(e, ok)| e.found && *ok).count()
    }

    /// Number of expected-found patterns (the denominator of the paper's
    /// 86% effectiveness).
    pub fn expected_count(&self) -> usize {
        self.hits.iter().filter(|(e, _)| e.found).count()
    }

    /// Number of correctly-missed patterns (expected missed and indeed
    /// not reported).
    pub fn missed_confirmed(&self) -> usize {
        self.hits.iter().filter(|(e, ok)| !e.found && *ok).count()
    }

    /// True when every expectation is satisfied.
    pub fn perfect(&self) -> bool {
        self.hits.iter().all(|(_, ok)| *ok)
    }
}

/// Matches a finder run against the Table 3 expectations.
pub fn evaluate(benchmark: &str, version: Version, result: &FinderResult) -> Evaluation {
    let expectations = expectations_for(benchmark, version);
    let mut consumed = vec![false; result.found.len()];
    let mut hits = Vec::new();

    for e in &expectations {
        if e.found {
            // Find an unconsumed match of the right kind, iteration, and
            // operation content.
            let found = (0..result.found.len()).find(|&i| {
                let f = &result.found[i];
                !consumed[i]
                    && f.pattern.kind.short() == e.kind
                    && f.iteration == e.iteration
                    && e.needle
                        .is_none_or(|n| f.pattern.op_labels.iter().any(|l| l.contains(n)))
            });
            if let Some(i) = found {
                consumed[i] = true;
                hits.push((*e, true));
            } else {
                hits.push((*e, false));
            }
        } else {
            // A correctly-missed pattern: nothing of this kind (and
            // content) may appear at any iteration.
            let wrongly_found = result.found.iter().any(|f| {
                f.pattern.kind.short() == e.kind
                    && e.needle
                        .is_none_or(|n| f.pattern.op_labels.iter().any(|l| l.contains(n)))
            });
            hits.push((*e, !wrongly_found));
        }
    }

    let extras = result
        .found
        .iter()
        .enumerate()
        .filter(|(i, _)| !consumed[*i])
        .map(|(_, f)| f.clone())
        .collect();

    Evaluation {
        benchmark: benchmark.to_string(),
        version,
        hits,
        extras,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::all_benchmarks;
    use discovery::{find_patterns, FinderConfig};

    #[test]
    fn table3_has_42_instances_total() {
        let both: usize = table3().iter().filter(|e| e.version.is_none()).count();
        let single: usize = table3().iter().filter(|e| e.version.is_some()).count();
        assert_eq!(both * 2 + single, 42);
        let missed: usize = table3()
            .iter()
            .map(|e| {
                if e.found {
                    0
                } else if e.version.is_none() {
                    2
                } else {
                    1
                }
            })
            .sum();
        assert_eq!(missed, 6, "the paper misses six instances");
    }

    /// The headline result: 36 of 42 found, the six known instances
    /// missed — on every benchmark and version.
    #[test]
    fn whole_suite_reproduces_table3() {
        let mut found_total = 0;
        let mut expected_total = 0;
        for b in all_benchmarks() {
            for v in Version::BOTH {
                let r = b.run_analysis(v);
                let res = find_patterns(&r.ddg.unwrap(), &FinderConfig::default());
                let eval = evaluate(b.name, v, &res);
                assert!(
                    eval.perfect(),
                    "{} {}: {:?}",
                    b.name,
                    v.name(),
                    eval.hits.iter().filter(|(_, ok)| !ok).collect::<Vec<_>>()
                );
                found_total += eval.found_count();
                expected_total += eval.expected_count();
            }
        }
        assert_eq!(expected_total, 36);
        assert_eq!(found_total, 36, "all 36 findable instances found");
    }
}
