//! Input parameters (paper Table 2): the analysis-scale and
//! reference-scale inputs of every benchmark.
//!
//! Analysis inputs exercise each benchmark's main computation while
//! keeping DDGs small — the paper picks them roughly three orders of
//! magnitude below the reference inputs.

/// One Table 2 row.
#[derive(Clone, Copy, Debug)]
pub struct InputParams {
    pub benchmark: &'static str,
    pub analysis: &'static str,
    pub reference: &'static str,
}

/// The rows of paper Table 2.
pub const TABLE2: &[InputParams] = &[
    InputParams {
        benchmark: "c-ray",
        analysis: "7 objects, 8x4 pixels",
        reference: "192 objects, 1920x1080 pixels",
    },
    InputParams {
        benchmark: "ray-rot",
        analysis: "7 objects, 8x4 pixels",
        reference: "192 objects, 1920x1080 pixels",
    },
    InputParams {
        benchmark: "md5",
        analysis: "4 buffers, 2x2 B/buffer",
        reference: "128 buffers, 1024x4096 B/buffer",
    },
    InputParams {
        benchmark: "rgbyuv",
        analysis: "4x4 pixels",
        reference: "8141x2943 pixels",
    },
    InputParams {
        benchmark: "rotate",
        analysis: "4x4 pixels",
        reference: "8141x2943 pixels",
    },
    InputParams {
        benchmark: "rot-cc",
        analysis: "4x4 pixels",
        reference: "8141x2943 pixels",
    },
    InputParams {
        benchmark: "kmeans",
        analysis: "8 pt., 2 dim., 2 clusters",
        reference: "17695 pt., 18 dim., 2000 clusters",
    },
    InputParams {
        benchmark: "streamcluster",
        analysis: "4 pt., 2 dim., 2 clusters",
        reference: "200000 pt., 128 dim., 20 clusters",
    },
];

/// Looks up the Table 2 row of a benchmark.
pub fn params_for(benchmark: &str) -> Option<&'static InputParams> {
    TABLE2.iter().find(|p| p.benchmark == benchmark)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_covers_the_whole_suite() {
        for b in crate::suite::all_benchmarks() {
            assert!(
                params_for(b.name).is_some(),
                "{} missing from Table 2",
                b.name
            );
        }
        assert_eq!(TABLE2.len(), 8);
    }
}
