//! `rot-cc` — rotation followed by two-pass color conversion.
//!
//! Three loops: rotation (conditional map), luma scaling (map), and
//! quantization (map). The two conversion passes run over the same pixel
//! space with the intermediate consumed exclusively by the second pass, so
//! their fusion is recognized — the paper's fused map "combining loops
//! located in different translation units": the passes live in separate
//! `minc` files. The rotation cannot fuse with the conversion (its
//! conditional output breaks component uniformity), which matches the
//! paper's inventory of exactly one fused map per version.

use super::{gen_f64, Benchmark};
use trace::{RunConfig, RunResult};

/// Translation unit 1: the rotation (forward mapping, arbitrary angle).
const ROTATE_TU: &str = r#"
float src[16];
float srcb[16];
float bright[2];
float rbuf[16];
float trig[2];
int cfg[3];

void brighten_range(int from, int to) {
    int i;
    for (i = from; i < to; i++) {
        srcb[i] = src[i] * bright[0] + bright[1];
    }
}

void rotate_range(int from, int to) {
    int w = cfg[0];
    int h = cfg[1];
    int i;
    for (i = from; i < to; i++) {
        int x = i % w;
        int y = i / w;
        float fx = (float)x - (float)w / 2.0;
        float fy = (float)y - (float)h / 2.0;
        float rx = fx * trig[0] - fy * trig[1];
        float ry = fx * trig[1] + fy * trig[0];
        int tx = (int)(rx + (float)w / 2.0 + 0.5);
        int ty = (int)(ry + (float)h / 2.0 + 0.5);
        float v = srcb[i] * 0.9 + 0.05;
        if (tx >= 0) {
            if (tx < w) {
                if (ty >= 0) {
                    if (ty < h) {
                        rbuf[ty * w + tx] = v;
                    }
                }
            }
        }
    }
}
"#;

/// Translation unit 2: first conversion pass (luma scale).
const CC_TU: &str = r#"
float ybuf[16];

void luma_range(int from, int to) {
    int i;
    for (i = from; i < to; i++) {
        ybuf[i] = rbuf[i] * 0.7 + 0.2;
    }
}
"#;

/// Translation unit 3 (the mains): second conversion pass (quantization).
const SEQ_MAIN: &str = r#"
float qbuf[16];

void quant_range(int from, int to) {
    int i;
    for (i = from; i < to; i++) {
        qbuf[i] = ybuf[i] * 16.0 + 1.0;
    }
}

void main() {
    int npix = cfg[0] * cfg[1];
    brighten_range(0, npix);
    rotate_range(0, npix);
    luma_range(0, npix);
    quant_range(0, npix);
    output(qbuf);
}
"#;

const PTHR_MAIN: &str = r#"
float qbuf[16];
int handles[64];
barrier bar;

void quant_range(int from, int to) {
    int i;
    for (i = from; i < to; i++) {
        qbuf[i] = ybuf[i] * 16.0 + 1.0;
    }
}

void worker(int pid, int nproc) {
    int npix = cfg[0] * cfg[1];
    int chunk = npix / nproc;
    int from = pid * chunk;
    int to = from + chunk;
    brighten_range(from, to);
    rotate_range(from, to);
    barrier_wait(bar);
    luma_range(from, to);
    quant_range(from, to);
}

void main() {
    int nproc = cfg[2];
    int t;
    for (t = 0; t < nproc; t++) {
        int h;
        h = spawn worker(t, nproc);
        handles[t] = h;
    }
    for (t = 0; t < nproc; t++) {
        join(handles[t]);
    }
    output(qbuf);
}
"#;

const ANGLE: f64 = 0.4;

fn input(w: usize, h: usize, nproc: i64) -> RunConfig {
    RunConfig::default()
        .with_f64("src", &gen_f64(51, w * h))
        .with_len("srcb", w * h)
        .with_f64("bright", &[1.0, 0.0])
        .with_len("rbuf", w * h)
        .with_len("ybuf", w * h)
        .with_len("qbuf", w * h)
        .with_f64("trig", &[ANGLE.cos(), ANGLE.sin()])
        .with_i64("cfg", &[w as i64, h as i64, nproc])
        .with_barrier_participants(nproc as usize)
}

fn verify(r: &RunResult) -> Result<(), String> {
    let cfg = r.i64s("cfg");
    let rbuf = super::rotate::oracle(&r.f64s("src"), cfg[0], cfg[1], ANGLE.cos(), ANGLE.sin());
    let qbuf = r.f64s("qbuf");
    for (i, &rb) in rbuf.iter().enumerate() {
        let expected = (rb * 0.7 + 0.2) * 16.0 + 1.0;
        if (qbuf[i] - expected).abs() > 1e-9 {
            return Err(format!("pixel {i}: got {}, expected {expected}", qbuf[i]));
        }
    }
    Ok(())
}

pub static BENCH: Benchmark = Benchmark {
    name: "rot-cc",
    seq_files: &[
        ("rotate.mc", ROTATE_TU),
        ("cc.mc", CC_TU),
        ("main_seq.mc", SEQ_MAIN),
    ],
    pthr_files: &[
        ("rotate.mc", ROTATE_TU),
        ("cc.mc", CC_TU),
        ("main_pthr.mc", PTHR_MAIN),
    ],
    // Paper Table 2: 4×4 pixels for analysis.
    analysis_input: || input(4, 4, 2),
    scaled_input: |f| {
        let side = 4 * (f as f64).sqrt().ceil() as usize;
        input(side, side, 2)
    },
    scaled_input_nproc: |f, np| {
        let side = 4 * (f as f64).sqrt().ceil() as usize;
        input(side, side, np as i64)
    },
    verify,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::Version;
    use discovery::{find_patterns, FinderConfig, PatternKind};

    #[test]
    fn versions_agree() {
        let seq = BENCH.run_analysis(Version::Seq);
        let pthr = BENCH.run_analysis(Version::Pthreads);
        assert_eq!(seq.f64s("qbuf"), pthr.f64s("qbuf"));
    }

    #[test]
    fn fused_map_spans_translation_units() {
        for v in Version::BOTH {
            let r = BENCH.run_analysis(v);
            let res = find_patterns(&r.ddg.unwrap(), &FinderConfig::default());
            let it1: Vec<_> = res
                .found
                .iter()
                .filter(|f| f.iteration == 1)
                .map(|f| f.pattern.kind)
                .collect();
            assert!(
                it1.contains(&PatternKind::ConditionalMap),
                "{}: {it1:?}",
                v.name()
            );
            assert!(it1.contains(&PatternKind::Map), "{}: {it1:?}", v.name());
            let fms: Vec<_> = res
                .found
                .iter()
                .filter(|f| f.pattern.kind == PatternKind::FusedMap)
                .collect();
            // The conversion-pass fusion (expected) plus the
            // brighten∘rotate conditional fusion (an extra).
            assert_eq!(fms.len(), 2, "{}: {fms:?}", v.name());
            assert!(fms.iter().all(|f| f.iteration == 2), "{}", v.name());
            // The conversion fused map spans translation units.
            assert!(
                fms.iter().any(|fm| {
                    let files: std::collections::HashSet<u16> =
                        fm.pattern.lines.iter().map(|&(f, _)| f).collect();
                    files.len() >= 2
                }),
                "{}: no fused map crosses a TU boundary",
                v.name()
            );
            // Merging keeps the fused map and subsumes the pass maps.
            let reported: Vec<_> = res.reported().map(|f| f.pattern.kind).collect();
            assert!(reported.contains(&PatternKind::FusedMap));
            assert!(
                !reported.contains(&PatternKind::Map),
                "{}: {reported:?}",
                v.name()
            );
        }
    }
}
