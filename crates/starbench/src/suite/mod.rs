//! The benchmark registry.

pub mod c_ray;
pub mod kmeans;
pub mod md5;
pub mod ray_rot;
pub mod rgbyuv;
pub mod rot_cc;
pub mod rotate;
pub mod streamcluster;

use repro_ir::Program;
use trace::RunConfig;

/// Sequential or Pthreads flavor (every Starbench benchmark ships both).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Version {
    Seq,
    Pthreads,
}

impl Version {
    pub fn name(self) -> &'static str {
        match self {
            Version::Seq => "seq",
            Version::Pthreads => "pthreads",
        }
    }

    pub const BOTH: [Version; 2] = [Version::Seq, Version::Pthreads];
}

/// A benchmark: `minc` sources for both versions plus input builders.
pub struct Benchmark {
    pub name: &'static str,
    /// Translation units for the sequential version.
    pub seq_files: &'static [(&'static str, &'static str)],
    /// Translation units for the Pthreads version.
    pthr_files: &'static [(&'static str, &'static str)],
    /// Builds the analysis-scale input (paper Table 2, "analysis").
    pub analysis_input: fn() -> RunConfig,
    /// Builds an input scaled by a factor ≥ 1 (the Fig. 7 size series;
    /// factor 1 equals the analysis input).
    pub scaled_input: fn(usize) -> RunConfig,
    /// Like `scaled_input`, with an explicit simulated thread count for
    /// the Pthreads version (the trace-scaling series runs ×16 inputs
    /// at 8 workers). Callers pick factors where the work divides
    /// evenly across `nproc`, as the legacy chunking assumes.
    pub scaled_input_nproc: fn(usize, usize) -> RunConfig,
    /// Checks a finished run against a plain-Rust oracle.
    pub verify: fn(&trace::RunResult) -> Result<(), String>,
}

impl Benchmark {
    /// The translation units of a version.
    pub fn files(&self, v: Version) -> &'static [(&'static str, &'static str)] {
        match v {
            Version::Seq => self.seq_files,
            Version::Pthreads => self.pthr_files,
        }
    }

    /// Compiles a version to IR.
    pub fn program(&self, v: Version) -> Program {
        minc::compile_files(&format!("{}-{}", self.name, v.name()), self.files(v))
            .unwrap_or_else(|e| panic!("{} {} does not compile: {e}", self.name, v.name()))
    }

    /// Runs a version with the analysis input, returning the run result
    /// (with a traced DDG).
    pub fn run_analysis(&self, v: Version) -> trace::RunResult {
        let p = self.program(v);
        let cfg = (self.analysis_input)();
        let r = trace::run(&p, &cfg)
            .unwrap_or_else(|e| panic!("{} {} failed: {e}", self.name, v.name()));
        (self.verify)(&r)
            .unwrap_or_else(|e| panic!("{} {} wrong result: {e}", self.name, v.name()));
        r
    }
}

/// All eight analysed benchmarks, in the paper's Table 2 order.
pub fn all_benchmarks() -> Vec<&'static Benchmark> {
    vec![
        &c_ray::BENCH,
        &ray_rot::BENCH,
        &md5::BENCH,
        &rgbyuv::BENCH,
        &rotate::BENCH,
        &rot_cc::BENCH,
        &kmeans::BENCH,
        &streamcluster::BENCH,
    ]
}

/// Looks a benchmark up by name.
pub fn benchmark(name: &str) -> Option<&'static Benchmark> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

/// The user-facing message for a benchmark name that does not exist,
/// listing what does — shared by the daemon's `bad_request` responses
/// and every CLI `--bench` flag.
pub fn unknown_benchmark_message(name: &str) -> String {
    let names: Vec<&str> = all_benchmarks().iter().map(|b| b.name).collect();
    format!(
        "unknown benchmark {name:?}; available: {}",
        names.join(", ")
    )
}

/// Shared helper: deterministic pseudo-random f64s in [0, 1).
pub(crate) fn gen_f64(seed: u64, n: usize) -> Vec<f64> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen::<f64>()).collect()
}

/// Shared helper: deterministic pseudo-random i64s in [0, bound).
pub(crate) fn gen_i64(seed: u64, n: usize, bound: i64) -> Vec<i64> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..bound)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_all_eight() {
        let names: Vec<&str> = all_benchmarks().iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec![
                "c-ray",
                "ray-rot",
                "md5",
                "rgbyuv",
                "rotate",
                "rot-cc",
                "kmeans",
                "streamcluster"
            ]
        );
        assert!(benchmark("md5").is_some());
        assert!(
            benchmark("bodytrack").is_none(),
            "pipelines are out of scope"
        );
    }

    #[test]
    fn every_version_compiles_and_validates() {
        for b in all_benchmarks() {
            for v in Version::BOTH {
                let p = b.program(v);
                assert!(
                    repro_ir::validate(&p).is_ok(),
                    "{} {} fails validation",
                    b.name,
                    v.name()
                );
            }
        }
    }

    #[test]
    fn every_version_runs_correctly_on_analysis_input() {
        for b in all_benchmarks() {
            for v in Version::BOTH {
                let r = b.run_analysis(v);
                assert!(r.ddg.is_some(), "{} {}", b.name, v.name());
            }
        }
    }

    #[test]
    fn deterministic_generators() {
        assert_eq!(gen_f64(1, 4), gen_f64(1, 4));
        assert_ne!(gen_f64(1, 4), gen_f64(2, 4));
        assert!(gen_i64(3, 10, 100).iter().all(|&v| (0..100).contains(&v)));
    }
}
