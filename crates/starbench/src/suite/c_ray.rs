//! `c-ray` — a small ray tracer over a sphere scene.
//!
//! Per-pixel: build a normalized ray, intersect against every sphere,
//! shade the nearest hit. Pixels are independent, so the pixel loop is the
//! expected map (Table 3: m). The nearest-hit logic uses the classic
//! conditional-transfer idiom (`if (t < best)`), which the paper lists as
//! unmatched by design (§8) — the inner object loop therefore reports
//! nothing, and the scene includes an enclosing background sphere so every
//! pixel hits at least one object (keeping the per-pixel components
//! operation-isomorphic).

use super::Benchmark;
use trace::{RunConfig, RunResult};

pub(crate) const KERNEL: &str = r#"
float sph[40];
float img[32];
float outm[32];
float post[2];
int cfg[4];

void trace_range(int from, int to) {
    int w = cfg[0];
    int h = cfg[1];
    int nobj = cfg[2];
    int i;
    for (i = from; i < to; i++) {
        int px = i % w;
        int py = i / w;
        float dx = ((float)px + 0.5) / (float)w - 0.5;
        float dy = ((float)py + 0.5) / (float)h - 0.5;
        float dz = 1.0;
        float len = sqrt(dx * dx + dy * dy + dz * dz);
        float ux = dx / len;
        float uy = dy / len;
        float uz = dz / len;
        float best = 1000000.0;
        float shade = 0.0;
        int o;
        for (o = 0; o < nobj; o++) {
            float cx = sph[o * 5];
            float cy = sph[o * 5 + 1];
            float cz = sph[o * 5 + 2];
            float rad = sph[o * 5 + 3];
            float col = sph[o * 5 + 4];
            float bq = ux * cx + uy * cy + uz * cz;
            float cq = cx * cx + cy * cy + cz * cz - rad * rad;
            float disc = bq * bq - cq;
            if (disc > 0.0) {
                float tq = bq - sqrt(disc);
                if (tq > 0.001) {
                    if (tq < best) {
                        best = tq;
                        shade = col * (1.0 - tq * 0.02);
                    }
                }
            }
        }
        img[i] = shade;
    }
}
"#;

const SEQ_MAIN: &str = r#"
void expose_range(int from, int to) {
    int i;
    for (i = from; i < to; i++) {
        outm[i] = img[i] * post[0] + img[0] * post[1];
    }
}

void main() {
    trace_range(0, cfg[0] * cfg[1]);
    expose_range(0, cfg[0] * cfg[1]);
    output(img);
    output(outm);
}
"#;

const PTHR_MAIN: &str = r#"
int handles[64];
barrier bar;

void expose_range(int from, int to) {
    int i;
    for (i = from; i < to; i++) {
        outm[i] = img[i] * post[0] + img[0] * post[1];
    }
}

void worker(int pid, int nproc) {
    int npix = cfg[0] * cfg[1];
    int chunk = npix / nproc;
    int from = pid * chunk;
    trace_range(from, from + chunk);
    barrier_wait(bar);
    expose_range(from, from + chunk);
}

void main() {
    int nproc = cfg[3];
    int t;
    for (t = 0; t < nproc; t++) {
        int h;
        h = spawn worker(t, nproc);
        handles[t] = h;
    }
    for (t = 0; t < nproc; t++) {
        join(handles[t]);
    }
    output(img);
    output(outm);
}
"#;

/// Builds a scene of `nobj` spheres (the last is an enclosing background
/// sphere) in front of a `w`×`h` viewport.
pub(crate) fn scene(nobj: usize) -> Vec<f64> {
    let mut sph = Vec::with_capacity(nobj * 5);
    for k in 0..nobj - 1 {
        let fk = k as f64;
        // Spread spheres across depth and the viewport.
        sph.extend_from_slice(&[
            (fk * 0.37).sin() * 0.8, // cx
            (fk * 0.53).cos() * 0.5, // cy
            4.0 + fk * 1.3,          // cz
            0.6 + 0.1 * (fk % 3.0),  // radius
            0.3 + 0.08 * (fk % 7.0), // color
        ]);
    }
    // Background: a huge sphere behind everything, hit by every ray.
    sph.extend_from_slice(&[0.0, 0.0, 60.0, 30.0, 0.1]);
    sph
}

pub(crate) fn input(w: usize, h: usize, nobj: usize, nproc: i64) -> RunConfig {
    RunConfig::default()
        .with_f64("sph", &scene(nobj))
        .with_len("img", w * h)
        .with_len("outm", w * h)
        .with_f64("post", &[1.0, 0.0])
        .with_i64("cfg", &[w as i64, h as i64, nobj as i64, nproc])
        .with_barrier_participants(nproc as usize)
}

/// Rust oracle of the same tracer.
pub(crate) fn oracle(w: i64, h: i64, sph: &[f64]) -> Vec<f64> {
    let nobj = sph.len() / 5;
    let mut img = vec![0.0; (w * h) as usize];
    for i in 0..w * h {
        let (px, py) = (i % w, i / w);
        let dx = (px as f64 + 0.5) / w as f64 - 0.5;
        let dy = (py as f64 + 0.5) / h as f64 - 0.5;
        let dz = 1.0;
        let len = (dx * dx + dy * dy + dz * dz).sqrt();
        let (ux, uy, uz) = (dx / len, dy / len, dz / len);
        let mut best = 1_000_000.0;
        let mut shade = 0.0;
        for o in 0..nobj {
            let s = &sph[o * 5..o * 5 + 5];
            let bq = ux * s[0] + uy * s[1] + uz * s[2];
            let cq = s[0] * s[0] + s[1] * s[1] + s[2] * s[2] - s[3] * s[3];
            let disc = bq * bq - cq;
            if disc > 0.0 {
                let tq = bq - disc.sqrt();
                if tq > 0.001 && tq < best {
                    best = tq;
                    shade = s[4] * (1.0 - tq * 0.02);
                }
            }
        }
        img[i as usize] = shade;
    }
    img
}

fn verify(r: &RunResult) -> Result<(), String> {
    let cfg = r.i64s("cfg");
    let expected = oracle(cfg[0], cfg[1], &r.f64s("sph"));
    let img = r.f64s("img");
    if img.iter().zip(&expected).any(|(a, b)| (a - b).abs() > 1e-9) {
        return Err("image mismatch".into());
    }
    if img.contains(&0.0) {
        return Err("a pixel hit nothing; the background sphere must cover the view".into());
    }
    Ok(())
}

pub static BENCH: Benchmark = Benchmark {
    name: "c-ray",
    seq_files: &[("c-ray.mc", KERNEL), ("main_seq.mc", SEQ_MAIN)],
    pthr_files: &[("c-ray.mc", KERNEL), ("main_pthr.mc", PTHR_MAIN)],
    // Paper Table 2: 7 objects, 8×4 pixels.
    analysis_input: || input(8, 4, 7, 2),
    scaled_input: |f| input(8 * f, 4, 7, 2),
    scaled_input_nproc: |f, np| input(8 * f, 4, 7, np as i64),
    verify,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::Version;
    use discovery::{find_patterns, FinderConfig, PatternKind};

    #[test]
    fn versions_agree() {
        let seq = BENCH.run_analysis(Version::Seq);
        let pthr = BENCH.run_analysis(Version::Pthreads);
        assert_eq!(seq.f64s("img"), pthr.f64s("img"));
    }

    #[test]
    fn finder_reports_the_pixel_map() {
        for v in Version::BOTH {
            let r = BENCH.run_analysis(v);
            let res = find_patterns(&r.ddg.unwrap(), &FinderConfig::default());
            let eval = crate::ground_truth::evaluate("c-ray", v, &res);
            assert!(eval.perfect(), "{}: {:?}", v.name(), eval.hits);
            // The exposure pass is an additional true map.
            assert!(
                eval.extras
                    .iter()
                    .any(|f| f.pattern.kind == PatternKind::Map),
                "{}: {:?}",
                v.name(),
                eval.extras
            );
            let maps: Vec<_> = res
                .found
                .iter()
                .filter(|f| f.pattern.kind == PatternKind::Map && f.pattern.components == 32)
                .collect();
            assert_eq!(maps.len(), 2, "{}: pixel map + exposure map", v.name());
            assert!(maps.iter().all(|m| m.iteration == 1));
            // The conditional-transfer min idiom must not fake a pattern
            // out of the object loop.
            assert!(res.reported().all(|f| !f.pattern.kind.is_reduction()));
        }
    }
}
