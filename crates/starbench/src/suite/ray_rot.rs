//! `ray-rot` — ray tracing followed by rotation onto a larger canvas.
//!
//! The two phases are the paper's two expected patterns: the ray loop (a
//! map) and the rotation loop (a conditional map). Their fusion is the
//! suite's *missed* fused map: the rotation loop ranges over the rotated
//! image's (larger) dimensions, so the fused components have mismatching
//! sizes and the fused-map model rejects them (Table 3, footnote 3).
//!
//! The Pthreads version folds a per-thread image checksum into the ray
//! worker loop — an ad-hoc accumulation idiom of legacy parallel code —
//! which chains the loop's iterations: the ray map only surfaces in
//! iteration 2, after the checksum reduction is subtracted (the paper's
//! "maps in ray-rot … that result from subtracting first-iteration
//! reductions to loop DDGs").

use super::Benchmark;
use trace::{RunConfig, RunResult};

const KERNEL: &str = r#"
float sph[40];
float img[32];
float rimg[64];
float trig[2];
int cfg[7];

float trace_pixel(int i) {
    int w = cfg[0];
    int h = cfg[1];
    int nobj = cfg[2];
    int px = i % w;
    int py = i / w;
    float dx = ((float)px + 0.5) / (float)w - 0.5;
    float dy = ((float)py + 0.5) / (float)h - 0.5;
    float dz = 1.0;
    float len = sqrt(dx * dx + dy * dy + dz * dz);
    float ux = dx / len;
    float uy = dy / len;
    float uz = dz / len;
    float best = 1000000.0;
    float shade = 0.0;
    int o;
    for (o = 0; o < nobj; o++) {
        float cx = sph[o * 5];
        float cy = sph[o * 5 + 1];
        float cz = sph[o * 5 + 2];
        float rad = sph[o * 5 + 3];
        float col = sph[o * 5 + 4];
        float bq = ux * cx + uy * cy + uz * cz;
        float cq = cx * cx + cy * cy + cz * cz - rad * rad;
        float disc = bq * bq - cq;
        if (disc > 0.0) {
            float tq = bq - sqrt(disc);
            if (tq > 0.001) {
                if (tq < best) {
                    best = tq;
                    shade = col * (1.0 - tq * 0.02);
                }
            }
        }
    }
    return shade;
}

void rotate_range(int from, int to) {
    int w = cfg[0];
    int h = cfg[1];
    int w2 = cfg[3];
    int h2 = cfg[4];
    int j;
    for (j = from; j < to; j++) {
        int cx = j % w2;
        int cy = j / w2;
        float ox = (float)cx - (float)w2 / 2.0;
        float oy = (float)cy - (float)h2 / 2.0;
        float sx = ox * trig[0] + oy * trig[1] + (float)w / 2.0;
        float sy = 0.0 - ox * trig[1] + oy * trig[0] + (float)h / 2.0;
        if (sx >= 0.0) {
            if (sx < (float)w) {
                if (sy >= 0.0) {
                    if (sy < (float)h) {
                        rimg[j] = img[(int)sy * w + (int)sx] * 0.95;
                    }
                }
            }
        }
    }
}
"#;

const SEQ_MAIN: &str = r#"
void main() {
    int npix = cfg[0] * cfg[1];
    int i;
    for (i = 0; i < npix; i++) {
        img[i] = trace_pixel(i);
    }
    rotate_range(0, cfg[3] * cfg[4]);
    output(img);
    output(rimg);
}
"#;

const PTHR_MAIN: &str = r#"
float chks[2];
float chkstat[1];
int handles[64];
barrier bar;

void worker(int pid, int nproc) {
    int npix = cfg[0] * cfg[1];
    int chunk = npix / nproc;
    int from = pid * chunk;
    int to = from + chunk;
    float chk = 0.0;
    int i;
    for (i = from; i < to; i++) {
        float v = trace_pixel(i);
        img[i] = v;
        chk = chk + v;
    }
    chks[pid] = chk;
    barrier_wait(bar);
    int cpix = cfg[3] * cfg[4];
    int rchunk = cpix / nproc;
    int rfrom = pid * rchunk;
    rotate_range(rfrom, rfrom + rchunk);
    barrier_wait(bar);
    if (pid == 0) {
        float total = 0.0;
        int t;
        for (t = 0; t < nproc; t++) {
            total = total + chks[t];
        }
        chkstat[0] = total;
    }
}

void main() {
    int nproc = cfg[5];
    int t;
    for (t = 0; t < nproc; t++) {
        int h;
        h = spawn worker(t, nproc);
        handles[t] = h;
    }
    for (t = 0; t < nproc; t++) {
        join(handles[t]);
    }
    output(img);
    output(rimg);
    output(chkstat);
}
"#;

/// Rotation angle shared with the oracle.
const ANGLE: f64 = 0.4;

fn canvas(w: usize, h: usize) -> (usize, usize) {
    let (c, s) = (ANGLE.cos(), ANGLE.sin());
    let w2 = (w as f64 * c + h as f64 * s).ceil() as usize + 1;
    let h2 = (w as f64 * s + h as f64 * c).ceil() as usize + 1;
    (w2, h2)
}

fn input(w: usize, h: usize, nobj: usize, nproc: i64) -> RunConfig {
    let (w2, h2) = canvas(w, h);
    // Keep canvas splittable across workers.
    let cpix = (w2 * h2).next_multiple_of(nproc as usize);
    RunConfig::default()
        .with_f64("sph", &super::c_ray::scene(nobj))
        .with_len("img", w * h)
        .with_len("rimg", cpix)
        .with_f64("trig", &[ANGLE.cos(), ANGLE.sin()])
        .with_len("chks", nproc as usize)
        .with_i64(
            "cfg",
            &[
                w as i64,
                h as i64,
                nobj as i64,
                w2 as i64,
                (cpix / w2) as i64,
                nproc,
                0,
            ],
        )
        .with_barrier_participants(nproc as usize)
}

fn oracle_rimg(w: i64, h: i64, w2: i64, h2: i64, img: &[f64]) -> Vec<f64> {
    let (c, s) = (ANGLE.cos(), ANGLE.sin());
    let mut rimg = vec![0.0; (w2 * h2) as usize];
    for j in 0..w2 * h2 {
        let (cx, cy) = (j % w2, j / w2);
        let ox = cx as f64 - w2 as f64 / 2.0;
        let oy = cy as f64 - h2 as f64 / 2.0;
        let sx = ox * c + oy * s + w as f64 / 2.0;
        let sy = -ox * s + oy * c + h as f64 / 2.0;
        if sx >= 0.0 && sx < w as f64 && sy >= 0.0 && sy < h as f64 {
            rimg[j as usize] = img[(sy as i64 * w + sx as i64) as usize] * 0.95;
        }
    }
    rimg
}

fn verify(r: &RunResult) -> Result<(), String> {
    let cfg = r.i64s("cfg");
    let img = super::c_ray::oracle(cfg[0], cfg[1], &r.f64s("sph"));
    let expected = oracle_rimg(cfg[0], cfg[1], cfg[3], cfg[4], &img);
    let rimg = r.f64s("rimg");
    if rimg
        .iter()
        .zip(&expected)
        .any(|(a, b)| (a - b).abs() > 1e-9)
    {
        return Err("rotated image mismatch".into());
    }
    let written = expected.iter().filter(|&&v| v != 0.0).count();
    if written == 0 || written == expected.len() {
        return Err(format!("degenerate rotation ({written} written)"));
    }
    Ok(())
}

pub static BENCH: Benchmark = Benchmark {
    name: "ray-rot",
    seq_files: &[("ray-rot.mc", KERNEL), ("main_seq.mc", SEQ_MAIN)],
    pthr_files: &[("ray-rot.mc", KERNEL), ("main_pthr.mc", PTHR_MAIN)],
    // Paper Table 2: 192 objects at 1920×1080 reference; analysis uses the
    // c-ray analysis scale (7 objects, 8×4 pixels).
    analysis_input: || input(8, 4, 7, 2),
    scaled_input: |f| input(8 * f, 4, 7, 2),
    scaled_input_nproc: |f, np| input(8 * f, 4, 7, np as i64),
    verify,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::Version;
    use discovery::{find_patterns, FinderConfig, PatternKind};

    #[test]
    fn versions_agree() {
        let seq = BENCH.run_analysis(Version::Seq);
        let pthr = BENCH.run_analysis(Version::Pthreads);
        assert_eq!(seq.f64s("rimg"), pthr.f64s("rimg"));
    }

    #[test]
    fn seq_finds_map_and_conditional_map_in_iteration_one() {
        let r = BENCH.run_analysis(Version::Seq);
        let res = find_patterns(&r.ddg.unwrap(), &FinderConfig::default());
        let it1: Vec<_> = res
            .found
            .iter()
            .filter(|f| f.iteration == 1)
            .map(|f| f.pattern.kind)
            .collect();
        assert!(it1.contains(&PatternKind::Map), "{it1:?}");
        assert!(it1.contains(&PatternKind::ConditionalMap), "{it1:?}");
        // The fused map is missed: mismatching iteration spaces.
        assert!(res
            .found
            .iter()
            .all(|f| f.pattern.kind != PatternKind::FusedMap));
    }

    #[test]
    fn pthreads_map_surfaces_in_iteration_two() {
        let r = BENCH.run_analysis(Version::Pthreads);
        let res = find_patterns(&r.ddg.unwrap(), &FinderConfig::default());
        let it1: Vec<_> = res
            .found
            .iter()
            .filter(|f| f.iteration == 1)
            .map(|f| f.pattern.kind)
            .collect();
        assert!(
            !it1.contains(&PatternKind::Map),
            "checksum chains block the ray map at it.1: {it1:?}"
        );
        assert!(it1.contains(&PatternKind::ConditionalMap), "{it1:?}");
        assert!(
            it1.contains(&PatternKind::TiledReduction),
            "checksum reduction: {it1:?}"
        );
        let it2: Vec<_> = res
            .found
            .iter()
            .filter(|f| f.iteration == 2)
            .map(|f| f.pattern.kind)
            .collect();
        assert!(it2.contains(&PatternKind::Map), "{it2:?}");
        assert!(res
            .found
            .iter()
            .all(|f| f.pattern.kind != PatternKind::FusedMap));
    }
}
