//! `streamcluster` — the paper's flagship benchmark (its §2 motivating
//! example is this code's hiz computation).
//!
//! The port reproduces the published pattern inventory exactly
//! (Table 3): a weight-scaling **map** and three compute-then-
//! conditionally-store **conditional maps** in iteration 1, together with
//! the hiz **reduction** (tiled across threads, linear sequentially); two
//! further **maps** in iteration 2 (the dist computations exposed by
//! subtracting the hiz and gain reductions from their loops); and the
//! **map-reduction** composed in iteration 3. The gain phase's map cannot
//! fuse with its reduction — its outputs are also consumed by the
//! reassignment pass — so only one map-reduction is reported, as in the
//! paper.
//!
//! The suite's two *false* maps live here as well: the `fmout` loop
//! carries a conditional error-accumulation that the analysis input never
//! triggers, so the loop is reported as a map even though the pattern does
//! not hold for all inputs (paper §6.1, accuracy).

use super::Benchmark;
use trace::{RunConfig, RunResult};

/// Shared kernels: the unrolled 2-d distance and the phase ranges.
const KERNEL: &str = r#"
float pts[8];
float wtab[4];
float cand[4];
float opn[4];
float reas[4];
float lower[4];
float fmout[4];
float negstat[1];
float gstat[1];
float ssstat[1];
float result[1];
int cfg[3];

float dist(int i, int j) {
    float t0 = pts[i * 2] - pts[j * 2];
    float t1 = pts[i * 2 + 1] - pts[j * 2 + 1];
    return sqrt(t0 * t0 + t1 * t1);
}

void weigh_range(int from, int to) {
    int i;
    for (i = from; i < to; i++) {
        wtab[i] = (pts[i * 2] + pts[i * 2 + 1]) * 0.25 + 1.0;
    }
}

float check_range(int from, int to) {
    float neg = 0.0;
    int i;
    for (i = from; i < to; i++) {
        fmout[i] = pts[i * 2] * 2.0 + 0.5;
        if (pts[i * 2] < 0.0) {
            neg = neg + pts[i * 2];
        }
    }
    return neg;
}

void select_range(int from, int to) {
    int i;
    for (i = from; i < to; i++) {
        float t1 = wtab[i] * 0.8;
        if (t1 > 1.5) {
            cand[i] = t1;
        }
    }
}

void open_range(int from, int to) {
    int i;
    for (i = from; i < to; i++) {
        float t2 = cand[i] + wtab[i];
        if (t2 > 3.52) {
            opn[i] = t2;
        }
    }
}

float gain_range(int from, int to) {
    float gl = 0.0;
    int i;
    for (i = from; i < to; i++) {
        lower[i] = dist(i, 0) * wtab[i];
        gl = gl + lower[i];
    }
    return gl;
}

float wnorm_range(int from, int to) {
    float ss = 0.0;
    int i;
    for (i = from; i < to; i++) {
        ss = ss + wtab[i] * wtab[i];
    }
    return ss;
}

void reassign_range(int from, int to) {
    int i;
    for (i = from; i < to; i++) {
        float t3 = lower[i] * 0.5;
        if (t3 > 0.8) {
            reas[i] = t3;
        }
    }
}
"#;

const SEQ_MAIN: &str = r#"
void main() {
    int n = cfg[0];
    weigh_range(0, n);
    float neg = check_range(0, n);
    negstat[0] = neg;
    select_range(0, n);
    open_range(0, n);
    float gl = gain_range(0, n);
    gstat[0] = gl;
    float ss = wnorm_range(0, n);
    ssstat[0] = ss;
    reassign_range(0, n);
    float hiz = 0.0;
    int kk;
    for (kk = 0; kk < n; kk++) {
        hiz = hiz + dist(kk, 0) * wtab[kk];
    }
    result[0] = hiz;
    output(result);
    output(cand);
    output(opn);
    output(reas);
    output(fmout);
    output(negstat);
    output(gstat);
    output(ssstat);
}
"#;

const PTHR_MAIN: &str = r#"
float hizs[2];
float gtot[2];
float sstot[2];
int handles[64];
barrier bar;
mutex neglock;

void pkmedian(int pid, int nproc) {
    int n = cfg[0];
    int chunk = n / nproc;
    int k1 = pid * chunk;
    int k2 = k1 + chunk;
    weigh_range(k1, k2);
    float neg = check_range(k1, k2);
    lock(neglock);
    negstat[0] = negstat[0] + neg;
    unlock(neglock);
    barrier_wait(bar);
    select_range(k1, k2);
    open_range(k1, k2);
    float gl = gain_range(k1, k2);
    gtot[pid] = gl;
    float ss = wnorm_range(k1, k2);
    sstot[pid] = ss;
    reassign_range(k1, k2);
    float myhiz = 0.0;
    int kk;
    for (kk = k1; kk < k2; kk++) {
        myhiz = myhiz + dist(kk, 0) * wtab[kk];
    }
    hizs[pid] = myhiz;
    barrier_wait(bar);
    if (pid == 0) {
        float hiz = 0.0;
        float gs = 0.0;
        int t;
        for (t = 0; t < nproc; t++) {
            hiz = hiz + hizs[t];
        }
        int u;
        for (u = 0; u < nproc; u++) {
            gs = gs + gtot[u];
        }
        float sst = 0.0;
        int q;
        for (q = 0; q < nproc; q++) {
            sst = sst + sstot[q];
        }
        result[0] = hiz;
        gstat[0] = gs;
        ssstat[0] = sst;
    }
}

void main() {
    int nproc = cfg[2];
    int t;
    for (t = 0; t < nproc; t++) {
        int h;
        h = spawn pkmedian(t, nproc);
        handles[t] = h;
    }
    for (t = 0; t < nproc; t++) {
        join(handles[t]);
    }
    output(result);
    output(cand);
    output(opn);
    output(reas);
    output(fmout);
    output(negstat);
    output(gstat);
    output(ssstat);
}
"#;

/// The analysis points (paper Table 2: 4 points, 2 dims); all coordinates
/// positive so the conditional error accumulation never fires.
pub(crate) const ANALYSIS_PTS: [f64; 8] = [1.5, 2.0, 0.5, 1.0, 3.0, 0.8, 2.2, 1.7];

/// The analysis input's raw point coordinates (for harnesses that build
/// variant inputs, e.g. the accuracy study's trigger input).
pub fn analysis_points() -> [f64; 8] {
    ANALYSIS_PTS
}

/// Builds a run configuration for arbitrary points (the accuracy study
/// perturbs the analysis points to trigger the conditional reduction).
pub fn input_for_points(pts: &[f64], nproc: i64) -> RunConfig {
    input_with_points(pts, nproc)
}

pub(crate) fn input_with_points(pts: &[f64], nproc: i64) -> RunConfig {
    let n = pts.len() / 2;
    RunConfig::default()
        .with_f64("pts", pts)
        .with_len("wtab", n)
        .with_len("cand", n)
        .with_len("opn", n)
        .with_len("reas", n)
        .with_len("lower", n)
        .with_len("fmout", n)
        .with_len("hizs", nproc as usize)
        .with_len("gtot", nproc as usize)
        .with_len("sstot", nproc as usize)
        .with_i64("cfg", &[n as i64, 2, nproc])
        .with_barrier_participants(nproc as usize)
}

fn input(n: usize, nproc: i64) -> RunConfig {
    let mut pts = Vec::with_capacity(n * 2);
    for i in 0..n {
        if i < 4 {
            pts.extend_from_slice(&ANALYSIS_PTS[i * 2..i * 2 + 2]);
        } else {
            // Scaled runs: keep everything positive and varied.
            pts.push(0.3 + (i as f64 * 0.7).sin().abs() * 3.0);
            pts.push(0.2 + (i as f64 * 0.3).cos().abs() * 2.0);
        }
    }
    input_with_points(&pts, nproc)
}

/// Rust oracle of every phase.
pub(crate) struct Oracle {
    #[allow(dead_code)] // exposed for future phase-level checks
    pub wtab: Vec<f64>,
    pub cand: Vec<f64>,
    pub opn: Vec<f64>,
    pub reas: Vec<f64>,
    pub fmout: Vec<f64>,
    pub neg: f64,
    pub gtotal: f64,
    pub ssnorm: f64,
    pub hiz: f64,
}

pub(crate) fn oracle(pts: &[f64]) -> Oracle {
    let n = pts.len() / 2;
    let dist = |i: usize, j: usize| -> f64 {
        let t0 = pts[i * 2] - pts[j * 2];
        let t1 = pts[i * 2 + 1] - pts[j * 2 + 1];
        (t0 * t0 + t1 * t1).sqrt()
    };
    let wtab: Vec<f64> = (0..n)
        .map(|i| (pts[i * 2] + pts[i * 2 + 1]) * 0.25 + 1.0)
        .collect();
    let mut cand = vec![0.0; n];
    let mut opn = vec![0.0; n];
    let mut reas = vec![0.0; n];
    let mut fmout = vec![0.0; n];
    let mut lower = vec![0.0; n];
    let mut neg = 0.0;
    let mut gtotal = 0.0;
    let mut ssnorm = 0.0;
    let mut hiz = 0.0;
    for i in 0..n {
        fmout[i] = pts[i * 2] * 2.0 + 0.5;
        if pts[i * 2] < 0.0 {
            neg += pts[i * 2];
        }
        let t1 = wtab[i] * 0.8;
        if t1 > 1.5 {
            cand[i] = t1;
        }
        let t2 = cand[i] + wtab[i];
        if t2 > 3.52 {
            opn[i] = t2;
        }
        lower[i] = dist(i, 0) * wtab[i];
        gtotal += lower[i];
        let t3 = lower[i] * 0.5;
        if t3 > 0.8 {
            reas[i] = t3;
        }
        ssnorm += wtab[i] * wtab[i];
        hiz += dist(i, 0) * wtab[i];
    }
    Oracle {
        wtab,
        cand,
        opn,
        reas,
        fmout,
        neg,
        gtotal,
        ssnorm,
        hiz,
    }
}

fn verify(r: &RunResult) -> Result<(), String> {
    let o = oracle(&r.f64s("pts"));
    let close = |a: f64, b: f64| (a - b).abs() < 1e-9;
    if !close(r.f64s("result")[0], o.hiz) {
        return Err(format!(
            "hiz: got {}, expected {}",
            r.f64s("result")[0],
            o.hiz
        ));
    }
    if !close(r.f64s("gstat")[0], o.gtotal) {
        return Err("gain total mismatch".into());
    }
    if !close(r.f64s("negstat")[0], o.neg) {
        return Err("neg stat mismatch".into());
    }
    if !close(r.f64s("ssstat")[0], o.ssnorm) {
        return Err("weight-norm mismatch".into());
    }
    for (name, expected) in [
        ("cand", &o.cand),
        ("opn", &o.opn),
        ("reas", &o.reas),
        ("fmout", &o.fmout),
    ] {
        let got = r.f64s(name);
        if got.iter().zip(expected).any(|(a, b)| !close(*a, *b)) {
            return Err(format!("{name} mismatch"));
        }
    }
    // The conditional maps need mixed outcomes on this input.
    for (name, vals) in [("cand", &o.cand), ("opn", &o.opn), ("reas", &o.reas)] {
        let produced = vals.iter().filter(|&&v| v != 0.0).count();
        if produced == 0 || produced == vals.len() {
            return Err(format!("{name}: degenerate conditional map ({produced})"));
        }
    }
    Ok(())
}

pub static BENCH: Benchmark = Benchmark {
    name: "streamcluster",
    seq_files: &[("streamcluster.mc", KERNEL), ("main_seq.mc", SEQ_MAIN)],
    pthr_files: &[("streamcluster.mc", KERNEL), ("main_pthr.mc", PTHR_MAIN)],
    // Paper Table 2: 4 points, 2 dims, 2 clusters.
    analysis_input: || input(4, 2),
    scaled_input: |f| input(4 * f, 2),
    scaled_input_nproc: |f, np| input(4 * f, np as i64),
    verify,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::Version;
    use discovery::{find_patterns, FinderConfig, PatternKind};

    #[test]
    fn versions_agree() {
        let seq = BENCH.run_analysis(Version::Seq);
        let pthr = BENCH.run_analysis(Version::Pthreads);
        assert!((seq.f64s("result")[0] - pthr.f64s("result")[0]).abs() < 1e-9);
        assert_eq!(seq.f64s("reas"), pthr.f64s("reas"));
    }

    #[test]
    fn full_pattern_inventory_matches_table3() {
        for v in Version::BOTH {
            let r = BENCH.run_analysis(v);
            let res = find_patterns(&r.ddg.unwrap(), &FinderConfig::default());
            let by_iter = |it: usize| -> Vec<PatternKind> {
                res.found
                    .iter()
                    .filter(|f| f.iteration == it)
                    .map(|f| f.pattern.kind)
                    .collect()
            };
            let it1 = by_iter(1);
            let maps1 = it1.iter().filter(|k| **k == PatternKind::Map).count();
            let cms1 = it1
                .iter()
                .filter(|k| **k == PatternKind::ConditionalMap)
                .count();
            let tiled1 = it1
                .iter()
                .filter(|k| **k == PatternKind::TiledReduction)
                .count();
            let linear1 = it1
                .iter()
                .filter(|k| **k == PatternKind::LinearReduction)
                .count();
            // m (weights) + false m (fmout) at it.1; cm x3; r (hiz) + r
            // (gain). In the Pthreads version the pid-0 merge loops also
            // match linear reductions — the paper's Table 1 `f` — before
            // being subsumed by the tiled forms.
            assert_eq!(maps1, 2, "{}: it1 {it1:?}", v.name());
            assert_eq!(cms1, 3, "{}: it1 {it1:?}", v.name());
            // Reductions at it.1: hiz + gain + the weight-norm extra; in
            // the Pthreads version the pid-0 merge loops additionally
            // match linear reductions (Table 1's `f`) before subsumption.
            match v {
                Version::Seq => {
                    assert_eq!((linear1, tiled1), (3, 0), "{}: it1 {it1:?}", v.name())
                }
                Version::Pthreads => {
                    assert_eq!((linear1, tiled1), (3, 3), "{}: it1 {it1:?}", v.name())
                }
            }

            let it2 = by_iter(2);
            let maps2 = it2.iter().filter(|k| **k == PatternKind::Map).count();
            // hiz-dist, gain-dist, and the weight-norm extra.
            assert_eq!(maps2, 3, "{}: it2 {it2:?}", v.name());

            let it3 = by_iter(3);
            let mrs: Vec<_> = it3
                .iter()
                .filter(|k| {
                    matches!(
                        k,
                        PatternKind::LinearMapReduction | PatternKind::TiledMapReduction
                    )
                })
                .collect();
            // The hiz map-reduction plus the weight-norm extra (the
            // accuracy study's one additional map-reduction).
            assert_eq!(mrs.len(), 2, "{}: it3 {it3:?}", v.name());
            let expected_mr = match v {
                Version::Seq => PatternKind::LinearMapReduction,
                Version::Pthreads => PatternKind::TiledMapReduction,
            };
            assert!(mrs.iter().all(|k| **k == expected_mr), "{}", v.name());
        }
    }

    #[test]
    fn false_map_disappears_with_a_triggering_input() {
        // Negative coordinates activate the conditional reduction in the
        // check loop; with two triggers the accumulator chains the
        // affected iterations together, so the "map" was input-dependent
        // (a false pattern).
        let mut pts = ANALYSIS_PTS.to_vec();
        // Both negatives inside thread 0's chunk, so the accumulator chain
        // appears within one loop instance in the Pthreads version too.
        pts[0] = -1.5;
        pts[2] = -2.5;
        let p = BENCH.program(Version::Seq);
        let cfg = input_with_points(&pts, 2);
        let r = trace::run(&p, &cfg).unwrap();
        let res = find_patterns(&r.ddg.unwrap(), &FinderConfig::default());
        let it1_maps = res
            .found
            .iter()
            .filter(|f| f.iteration == 1 && f.pattern.kind == PatternKind::Map)
            .count();
        assert_eq!(it1_maps, 1, "only the weight map remains a plain map");
    }
}
