//! `rgbyuv` — per-pixel RGB → YUV color conversion.
//!
//! The conversion kernel is shared between versions (one translation
//! unit); the Pthreads version splits the pixel range across workers, the
//! classic Starbench structure. Expected pattern (paper Table 3): one map.

use super::{gen_f64, Benchmark};
use trace::{RunConfig, RunResult};

const KERNEL: &str = r#"
float r[16];
float g[16];
float b[16];
float yp[16];
float up[16];
float vp[16];
float gp[16];
float gamma[2];
int cfg[2];

void convert(int from, int to) {
    int i;
    for (i = from; i < to; i++) {
        float rr = r[i];
        float gg = g[i];
        float bb = b[i];
        float yy = 0.299 * rr + 0.587 * gg + 0.114 * bb;
        yp[i] = yy;
        up[i] = 0.492 * (bb - yy);
        vp[i] = 0.877 * (rr - yy);
    }
}

void gamma_pass(int from, int to) {
    int i;
    for (i = from; i < to; i++) {
        gp[i] = yp[i] * gamma[0] + yp[0] * gamma[1];
    }
}
"#;

const SEQ_MAIN: &str = r#"
void main() {
    convert(0, cfg[0]);
    gamma_pass(0, cfg[0]);
    output(gp);
    output(yp);
    output(up);
    output(vp);
}
"#;

const PTHR_MAIN: &str = r#"
int handles[64];
barrier bar;

void worker(int pid, int nproc) {
    int chunk = cfg[0] / nproc;
    int from = pid * chunk;
    convert(from, from + chunk);
    barrier_wait(bar);
    gamma_pass(from, from + chunk);
}

void main() {
    int nproc = cfg[1];
    int t;
    for (t = 0; t < nproc; t++) {
        int h;
        h = spawn worker(t, nproc);
        handles[t] = h;
    }
    for (t = 0; t < nproc; t++) {
        join(handles[t]);
    }
    output(gp);
    output(yp);
    output(up);
    output(vp);
}
"#;

/// Builds the input for `npix` pixels and `nproc` workers.
fn input(npix: usize, nproc: i64) -> RunConfig {
    RunConfig::default()
        .with_f64("r", &gen_f64(11, npix))
        .with_f64("g", &gen_f64(12, npix))
        .with_f64("b", &gen_f64(13, npix))
        .with_len("yp", npix)
        .with_len("up", npix)
        .with_len("vp", npix)
        .with_len("gp", npix)
        .with_f64("gamma", &[1.0, 0.0])
        .with_i64("cfg", &[npix as i64, nproc])
        .with_barrier_participants(nproc as usize)
}

fn verify(r: &RunResult) -> Result<(), String> {
    let (rr, gg, bb) = (r.f64s("r"), r.f64s("g"), r.f64s("b"));
    let (y, u, v) = (r.f64s("yp"), r.f64s("up"), r.f64s("vp"));
    for i in 0..rr.len() {
        let ey = 0.299 * rr[i] + 0.587 * gg[i] + 0.114 * bb[i];
        let eu = 0.492 * (bb[i] - ey);
        let ev = 0.877 * (rr[i] - ey);
        if (y[i] - ey).abs() > 1e-9 || (u[i] - eu).abs() > 1e-9 || (v[i] - ev).abs() > 1e-9 {
            return Err(format!("pixel {i}: got ({}, {}, {})", y[i], u[i], v[i]));
        }
    }
    // The gamma pass with identity coefficients mirrors the luma plane.
    if r.f64s("gp")
        .iter()
        .zip(&y)
        .any(|(a, b)| (a - b).abs() > 1e-9)
    {
        return Err("gamma pass mismatch".into());
    }
    Ok(())
}

pub static BENCH: Benchmark = Benchmark {
    name: "rgbyuv",
    seq_files: &[("rgbyuv.mc", KERNEL), ("main_seq.mc", SEQ_MAIN)],
    pthr_files: &[("rgbyuv.mc", KERNEL), ("main_pthr.mc", PTHR_MAIN)],
    // Paper Table 2: 4×4 pixels for analysis.
    analysis_input: || input(16, 2),
    scaled_input: |f| input(16 * f, 2),
    scaled_input_nproc: |f, np| input(16 * f, np as i64),
    verify,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::Version;
    use discovery::{find_patterns, FinderConfig, PatternKind};

    #[test]
    fn both_versions_compute_the_same_result() {
        let seq = BENCH.run_analysis(Version::Seq);
        let pthr = BENCH.run_analysis(Version::Pthreads);
        assert_eq!(seq.f64s("yp"), pthr.f64s("yp"));
        assert_eq!(seq.f64s("vp"), pthr.f64s("vp"));
    }

    #[test]
    fn finder_reports_the_conversion_map_plus_the_gamma_extra() {
        for v in Version::BOTH {
            let r = BENCH.run_analysis(v);
            let res = find_patterns(&r.ddg.unwrap(), &FinderConfig::default());
            let eval = crate::ground_truth::evaluate("rgbyuv", v, &res);
            assert!(eval.perfect(), "{}: {:?}", v.name(), eval.hits);
            // The gamma pass is an additional true map (accuracy study).
            assert_eq!(eval.extras.len(), 1, "{}", v.name());
            assert_eq!(eval.extras[0].pattern.kind, PatternKind::Map);
            let m = res.reported().next().unwrap();
            assert_eq!(m.pattern.components, 16);
            assert_eq!(m.iteration, 1);
        }
    }
}
