//! `rotate` — image rotation by an arbitrary angle within the same frame.
//!
//! Forward mapping: every input pixel is transformed; pixels whose target
//! falls outside the frame are dropped, making the pixel loop the paper's
//! *conditional map* (Table 3: cm). The rotation math itself (float ops on
//! the trig coefficients) stays in the DDG; the integer target-coordinate
//! conversion feeds only subscripts and branch tests and is stripped by
//! simplification, exactly as the paper's address-calculation rule
//! prescribes.

use super::{gen_f64, Benchmark};
use trace::{RunConfig, RunResult};

const KERNEL: &str = r#"
float src[16];
float srcb[16];
float bright[2];
float dst[16];
float trig[2];
int cfg[3];

void brighten_range(int from, int to) {
    int i;
    for (i = from; i < to; i++) {
        srcb[i] = src[i] * bright[0] + bright[1];
    }
}

void rotate_range(int from, int to) {
    int w = cfg[0];
    int h = cfg[1];
    int i;
    for (i = from; i < to; i++) {
        int x = i % w;
        int y = i / w;
        float fx = (float)x - (float)w / 2.0;
        float fy = (float)y - (float)h / 2.0;
        float rx = fx * trig[0] - fy * trig[1];
        float ry = fx * trig[1] + fy * trig[0];
        int tx = (int)(rx + (float)w / 2.0 + 0.5);
        int ty = (int)(ry + (float)h / 2.0 + 0.5);
        float v = srcb[i] * 0.9 + 0.05;
        if (tx >= 0) {
            if (tx < w) {
                if (ty >= 0) {
                    if (ty < h) {
                        dst[ty * w + tx] = v;
                    }
                }
            }
        }
    }
}
"#;

const SEQ_MAIN: &str = r#"
void main() {
    brighten_range(0, cfg[0] * cfg[1]);
    rotate_range(0, cfg[0] * cfg[1]);
    output(dst);
}
"#;

const PTHR_MAIN: &str = r#"
int handles[64];

void worker(int pid, int nproc) {
    int npix = cfg[0] * cfg[1];
    int chunk = npix / nproc;
    int from = pid * chunk;
    brighten_range(from, from + chunk);
    rotate_range(from, from + chunk);
}

void main() {
    int nproc = cfg[2];
    int t;
    for (t = 0; t < nproc; t++) {
        int h;
        h = spawn worker(t, nproc);
        handles[t] = h;
    }
    for (t = 0; t < nproc; t++) {
        join(handles[t]);
    }
    output(dst);
}
"#;

/// Rotation angle: ~23°, enough to push frame corners out of bounds.
pub const ANGLE: f64 = 0.4;

fn input(w: usize, h: usize, nproc: i64) -> RunConfig {
    RunConfig::default()
        .with_f64("src", &gen_f64(31, w * h))
        .with_len("srcb", w * h)
        .with_f64("bright", &[1.0, 0.0])
        .with_len("dst", w * h)
        .with_f64("trig", &[ANGLE.cos(), ANGLE.sin()])
        .with_i64("cfg", &[w as i64, h as i64, nproc])
}

/// Rust oracle of the same forward mapping.
pub(crate) fn oracle(src: &[f64], w: i64, h: i64, cos_t: f64, sin_t: f64) -> Vec<f64> {
    let mut dst = vec![0.0; (w * h) as usize];
    for i in 0..w * h {
        let x = i % w;
        let y = i / w;
        let fx = x as f64 - w as f64 / 2.0;
        let fy = y as f64 - h as f64 / 2.0;
        let rx = fx * cos_t - fy * sin_t;
        let ry = fx * sin_t + fy * cos_t;
        let tx = (rx + w as f64 / 2.0 + 0.5) as i64;
        let ty = (ry + h as f64 / 2.0 + 0.5) as i64;
        if tx >= 0 && tx < w && ty >= 0 && ty < h {
            dst[(ty * w + tx) as usize] = src[i as usize] * 0.9 + 0.05;
        }
    }
    dst
}

fn verify(r: &RunResult) -> Result<(), String> {
    let src = r.f64s("src");
    let cfg = r.i64s("cfg");
    let expected = oracle(&src, cfg[0], cfg[1], ANGLE.cos(), ANGLE.sin());
    let dst = r.f64s("dst");
    if dst.iter().zip(&expected).any(|(a, b)| (a - b).abs() > 1e-9) {
        return Err("rotated image mismatch".into());
    }
    // The conditional map needs both productive and dropped pixels.
    let written = expected.iter().filter(|&&v| v != 0.0).count();
    if written == 0 || written == expected.len() {
        return Err(format!("degenerate rotation: {written} written"));
    }
    Ok(())
}

pub static BENCH: Benchmark = Benchmark {
    name: "rotate",
    seq_files: &[("rotate.mc", KERNEL), ("main_seq.mc", SEQ_MAIN)],
    pthr_files: &[("rotate.mc", KERNEL), ("main_pthr.mc", PTHR_MAIN)],
    // Paper Table 2: 4×4 pixels for analysis.
    analysis_input: || input(4, 4, 2),
    scaled_input: |f| {
        // Grow the frame, keeping it square-ish.
        let side = 4 * (f as f64).sqrt().ceil() as usize;
        input(side, side, 2)
    },
    scaled_input_nproc: |f, np| {
        let side = 4 * (f as f64).sqrt().ceil() as usize;
        input(side, side, np as i64)
    },
    verify,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::Version;
    use discovery::{find_patterns, FinderConfig, PatternKind};

    #[test]
    fn versions_agree() {
        let seq = BENCH.run_analysis(Version::Seq);
        let pthr = BENCH.run_analysis(Version::Pthreads);
        assert_eq!(seq.f64s("dst"), pthr.f64s("dst"));
    }

    #[test]
    fn finder_reports_one_conditional_map() {
        for v in Version::BOTH {
            let r = BENCH.run_analysis(v);
            let res = find_patterns(&r.ddg.unwrap(), &FinderConfig::default());
            let eval = crate::ground_truth::evaluate("rotate", v, &res);
            assert!(eval.perfect(), "{}: {:?}", v.name(), eval.hits);
            // The brightness pre-pass is an additional true map, and its
            // composition with the rotation is an additional (conditional)
            // fused map.
            let kinds: Vec<_> = eval.extras.iter().map(|f| f.pattern.kind).collect();
            assert!(kinds.contains(&PatternKind::Map), "{}: {kinds:?}", v.name());
            assert!(
                kinds.contains(&PatternKind::FusedMap),
                "{}: {kinds:?}",
                v.name()
            );
        }
    }
}
