//! `kmeans` — k-means clustering (one assignment + update round).
//!
//! The assignment loop computes each point's nearest cluster. The index is
//! produced by an if-converted `select` chain and consumed *only* by the
//! subscript arithmetic of the update phase, so simplification strips it —
//! removing the candidate map's outgoing arcs and reproducing the paper's
//! two missed kmeans maps (Table 3, footnote 1) and, with them, the missed
//! encompassing map-reductions (footnote 2). The center-accumulation
//! chains are the reductions the paper *does* find: linear in the
//! sequential version, tiled (per-thread partials merged by thread 0) in
//! the Pthreads version.

use super::{gen_f64, Benchmark};
use trace::{RunConfig, RunResult};

/// Shared distance + assignment kernel. `select` if-conversion keeps the
/// index in dataflow (so its address-only consumption is visible), while
/// the running minimum uses a plain conditional transfer.
const KERNEL: &str = r#"
float pts[16];
float ptsn[16];
float scale[1];
float cent[4];
float newc[4];
int cfg[4];

void normalize_range(int from, int to) {
    int i;
    for (i = from; i < to; i++) {
        ptsn[i] = pts[i] * scale[0];
    }
}

int assign_point(int i) {
    int dim = cfg[1];
    int k = cfg[2];
    float mind = 1000000.0;
    int bestc = 0;
    int c;
    for (c = 0; c < k; c++) {
        float d = 0.0;
        int j;
        for (j = 0; j < dim; j++) {
            float t = ptsn[i * dim + j] - cent[c * dim + j];
            d = d + t * t;
        }
        bool closer = d < mind;
        bestc = select(closer, c, bestc);
        if (closer) {
            mind = d;
        }
    }
    return bestc;
}
"#;

const SEQ_MAIN: &str = r#"
void main() {
    int n = cfg[0];
    int dim = cfg[1];
    normalize_range(0, n * dim);
    int i;
    for (i = 0; i < n; i++) {
        int bc = assign_point(i);
        int j;
        for (j = 0; j < dim; j++) {
            newc[bc * dim + j] = newc[bc * dim + j] + ptsn[i * dim + j];
        }
    }
    output(newc);
}
"#;

const PTHR_MAIN: &str = r#"
float partc[16];
int handles[64];
barrier bar;

void worker(int pid, int nproc) {
    int n = cfg[0];
    int dim = cfg[1];
    int k = cfg[2];
    int chunk = n / nproc;
    int from = pid * chunk;
    int to = from + chunk;
    normalize_range(from * dim, to * dim);
    barrier_wait(bar);
    int i;
    for (i = from; i < to; i++) {
        int bc = assign_point(i);
        int j;
        for (j = 0; j < dim; j++) {
            partc[pid * k * dim + bc * dim + j] =
                partc[pid * k * dim + bc * dim + j] + ptsn[i * dim + j];
        }
    }
    barrier_wait(bar);
    if (pid == 0) {
        int cell;
        for (cell = 0; cell < k * dim; cell++) {
            int t;
            for (t = 0; t < nproc; t++) {
                newc[cell] = newc[cell] + partc[t * k * dim + cell];
            }
        }
    }
}

void main() {
    int nproc = cfg[3];
    int t;
    for (t = 0; t < nproc; t++) {
        int h;
        h = spawn worker(t, nproc);
        handles[t] = h;
    }
    for (t = 0; t < nproc; t++) {
        join(handles[t]);
    }
    output(newc);
}
"#;

/// Points clustered around `k` centers so that every (thread, cluster)
/// pair receives at least one point — the tiled reduction needs one
/// partial chain per thread and cluster.
pub(crate) fn points(n: usize, dim: usize, k: usize) -> Vec<f64> {
    let noise = gen_f64(41, n * dim);
    let mut pts = Vec::with_capacity(n * dim);
    for i in 0..n {
        let cluster = i % k; // alternating: every chunk covers every cluster
        for j in 0..dim {
            pts.push(cluster as f64 * 10.0 + noise[i * dim + j]);
        }
    }
    pts
}

pub(crate) fn centers(dim: usize, k: usize) -> Vec<f64> {
    let mut cent = Vec::with_capacity(k * dim);
    for c in 0..k {
        for _ in 0..dim {
            cent.push(c as f64 * 10.0 + 0.5);
        }
    }
    cent
}

fn input(n: usize, dim: usize, k: usize, nproc: i64) -> RunConfig {
    RunConfig::default()
        .with_f64("pts", &points(n, dim, k))
        .with_len("ptsn", n * dim)
        .with_f64("scale", &[1.0])
        .with_f64("cent", &centers(dim, k))
        .with_len("newc", k * dim)
        .with_len("partc", (nproc as usize) * k * dim)
        .with_i64("cfg", &[n as i64, dim as i64, k as i64, nproc])
        .with_barrier_participants(nproc as usize)
}

/// Rust oracle: assignment plus center accumulation.
pub(crate) fn oracle(pts: &[f64], cent: &[f64], dim: usize, k: usize) -> Vec<f64> {
    let n = pts.len() / dim;
    let mut newc = vec![0.0; k * dim];
    for i in 0..n {
        let mut mind = 1_000_000.0;
        let mut best = 0;
        for c in 0..k {
            let d: f64 = (0..dim)
                .map(|j| {
                    let t = pts[i * dim + j] - cent[c * dim + j];
                    t * t
                })
                .sum();
            if d < mind {
                mind = d;
                best = c;
            }
        }
        for j in 0..dim {
            newc[best * dim + j] += pts[i * dim + j];
        }
    }
    newc
}

fn verify(r: &RunResult) -> Result<(), String> {
    let cfg = r.i64s("cfg");
    let (dim, k) = (cfg[1] as usize, cfg[2] as usize);
    let expected = oracle(&r.f64s("pts"), &r.f64s("cent"), dim, k);
    let got = r.f64s("newc");
    for (i, (a, b)) in got.iter().zip(&expected).enumerate() {
        if (a - b).abs() > 1e-9 {
            return Err(format!("center cell {i}: got {a}, expected {b}"));
        }
    }
    Ok(())
}

pub static BENCH: Benchmark = Benchmark {
    name: "kmeans",
    seq_files: &[("kmeans.mc", KERNEL), ("main_seq.mc", SEQ_MAIN)],
    pthr_files: &[("kmeans.mc", KERNEL), ("main_pthr.mc", PTHR_MAIN)],
    // Paper Table 2: 8 points, 2 dims, 2 clusters.
    analysis_input: || input(8, 2, 2, 2),
    scaled_input: |f| input(8 * f, 2, 2, 2),
    scaled_input_nproc: |f, np| input(8 * f, 2, 2, np as i64),
    verify,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::Version;
    use discovery::{find_patterns, FinderConfig, PatternKind};

    #[test]
    fn versions_agree() {
        let seq = BENCH.run_analysis(Version::Seq);
        let pthr = BENCH.run_analysis(Version::Pthreads);
        for (a, b) in seq.f64s("newc").iter().zip(pthr.f64s("newc")) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn reductions_found_maps_missed() {
        for v in Version::BOTH {
            let r = BENCH.run_analysis(v);
            let res = find_patterns(&r.ddg.unwrap(), &FinderConfig::default());
            let kinds: Vec<_> = res.found.iter().map(|f| f.pattern.kind).collect();
            // The center accumulations are found (linear for seq, tiled for
            // pthreads) — the paper's found `r`.
            let expected_red = match v {
                Version::Seq => PatternKind::LinearReduction,
                Version::Pthreads => PatternKind::TiledReduction,
            };
            assert!(kinds.contains(&expected_red), "{}: {kinds:?}", v.name());
            // The assignment map is missed: the cluster index feeds only
            // subscript arithmetic, so after simplification the assignment
            // components have no outputs. Any map that *is* found (the
            // Pthreads merge loop over center cells) involves only the
            // accumulation adds — never the distance computation.
            for f in &res.found {
                if f.pattern.kind.is_map() {
                    assert!(
                        !f.pattern.op_labels.iter().any(|l| l == "fsub"),
                        "{}: an assignment-phase map leaked: {}",
                        v.name(),
                        f.pattern.describe()
                    );
                }
            }
            // With the map missed, the encompassing map-reduction is too.
            assert!(
                !kinds.contains(&PatternKind::LinearMapReduction)
                    && !kinds.contains(&PatternKind::TiledMapReduction),
                "{}: {kinds:?}",
                v.name()
            );
        }
    }
}
