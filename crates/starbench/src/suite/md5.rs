//! `md5` — digest of independent buffers.
//!
//! Starbench's md5 hashes many buffers; buffers are independent, so the
//! buffer loop is the expected map (paper Table 3: m). The per-buffer
//! digest chain is an ad-hoc mixing function with the structure of an md5
//! round (add, xor, rotate-by-or-of-shifts), kept deliberately
//! multi-operator so its chains never masquerade as reductions.

use super::{gen_i64, Benchmark};
use trace::{RunConfig, RunResult};

const KERNEL: &str = r#"
int buf[16];
int digest[4];
int cfg[3];

int mix(int h, int w, int k) {
    int a = h + w;
    int b = a ^ k;
    int c = ((b << 3) | (b >> 29)) & 1073741823;
    return c;
}

void hash_range(int from, int to) {
    int nb = cfg[1];
    int i;
    for (i = from; i < to; i++) {
        int h = 1732584193;
        int j;
        for (j = 0; j < nb; j++) {
            h = mix(h, buf[i * nb + j], j * 7 + 3);
        }
        digest[i] = h;
    }
}
"#;

const SEQ_MAIN: &str = r#"
void main() {
    hash_range(0, cfg[0]);
    output(digest);
}
"#;

const PTHR_MAIN: &str = r#"
int handles[64];

void worker(int pid, int nproc) {
    int chunk = cfg[0] / nproc;
    int from = pid * chunk;
    hash_range(from, from + chunk);
}

void main() {
    int nproc = cfg[2];
    int t;
    for (t = 0; t < nproc; t++) {
        int h;
        h = spawn worker(t, nproc);
        handles[t] = h;
    }
    for (t = 0; t < nproc; t++) {
        join(handles[t]);
    }
    output(digest);
}
"#;

fn input(nbuf: usize, buflen: usize, nproc: i64) -> RunConfig {
    RunConfig::default()
        .with_i64("buf", &gen_i64(21, nbuf * buflen, 256))
        .with_len("digest", nbuf)
        .with_i64("cfg", &[nbuf as i64, buflen as i64, nproc])
}

/// The Rust oracle of the same mixing function.
fn mix(h: i64, w: i64, k: i64) -> i64 {
    let a = h.wrapping_add(w);
    let b = a ^ k;
    ((b.wrapping_shl(3)) | ((b as u64 >> 29) as i64)) & 1073741823
}

fn verify(r: &RunResult) -> Result<(), String> {
    let buf = r.i64s("buf");
    let digest = r.i64s("digest");
    let nb = buf.len() / digest.len();
    for (i, &d) in digest.iter().enumerate() {
        let mut h = 1732584193i64;
        for j in 0..nb {
            h = mix(h, buf[i * nb + j], (j as i64) * 7 + 3);
        }
        if h != d {
            return Err(format!("buffer {i}: expected {h}, got {d}"));
        }
    }
    Ok(())
}

pub static BENCH: Benchmark = Benchmark {
    name: "md5",
    seq_files: &[("md5.mc", KERNEL), ("main_seq.mc", SEQ_MAIN)],
    pthr_files: &[("md5.mc", KERNEL), ("main_pthr.mc", PTHR_MAIN)],
    // Paper Table 2: 4 buffers, 2×2 B each.
    analysis_input: || input(4, 4, 2),
    scaled_input: |f| input(4 * f, 4, 2),
    scaled_input_nproc: |f, np| input(4 * f, 4, np as i64),
    verify,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::Version;
    use discovery::{find_patterns, FinderConfig, PatternKind};

    #[test]
    fn versions_agree_on_digests() {
        let seq = BENCH.run_analysis(Version::Seq);
        let pthr = BENCH.run_analysis(Version::Pthreads);
        assert_eq!(seq.i64s("digest"), pthr.i64s("digest"));
    }

    #[test]
    fn finder_reports_one_map_over_buffers() {
        for v in Version::BOTH {
            let r = BENCH.run_analysis(v);
            let res = find_patterns(&r.ddg.unwrap(), &FinderConfig::default());
            let kinds: Vec<_> = res.reported().map(|f| f.pattern.kind).collect();
            assert_eq!(kinds, vec![PatternKind::Map], "{}: {kinds:?}", v.name());
            assert_eq!(res.reported().next().unwrap().pattern.components, 4);
        }
    }

    #[test]
    fn no_spurious_reductions_from_the_mixing_chain() {
        let r = BENCH.run_analysis(Version::Seq);
        let res = find_patterns(&r.ddg.unwrap(), &FinderConfig::default());
        assert!(
            res.found.iter().all(|f| !f.pattern.kind.is_reduction()),
            "mixing chains must not look like reductions"
        );
    }
}
