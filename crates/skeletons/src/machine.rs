//! Machine descriptions: the paper's two evaluation platforms.
//!
//! Absolute hardware numbers are stand-ins (we have neither machine nor a
//! GPU); what matters for reproducing Fig. 8 is the *relative* capability
//! of each platform's CPU and GPU, which these specs encode: a 12-core
//! server CPU next to a display-class GPU, versus a 4-core desktop CPU
//! next to a flagship compute GPU.

/// A multicore CPU.
#[derive(Clone, Copy, Debug)]
pub struct CpuSpec {
    pub name: &'static str,
    pub cores: usize,
    /// Per-core throughput in GFLOP/s (clock × typical IPC × SIMD width
    /// for this workload class).
    pub core_gflops: f64,
    /// Fraction of linear scaling retained at full core count (barrier
    /// and memory contention).
    pub parallel_efficiency: f64,
}

/// A discrete GPU.
#[derive(Clone, Copy, Debug)]
pub struct GpuSpec {
    pub name: &'static str,
    /// Aggregate throughput in GFLOP/s at perfect utilization.
    pub gflops: f64,
    /// Host↔device bandwidth in GB/s (PCIe).
    pub transfer_gbps: f64,
    /// Per-kernel launch overhead in microseconds.
    pub launch_us: f64,
    /// Utilization a well-tuned portable kernel achieves on this device.
    pub portable_utilization: f64,
}

/// A platform: one CPU and at most one GPU.
#[derive(Clone, Copy, Debug)]
pub struct Machine {
    pub name: &'static str,
    pub cpu: CpuSpec,
    pub gpu: Option<GpuSpec>,
}

impl Machine {
    /// The paper's CPU-centric platform: 12-core Xeon E5-2680 v3 with a
    /// low-end NVIDIA NVS 310.
    pub fn cpu_centric() -> Machine {
        Machine {
            name: "CPU-centric (12-core Xeon E5-2680v3 + NVS 310)",
            cpu: CpuSpec {
                name: "Xeon E5-2680 v3",
                cores: 12,
                core_gflops: 9.9,
                parallel_efficiency: 0.86,
            },
            gpu: Some(GpuSpec {
                name: "NVS 310",
                gflops: 400.0,
                transfer_gbps: 4.8,
                launch_us: 8.0,
                portable_utilization: 0.55,
            }),
        }
    }

    /// The paper's GPU-centric platform: 4-core i7-4770 with a high-end
    /// NVIDIA GeForce GTX Titan.
    pub fn gpu_centric() -> Machine {
        Machine {
            name: "GPU-centric (4-core i7-4770 + GTX Titan)",
            cpu: CpuSpec {
                name: "Core i7-4770",
                cores: 4,
                core_gflops: 13.4,
                parallel_efficiency: 0.79,
            },
            gpu: Some(GpuSpec {
                name: "GTX Titan",
                gflops: 4960.0,
                transfer_gbps: 11.4,
                launch_us: 8.0,
                portable_utilization: 0.43,
            }),
        }
    }

    /// Effective parallel CPU throughput (GFLOP/s) at full core count.
    pub fn cpu_parallel_gflops(&self) -> f64 {
        self.cpu.core_gflops * self.cpu.cores as f64 * self.cpu.parallel_efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_contrast_matches_the_paper() {
        let c = Machine::cpu_centric();
        let g = Machine::gpu_centric();
        assert!(c.cpu.cores > g.cpu.cores, "CPU-centric has more cores");
        let (cg, gg) = (c.gpu.unwrap(), g.gpu.unwrap());
        assert!(
            gg.gflops * gg.portable_utilization > 8.0 * cg.gflops * cg.portable_utilization,
            "GPU-centric GPU sustains roughly an order more throughput"
        );
        // The GPU-centric platform's device out-muscles its 4 cores by a
        // wide margin; the CPU-centric platform's 12 cores are within
        // reach of its display GPU's compute (transfers settle the race —
        // see the hybrid dispatcher tests).
        assert!(g.cpu_parallel_gflops() * 10.0 < gg.gflops * gg.portable_utilization);
        assert!(c.cpu_parallel_gflops() * 4.0 > cg.gflops * cg.portable_utilization);
    }
}
