//! Hybrid backend selection.
//!
//! SkePU's hybrid execution support (Öhberg et al. 2019) dispatches each
//! skeleton call to the backend the cost model predicts fastest — that is
//! what lets one modernized source exploit whichever resource a platform
//! is rich in. This module exposes the same decision for both the model
//! (Fig. 8) and real execution plans.

use crate::machine::Machine;
use crate::model::KernelProfile;
use crate::plan::ExecPlan;

/// The backend the dispatcher would choose on `machine` for `profile`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Chosen {
    Cpu,
    Gpu,
}

/// Picks the backend with the lower predicted time.
pub fn choose_backend(machine: &Machine, profile: &KernelProfile) -> Chosen {
    let cpu = profile.parallel_flops / (machine.cpu_parallel_gflops() * 1e9);
    let gpu = machine
        .gpu
        .map(|g| {
            profile.kernel_launches * g.launch_us * 1e-6
                + profile.transfer_bytes / (g.transfer_gbps * 1e9)
                + profile.parallel_flops / (g.gflops * g.portable_utilization * 1e9)
        })
        .unwrap_or(f64::INFINITY);
    if cpu <= gpu {
        Chosen::Cpu
    } else {
        Chosen::Gpu
    }
}

/// Translates the decision into a runnable [`ExecPlan`] on the host:
/// CPU → real threads (the machine's core count), GPU → the simulated
/// device backend.
pub fn plan_for(machine: &Machine, profile: &KernelProfile) -> ExecPlan {
    match choose_backend(machine, profile) {
        Chosen::Cpu => ExecPlan::CpuThreads(machine.cpu.cores),
        Chosen::Gpu => ExecPlan::SimGpu,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_follows_the_platform() {
        let p = KernelProfile::streamcluster_reference();
        assert_eq!(
            choose_backend(&Machine::cpu_centric(), &p),
            Chosen::Cpu,
            "a 12-core CPU beats a display GPU"
        );
        assert_eq!(
            choose_backend(&Machine::gpu_centric(), &p),
            Chosen::Gpu,
            "a Titan beats 4 cores"
        );
    }

    #[test]
    fn no_gpu_means_cpu() {
        let mut m = Machine::gpu_centric();
        m.gpu = None;
        assert_eq!(
            choose_backend(&m, &KernelProfile::streamcluster_reference()),
            Chosen::Cpu
        );
        assert_eq!(
            plan_for(&m, &KernelProfile::streamcluster_reference()),
            ExecPlan::CpuThreads(4)
        );
    }

    #[test]
    fn tiny_kernels_stay_on_cpu() {
        // Launch + transfer overheads dominate small work: the dispatcher
        // must keep it on the CPU even next to a big GPU.
        let p = KernelProfile {
            parallel_flops: 1e6,
            serial_flops: 0.0,
            transfer_bytes: 1e6,
            kernel_launches: 10.0,
        };
        assert_eq!(choose_backend(&Machine::gpu_centric(), &p), Chosen::Cpu);
    }
}
