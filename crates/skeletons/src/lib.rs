//! `skeletons` — a SkePU-2-style parallel pattern library (Ernstsson,
//! Li & Kessler 2018), the modernization target of the analysis.
//!
//! The paper's §6.3 portability study replaces streamcluster's ad-hoc
//! Pthreads code with SkePU `Map`/`MapReduce` calls and shows the same
//! source running competitively on a CPU-centric and a GPU-centric
//! machine. This crate provides:
//!
//! * **skeletons** ([`map`], [`reduce`], [`map_reduce`]) with pluggable
//!   execution plans — [`ExecPlan::Sequential`], a real multi-threaded
//!   [`ExecPlan::CpuThreads`] backend (crossbeam scoped threads over
//!   chunked slices), and a deterministic [`ExecPlan::SimGpu`] backend
//!   that *executes* on the host but *accounts* like a GPU;
//! * a **machine model** ([`machine`]) describing the paper's two
//!   evaluation platforms (12-core Xeon + NVS 310 vs. 4-core i7 + GTX
//!   Titan), and a **cost model** ([`model`]) that predicts kernel
//!   runtimes from a work profile — the substitute for hardware we do not
//!   have, calibrated so the paper's Fig. 8 speedup *shape* reproduces;
//! * a **hybrid dispatcher** ([`hybrid`]) that picks the backend with the
//!   lowest predicted cost, which is how the modernized code "seamlessly
//!   capitalizes on the strengths of different hardware".

pub mod hybrid;
pub mod machine;
pub mod model;
pub mod plan;
pub mod skeleton;

pub use hybrid::choose_backend;
pub use machine::{CpuSpec, GpuSpec, Machine};
pub use model::{estimate, KernelProfile};
pub use plan::ExecPlan;
pub use skeleton::{map, map_reduce, reduce};
