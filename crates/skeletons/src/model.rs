//! The performance model behind the portability study (paper §6.3).
//!
//! We have neither of the paper's machines nor any GPU, so Fig. 8 is
//! reproduced through a calibrated analytical model — the standard
//! latency/throughput decomposition used by offload cost models:
//!
//! * serial work runs on one CPU core;
//! * CPU-parallel work scales by core count × parallel efficiency;
//! * device work costs kernel launches + host↔device transfers + compute
//!   at the device's sustained (utilization-scaled) throughput.
//!
//! Three implementations are modeled, mirroring the paper's bars: the
//! **legacy Pthreads** code (CPU only), the **modernized** skeleton code
//! (hybrid: picks the cheaper backend, paying a small dispatch overhead),
//! and **Rodinia's CUDA** port (GPU only, with a tuning penalty on
//! devices it was not written for — the paper attributes its gap to
//! GTX-280-specific optimizations).

use crate::machine::Machine;

/// Work profile of a whole application run (reference input).
#[derive(Clone, Copy, Debug)]
pub struct KernelProfile {
    /// Floating-point work that parallelizes (map/reduce phases).
    pub parallel_flops: f64,
    /// Inherently serial work (stream management, bookkeeping).
    pub serial_flops: f64,
    /// Bytes that must cross the host↔device boundary when offloading.
    pub transfer_bytes: f64,
    /// Device kernel launches over the run.
    pub kernel_launches: f64,
}

impl KernelProfile {
    /// streamcluster on its reference input (200 000 points × 128 dims,
    /// 20 centers): dominated by distance evaluations over many
    /// clustering passes, with point/weight tables shipped to the device
    /// a bounded number of times.
    pub fn streamcluster_reference() -> KernelProfile {
        KernelProfile {
            parallel_flops: 2.5e10,
            serial_flops: 7.0e7,
            transfer_bytes: 1.36e9,
            kernel_launches: 2500.0,
        }
    }
}

/// The compared implementations (the bars of Fig. 8).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Impl {
    /// Hand-written Pthreads (Starbench): all cores, no device.
    LegacyPthreads,
    /// Skeleton-based port of the found patterns: hybrid backend choice
    /// plus a small dispatch overhead.
    Modernized,
    /// Rodinia's CUDA version: device only, tuned for another GPU.
    RodiniaCuda,
}

impl Impl {
    pub fn label(&self) -> &'static str {
        match self {
            Impl::LegacyPthreads => "Starbench legacy (Pthreads)",
            Impl::Modernized => "Starbench modernized (skeletons)",
            Impl::RodiniaCuda => "Rodinia (CUDA)",
        }
    }
}

/// Relative dispatch/abstraction overhead of the skeleton runtime on its
/// parallel phases (SkePU's measured overhead is a few percent).
const MODERN_OVERHEAD: f64 = 1.042;
/// Utilization retained by Rodinia's kernels on GPUs they were not tuned
/// for (block sizes and occupancy chosen for the GTX 280).
const RODINIA_UTILIZATION_FACTOR: f64 = 0.36;
/// Rodinia's extra transfer traffic (per-iteration copies, no pinned
/// staging).
const RODINIA_TRANSFER_FACTOR: f64 = 2.5;

/// Time of the serial portion on one core of `m`, in seconds.
fn serial_time(m: &Machine, p: &KernelProfile) -> f64 {
    p.serial_flops / (m.cpu.core_gflops * 1e9)
}

/// CPU-parallel time of the parallel portion, in seconds.
fn cpu_parallel_time(m: &Machine, p: &KernelProfile) -> f64 {
    p.parallel_flops / (m.cpu_parallel_gflops() * 1e9)
}

/// Device time of the parallel portion (launches + transfers + compute),
/// or `None` when the machine has no GPU.
fn gpu_time(m: &Machine, p: &KernelProfile, util_factor: f64, transfer_factor: f64) -> Option<f64> {
    let gpu = m.gpu?;
    let launch = p.kernel_launches * gpu.launch_us * 1e-6;
    let transfer = p.transfer_bytes * transfer_factor / (gpu.transfer_gbps * 1e9);
    let compute = p.parallel_flops / (gpu.gflops * gpu.portable_utilization * util_factor * 1e9);
    Some(launch + transfer + compute)
}

/// Predicted wall-clock of `imp` on `m`, in seconds.
pub fn estimate(imp: Impl, m: &Machine, p: &KernelProfile) -> f64 {
    let serial = serial_time(m, p);
    match imp {
        Impl::LegacyPthreads => serial + cpu_parallel_time(m, p),
        Impl::Modernized => {
            let cpu = cpu_parallel_time(m, p);
            let gpu = gpu_time(m, p, 1.0, 1.0).unwrap_or(f64::INFINITY);
            serial + cpu.min(gpu) * MODERN_OVERHEAD
        }
        Impl::RodiniaCuda => {
            let gpu = gpu_time(m, p, RODINIA_UTILIZATION_FACTOR, RODINIA_TRANSFER_FACTOR)
                .expect("Rodinia requires a GPU");
            serial + gpu
        }
    }
}

/// Sequential reference time: the parallel work on one core of the
/// *baseline* machine (Fig. 8's baseline is sequential execution on the
/// CPU-centric architecture).
pub fn sequential_baseline(baseline: &Machine, p: &KernelProfile) -> f64 {
    serial_time(baseline, p) + p.parallel_flops / (baseline.cpu.core_gflops * 1e9)
}

/// Fig. 8's y-axis: speedup of `imp` on `m` over the sequential baseline.
pub fn speedup(imp: Impl, m: &Machine, baseline: &Machine, p: &KernelProfile) -> f64 {
    sequential_baseline(baseline, p) / estimate(imp, m, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_speedups() -> Vec<(Impl, &'static str, f64)> {
        let baseline = Machine::cpu_centric();
        let p = KernelProfile::streamcluster_reference();
        let mut out = Vec::new();
        for (m, tag) in [
            (Machine::cpu_centric(), "cpu"),
            (Machine::gpu_centric(), "gpu"),
        ] {
            for imp in [Impl::LegacyPthreads, Impl::Modernized, Impl::RodiniaCuda] {
                out.push((imp, tag, speedup(imp, &m, &baseline, &p)));
            }
        }
        out
    }

    fn get(v: &[(Impl, &str, f64)], imp: Impl, tag: &str) -> f64 {
        v.iter().find(|(i, t, _)| *i == imp && *t == tag).unwrap().2
    }

    /// The paper's Fig. 8 numbers, as (target, tolerance) checks on the
    /// calibrated model: legacy 10×/4.3×, modernized 9.6×/15.6×,
    /// Rodinia 2.4×/7.1×.
    #[test]
    fn figure8_values_reproduce_within_tolerance() {
        let v = all_speedups();
        let checks = [
            (Impl::LegacyPthreads, "cpu", 10.0),
            (Impl::Modernized, "cpu", 9.6),
            (Impl::RodiniaCuda, "cpu", 2.4),
            (Impl::LegacyPthreads, "gpu", 4.3),
            (Impl::Modernized, "gpu", 15.6),
            (Impl::RodiniaCuda, "gpu", 7.1),
        ];
        for (imp, tag, target) in checks {
            let got = get(&v, imp, tag);
            let rel = (got - target).abs() / target;
            assert!(
                rel < 0.15,
                "{} on {tag}-centric: modeled {got:.2}, paper {target} (off {:.0}%)",
                imp.label(),
                rel * 100.0
            );
        }
    }

    /// The qualitative claims of §6.3, independent of calibration.
    #[test]
    fn figure8_shape_holds() {
        let v = all_speedups();
        // CPU-centric: modernized ≈ legacy (within 10%), Rodinia far behind.
        let (l, m, r) = (
            get(&v, Impl::LegacyPthreads, "cpu"),
            get(&v, Impl::Modernized, "cpu"),
            get(&v, Impl::RodiniaCuda, "cpu"),
        );
        assert!(
            (l - m).abs() / l < 0.10,
            "modernized competitive on CPU: {l:.1} vs {m:.1}"
        );
        assert!(r < 0.5 * m, "weak GPU cannot compete: {r:.1}");
        // GPU-centric: modernized best, legacy worst of the GPU users.
        let (l2, m2, r2) = (
            get(&v, Impl::LegacyPthreads, "gpu"),
            get(&v, Impl::Modernized, "gpu"),
            get(&v, Impl::RodiniaCuda, "gpu"),
        );
        assert!(
            m2 > r2 && r2 > l2,
            "modernized > rodinia > legacy: {m2:.1} {r2:.1} {l2:.1}"
        );
        // The headline: the modernized code on the GPU-centric machine
        // beats the legacy code on the 12-core machine by >50%.
        assert!(
            m2 > 1.5 * l,
            "56% faster than legacy-on-12-cores: {m2:.1} vs {l:.1}"
        );
    }
}
