//! The skeletons: `map`, `reduce`, `map_reduce`.
//!
//! All backends compute bit-identical results for the supported reduction
//! operators when the operator is associative *and* the chunking is
//! deterministic — which it is: `CpuThreads` splits the index space into
//! `width` contiguous chunks and folds chunk results in chunk order,
//! mirroring the partial/final structure of the paper's tiled reduction.

use crate::plan::ExecPlan;

/// `out[i] = f(in[i])` under the given plan.
pub fn map<T, U, F>(plan: ExecPlan, input: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send + Sync,
    F: Fn(&T) -> U + Sync,
{
    match plan {
        ExecPlan::Sequential | ExecPlan::SimGpu => input.iter().map(&f).collect(),
        ExecPlan::CpuThreads(n) => {
            let n = n.clamp(1, input.len().max(1));
            let chunk = input.len().div_ceil(n.max(1)).max(1);
            let mut out: Vec<Option<U>> = Vec::with_capacity(input.len());
            out.resize_with(input.len(), || None);
            let out_chunks: Vec<&mut [Option<U>]> = out.chunks_mut(chunk).collect();
            crossbeam::scope(|s| {
                for (ci, out_chunk) in out_chunks.into_iter().enumerate() {
                    let f = &f;
                    let in_chunk = &input[ci * chunk..(ci * chunk + out_chunk.len())];
                    s.spawn(move |_| {
                        for (o, x) in out_chunk.iter_mut().zip(in_chunk) {
                            *o = Some(f(x));
                        }
                    });
                }
            })
            .expect("map worker panicked");
            out.into_iter()
                .map(|o| o.expect("chunk fully written"))
                .collect()
        }
    }
}

/// Folds `input` with the associative operator `op` starting from
/// `identity`, under the given plan (tiled: per-chunk partials, then a
/// final fold in chunk order).
pub fn reduce<T, F>(plan: ExecPlan, input: &[T], identity: T, op: F) -> T
where
    T: Clone + Send + Sync,
    F: Fn(T, &T) -> T + Sync,
{
    match plan {
        ExecPlan::Sequential | ExecPlan::SimGpu => input.iter().fold(identity, &op),
        ExecPlan::CpuThreads(n) => {
            let n = n.clamp(1, input.len().max(1));
            let chunk = input.len().div_ceil(n.max(1)).max(1);
            let mut partials: Vec<Option<T>> = Vec::new();
            partials.resize_with(input.len().div_ceil(chunk), || None);
            crossbeam::scope(|s| {
                for (slot, in_chunk) in partials.iter_mut().zip(input.chunks(chunk)) {
                    let op = &op;
                    let id = identity.clone();
                    s.spawn(move |_| {
                        *slot = Some(in_chunk.iter().fold(id, op));
                    });
                }
            })
            .expect("reduce worker panicked");
            partials
                .into_iter()
                .map(|p| p.expect("partial computed"))
                .fold(identity, |acc, p| op(acc, &p))
        }
    }
}

/// Fused `reduce(map(input))` — the pattern the motivating example's hiz
/// computation modernizes into (SkePU's `MapReduce`).
pub fn map_reduce<T, U, M, R>(plan: ExecPlan, input: &[T], m: M, identity: U, r: R) -> U
where
    T: Sync,
    U: Clone + Send + Sync,
    M: Fn(&T) -> U + Sync,
    R: Fn(U, &U) -> U + Sync,
{
    match plan {
        ExecPlan::Sequential | ExecPlan::SimGpu => input.iter().fold(identity, |acc, x| {
            let v = m(x);
            r(acc, &v)
        }),
        ExecPlan::CpuThreads(n) => {
            let n = n.clamp(1, input.len().max(1));
            let chunk = input.len().div_ceil(n.max(1)).max(1);
            let mut partials: Vec<Option<U>> = Vec::new();
            partials.resize_with(input.len().div_ceil(chunk), || None);
            crossbeam::scope(|s| {
                for (slot, in_chunk) in partials.iter_mut().zip(input.chunks(chunk)) {
                    let (m, r) = (&m, &r);
                    let id = identity.clone();
                    s.spawn(move |_| {
                        *slot = Some(in_chunk.iter().fold(id, |acc, x| {
                            let v = m(x);
                            r(acc, &v)
                        }));
                    });
                }
            })
            .expect("map_reduce worker panicked");
            partials
                .into_iter()
                .map(|p| p.expect("partial computed"))
                .fold(identity, |acc, p| r(acc, &p))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PLANS: [ExecPlan; 4] = [
        ExecPlan::Sequential,
        ExecPlan::CpuThreads(3),
        ExecPlan::CpuThreads(16),
        ExecPlan::SimGpu,
    ];

    #[test]
    fn map_matches_sequential_on_every_plan() {
        let input: Vec<i64> = (0..103).collect();
        let expected: Vec<i64> = input.iter().map(|x| x * x + 1).collect();
        for plan in PLANS {
            assert_eq!(map(plan, &input, |x| x * x + 1), expected, "{plan}");
        }
    }

    #[test]
    fn reduce_matches_sequential_on_every_plan() {
        let input: Vec<i64> = (1..=100).collect();
        for plan in PLANS {
            assert_eq!(reduce(plan, &input, 0, |a, b| a + b), 5050, "{plan}");
        }
    }

    #[test]
    fn map_reduce_fuses_correctly() {
        let input: Vec<f64> = (0..57).map(|i| i as f64 * 0.25).collect();
        let expected: f64 = input.iter().map(|x| x * 2.0).sum();
        for plan in PLANS {
            let got = map_reduce(plan, &input, |x| x * 2.0, 0.0, |a, b| a + b);
            assert!((got - expected).abs() < 1e-9, "{plan}: {got} vs {expected}");
        }
    }

    #[test]
    fn deterministic_float_summation_across_widths() {
        // Chunked folding is deterministic per width; widths that produce
        // the same chunking produce bit-identical results.
        let input: Vec<f64> = (0..1000).map(|i| (i as f64).sin()).collect();
        let a = reduce(ExecPlan::CpuThreads(4), &input, 0.0, |x, y| x + y);
        let b = reduce(ExecPlan::CpuThreads(4), &input, 0.0, |x, y| x + y);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<i64> = vec![];
        for plan in PLANS {
            assert_eq!(map(plan, &empty, |x| *x), empty, "{plan}");
            assert_eq!(reduce(plan, &empty, 7, |a, b| a + b), 7, "{plan}");
            assert_eq!(map(plan, &[42i64], |x| x + 1), vec![43], "{plan}");
        }
    }

    #[test]
    fn threads_exceeding_input_are_clamped() {
        let input = vec![1i64, 2, 3];
        assert_eq!(
            map(ExecPlan::CpuThreads(64), &input, |x| x * 10),
            vec![10, 20, 30]
        );
        assert_eq!(reduce(ExecPlan::CpuThreads(64), &input, 0, |a, b| a + b), 6);
    }
}
