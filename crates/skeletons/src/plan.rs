//! Execution plans: where a skeleton call runs.

/// The backend a skeleton executes on. SkePU calls this the execution
/// plan; the modernized code leaves the choice to the hybrid dispatcher.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecPlan {
    /// Single-threaded reference execution.
    Sequential,
    /// Real data parallelism over `n` OS threads (chunked, crossbeam
    /// scoped threads).
    CpuThreads(usize),
    /// The simulated GPU: executes on the host (deterministically equal
    /// results), accounted by the cost model as a device offload.
    SimGpu,
}

impl ExecPlan {
    /// A CPU plan using all available parallelism.
    pub fn cpu_auto() -> ExecPlan {
        ExecPlan::CpuThreads(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Worker count for bookkeeping (1 for sequential and the device).
    pub fn width(&self) -> usize {
        match self {
            ExecPlan::Sequential | ExecPlan::SimGpu => 1,
            ExecPlan::CpuThreads(n) => (*n).max(1),
        }
    }
}

impl std::fmt::Display for ExecPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecPlan::Sequential => write!(f, "sequential"),
            ExecPlan::CpuThreads(n) => write!(f, "cpu[{n}]"),
            ExecPlan::SimGpu => write!(f, "sim-gpu"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(ExecPlan::Sequential.width(), 1);
        assert_eq!(ExecPlan::CpuThreads(8).width(), 8);
        assert_eq!(ExecPlan::CpuThreads(0).width(), 1);
        assert!(ExecPlan::cpu_auto().width() >= 1);
    }

    #[test]
    fn display() {
        assert_eq!(ExecPlan::CpuThreads(4).to_string(), "cpu[4]");
        assert_eq!(ExecPlan::SimGpu.to_string(), "sim-gpu");
    }
}
