//! A work-stealing thread pool, shared by the engine's match scheduler
//! and the parallel tracer's free-run jobs.
//!
//! Hand-rolled on `std::thread` (this build environment vendors no
//! concurrency crates): each worker owns a deque protected by its own
//! mutex; submissions are distributed round-robin; an idle worker first
//! drains its own deque from the front, then the shared injector, then
//! steals from the *back* of a sibling's deque. A single condvar parks
//! idle workers, and a `pending` count under the condvar's mutex decides
//! when to wake and when to sleep, so no job is ever lost between a
//! submit and a park.
//!
//! Jobs must not block on other pool jobs — the engine's coordinators
//! run on their own threads precisely so that waiting for an iteration's
//! outcomes never occupies a worker slot (a coordinator-as-worker design
//! deadlocks once every worker waits on jobs none of them can run).

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

#[cfg(feature = "fault-inject")]
use std::collections::HashSet;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Locks ignoring poisoning. Every structure in this pool (deques, the
/// pending/shutdown state) is only ever mutated through short,
/// panic-free critical sections; a poisoned lock here means a *job*
/// panicked on a worker thread after the guard was taken by someone
/// else's unwinding, and the protected data is still consistent — so
/// recover the guard instead of propagating the poison to every other
/// worker and submitter.
fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Counters exposed by [`WorkPool::metrics`]. Monotonic over the pool's
/// lifetime.
#[derive(Clone, Copy, Debug, Default, serde::Serialize)]
pub struct PoolMetrics {
    /// Jobs that finished executing on a worker (or inline after
    /// shutdown).
    pub jobs_executed: u64,
    /// Jobs a worker took from the back of a sibling's deque.
    pub jobs_stolen: u64,
    /// Highest number of queued-but-unclaimed jobs observed at any
    /// submit.
    pub peak_queue_depth: u64,
    /// Jobs whose panic the pool contained. The worker thread survives;
    /// whatever reply channel the job carried is dropped by unwinding,
    /// which is how the submitter learns the job died.
    pub jobs_panicked: u64,
    /// Dead worker threads replaced by [`WorkPool::respawn_dead`].
    pub workers_respawned: u64,
}

struct State {
    /// Queued jobs not yet claimed by any worker.
    pending: usize,
    shutdown: bool,
}

struct Shared {
    queues: Vec<Mutex<VecDeque<Job>>>,
    injector: Mutex<VecDeque<Job>>,
    state: Mutex<State>,
    wake: Condvar,
    next: AtomicUsize,
    executed: AtomicU64,
    stolen: AtomicU64,
    peak: AtomicU64,
    panicked: AtomicU64,
    respawned: AtomicU64,
    /// Worker slots ordered to abandon their loop at the next safe
    /// point (before reserving a job), simulating an abruptly lost
    /// thread. Only the `fault-inject` harness populates this.
    #[cfg(feature = "fault-inject")]
    exit_requests: Mutex<HashSet<usize>>,
}

impl Shared {
    /// Claims one queued job: own deque front, injector, then steal from
    /// a sibling's back. The caller has already reserved a job via the
    /// `pending` count, so a claim must eventually succeed; the retry
    /// loop only covers the window where a sibling pops a job this
    /// worker was about to take.
    fn claim(&self, me: usize) -> Job {
        loop {
            if let Some(job) = lock_recovering(&self.queues[me]).pop_front() {
                return job;
            }
            if let Some(job) = lock_recovering(&self.injector).pop_front() {
                return job;
            }
            for i in 0..self.queues.len() {
                if i == me {
                    continue;
                }
                if let Some(job) = lock_recovering(&self.queues[i]).pop_back() {
                    self.stolen.fetch_add(1, Ordering::Relaxed);
                    obs::instant_args("pool.steal", || {
                        vec![
                            ("by", obs::ArgValue::U64(me as u64)),
                            ("from", obs::ArgValue::U64(i as u64)),
                        ]
                    });
                    return job;
                }
            }
            std::thread::yield_now();
        }
    }

    /// Runs one job with panic containment: a panicking job is counted
    /// and swallowed so the executing thread (worker or submitter)
    /// survives. The panic payload is dropped — the job's own unwinding
    /// already released whatever reply channel it held, which is the
    /// submitter's signal.
    fn execute(&self, job: Job) {
        let mut span = obs::span("pool.job");
        if std::panic::catch_unwind(AssertUnwindSafe(job)).is_err() {
            self.panicked.fetch_add(1, Ordering::Relaxed);
            span.arg("panicked", obs::ArgValue::U64(1));
        }
        self.executed.fetch_add(1, Ordering::Relaxed);
    }
}

/// The pool. Dropping it shuts the workers down after the queued jobs
/// drain; jobs submitted after shutdown run inline on the submitting
/// thread, so no submitter can deadlock on a dead pool.
pub struct WorkPool {
    shared: Arc<Shared>,
    /// One handle per worker slot; [`WorkPool::respawn_dead`] replaces
    /// finished entries in place, hence the interior mutability.
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkPool {
    /// Spawns `workers` worker threads (at least one).
    pub fn new(workers: usize) -> WorkPool {
        let n = workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            state: Mutex::new(State {
                pending: 0,
                shutdown: false,
            }),
            wake: Condvar::new(),
            next: AtomicUsize::new(0),
            executed: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            respawned: AtomicU64::new(0),
            #[cfg(feature = "fault-inject")]
            exit_requests: Mutex::new(HashSet::new()),
        });
        let handles = (0..n).map(|me| spawn_worker(&shared, me)).collect();
        WorkPool {
            shared,
            workers: Mutex::new(handles),
        }
    }

    pub fn worker_count(&self) -> usize {
        self.shared.queues.len()
    }

    /// Replaces worker threads that have exited (a panic outside job
    /// containment, or an injected exit) with fresh threads on the same
    /// slots. Queued jobs are untouched: a worker only dies at a safe
    /// point — before reserving a job — so nothing in flight is lost,
    /// and the respawned worker resumes draining the same deques.
    /// Returns the number of workers respawned. No-op after shutdown.
    pub fn respawn_dead(&self) -> usize {
        if lock_recovering(&self.shared.state).shutdown {
            return 0;
        }
        let mut workers = lock_recovering(&self.workers);
        let mut respawned = 0;
        for (me, slot) in workers.iter_mut().enumerate() {
            if !slot.is_finished() {
                continue;
            }
            let old = std::mem::replace(slot, spawn_worker(&self.shared, me));
            let _ = old.join();
            respawned += 1;
        }
        if respawned > 0 {
            self.shared
                .respawned
                .fetch_add(respawned as u64, Ordering::Relaxed);
            obs::instant_args("pool.respawn", || {
                vec![("workers", obs::ArgValue::U64(respawned as u64))]
            });
        }
        respawned
    }

    /// Orders the worker on slot `i` to exit at its next safe point
    /// (fault harness for [`WorkPool::respawn_dead`]).
    #[cfg(feature = "fault-inject")]
    pub fn inject_worker_exit(&self, i: usize) {
        lock_recovering(&self.shared.exit_requests).insert(i);
        self.shared.wake.notify_all();
    }

    /// Submits a job. Round-robin across worker deques; after shutdown
    /// the job runs inline instead.
    pub fn submit(&self, job: Job) {
        {
            let mut st = lock_recovering(&self.shared.state);
            if st.shutdown {
                drop(st);
                self.shared.execute(job);
                return;
            }
            st.pending += 1;
            self.shared
                .peak
                .fetch_max(st.pending as u64, Ordering::Relaxed);
        }
        let slot = self.shared.next.fetch_add(1, Ordering::Relaxed) % self.shared.queues.len();
        lock_recovering(&self.shared.queues[slot]).push_back(job);
        self.shared.wake.notify_one();
    }

    pub fn metrics(&self) -> PoolMetrics {
        PoolMetrics {
            jobs_executed: self.shared.executed.load(Ordering::Relaxed),
            jobs_stolen: self.shared.stolen.load(Ordering::Relaxed),
            peak_queue_depth: self.shared.peak.load(Ordering::Relaxed),
            jobs_panicked: self.shared.panicked.load(Ordering::Relaxed),
            workers_respawned: self.shared.respawned.load(Ordering::Relaxed),
        }
    }
}

impl Drop for WorkPool {
    fn drop(&mut self) {
        {
            let mut st = lock_recovering(&self.shared.state);
            st.shutdown = true;
        }
        self.shared.wake.notify_all();
        for h in lock_recovering(&self.workers).drain(..) {
            let _ = h.join();
        }
    }
}

fn spawn_worker(shared: &Arc<Shared>, me: usize) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("engine-worker-{me}"))
        .spawn(move || worker_loop(&shared, me))
        .expect("spawn engine worker")
}

/// True when the fault harness has ordered slot `me` to die. The check
/// sits at the loop's safe points only — before a job is reserved — so
/// an injected death never strands a claimed job.
#[cfg(feature = "fault-inject")]
fn exit_requested(shared: &Shared, me: usize) -> bool {
    lock_recovering(&shared.exit_requests).remove(&me)
}

#[cfg(not(feature = "fault-inject"))]
fn exit_requested(_shared: &Shared, _me: usize) -> bool {
    false
}

fn worker_loop(shared: &Shared, me: usize) {
    loop {
        {
            let mut st = lock_recovering(&shared.state);
            loop {
                if exit_requested(shared, me) {
                    return;
                }
                if st.pending > 0 {
                    st.pending -= 1;
                    break;
                }
                if st.shutdown {
                    return;
                }
                st = shared.wake.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }
        let job = shared.claim(me);
        shared.execute(job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    #[test]
    fn runs_all_jobs_across_workers() {
        let pool = WorkPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                counter.fetch_add(1, Ordering::Relaxed);
                tx.send(()).unwrap();
            }));
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 100);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(pool.metrics().jobs_executed, 100);
        assert!(pool.metrics().peak_queue_depth >= 1);
    }

    #[test]
    fn uneven_jobs_get_stolen() {
        // One long job head-of-line on each deque except one, then a
        // burst of short jobs: with round-robin placement the short jobs
        // land behind the long ones and must be stolen to finish fast.
        // Only assert completion (steal counts are timing-dependent).
        let pool = WorkPool::new(4);
        let (tx, rx) = mpsc::channel();
        for i in 0..40 {
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                if i % 4 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                tx.send(i).unwrap();
            }));
        }
        drop(tx);
        let mut got: Vec<usize> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn submit_after_shutdown_runs_inline() {
        let pool = WorkPool::new(2);
        {
            let mut st = pool.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        pool.shared.wake.notify_all();
        let ran = Arc::new(AtomicUsize::new(0));
        let r2 = Arc::clone(&ran);
        pool.submit(Box::new(move || {
            r2.fetch_add(1, Ordering::Relaxed);
        }));
        assert_eq!(ran.load(Ordering::Relaxed), 1, "inline fallback");
    }

    #[test]
    fn panicking_jobs_do_not_kill_workers() {
        let pool = WorkPool::new(2);
        let (tx, rx) = mpsc::channel();
        // Interleave panicking jobs with normal ones on both workers.
        for i in 0..20 {
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                if i % 3 == 0 {
                    panic!("injected model fault {i}");
                }
                tx.send(i).unwrap();
            }));
        }
        drop(tx);
        let mut got: Vec<usize> = rx.iter().collect();
        got.sort_unstable();
        let expected: Vec<usize> = (0..20).filter(|i| i % 3 != 0).collect();
        assert_eq!(got, expected, "every non-faulted job still runs");
        // A job's reply channel drops during unwinding, *before* the pool
        // counts the panic — join the workers before reading counters.
        let shared = Arc::clone(&pool.shared);
        drop(pool);
        assert_eq!(shared.panicked.load(Ordering::Relaxed), 7);
        assert_eq!(
            shared.executed.load(Ordering::Relaxed),
            20,
            "panicked jobs count as executed"
        );
    }

    #[test]
    fn pool_survives_a_panic_while_a_queue_lock_is_poisonable() {
        // A panicking job poisons nothing the pool needs: locks are
        // recovered, and later jobs run normally.
        let pool = WorkPool::new(1);
        pool.submit(Box::new(|| panic!("first job dies")));
        let (tx, rx) = mpsc::channel();
        pool.submit(Box::new(move || {
            tx.send(42u32).unwrap();
        }));
        assert_eq!(rx.recv().unwrap(), 42);
        assert_eq!(pool.metrics().jobs_panicked, 1);
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkPool::new(2);
            for _ in 0..50 {
                let counter = Arc::clone(&counter);
                pool.submit(Box::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                }));
            }
        }
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }
}
