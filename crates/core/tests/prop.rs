//! Property-based tests pinning the lazy quotient-reachability oracle to
//! the dense per-group BFS closure it replaced (the seed's
//! `Quotient::build` eagerly ran `reachable_from` once per group), plus
//! cost bounds proving the oracle's work scales with queries, not with
//! groups².

use ddg::{BitSet, Ddg, DdgBuilder, NodeId};
use discovery::quotient::Quotient;
use discovery::subddg::{SubDdg, SubKind};
use proptest::prelude::*;

/// Builds a random DAG with `n` nodes; arcs only go from lower to higher
/// indices (acyclic by construction).
fn random_dag(n: usize, arcs: &[(usize, usize)]) -> Ddg {
    let mut b = DdgBuilder::new();
    let l = b.intern_label("fadd", true);
    let ids: Vec<NodeId> = (0..n)
        .map(|i| b.add_node(l, i as u32, 0, 1, 1, 0, vec![]))
        .collect();
    for &(u, v) in arcs {
        let (u, v) = (u % n, v % n);
        if u < v {
            b.add_arc(ids[u], ids[v]);
        }
    }
    b.finish()
}

/// Groups the subset nodes by `group_tag[i] % k` (dropping empty groups),
/// producing the grouped sub-DDG shape loop compaction emits.
fn grouped_sub(subset: &BitSet, group_tags: &[usize], k: usize) -> SubDdg {
    let mut groups: Vec<Vec<NodeId>> = vec![Vec::new(); k];
    for (pos, node) in subset.iter().enumerate() {
        groups[group_tags[pos % group_tags.len()] % k].push(NodeId(node as u32));
    }
    groups.retain(|g| !g.is_empty());
    SubDdg::grouped(subset.clone(), groups, SubKind::Loop { loop_id: 0 })
}

/// The seed's eager oracle, verbatim: one full-graph forward BFS per
/// group, mapped to group indices, self-reach removed.
fn dense_closures(g: &Ddg, q: &Quotient) -> Vec<BitSet> {
    let mut group_of: Vec<Option<usize>> = vec![None; g.len()];
    for (gi, grp) in q.groups.iter().enumerate() {
        for &m in &grp.members {
            group_of[m.index()] = Some(gi);
        }
    }
    q.groups
        .iter()
        .enumerate()
        .map(|(gi, grp)| {
            let closure = ddg::algo::reachable_from(g, grp.members.iter().copied());
            let mut r = BitSet::new(q.len());
            for x in closure.iter() {
                if let Some(t) = group_of[x] {
                    r.insert(t);
                }
            }
            r.remove(gi);
            r
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lazy_oracle_matches_the_dense_per_group_closure(
        n in 1usize..30,
        arcs in prop::collection::vec((0usize..30, 0usize..30), 0..80),
        subset_bits in prop::collection::vec(any::<bool>(), 30),
        group_tags in prop::collection::vec(0usize..4, 1..30),
        k in 1usize..5,
    ) {
        let g = random_dag(n, &arcs);
        // Node 0 is always in the subset so the sub-DDG is non-empty.
        let subset = BitSet::from_iter(n, (0..n).filter(|&i| i == 0 || subset_bits[i]));
        let sub = grouped_sub(&subset, &group_tags, k);
        let q = Quotient::build(&g, &sub);
        let dense = dense_closures(&g, &q);
        for (i, dense_i) in dense.iter().enumerate() {
            prop_assert_eq!(
                &q.reachable_groups(&g, i),
                dense_i,
                "closure of group {}", i
            );
            for j in 0..q.len() {
                prop_assert_eq!(
                    q.reaches(&g, i, j),
                    dense_i.contains(j),
                    "reaches({}, {})", i, j
                );
            }
        }
    }

    #[test]
    fn batch_check_matches_the_per_group_closures(
        n in 1usize..30,
        arcs in prop::collection::vec((0usize..30, 0usize..30), 0..80),
        subset_bits in prop::collection::vec(any::<bool>(), 30),
        comp_tags in prop::collection::vec(0usize..3, 1..30),
    ) {
        let g = random_dag(n, &arcs);
        // Node 0 is always in the subset so the sub-DDG is non-empty.
        let subset = BitSet::from_iter(n, (0..n).filter(|&i| i == 0 || subset_bits[i]));
        let sub = SubDdg::ungrouped(subset, SubKind::Assoc { label: "fadd".into() });
        let q = Quotient::build(&g, &sub);
        let comp_of: Vec<usize> =
            (0..q.len()).map(|gi| comp_tags[gi % comp_tags.len()]).collect();
        // Oracle: the map model's old loop over the precomputed table.
        let dense = dense_closures(&g, &q);
        let expected = dense.iter().enumerate().any(|(gi, r)| {
            r.iter().any(|t| comp_of[t] != comp_of[gi])
        });
        prop_assert_eq!(q.cross_component_reach(&g, &comp_of), expected);
    }

    #[test]
    fn oracle_work_is_bounded_by_queries_not_groups_squared(
        n in 1usize..30,
        arcs in prop::collection::vec((0usize..30, 0usize..30), 0..80),
        subset_bits in prop::collection::vec(any::<bool>(), 30),
        probes in prop::collection::vec((0usize..30, 0usize..30), 0..10),
    ) {
        let g = random_dag(n, &arcs);
        // Node 0 is always in the subset so the sub-DDG is non-empty.
        let subset = BitSet::from_iter(n, (0..n).filter(|&i| i == 0 || subset_bits[i]));
        let sub = SubDdg::ungrouped(subset, SubKind::Assoc { label: "fadd".into() });
        let q = Quotient::build(&g, &sub);
        prop_assert_eq!(q.reach_stats(), (0, 0), "building computes no reachability");
        for &(i, j) in &probes {
            q.reaches(&g, i % q.len(), j % q.len());
        }
        let (queries, visited) = q.reach_stats();
        prop_assert_eq!(queries, probes.len() as u64);
        // Every query expands at most the ancestor cone (≤ V nodes); the
        // cone itself is computed once. Nothing here scales with the
        // number of groups — the seed's eager closure visited
        // O(groups × V) regardless of queries.
        prop_assert!(
            visited <= (1 + 3 * queries) * g.len() as u64,
            "visited {} for {} queries on {} nodes", visited, queries, g.len()
        );
    }
}

/// Oracle cost must not depend on the graph outside the sub-DDG's
/// ancestor cone: piling arcs onto the sub-DDG's *descendants* leaves the
/// visit count unchanged — forward searches are pruned to nodes that can
/// reach back into the sub-DDG.
#[test]
fn oracle_cost_ignores_the_descendant_cone() {
    let kept_arcs = [(0, 1), (1, 2)];
    let sparse = random_dag(20, &kept_arcs);
    let dense_extra: Vec<(usize, usize)> = (2..20)
        .flat_map(|u| ((u + 1)..20).map(move |v| (u, v)))
        .chain(kept_arcs)
        .collect();
    let dense = random_dag(20, &dense_extra);
    assert!(dense.arc_count() > sparse.arc_count() * 10);

    let visits = |g: &Ddg| {
        let sub = SubDdg::ungrouped(
            BitSet::from_iter(20, [0, 1]),
            SubKind::Assoc {
                label: "fadd".into(),
            },
        );
        let q = Quotient::build(g, &sub);
        assert!(q.reaches(g, 0, 1), "0 -> 1 is an arc");
        q.reach_stats().1
    };
    assert_eq!(
        visits(&sparse),
        visits(&dense),
        "the dense clique hangs off node 2, outside the ancestor cone of {{0, 1}}"
    );
}
