//! Pattern reports: plain text and HTML with highlighted source lines
//! (paper Fig. 6).

use crate::finder::FinderResult;
use crate::patterns::Found;
use repro_ir::Program;
use std::fmt::Write;

/// The reported patterns in source order — by first covered source
/// location (file, then line), with kind and labels breaking ties — so
/// reports are stable under match-order changes (the engine crate's
/// parallel driver must render identically to the sequential finder).
fn reported_by_location(result: &FinderResult) -> Vec<&Found> {
    let mut reported: Vec<&Found> = result.reported().collect();
    reported.sort_by_key(|f| {
        let p = &f.pattern;
        (
            p.lines.first().copied().unwrap_or((u16::MAX, u32::MAX)),
            p.kind.full(),
            p.op_labels.clone(),
        )
    });
    reported
}

/// A plain-text report of the reported (post-merge) patterns, with their
/// source lines.
pub fn render_text(result: &FinderResult, program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "pattern report for {}", program.name);
    let _ = writeln!(
        out,
        "DDG: {} nodes ({} after simplification, {:.2}x reduction)",
        result.ddg_size,
        result.simplified_size,
        result.simplify_stats.reduction()
    );
    let _ = writeln!(out, "iterations: {}", result.iterations);
    for f in reported_by_location(result) {
        let _ = writeln!(out, "- [it.{}] {}", f.iteration, f.pattern.describe());
        for &(file, line) in &f.pattern.lines {
            let loc = repro_ir::Loc::in_file(file, line, 1);
            if let Some(text) = program.source_line(loc) {
                let fname = program
                    .files
                    .get(file as usize)
                    .map(|s| s.as_str())
                    .unwrap_or("<unknown>");
                let _ = writeln!(out, "    {fname}:{line}: {}", text.trim_end());
            }
        }
    }
    out
}

/// An HTML report: each source file rendered with pattern-annotated lines
/// highlighted, in the spirit of the paper's Fig. 6 screenshot.
pub fn render_html(result: &FinderResult, program: &Program) -> String {
    let reported: Vec<&Found> = reported_by_location(result);
    let mut html = String::new();
    html.push_str("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n");
    let _ = writeln!(html, "<title>patterns: {}</title>", escape(&program.name));
    html.push_str(
        "<style>\n\
         body { font-family: monospace; background: #fff; }\n\
         .line { white-space: pre; }\n\
         .hit { background: #d9d9d9; }\n\
         .tag { color: #804000; font-weight: bold; padding-left: 2em; }\n\
         .lineno { color: #888; display: inline-block; width: 3em; }\n\
         h2 { font-family: sans-serif; }\n\
         </style></head><body>\n",
    );
    let _ = writeln!(html, "<h1>Patterns found in {}</h1>", escape(&program.name));
    let _ = writeln!(
        html,
        "<p>{} pattern(s) reported after {} iteration(s).</p>",
        reported.len(),
        result.iterations
    );

    for (file_idx, (fname, source)) in program.files.iter().zip(&program.sources).enumerate() {
        let _ = writeln!(html, "<h2>{}</h2>", escape(fname));
        for (lineno0, line) in source.lines().enumerate() {
            let line_no = lineno0 as u32 + 1;
            // Patterns touching this line, annotated after it.
            let tags: Vec<String> = reported
                .iter()
                .filter(|f| f.pattern.lines.contains(&(file_idx as u16, line_no)))
                .map(|f| {
                    format!(
                        "{} {}",
                        f.pattern.kind.full(),
                        f.pattern.op_labels.join(",")
                    )
                })
                .collect();
            let class = if tags.is_empty() { "line" } else { "line hit" };
            let _ = write!(
                html,
                "<div class=\"{class}\"><span class=\"lineno\">{line_no}</span>{}",
                escape(line)
            );
            for t in &tags {
                let _ = write!(html, "<span class=\"tag\">&larr; {}</span>", escape(t));
            }
            html.push_str("</div>\n");
        }
    }
    html.push_str("</body></html>\n");
    html
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finder::{find_patterns, FinderConfig};
    use trace::{run, RunConfig};

    fn map_result() -> (FinderResult, Program) {
        let src = "float in[4];\nfloat out[4];\nvoid main() {\n  int i;\n  for (i = 0; i < 4; i++) {\n    out[i] = in[i] * 2.0;\n  }\n  output(out);\n}\n";
        let p = minc::compile("demo", src).unwrap();
        let cfg = RunConfig::default().with_f64("in", &[1.0, 2.0, 3.0, 4.0]);
        let r = run(&p, &cfg).unwrap();
        (find_patterns(&r.ddg.unwrap(), &FinderConfig::default()), p)
    }

    #[test]
    fn text_report_names_pattern_and_line() {
        let (result, p) = map_result();
        let text = render_text(&result, &p);
        assert!(text.contains("map"), "{text}");
        assert!(text.contains("out[i] = in[i] * 2.0;"), "{text}");
        assert!(text.contains("main.mc:6"), "{text}");
    }

    #[test]
    fn report_lists_patterns_in_source_order() {
        use crate::patterns::{Detail, Pattern, PatternKind};
        let mk = |labels: &[&str], lines: Vec<(u16, u32)>| Found {
            pattern: Pattern {
                kind: PatternKind::Map,
                nodes: ddg::BitSet::new(4),
                components: 2,
                op_labels: labels.iter().map(|s| s.to_string()).collect(),
                lines,
                loops: vec![],
                detail: Detail::None,
            },
            iteration: 1,
            reported: true,
        };
        // Found in reverse source order: the report must flip them.
        let result = FinderResult {
            found: vec![mk(&["late"], vec![(0, 9)]), mk(&["early"], vec![(0, 2)])],
            ddg_size: 4,
            simplified_size: 4,
            simplify_stats: Default::default(),
            iterations: 1,
            subddgs_matched: 2,
            phase_times: Default::default(),
            degraded: false,
            cancelled: false,
            matches_exhausted: 0,
            match_faults: 0,
        };
        let p = minc::compile("order", "void main() { int x; x = 1; }").unwrap();
        let text = render_text(&result, &p);
        let early = text.find("map early").expect("early pattern listed");
        let late = text.find("map late").expect("late pattern listed");
        assert!(early < late, "source order, not match order:\n{text}");
    }

    #[test]
    fn html_report_highlights_the_map_line() {
        let (result, p) = map_result();
        let html = render_html(&result, &p);
        assert!(html.contains("class=\"line hit\""));
        assert!(html.contains("map fmul"), "{html}");
        assert!(html.contains("&lt;"), "source is escaped");
    }
}
