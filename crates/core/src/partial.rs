//! Partial (input-dependent) pattern classification — the paper's §9
//! future-work item "propose partial patterns (which only apply under
//! certain execution conditions)", and the automation of its §6.1 manual
//! accuracy analysis.
//!
//! A dynamic analysis only sees the executions it traced: a loop whose
//! conditional cross-iteration dependence never fired looks like a map.
//! Running the finder under several inputs and comparing, per static
//! region (the loops a pattern touches), which patterns persist separates
//! *stable* patterns (reported under every input — the 48 "true" patterns
//! of the paper's study) from *partial* ones (reported under some inputs
//! only — the paper's 2 false maps, reframed as patterns holding only
//! under conditions the triggering input violates).

use crate::finder::FinderResult;
use crate::patterns::PatternKind;

/// Identity of a pattern across runs: its kind, the static loops it
/// covers (node ids are not comparable across traces; loop ids are), and
/// the finder iteration it was matched at — a map matched directly on a
/// loop and a map exposed by subtracting a reduction from that loop are
/// different findings (the latter remains true when the former does not).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PatternSite {
    pub kind: PatternKind,
    pub loops: Vec<u32>,
    pub iteration: usize,
}

/// Classification of one site across the provided runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stability {
    /// Reported in every run: evidence the pattern is input-independent.
    Stable,
    /// Reported in a strict subset of runs: a partial pattern — the list
    /// holds the run indices where it appeared.
    Partial(Vec<usize>),
}

/// One classified site.
#[derive(Clone, Debug)]
pub struct ClassifiedPattern {
    pub site: PatternSite,
    pub stability: Stability,
}

/// Compares finder results from the *same program* under different
/// inputs and classifies every matched pattern site.
pub fn classify_across_inputs(runs: &[FinderResult]) -> Vec<ClassifiedPattern> {
    let mut sites: Vec<PatternSite> = Vec::new();
    let mut seen_in: Vec<Vec<usize>> = Vec::new();
    for (run_idx, run) in runs.iter().enumerate() {
        for f in &run.found {
            let site = PatternSite {
                kind: f.pattern.kind,
                loops: f.pattern.loops.clone(),
                iteration: f.iteration,
            };
            match sites.iter().position(|s| *s == site) {
                Some(i) => {
                    if seen_in[i].last() != Some(&run_idx) {
                        seen_in[i].push(run_idx);
                    }
                }
                None => {
                    sites.push(site);
                    seen_in.push(vec![run_idx]);
                }
            }
        }
    }
    sites
        .into_iter()
        .zip(seen_in)
        .map(|(site, appearances)| ClassifiedPattern {
            stability: if appearances.len() == runs.len() {
                Stability::Stable
            } else {
                Stability::Partial(appearances)
            },
            site,
        })
        .collect()
}

/// The partial (input-dependent) sites only.
pub fn partial_patterns(runs: &[FinderResult]) -> Vec<ClassifiedPattern> {
    classify_across_inputs(runs)
        .into_iter()
        .filter(|c| matches!(c.stability, Stability::Partial(_)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finder::{find_patterns, FinderConfig};
    use trace::{run, RunConfig};

    /// A loop that is a map only when the guard never fires.
    const SRC: &str = r#"
float in[8];
float out[8];
float errstat[1];

void main() {
    float err = 0.0;
    int i;
    for (i = 0; i < 8; i++) {
        out[i] = in[i] * 2.0 + 1.0;
        if (in[i] < 0.0) {
            err = err + in[i];
        }
    }
    errstat[0] = err;
    output(out);
    output(errstat);
}
"#;

    fn finder_for(data: &[f64]) -> FinderResult {
        let p = minc::compile("partial", SRC).unwrap();
        let cfg = RunConfig::default().with_f64("in", data);
        let r = run(&p, &cfg).unwrap();
        find_patterns(&r.ddg.unwrap(), &FinderConfig::default())
    }

    #[test]
    fn input_dependent_map_is_classified_partial() {
        let benign = finder_for(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let trigger = finder_for(&[-1.0, 2.0, -3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let classified = classify_across_inputs(&[benign, trigger]);
        let partials = classified
            .iter()
            .filter(|c| matches!(c.stability, Stability::Partial(_)))
            .collect::<Vec<_>>();
        // Three partial sites tell the full §6.1 story: the direct
        // (iteration-1) map holds only under the benign input; under the
        // triggering input the error-accumulation reduction appears and
        // the map re-emerges only after subtracting it (iteration 2).
        assert_eq!(partials.len(), 3, "{classified:?}");
        let direct_map = partials
            .iter()
            .find(|c| c.site.kind == PatternKind::Map && c.site.iteration == 1)
            .unwrap();
        assert_eq!(direct_map.stability, Stability::Partial(vec![0]));
        let red = partials
            .iter()
            .find(|c| c.site.kind == PatternKind::LinearReduction)
            .unwrap();
        assert_eq!(red.stability, Stability::Partial(vec![1]));
        let exposed_map = partials
            .iter()
            .find(|c| c.site.kind == PatternKind::Map && c.site.iteration == 2)
            .unwrap();
        assert_eq!(exposed_map.stability, Stability::Partial(vec![1]));
    }

    #[test]
    fn stable_patterns_stay_stable() {
        let a = finder_for(&[1.0; 8]);
        let b = finder_for(&[2.0; 8]);
        let partial = partial_patterns(&[a, b]);
        assert!(partial.is_empty(), "{partial:?}");
    }

    #[test]
    fn single_run_is_trivially_stable() {
        let a = finder_for(&[1.0; 8]);
        let classified = classify_across_inputs(&[a]);
        assert!(classified.iter().all(|c| c.stability == Stability::Stable));
        assert!(!classified.is_empty());
    }
}
