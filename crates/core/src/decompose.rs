//! DDG decomposition (paper §5, "DDG Decomposition").
//!
//! Splits the simplified DDG along two dimensions:
//!
//! * **Loop sub-DDGs** — for each static loop, the nodes executed within
//!   its dynamic scope, across *all* dynamic instances and threads (the
//!   worker loops of a Pthreads program contribute one instance per
//!   thread, which is how a single loop sub-DDG spans the whole parallel
//!   phase as in the paper's Fig. 5). Grouped per (instance, iteration)
//!   for compaction.
//! * **Associative-component sub-DDGs** — weakly connected components of
//!   the subgraph induced by the nodes of one associative operation,
//!   targeting linear and tiled reductions.

use crate::subddg::{SubDdg, SubKind};
use ddg::algo::weakly_connected_components_counted;
use ddg::{BitSet, Ddg, NodeId};
use std::collections::HashMap;

/// One independent unit of sub-DDG extraction, produced by [`plan`].
///
/// Planning is the single cheap pass over the graph; each task then only
/// touches its own nodes (and, for associative components, their
/// adjacency), so tasks can run in any order — or concurrently, which is
/// how the engine overlaps the finder front-end with matching. Results
/// concatenated in task order equal [`decompose`]'s output exactly.
#[derive(Clone, Debug)]
pub enum ExtractTask {
    /// Build the sub-DDG of one static loop from its (instance, iter)
    /// groups, already sorted.
    Loop {
        loop_id: u32,
        groups: Vec<((u32, u32), Vec<NodeId>)>,
    },
    /// Split one associative label's nodes (ascending id order) into
    /// weakly connected components and keep the loop-carried ones.
    Assoc {
        label: ddg::LabelId,
        nodes: Vec<NodeId>,
    },
}

/// Decomposes the simplified DDG into the initial sub-DDG pool.
pub fn decompose(g: &Ddg) -> Vec<SubDdg> {
    plan(g).iter().flat_map(|t| extract(g, t)).collect()
}

/// The decomposition plan: one fused pass over the nodes collects both
/// the per-loop (instance, iter) groups and the per-associative-label
/// node lists, then emits one [`ExtractTask`] per loop (ascending loop
/// id) followed by one per label (ascending label id).
pub fn plan(g: &Ddg) -> Vec<ExtractTask> {
    // loop id -> (instance, iter) -> nodes, plus assoc label -> nodes,
    // filled by the same scan.
    let mut per_loop: HashMap<u32, HashMap<(u32, u32), Vec<NodeId>>> = HashMap::new();
    let mut by_label: HashMap<u32, Vec<NodeId>> = HashMap::new();
    for id in g.node_ids() {
        let node = g.node(id);
        for entry in node.scope.iter() {
            per_loop
                .entry(entry.loop_id)
                .or_default()
                .entry((entry.instance, entry.iter))
                .or_default()
                .push(id);
        }
        if g.label_is_associative(node.label) {
            by_label.entry(node.label.0).or_default().push(id);
        }
    }

    let mut loops: Vec<u32> = per_loop.keys().copied().collect();
    loops.sort_unstable();
    let mut labels: Vec<u32> = by_label.keys().copied().collect();
    labels.sort_unstable();

    let mut tasks = Vec::with_capacity(loops.len() + labels.len());
    for loop_id in loops {
        let mut groups: Vec<((u32, u32), Vec<NodeId>)> =
            per_loop.remove(&loop_id).unwrap().into_iter().collect();
        // Deterministic order: by (instance, iteration).
        groups.sort_by_key(|(k, _)| *k);
        tasks.push(ExtractTask::Loop { loop_id, groups });
    }
    for l in labels {
        tasks.push(ExtractTask::Assoc {
            label: ddg::LabelId(l),
            nodes: by_label.remove(&l).unwrap(),
        });
    }
    tasks
}

/// Runs one extraction task. Subset-local: cost is proportional to the
/// task's own nodes and their adjacency, never the whole graph.
pub fn extract(g: &Ddg, task: &ExtractTask) -> Vec<SubDdg> {
    match task {
        ExtractTask::Loop { loop_id, groups } => {
            let mut span = obs::span_args("finder.extract", || {
                vec![
                    ("kind", obs::ArgValue::Static("loop")),
                    ("loop_id", obs::ArgValue::U64(*loop_id as u64)),
                ]
            });
            let mut nodes = BitSet::new(g.len());
            for (_, members) in groups {
                for n in members {
                    nodes.insert(n.index());
                }
            }
            span.arg("nodes", obs::ArgValue::U64(nodes.len() as u64));
            vec![SubDdg::grouped(
                nodes,
                groups.iter().map(|(_, m)| m.clone()).collect(),
                SubKind::Loop { loop_id: *loop_id },
            )]
        }
        ExtractTask::Assoc { label, nodes } => {
            let mut span = obs::span_args("finder.extract", || {
                vec![
                    ("kind", obs::ArgValue::Static("assoc")),
                    ("nodes", obs::ArgValue::U64(nodes.len() as u64)),
                ]
            });
            let subset = BitSet::from_iter(g.len(), nodes.iter().map(|n| n.index()));
            let (comps, arcs_visited) = weakly_connected_components_counted(g, &subset);
            if obs::enabled() {
                obs::counter("finder.extract.arcs_visited").add(arcs_visited);
            }
            span.arg("arcs_visited", obs::ArgValue::U64(arcs_visited));
            comps
                .into_iter()
                .filter(|comp| comp.len() >= 2 && spans_iterations(g, comp))
                .map(|comp| {
                    SubDdg::ungrouped(
                        BitSet::from_iter(g.len(), comp.iter().map(|n| n.index())),
                        SubKind::Assoc {
                            label: g.label_str(*label).to_string(),
                        },
                    )
                })
                .collect()
        }
    }
}

/// One sub-DDG per static loop that executed any node, compacted by
/// (dynamic instance, iteration).
pub fn loop_subddgs(g: &Ddg) -> Vec<SubDdg> {
    plan(g)
        .iter()
        .filter(|t| matches!(t, ExtractTask::Loop { .. }))
        .flat_map(|t| extract(g, t))
        .collect()
}

/// Weakly connected components over each associative operation label,
/// keeping only components with at least two nodes (a reduction needs a
/// chain) that are *loop-carried*: a component confined to a single loop
/// iteration is an expression tree (a dot product, say), not a reduction
/// over data elements, and reporting it would bury the analysis in
/// three-element "reductions".
pub fn assoc_subddgs(g: &Ddg) -> Vec<SubDdg> {
    plan(g)
        .iter()
        .filter(|t| matches!(t, ExtractTask::Assoc { .. }))
        .flat_map(|t| extract(g, t))
        .collect()
}

/// True when the component is loop-carried: some loop contributes frames
/// at one scope depth with *different* (instance, iter) pairs across the
/// component's nodes — different iterations of one activation, or
/// different activations entirely (the per-thread worker-loop instances
/// that make tiled reductions span threads).
///
/// Comparing full scope stacks with `!=` is wrong here: two nodes in the
/// same dynamic iteration whose stacks differ only in *depth* (one sits
/// inside a nested single-iteration loop or a called function's loop)
/// are still one iteration's expression tree, not a reduction.
pub(crate) fn spans_iterations(g: &Ddg, comp: &[NodeId]) -> bool {
    let mut seen: HashMap<(usize, u32), (u32, u32)> = HashMap::new();
    for &id in comp {
        for (depth, frame) in g.node(id).scope.iter().enumerate() {
            match seen.entry((depth, frame.loop_id)) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((frame.instance, frame.iter));
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != (frame.instance, frame.iter) {
                        return true;
                    }
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplify::simplify;
    use repro_ir::{BinOp, Expr, FnBuilder, ProgramBuilder, Type};
    use trace::{run, RunConfig};

    /// The motivating example in miniature: two "threads" — here two
    /// dynamic instances of the same worker loop called twice — each
    /// summing half of `in` into a partial, then a final loop reducing the
    /// partials.
    fn two_phase_reduction() -> Ddg {
        let mut pb = ProgramBuilder::new("2phase");
        let inp = pb.global("in", Type::F64, 4);
        let partial = pb.global("partial", Type::F64, 2);
        let out = pb.global("out", Type::F64, 1);
        let worker = {
            let mut w = pb.function("worker", vec![("t", Type::I64)], None);
            let t = w.param(0);
            let acc = w.local("acc", Type::F64);
            w.assign(acc, Expr::Float(0.0));
            let from = w.bin(BinOp::Mul, Expr::Var(t), Expr::Int(2));
            let fvar = w.local("from", Type::I64);
            w.assign(fvar, from);
            let to = w.bin(BinOp::Add, Expr::Var(fvar), Expr::Int(2));
            let tvar = w.local("to", Type::I64);
            w.assign(tvar, to);
            w.for_loop("k", Expr::Var(fvar), Expr::Var(tvar), |w, k| {
                let ld = w.load(inp, Expr::Var(k));
                let s = w.bin(BinOp::FAdd, Expr::Var(acc), ld);
                vec![FnBuilder::stmt_assign(acc, s)]
            });
            w.store(partial, Expr::Var(t), Expr::Var(acc));
            w.finish()
        };
        let mut f = pb.function("main", vec![], None);
        f.push(repro_ir::Stmt::Expr {
            expr: Expr::Call {
                f: worker,
                args: vec![Expr::Int(0)],
                loc: repro_ir::Loc::NONE,
            },
        });
        f.push(repro_ir::Stmt::Expr {
            expr: Expr::Call {
                f: worker,
                args: vec![Expr::Int(1)],
                loc: repro_ir::Loc::NONE,
            },
        });
        let total = f.local("total", Type::F64);
        f.assign(total, Expr::Float(0.0));
        f.for_loop("i", Expr::Int(0), Expr::Int(2), |f, i| {
            let ld = f.load(partial, Expr::Var(i));
            let s = f.bin(BinOp::FAdd, Expr::Var(total), ld);
            vec![FnBuilder::stmt_assign(total, s)]
        });
        f.store(out, Expr::Int(0), Expr::Var(total));
        f.push(repro_ir::Stmt::Output {
            arr: out,
            loc: repro_ir::Loc::NONE,
        });
        let main = f.finish();
        let p = pb.finish(main);
        let r = run(
            &p,
            &RunConfig::default().with_f64("in", &[1.0, 2.0, 3.0, 4.0]),
        )
        .unwrap();
        let (s, _, _) = simplify(&r.ddg.unwrap());
        s
    }

    #[test]
    fn loop_subddgs_aggregate_instances() {
        let g = two_phase_reduction();
        let subs = loop_subddgs(&g);
        // Two static loops: the worker loop and the final loop.
        assert_eq!(subs.len(), 2);
        let worker_sub = subs
            .iter()
            .find(|s| s.groups.as_ref().unwrap().len() == 4)
            .expect("worker loop has 4 iteration groups across 2 instances");
        assert_eq!(worker_sub.nodes.len(), 4, "4 partial fadds");
        let final_sub = subs
            .iter()
            .find(|s| s.groups.as_ref().unwrap().len() == 2)
            .unwrap();
        assert_eq!(final_sub.nodes.len(), 2, "2 final fadds");
    }

    #[test]
    fn assoc_component_spans_both_phases() {
        let g = two_phase_reduction();
        let subs = assoc_subddgs(&g);
        // All six fadds are weakly connected (partials flow into finals).
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].nodes.len(), 6);
        assert_eq!(
            subs[0].kind,
            SubKind::Assoc {
                label: "fadd".into()
            }
        );
        assert!(subs[0].groups.is_none());
    }

    /// Builds a two-node graph with an arc n0 -> n1 over an associative
    /// label, with the given scope stacks, and reports whether
    /// `assoc_subddgs` keeps the component.
    fn assoc_component_kept(scope0: Vec<ddg::ScopeEntry>, scope1: Vec<ddg::ScopeEntry>) -> bool {
        let mut b = ddg::DdgBuilder::new();
        let fadd = b.intern_label("fadd", true);
        let n0 = b.add_node(fadd, 0, 0, 1, 1, 0, scope0);
        let n1 = b.add_node(fadd, 1, 0, 2, 1, 0, scope1);
        b.add_arc(n0, n1);
        let g = b.finish();
        !assoc_subddgs(&g).is_empty()
    }

    fn frame(loop_id: u32, instance: u32, iter: u32) -> ddg::ScopeEntry {
        ddg::ScopeEntry {
            loop_id,
            instance,
            iter,
        }
    }

    /// Pins the intended `spans_iterations` semantics: a component is
    /// loop-carried exactly when one loop contributes distinct
    /// (instance, iter) pairs at the same scope depth.
    #[test]
    fn spans_iterations_requires_distinct_instance_or_iter_of_one_loop() {
        // Different iterations of the same activation: spans.
        assert!(assoc_component_kept(
            vec![frame(0, 0, 0)],
            vec![frame(0, 0, 1)]
        ));
        // Same iteration number but different activations (two threads
        // re-entering one worker loop — the tiled-reduction shape): spans.
        assert!(assoc_component_kept(
            vec![frame(0, 0, 0)],
            vec![frame(0, 1, 0)]
        ));
        // Identical stacks: one iteration's expression tree.
        assert!(!assoc_component_kept(
            vec![frame(0, 0, 0)],
            vec![frame(0, 0, 0)]
        ));
        // Regression: stacks differing only in depth — the second node
        // additionally sits in a single iteration of an inner loop.
        // The old full-stack `!=` comparison misclassified this as
        // loop-carried; it is still confined to one iteration of every
        // loop involved.
        assert!(!assoc_component_kept(
            vec![frame(0, 0, 0)],
            vec![frame(0, 0, 0), frame(5, 0, 0)]
        ));
        // The inner loop iterating does make it a reduction again.
        assert!(assoc_component_kept(
            vec![frame(0, 0, 0), frame(5, 0, 0)],
            vec![frame(0, 0, 0), frame(5, 0, 1)]
        ));
    }

    #[test]
    fn singleton_assoc_components_are_dropped() {
        // One lone fmul: not a reduction candidate.
        let mut pb = ProgramBuilder::new("lone");
        let inp = pb.global("in", Type::F64, 1);
        let out = pb.global("out", Type::F64, 1);
        let mut f = pb.function("main", vec![], None);
        let ld = f.load(inp, Expr::Int(0));
        let v = f.bin(BinOp::FMul, ld, Expr::Float(2.0));
        f.store(out, Expr::Int(0), v);
        let main = f.finish();
        let p = pb.finish(main);
        let r = run(&p, &RunConfig::default().with_f64("in", &[1.0])).unwrap();
        let (g, _, _) = simplify(&r.ddg.unwrap());
        assert!(assoc_subddgs(&g).is_empty());
    }
}
