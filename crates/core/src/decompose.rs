//! DDG decomposition (paper §5, "DDG Decomposition").
//!
//! Splits the simplified DDG along two dimensions:
//!
//! * **Loop sub-DDGs** — for each static loop, the nodes executed within
//!   its dynamic scope, across *all* dynamic instances and threads (the
//!   worker loops of a Pthreads program contribute one instance per
//!   thread, which is how a single loop sub-DDG spans the whole parallel
//!   phase as in the paper's Fig. 5). Grouped per (instance, iteration)
//!   for compaction.
//! * **Associative-component sub-DDGs** — weakly connected components of
//!   the subgraph induced by the nodes of one associative operation,
//!   targeting linear and tiled reductions.

use crate::subddg::{SubDdg, SubKind};
use ddg::algo::weakly_connected_components;
use ddg::{BitSet, Ddg, NodeId};
use std::collections::HashMap;

/// Decomposes the simplified DDG into the initial sub-DDG pool.
pub fn decompose(g: &Ddg) -> Vec<SubDdg> {
    let mut out = loop_subddgs(g);
    out.extend(assoc_subddgs(g));
    out
}

/// One sub-DDG per static loop that executed any node, compacted by
/// (dynamic instance, iteration).
pub fn loop_subddgs(g: &Ddg) -> Vec<SubDdg> {
    // loop id -> (instance, iter) -> nodes
    let mut per_loop: HashMap<u32, HashMap<(u32, u32), Vec<NodeId>>> = HashMap::new();
    for id in g.node_ids() {
        for entry in g.node(id).scope.iter() {
            per_loop
                .entry(entry.loop_id)
                .or_default()
                .entry((entry.instance, entry.iter))
                .or_default()
                .push(id);
        }
    }
    let mut loops: Vec<u32> = per_loop.keys().copied().collect();
    loops.sort_unstable();
    loops
        .into_iter()
        .map(|loop_id| {
            let mut groups: Vec<((u32, u32), Vec<NodeId>)> =
                per_loop.remove(&loop_id).unwrap().into_iter().collect();
            // Deterministic order: by (instance, iteration).
            groups.sort_by_key(|(k, _)| *k);
            let mut nodes = BitSet::new(g.len());
            for (_, members) in &groups {
                for n in members {
                    nodes.insert(n.index());
                }
            }
            SubDdg::grouped(
                nodes,
                groups.into_iter().map(|(_, m)| m).collect(),
                SubKind::Loop { loop_id },
            )
        })
        .collect()
}

/// Weakly connected components over each associative operation label,
/// keeping only components with at least two nodes (a reduction needs a
/// chain) that are *loop-carried*: a component confined to a single loop
/// iteration is an expression tree (a dot product, say), not a reduction
/// over data elements, and reporting it would bury the analysis in
/// three-element "reductions".
pub fn assoc_subddgs(g: &Ddg) -> Vec<SubDdg> {
    // Group node sets by label.
    let mut by_label: HashMap<u32, BitSet> = HashMap::new();
    for id in g.node_ids() {
        let l = g.node(id).label;
        if g.label_is_associative(l) {
            by_label
                .entry(l.0)
                .or_insert_with(|| BitSet::new(g.len()))
                .insert(id.index());
        }
    }
    let mut labels: Vec<u32> = by_label.keys().copied().collect();
    labels.sort_unstable();
    let mut out = Vec::new();
    for l in labels {
        let subset = &by_label[&l];
        for comp in weakly_connected_components(g, subset) {
            if comp.len() >= 2 && spans_iterations(g, &comp) {
                out.push(SubDdg::ungrouped(
                    comp,
                    SubKind::Assoc {
                        label: g.label_str(ddg::LabelId(l)).to_string(),
                    },
                ));
            }
        }
    }
    out
}

/// True when the component's nodes do not all share one dynamic loop
/// iteration (same full scope stack).
fn spans_iterations(g: &Ddg, comp: &BitSet) -> bool {
    let mut iter = comp.iter();
    let first = iter.next().expect("non-empty component");
    let scope = &g.node(NodeId(first as u32)).scope;
    iter.any(|n| g.node(NodeId(n as u32)).scope != *scope)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplify::simplify;
    use repro_ir::{BinOp, Expr, FnBuilder, ProgramBuilder, Type};
    use trace::{run, RunConfig};

    /// The motivating example in miniature: two "threads" — here two
    /// dynamic instances of the same worker loop called twice — each
    /// summing half of `in` into a partial, then a final loop reducing the
    /// partials.
    fn two_phase_reduction() -> Ddg {
        let mut pb = ProgramBuilder::new("2phase");
        let inp = pb.global("in", Type::F64, 4);
        let partial = pb.global("partial", Type::F64, 2);
        let out = pb.global("out", Type::F64, 1);
        let worker = {
            let mut w = pb.function("worker", vec![("t", Type::I64)], None);
            let t = w.param(0);
            let acc = w.local("acc", Type::F64);
            w.assign(acc, Expr::Float(0.0));
            let from = w.bin(BinOp::Mul, Expr::Var(t), Expr::Int(2));
            let fvar = w.local("from", Type::I64);
            w.assign(fvar, from);
            let to = w.bin(BinOp::Add, Expr::Var(fvar), Expr::Int(2));
            let tvar = w.local("to", Type::I64);
            w.assign(tvar, to);
            w.for_loop("k", Expr::Var(fvar), Expr::Var(tvar), |w, k| {
                let ld = w.load(inp, Expr::Var(k));
                let s = w.bin(BinOp::FAdd, Expr::Var(acc), ld);
                vec![FnBuilder::stmt_assign(acc, s)]
            });
            w.store(partial, Expr::Var(t), Expr::Var(acc));
            w.finish()
        };
        let mut f = pb.function("main", vec![], None);
        f.push(repro_ir::Stmt::Expr {
            expr: Expr::Call {
                f: worker,
                args: vec![Expr::Int(0)],
                loc: repro_ir::Loc::NONE,
            },
        });
        f.push(repro_ir::Stmt::Expr {
            expr: Expr::Call {
                f: worker,
                args: vec![Expr::Int(1)],
                loc: repro_ir::Loc::NONE,
            },
        });
        let total = f.local("total", Type::F64);
        f.assign(total, Expr::Float(0.0));
        f.for_loop("i", Expr::Int(0), Expr::Int(2), |f, i| {
            let ld = f.load(partial, Expr::Var(i));
            let s = f.bin(BinOp::FAdd, Expr::Var(total), ld);
            vec![FnBuilder::stmt_assign(total, s)]
        });
        f.store(out, Expr::Int(0), Expr::Var(total));
        f.push(repro_ir::Stmt::Output {
            arr: out,
            loc: repro_ir::Loc::NONE,
        });
        let main = f.finish();
        let p = pb.finish(main);
        let r = run(
            &p,
            &RunConfig::default().with_f64("in", &[1.0, 2.0, 3.0, 4.0]),
        )
        .unwrap();
        let (s, _, _) = simplify(&r.ddg.unwrap());
        s
    }

    #[test]
    fn loop_subddgs_aggregate_instances() {
        let g = two_phase_reduction();
        let subs = loop_subddgs(&g);
        // Two static loops: the worker loop and the final loop.
        assert_eq!(subs.len(), 2);
        let worker_sub = subs
            .iter()
            .find(|s| s.groups.as_ref().unwrap().len() == 4)
            .expect("worker loop has 4 iteration groups across 2 instances");
        assert_eq!(worker_sub.nodes.len(), 4, "4 partial fadds");
        let final_sub = subs
            .iter()
            .find(|s| s.groups.as_ref().unwrap().len() == 2)
            .unwrap();
        assert_eq!(final_sub.nodes.len(), 2, "2 final fadds");
    }

    #[test]
    fn assoc_component_spans_both_phases() {
        let g = two_phase_reduction();
        let subs = assoc_subddgs(&g);
        // All six fadds are weakly connected (partials flow into finals).
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].nodes.len(), 6);
        assert_eq!(
            subs[0].kind,
            SubKind::Assoc {
                label: "fadd".into()
            }
        );
        assert!(subs[0].groups.is_none());
    }

    #[test]
    fn singleton_assoc_components_are_dropped() {
        // One lone fmul: not a reduction candidate.
        let mut pb = ProgramBuilder::new("lone");
        let inp = pb.global("in", Type::F64, 1);
        let out = pb.global("out", Type::F64, 1);
        let mut f = pb.function("main", vec![], None);
        let ld = f.load(inp, Expr::Int(0));
        let v = f.bin(BinOp::FMul, ld, Expr::Float(2.0));
        f.store(out, Expr::Int(0), v);
        let main = f.finish();
        let p = pb.finish(main);
        let r = run(&p, &RunConfig::default().with_f64("in", &[1.0])).unwrap();
        let (g, _, _) = simplify(&r.ddg.unwrap());
        assert!(assoc_subddgs(&g).is_empty());
    }
}
