//! Pattern kinds and matched-pattern records.

use ddg::{BitSet, Ddg, NodeId};
use serde::{Deserialize, Serialize};

/// The patterns of paper §4 (plus the map variants of §4.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum PatternKind {
    Map,
    ConditionalMap,
    FusedMap,
    LinearReduction,
    TiledReduction,
    LinearMapReduction,
    TiledMapReduction,
}

impl PatternKind {
    /// Short name as used in the paper's Table 3 legend.
    pub fn short(&self) -> &'static str {
        match self {
            PatternKind::Map => "m",
            PatternKind::ConditionalMap => "cm",
            PatternKind::FusedMap => "fm",
            PatternKind::LinearReduction => "r",
            PatternKind::TiledReduction => "r",
            PatternKind::LinearMapReduction => "mr",
            PatternKind::TiledMapReduction => "mr",
        }
    }

    /// Full name as printed in reports (paper Fig. 6 style).
    pub fn full(&self) -> &'static str {
        match self {
            PatternKind::Map => "map",
            PatternKind::ConditionalMap => "conditional_map",
            PatternKind::FusedMap => "fused_map",
            PatternKind::LinearReduction => "linear_reduction",
            PatternKind::TiledReduction => "tiled_reduction",
            PatternKind::LinearMapReduction => "linear_map_reduction",
            PatternKind::TiledMapReduction => "tiled_map_reduction",
        }
    }

    /// True for the map family (fusion sources).
    pub fn is_map(&self) -> bool {
        matches!(
            self,
            PatternKind::Map | PatternKind::ConditionalMap | PatternKind::FusedMap
        )
    }

    /// True for the reduction family.
    pub fn is_reduction(&self) -> bool {
        matches!(
            self,
            PatternKind::LinearReduction | PatternKind::TiledReduction
        )
    }
}

/// Structural detail of a match, consumed when patterns compose (the
/// map-reduction models need the reduction's chain structure and the
/// map's components).
#[derive(Clone, Debug, Default, PartialEq)]
pub enum Detail {
    #[default]
    None,
    /// Map-family: the member nodes of each component.
    Map { components: Vec<Vec<NodeId>> },
    /// Linear reduction: the chain, in reduction order.
    Linear { chain: Vec<NodeId> },
    /// Tiled reduction: the partial chains and the final chain, with
    /// `partials[i]`'s tail feeding `final_chain[i]`.
    Tiled {
        partials: Vec<Vec<NodeId>>,
        final_chain: Vec<NodeId>,
    },
}

/// A matched pattern instance.
#[derive(Clone, Debug)]
pub struct Pattern {
    pub kind: PatternKind,
    /// Covered nodes (indices into the simplified DDG).
    pub nodes: BitSet,
    /// Number of components (map components, or reduction chain length;
    /// for tiled reductions, partial components + final components).
    pub components: usize,
    /// Sorted unique operation labels of the member nodes, e.g.
    /// `["fadd", "fmul"]` — shown as `tiled_map_reduction fadd,fmul`.
    pub op_labels: Vec<String>,
    /// Source lines covered, as (file index, line), sorted and deduped.
    pub lines: Vec<(u16, u32)>,
    /// Static loops whose scope the pattern touches.
    pub loops: Vec<u32>,
    /// Structural detail for composition.
    pub detail: Detail,
}

impl Pattern {
    /// Builds the metadata (labels, lines, loops) from covered nodes.
    pub fn with_metadata(kind: PatternKind, nodes: BitSet, components: usize, g: &Ddg) -> Pattern {
        let mut labels: Vec<String> = Vec::new();
        let mut lines: Vec<(u16, u32)> = Vec::new();
        let mut loops: Vec<u32> = Vec::new();
        for idx in nodes.iter() {
            let node = g.node(ddg::NodeId(idx as u32));
            let l = g.label_str(node.label).to_string();
            if !labels.contains(&l) {
                labels.push(l);
            }
            if node.line != 0 {
                lines.push((node.file, node.line));
            }
            if let Some(scope) = node.scope.last() {
                if !loops.contains(&scope.loop_id) {
                    loops.push(scope.loop_id);
                }
            }
        }
        labels.sort();
        lines.sort_unstable();
        lines.dedup();
        loops.sort_unstable();
        Pattern {
            kind,
            nodes,
            components,
            op_labels: labels,
            lines,
            loops,
            detail: Detail::None,
        }
    }

    /// Attaches structural detail.
    pub fn with_detail(mut self, detail: Detail) -> Pattern {
        self.detail = detail;
        self
    }

    /// True when `self`'s nodes are contained in `other`'s (used by the
    /// merge phase to discard subsumed patterns).
    pub fn subsumed_by(&self, other: &Pattern) -> bool {
        self.nodes.is_subset_of(&other.nodes) && self.nodes.len() < other.nodes.len()
    }

    /// One-line description, e.g. `tiled_map_reduction fadd,fmul (6 comps)`.
    pub fn describe(&self) -> String {
        format!(
            "{} {} ({} comps)",
            self.kind.full(),
            self.op_labels.join(","),
            self.components
        )
    }
}

/// A pattern found by the iterative finder, with the iteration at which
/// the match happened (Table 3 reports patterns per iteration) and whether
/// it survives merging.
#[derive(Clone, Debug)]
pub struct Found {
    pub pattern: Pattern,
    /// 1-based Algorithm-1 iteration of the match.
    pub iteration: usize,
    /// False when a later, larger pattern subsumes this one.
    pub reported: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_names_match_table3_legend() {
        assert_eq!(PatternKind::Map.short(), "m");
        assert_eq!(PatternKind::ConditionalMap.short(), "cm");
        assert_eq!(PatternKind::FusedMap.short(), "fm");
        assert_eq!(PatternKind::TiledReduction.short(), "r");
        assert_eq!(PatternKind::TiledMapReduction.short(), "mr");
    }

    #[test]
    fn families() {
        assert!(PatternKind::FusedMap.is_map());
        assert!(!PatternKind::LinearReduction.is_map());
        assert!(PatternKind::TiledReduction.is_reduction());
        assert!(!PatternKind::TiledMapReduction.is_reduction());
    }

    #[test]
    fn subsumption_is_strict_subset() {
        let small = Pattern {
            kind: PatternKind::Map,
            nodes: BitSet::from_iter(8, [1, 2]),
            components: 2,
            op_labels: vec![],
            lines: vec![],
            loops: vec![],
            detail: Detail::None,
        };
        let big = Pattern {
            kind: PatternKind::TiledMapReduction,
            nodes: BitSet::from_iter(8, [1, 2, 3]),
            components: 3,
            op_labels: vec![],
            lines: vec![],
            loops: vec![],
            detail: Detail::None,
        };
        assert!(small.subsumed_by(&big));
        assert!(!big.subsumed_by(&small));
        assert!(!big.subsumed_by(&big), "a pattern does not subsume itself");
    }
}
