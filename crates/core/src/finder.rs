//! The iterative pattern finder (paper §5, Fig. 4, Algorithm 1).
//!
//! Simplify → decompose (+ compact) → match, then repeat: *subtract*
//! matched sub-DDGs from pool sub-DDGs (a reduction carved out of a loop
//! exposes the map left behind) and *fuse* adjacent, compatible matched
//! sub-DDGs (a map flowing into a reduction composes into a
//! map-reduction), feeding the new sub-DDGs back to the matcher until no
//! new ones appear. The pool rejects duplicates, which guarantees
//! termination; in practice a fixpoint arrives within three iterations on
//! every Starbench program, exactly as the paper reports.

use crate::decompose::{self, ExtractTask};
use crate::models::{match_subddg_full, MatchBudget, MatchOutcome};
use crate::patterns::{Found, Pattern};
use crate::simplify::{simplify, SimplifyStats};
use crate::subddg::{SubDdg, SubKind};
use cp::CancelToken;
use ddg::Ddg;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Finder configuration.
#[derive(Clone, Debug)]
pub struct FinderConfig {
    /// Per-sub-DDG matching budget (the paper uses 60 s per solver run).
    pub budget: MatchBudget,
    /// Iteration safety valve; the paper's benchmarks converge in ≤ 3.
    pub max_iterations: usize,
    /// DDG simplification (paper §5). Disabling it is the ablation the
    /// paper discusses: address/traversal computation floods the
    /// sub-DDGs, hiding patterns behind spurious dataflow.
    pub enable_simplify: bool,
    /// Optional wall-clock deadline for the whole analysis, measured from
    /// [`FinderState::new`]. When it expires the finder stops iterating
    /// and reports best-so-far patterns flagged as degraded, instead of
    /// running to fixpoint.
    pub deadline: Option<Duration>,
}

impl Default for FinderConfig {
    fn default() -> Self {
        FinderConfig {
            budget: MatchBudget::default(),
            max_iterations: 12,
            enable_simplify: true,
            deadline: None,
        }
    }
}

/// Wall-clock time per finder phase (Fig. 7's cost breakdown).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    pub simplify: Duration,
    pub decompose: Duration,
    pub matching: Duration,
    pub combine: Duration,
    pub merge: Duration,
}

impl PhaseTimes {
    pub fn total(&self) -> Duration {
        self.simplify + self.decompose + self.matching + self.combine + self.merge
    }
}

// Durations serialize as fractional milliseconds (`*_ms`) — the unit
// every figure in the paper reports, and directly plottable without a
// {secs, nanos} unpacking step. Manual impl: the derive cannot see
// through `Duration`.
impl serde::Serialize for PhaseTimes {
    fn serialize_json(&self, out: &mut String) {
        let fields = [
            ("simplify_ms", self.simplify),
            ("decompose_ms", self.decompose),
            ("matching_ms", self.matching),
            ("combine_ms", self.combine),
            ("merge_ms", self.merge),
            ("total_ms", self.total()),
        ];
        out.push('{');
        for (i, (k, d)) in fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            serde::ser_key(out, k);
            (d.as_secs_f64() * 1e3).serialize_json(out);
        }
        out.push('}');
    }
}

/// Everything the finder produced, plus the metrics the evaluation
/// harness reports.
#[derive(Debug)]
pub struct FinderResult {
    /// All matched patterns in match order, with iteration numbers;
    /// `reported` marks the post-merge survivors.
    pub found: Vec<Found>,
    /// Original (traced) DDG size in nodes — the paper's x-axis in Fig. 7.
    pub ddg_size: usize,
    /// Size after simplification.
    pub simplified_size: usize,
    pub simplify_stats: SimplifyStats,
    /// Algorithm-1 iterations until fixpoint.
    pub iterations: usize,
    /// Sub-DDGs examined by the matcher across all iterations.
    pub subddgs_matched: usize,
    pub phase_times: PhaseTimes,
    /// True when the analysis did not run to fixpoint: it was cancelled,
    /// some match searches were cut short, match jobs faulted, or active
    /// sub-DDGs were left unexamined. The patterns present are still
    /// sound (every one passed verification) — the result is best-so-far,
    /// not suspect.
    pub degraded: bool,
    /// The request's deadline expired (or its token was cancelled).
    pub cancelled: bool,
    /// Match searches that ran out of budget before being definitive.
    pub matches_exhausted: usize,
    /// Match jobs that faulted (panicked) and were degraded to no-match
    /// by the driver via [`FinderState::note_fault`].
    pub match_faults: usize,
}

impl FinderResult {
    /// The post-merge (reported) patterns.
    pub fn reported(&self) -> impl Iterator<Item = &Found> {
        self.found.iter().filter(|f| f.reported)
    }
}

struct PoolEntry {
    sub: SubDdg,
    matched: Option<Pattern>,
}

/// One unit of match work: an active pool entry to run through the
/// pattern models. Jobs of one iteration are independent of each other,
/// which is what lets the engine crate execute them concurrently.
#[derive(Clone)]
pub struct MatchJob {
    /// Index of the sub-DDG in the finder's pool; outcomes are keyed by
    /// this so they can be re-applied in deterministic pool order.
    pub pool_index: usize,
    pub sub: SubDdg,
}

/// An open match phase, issued by [`FinderState::begin_matching`] and
/// closed by [`FinderState::end_matching`]. Owns the single wall clock
/// (and `finder.match` span) for the phase, so no driver keeps a second
/// one.
#[must_use = "close the phase with FinderState::end_matching"]
pub struct MatchPhase {
    t0: Instant,
    _span: obs::SpanGuard,
}

/// The finder front-end with simplification done and extraction planned
/// but not yet run.
///
/// Decomposition splits into a cheap single-pass [`decompose::plan`]
/// (run here) and independent per-task [`decompose::extract`] calls.
/// [`FinderState::with_cancel`] runs the tasks inline; the engine fans
/// them out as pool jobs instead, overlapping the front-end with match
/// work from other requests. Either way, handing the per-task results to
/// [`Self::assemble`] *in task order* yields the exact sub-DDG pool the
/// sequential path builds, preserving byte-identical parity.
///
/// The `finder.decompose` span and phase clock open when planning starts
/// and close at `assemble`, so the reported decompose time covers
/// planning plus extraction under either driver.
pub struct FrontEnd {
    g: Arc<Ddg>,
    config: FinderConfig,
    cancel: CancelToken,
    times: PhaseTimes,
    ddg_size: usize,
    simplify_stats: SimplifyStats,
    tasks: Vec<ExtractTask>,
    t_decompose: Instant,
    decompose_span: Option<obs::SpanGuard>,
}

impl FrontEnd {
    /// Simplifies the traced DDG and plans the extraction tasks.
    pub fn new(raw: &Ddg, config: &FinderConfig, cancel: CancelToken) -> Self {
        let mut times = PhaseTimes::default();

        let t0 = Instant::now();
        let (g, _map, simplify_stats) = {
            let mut span = obs::span_args("finder.simplify", || {
                vec![("nodes_before", obs::ArgValue::U64(raw.len() as u64))]
            });
            let r = if config.enable_simplify {
                simplify(raw)
            } else {
                let stats = SimplifyStats {
                    nodes_before: raw.len(),
                    nodes_after: raw.len(),
                    ..Default::default()
                };
                (raw.clone(), Vec::new(), stats)
            };
            span.arg("nodes_after", obs::ArgValue::U64(r.0.len() as u64));
            r
        };
        times.simplify = t0.elapsed();

        let t_decompose = Instant::now();
        let decompose_span = obs::span("finder.decompose");
        let tasks = decompose::plan(&g);

        FrontEnd {
            g: Arc::new(g),
            config: config.clone(),
            cancel,
            times,
            ddg_size: raw.len(),
            simplify_stats,
            tasks,
            t_decompose,
            decompose_span: Some(decompose_span),
        }
    }

    /// Shared handle to the simplified graph, for drivers that run
    /// extraction tasks on other threads.
    pub fn graph_arc(&self) -> Arc<Ddg> {
        Arc::clone(&self.g)
    }

    /// Takes the planned extraction tasks. The driver must run every
    /// task and return the results to [`Self::assemble`] in this order.
    pub fn take_tasks(&mut self) -> Vec<ExtractTask> {
        std::mem::take(&mut self.tasks)
    }

    /// Closes the decompose phase and seeds the pool from the per-task
    /// extraction results (given in task order).
    pub fn assemble(mut self, extracted: Vec<Vec<SubDdg>>) -> FinderState {
        drop(self.decompose_span.take());
        self.times.decompose = self.t_decompose.elapsed();

        let mut pool: Vec<PoolEntry> = Vec::new();
        let mut keys: HashSet<(Vec<u64>, u8)> = HashSet::new();
        let mut active: Vec<usize> = Vec::new();
        for sub in extracted.into_iter().flatten() {
            if keys.insert(sub.pool_key()) {
                active.push(pool.len());
                pool.push(PoolEntry { sub, matched: None });
            }
        }

        FinderState {
            g: self.g,
            config: self.config,
            pool,
            keys,
            active,
            found: Vec::new(),
            iterations: 0,
            subddgs_matched: 0,
            times: self.times,
            ddg_size: self.ddg_size,
            simplify_stats: self.simplify_stats,
            cancel: self.cancel,
            matches_exhausted: 0,
            match_faults: 0,
        }
    }
}

/// The iterative finder as an explicit state machine.
///
/// `find_patterns` drives it sequentially; the engine crate drives the
/// same states with the per-iteration [`MatchJob`]s fanned out across a
/// thread pool. Because [`Self::apply_matches`] re-applies outcomes in
/// pool order and the combine phase runs single-threaded, both drivers
/// produce byte-identical results.
pub struct FinderState {
    g: Arc<Ddg>,
    config: FinderConfig,
    pool: Vec<PoolEntry>,
    keys: HashSet<(Vec<u64>, u8)>,
    active: Vec<usize>,
    found: Vec<Found>,
    iterations: usize,
    subddgs_matched: usize,
    times: PhaseTimes,
    ddg_size: usize,
    simplify_stats: SimplifyStats,
    cancel: CancelToken,
    matches_exhausted: usize,
    match_faults: usize,
}

impl FinderState {
    /// Simplifies and decomposes the traced DDG, seeding the pool with
    /// the initial sub-DDG views. The cancellation token is derived from
    /// `config.deadline`, anchored at this call; drivers that want the
    /// deadline to also cover earlier phases (tracing, queueing) use
    /// [`Self::with_cancel`] with a token they anchored themselves.
    pub fn new(raw: &Ddg, config: &FinderConfig) -> Self {
        let cancel = match config.deadline {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::new(),
        };
        Self::with_cancel(raw, config, cancel)
    }

    /// [`Self::new`] with an externally created cancellation token.
    pub fn with_cancel(raw: &Ddg, config: &FinderConfig, cancel: CancelToken) -> Self {
        let mut fe = FrontEnd::new(raw, config, cancel);
        let tasks = fe.take_tasks();
        let g = fe.graph_arc();
        let extracted = tasks.iter().map(|t| decompose::extract(&g, t)).collect();
        fe.assemble(extracted)
    }

    /// The simplified graph all sub-DDGs are views of.
    pub fn graph(&self) -> &Ddg {
        &self.g
    }

    /// Shared handle to the graph, for drivers that move match jobs to
    /// other threads.
    pub fn graph_arc(&self) -> Arc<Ddg> {
        Arc::clone(&self.g)
    }

    /// The per-match budget with the request deadline folded in: a match
    /// started near the deadline gets only the remaining time, so one
    /// sub-DDG cannot overrun the request by a full per-match budget.
    pub fn budget(&self) -> MatchBudget {
        let mut b = self.config.budget;
        b.deadline = match (b.deadline, self.cancel.deadline()) {
            (Some(a), Some(c)) => Some(a.min(c)),
            (a, c) => a.or(c),
        };
        b
    }

    /// The request's cancellation token, for drivers that poll it on
    /// other threads.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Records one match job that faulted (panicked) and was degraded to
    /// no-match by the driver. The finder only counts it; the driver
    /// still supplies a no-match outcome for the job's pool index.
    pub fn note_fault(&mut self) {
        self.match_faults += 1;
    }

    /// True once no active sub-DDGs remain, the iteration valve closed,
    /// or the request was cancelled (deadline expired).
    pub fn is_done(&self) -> bool {
        self.active.is_empty()
            || self.iterations >= self.config.max_iterations
            || self.cancel.is_expired()
    }

    /// The match jobs of the upcoming iteration, in pool order.
    pub fn active_jobs(&self) -> Vec<MatchJob> {
        self.active
            .iter()
            .map(|&i| MatchJob {
                pool_index: i,
                sub: self.pool[i].sub.clone(),
            })
            .collect()
    }

    /// Opens the match phase of one iteration. Matching may run on other
    /// threads, so the finder cannot time it internally — but with *this*
    /// as the only way to record match time, every driver measures the
    /// phase at exactly one site (and under one `finder.match` span)
    /// instead of keeping its own duplicate clock.
    pub fn begin_matching(&self) -> MatchPhase {
        MatchPhase {
            t0: Instant::now(),
            _span: obs::span_args("finder.match", || {
                vec![
                    ("iteration", obs::ArgValue::U64(self.iterations as u64 + 1)),
                    ("jobs", obs::ArgValue::U64(self.active.len() as u64)),
                ]
            }),
        }
    }

    /// Closes the match phase, accumulating its wall time into the
    /// finder's [`PhaseTimes`]. Returns the elapsed time so drivers can
    /// fold the same measurement into their own metrics instead of
    /// re-measuring.
    pub fn end_matching(&mut self, phase: MatchPhase) -> Duration {
        let d = phase.t0.elapsed();
        self.times.matching += d;
        d
    }

    /// Applies one iteration's match outcomes, then runs the sequential
    /// combine phase (subtraction + fusion) and refills the active list.
    ///
    /// `outcomes` must hold exactly one entry per job from
    /// [`Self::active_jobs`], keyed by `pool_index`; ordering does not
    /// matter — outcomes are re-applied in pool order so every driver
    /// reports patterns in the same order.
    pub fn apply_matches(&mut self, outcomes: Vec<(usize, MatchOutcome)>) {
        debug_assert_eq!(outcomes.len(), self.active.len());
        self.iterations += 1;
        let mut by_index: HashMap<usize, MatchOutcome> = outcomes.into_iter().collect();

        let mut matched_now: Vec<usize> = Vec::new();
        for &i in &self.active {
            self.subddgs_matched += 1;
            let outcome = by_index.remove(&i).unwrap_or_default();
            if outcome.exhausted {
                self.matches_exhausted += 1;
            }
            if let Some(p) = outcome.pattern {
                self.pool[i].matched = Some(p.clone());
                self.found.push(Found {
                    pattern: p,
                    iteration: self.iterations,
                    reported: true,
                });
                matched_now.push(i);
            }
        }

        // Generate new sub-DDGs by subtraction and fusion.
        let t0 = Instant::now();
        let combine_span = obs::span_args("finder.combine", || {
            vec![("matched", obs::ArgValue::U64(matched_now.len() as u64))]
        });
        let mut fresh: Vec<SubDdg> = Vec::new();
        for j in &matched_now {
            let taken = self.pool[*j].sub.nodes.clone();
            for (i, entry) in self.pool.iter().enumerate() {
                if i != *j {
                    if let Some(d) = entry.sub.subtract(&taken) {
                        fresh.push(d);
                    }
                }
            }
        }
        for &j in &matched_now {
            for i in 0..self.pool.len() {
                if i == j || self.pool[i].matched.is_none() {
                    continue;
                }
                // Fuse in whichever direction a matched map flows into the
                // other matched sub-DDG.
                for (a, b) in [(i, j), (j, i)] {
                    let (pa, pb) = (&self.pool[a], &self.pool[b]);
                    let (Some(ma), Some(mb)) = (&pa.matched, &pb.matched) else {
                        continue;
                    };
                    if !ma.kind.is_map() {
                        continue;
                    }
                    if !pa.sub.flows_into(&pb.sub, &self.g) {
                        continue;
                    }
                    let kind = SubKind::Fused {
                        map_part: pa.sub.nodes.clone(),
                        other_part: pb.sub.nodes.clone(),
                        other_kind: mb.kind,
                    };
                    fresh.push(pa.sub.fuse(&pb.sub, kind));
                }
            }
        }
        drop(combine_span);
        self.times.combine += t0.elapsed();

        // Insert the genuinely new sub-DDGs and mark them active.
        self.active.clear();
        for sub in fresh {
            if self.keys.insert(sub.pool_key()) {
                self.active.push(self.pool.len());
                self.pool.push(PoolEntry { sub, matched: None });
            }
        }
    }

    /// Runs the merge phase and packages the result.
    pub fn finish(mut self) -> FinderResult {
        let t0 = Instant::now();
        {
            let _span = obs::span_args("finder.merge", || {
                vec![("found", obs::ArgValue::U64(self.found.len() as u64))]
            });
            merge(&mut self.found);
        }
        self.times.merge = t0.elapsed();

        let cancelled = self.cancel.is_expired();
        let degraded = cancelled
            || self.matches_exhausted > 0
            || self.match_faults > 0
            || !self.active.is_empty();
        FinderResult {
            found: self.found,
            ddg_size: self.ddg_size,
            simplified_size: self.g.len(),
            simplify_stats: self.simplify_stats,
            iterations: self.iterations,
            subddgs_matched: self.subddgs_matched,
            phase_times: self.times,
            degraded,
            cancelled,
            matches_exhausted: self.matches_exhausted,
            match_faults: self.match_faults,
        }
    }
}

/// Runs the full pattern-finding pipeline on a traced DDG.
pub fn find_patterns(raw: &Ddg, config: &FinderConfig) -> FinderResult {
    let mut state = FinderState::new(raw, config);
    while !state.is_done() {
        let budget = state.budget();
        let phase = state.begin_matching();
        let outcomes: Vec<(usize, MatchOutcome)> = state
            .active_jobs()
            .into_iter()
            .map(|job| {
                let outcome = match_subddg_full(state.graph(), &job.sub, &budget);
                (job.pool_index, outcome)
            })
            .collect();
        state.end_matching(phase);
        state.apply_matches(outcomes);
    }
    state.finish()
}

/// The merge phase: deduplicate identical matches (the same nodes can be
/// reached through a loop view and an associative view) and discard
/// patterns subsumed by larger ones (paper §5, "Pattern Merging").
fn merge(found: &mut Vec<Found>) {
    // Exact duplicates: same node set and same short kind — keep the
    // earliest.
    let mut seen: HashSet<(Vec<usize>, &'static str)> = HashSet::new();
    found.retain(|f| {
        let key = (
            f.pattern.nodes.iter().collect::<Vec<_>>(),
            f.pattern.kind.short(),
        );
        seen.insert(key)
    });
    // Subsumption.
    for i in 0..found.len() {
        for j in 0..found.len() {
            if i != j && found[i].pattern.subsumed_by(&found[j].pattern) {
                found[i].reported = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::PatternKind;
    use repro_ir::Program;
    use trace::{run, RunConfig};

    fn analyze(p: &Program, cfg: &RunConfig) -> FinderResult {
        let r = run(p, cfg).unwrap();
        find_patterns(&r.ddg.unwrap(), &FinderConfig::default())
    }

    /// The paper's full motivating example (Fig. 2), as minc source: two
    /// worker threads compute partial distance sums; thread 0 folds them.
    fn streamcluster_excerpt() -> (Program, RunConfig) {
        let src = r#"
float p[8];
float hizs[2];
float result[1];
barrier b;

float dist(float x, float y) {
    float d = x - y;
    return sqrt(d * d);
}

void pkmedian(int pid, int nproc) {
    int k1 = pid * 4;
    int k2 = k1 + 4;
    float myhiz = 0.0;
    int kk;
    for (kk = k1; kk < k2; kk++) {
        myhiz = myhiz + dist(p[kk], p[0]);
    }
    hizs[pid] = myhiz;
    barrier_wait(b);
    if (pid == 0) {
        float hiz = 0.0;
        int i;
        for (i = 0; i < nproc; i++) {
            hiz = hiz + hizs[i];
        }
        result[0] = hiz;
    }
}

void main() {
    int t0;
    int t1;
    t0 = spawn pkmedian(0, 2);
    t1 = spawn pkmedian(1, 2);
    join(t0);
    join(t1);
    output(result);
}
"#;
        let p = minc::compile("streamcluster-excerpt", src).unwrap();
        let cfg = RunConfig::default()
            .with_f64("p", &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0])
            .with_barrier_participants(2);
        (p, cfg)
    }

    #[test]
    fn motivating_example_finds_tiled_map_reduction_in_three_iterations() {
        let (p, cfg) = streamcluster_excerpt();
        let result = analyze(&p, &cfg);

        // Iteration 1: the final loop is a linear reduction; the
        // associative component over all adds is a tiled reduction.
        let it1: Vec<_> = result
            .found
            .iter()
            .filter(|f| f.iteration == 1)
            .map(|f| f.pattern.kind)
            .collect();
        assert!(it1.contains(&PatternKind::LinearReduction), "f: {it1:?}");
        assert!(it1.contains(&PatternKind::TiledReduction), "r: {it1:?}");

        // Iteration 2: subtracting the reduction from the worker loop
        // exposes the dist map.
        let it2: Vec<_> = result
            .found
            .iter()
            .filter(|f| f.iteration == 2)
            .map(|f| f.pattern.kind)
            .collect();
        assert!(it2.contains(&PatternKind::Map), "m: {it2:?}");

        // Iteration 3: fusing map and tiled reduction yields the tiled
        // map-reduction.
        let it3: Vec<_> = result
            .found
            .iter()
            .filter(|f| f.iteration == 3)
            .map(|f| f.pattern.kind)
            .collect();
        assert!(it3.contains(&PatternKind::TiledMapReduction), "mr: {it3:?}");

        // Merging reports the map-reduction and discards the subsumed
        // reduction and map (paper Table 1).
        let reported: Vec<_> = result.reported().map(|f| f.pattern.kind).collect();
        assert!(reported.contains(&PatternKind::TiledMapReduction));
        assert!(
            !reported.contains(&PatternKind::TiledReduction),
            "{reported:?}"
        );
        assert!(!reported.contains(&PatternKind::Map), "{reported:?}");
    }

    #[test]
    fn sequential_version_finds_the_same_patterns() {
        // The same computation, sequential: linear everything.
        let src = r#"
float p[8];
float result[1];

float dist(float x, float y) {
    float d = x - y;
    return sqrt(d * d);
}

void main() {
    float hiz = 0.0;
    int kk;
    for (kk = 0; kk < 8; kk++) {
        hiz = hiz + dist(p[kk], p[0]);
    }
    result[0] = hiz;
    output(result);
}
"#;
        let p = minc::compile("seq", src).unwrap();
        let cfg = RunConfig::default().with_f64("p", &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        let result = analyze(&p, &cfg);
        let reported: Vec<_> = result.reported().map(|f| f.pattern.kind).collect();
        assert!(
            reported.contains(&PatternKind::LinearMapReduction),
            "sequential code yields the linear map-reduction: {reported:?}"
        );
    }

    #[test]
    fn plain_map_is_found_in_iteration_one() {
        let src = r#"
float in[4];
float out[4];

void main() {
    int i;
    for (i = 0; i < 4; i++) {
        out[i] = in[i] * 2.0 + 1.0;
    }
    output(out);
}
"#;
        let p = minc::compile("map", src).unwrap();
        let cfg = RunConfig::default().with_f64("in", &[1.0, 2.0, 3.0, 4.0]);
        let result = analyze(&p, &cfg);
        let reported: Vec<_> = result.reported().collect();
        assert_eq!(reported.len(), 1);
        assert_eq!(reported[0].pattern.kind, PatternKind::Map);
        assert_eq!(reported[0].iteration, 1);
        assert_eq!(reported[0].pattern.components, 4);
    }

    #[test]
    fn conditional_map_from_guarded_stores() {
        let src = r#"
float in[6];
float out[6];

void main() {
    int i;
    for (i = 0; i < 6; i++) {
        float v = in[i] * 3.0;
        if (v < 10.0) {
            out[i] = v;
        }
    }
    output(out);
}
"#;
        let p = minc::compile("cmap", src).unwrap();
        let cfg = RunConfig::default().with_f64("in", &[1.0, 5.0, 2.0, 6.0, 3.0, 0.5]);
        let result = analyze(&p, &cfg);
        let kinds: Vec<_> = result.reported().map(|f| f.pattern.kind).collect();
        assert_eq!(kinds, vec![PatternKind::ConditionalMap], "{kinds:?}");
    }

    #[test]
    fn finder_terminates_on_empty_ddg() {
        let src = "void main() { int x; x = 1; }";
        let p = minc::compile("empty", src).unwrap();
        let result = analyze(&p, &RunConfig::default());
        assert_eq!(result.found.len(), 0);
        assert_eq!(result.iterations, 0);
        assert!(!result.degraded);
        assert!(!result.cancelled);
    }

    #[test]
    fn complete_analysis_is_not_degraded() {
        let (p, cfg) = streamcluster_excerpt();
        let result = analyze(&p, &cfg);
        assert!(!result.degraded);
        assert!(!result.cancelled);
        assert_eq!(result.matches_exhausted, 0);
        assert_eq!(result.match_faults, 0);
    }

    #[test]
    fn expired_deadline_yields_a_cancelled_degraded_result() {
        let (p, cfg) = streamcluster_excerpt();
        let r = run(&p, &cfg).unwrap();
        let config = FinderConfig {
            deadline: Some(Duration::ZERO),
            ..Default::default()
        };
        let result = find_patterns(&r.ddg.unwrap(), &config);
        assert!(result.cancelled);
        assert!(result.degraded);
        assert_eq!(
            result.iterations, 0,
            "no iteration starts past the deadline"
        );
        assert!(result.found.is_empty());
    }

    #[test]
    fn zero_match_budget_degrades_but_keeps_the_cheap_patterns() {
        // A zero per-match budget exhausts the combinatorial tiled search,
        // but the structural matchers (map, linear reduction) are
        // budget-free: the result is partial and flagged, not empty.
        let (p, cfg) = streamcluster_excerpt();
        let r = run(&p, &cfg).unwrap();
        let config = FinderConfig {
            budget: MatchBudget {
                time: Duration::ZERO,
                deadline: None,
            },
            ..Default::default()
        };
        let result = find_patterns(&r.ddg.unwrap(), &config);
        assert!(result.degraded);
        assert!(!result.cancelled);
        assert!(result.matches_exhausted > 0);
        let kinds: Vec<_> = result.found.iter().map(|f| f.pattern.kind).collect();
        assert!(kinds.contains(&PatternKind::LinearReduction), "{kinds:?}");
        assert!(
            !kinds.contains(&PatternKind::TiledReduction),
            "the exhausted search must not have produced a match: {kinds:?}"
        );
    }
}
