//! Compaction: the quotient view of a sub-DDG (paper §5, "DDG
//! Compaction").
//!
//! Each compaction group (one loop iteration, or a single node for
//! ungrouped sub-DDGs) becomes one quotient node carrying the facts the
//! pattern models consume: the multiset of member operation labels (for
//! the relaxed isomorphism constraints 1c/4c), external input/output
//! availability (constraints 2c/2d/3e/3f), and group-level reachability
//! through the *full* simplified DDG (convexity 1e and chaining 3c).
//!
//! Reachability is answered by a *lazy* oracle rather than a precomputed
//! table: the seed ran one full-graph BFS per group at build time —
//! O(groups × (V+E)) per sub-DDG, paid even by the many sub-DDGs whose
//! models never consult reachability at all. The oracle computes nothing
//! until queried, memoizes per-group closures, and prunes every search to
//! the sub-DDG's ancestor cone (the only nodes a path back into the
//! sub-DDG can use — the same targeting `ddg::is_convex` applies to exit
//! arcs). The map model's whole-quotient independence check uses the
//! batch [`Quotient::cross_component_reach`] entry point, a single
//! O(V+E) lattice pass instead of one query per group.

use crate::subddg::SubDdg;
use ddg::graph::NodeFlags;
use ddg::{BitSet, Ddg, NodeId};
use std::cell::RefCell;
use std::sync::OnceLock;

/// One quotient node.
#[derive(Clone, Debug)]
pub struct Group {
    pub members: Vec<NodeId>,
    /// Sorted member label ids — equal keys ⇔ operation-isomorphic.
    pub label_key: Vec<u32>,
    /// Has an in-arc from outside the sub-DDG, or a member reading raw
    /// program input.
    pub ext_in: bool,
    /// Has an out-arc to outside the sub-DDG, or a member whose value
    /// reaches program output.
    pub ext_out: bool,
    /// Has any incoming arc at all (external or from another group).
    pub any_in: bool,
    /// Has any outgoing arc at all (external or to another group).
    pub any_out: bool,
}

/// `group_of` sentinel for nodes outside the sub-DDG.
const OUTSIDE: u32 = u32::MAX;

/// Lazily computed reachability state, behind a `RefCell` so the models
/// can query through a shared `&Quotient`.
#[derive(Debug, Default)]
struct ReachState {
    /// Memoized per-group forward closures (group indices, irreflexive).
    closures: Vec<Option<BitSet>>,
    /// Nodes that can reach some sub-DDG member (members included) — the
    /// only nodes a forward search toward the sub-DDG can usefully visit,
    /// so every oracle search is pruned to this set. Computed once, on
    /// the first query.
    relevant: Option<BitSet>,
    /// Reachability questions answered (point or batch).
    queries: u64,
    /// Graph nodes expanded across all oracle searches. Stays zero until
    /// the first query and grows with queries, not with group count —
    /// the property the lazy-oracle proptest pins down.
    nodes_visited: u64,
}

/// The quotient graph of a sub-DDG.
#[derive(Debug)]
pub struct Quotient {
    pub groups: Vec<Group>,
    /// Arcs between distinct groups (deduplicated), index-based.
    pub arcs: Vec<(usize, usize)>,
    pub succs: Vec<Vec<usize>>,
    pub preds: Vec<Vec<usize>>,
    /// node -> group index within the sub-DDG ([`OUTSIDE`] elsewhere).
    group_of: Vec<u32>,
    reach: RefCell<ReachState>,
}

impl Quotient {
    /// Builds the quotient view of `sub` within `g`. Group-level
    /// reachability is *not* computed here; it is answered on demand by
    /// [`Quotient::reaches`] / [`Quotient::cross_component_reach`].
    pub fn build(g: &Ddg, sub: &SubDdg) -> Quotient {
        let mut span = obs::span("finder.quotient");
        let singleton_groups;
        let groups_src: &[Vec<NodeId>] = match &sub.groups {
            Some(gs) => gs,
            None => {
                singleton_groups = sub
                    .nodes
                    .iter()
                    .map(|n| vec![NodeId(n as u32)])
                    .collect::<Vec<_>>();
                &singleton_groups
            }
        };

        // node -> group index (within the sub-DDG).
        let mut group_of: Vec<u32> = vec![OUTSIDE; g.len()];
        for (gi, members) in groups_src.iter().enumerate() {
            for &m in members {
                group_of[m.index()] = gi as u32;
            }
        }

        let n = groups_src.len();
        span.arg("groups", obs::ArgValue::U64(n as u64));
        let mut groups: Vec<Group> = groups_src
            .iter()
            .map(|members| {
                let mut label_key: Vec<u32> = members.iter().map(|&m| g.node(m).label.0).collect();
                label_key.sort_unstable();
                let ext_in = members.iter().any(|&m| {
                    g.node(m).flags.contains(NodeFlags::READS_INPUT)
                        || g.preds(m).iter().any(|p| group_of[p.index()] == OUTSIDE)
                });
                let ext_out = members.iter().any(|&m| {
                    g.node(m).flags.contains(NodeFlags::WRITES_OUTPUT)
                        || g.succs(m).iter().any(|s| group_of[s.index()] == OUTSIDE)
                });
                Group {
                    members: members.clone(),
                    label_key,
                    ext_in,
                    ext_out,
                    any_in: ext_in,
                    any_out: ext_out,
                }
            })
            .collect();

        // Arcs between groups.
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        let mut arcs = Vec::new();
        for (gi, members) in groups_src.iter().enumerate() {
            for &m in members {
                if !g.preds(m).is_empty() {
                    groups[gi].any_in = true;
                }
                if !g.succs(m).is_empty() {
                    groups[gi].any_out = true;
                }
                for &s in g.succs(m) {
                    let ti = group_of[s.index()];
                    if ti != OUTSIDE && ti as usize != gi {
                        succs[gi].push(ti as usize);
                        preds[ti as usize].push(gi);
                    }
                }
            }
        }
        for (gi, list) in succs.iter_mut().enumerate() {
            list.sort_unstable();
            list.dedup();
            for &t in list.iter() {
                arcs.push((gi, t));
            }
        }
        for list in preds.iter_mut() {
            list.sort_unstable();
            list.dedup();
        }

        Quotient {
            groups,
            arcs,
            succs,
            preds,
            group_of,
            reach: RefCell::new(ReachState {
                closures: (0..n).map(|_| None).collect(),
                relevant: None,
                queries: 0,
                nodes_visited: 0,
            }),
        }
    }

    /// Number of quotient nodes.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when the quotient has no nodes.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// True when a path `i ⇝ j` of ≥ 1 arc exists in the full simplified
    /// DDG — including paths through nodes outside the sub-DDG (the
    /// convexity trap). Irreflexive: internal arcs never make a group
    /// "reach itself".
    pub fn reaches(&self, g: &Ddg, i: usize, j: usize) -> bool {
        let mut st = self.reach.borrow_mut();
        st.queries += 1;
        self.closure_of(g, &mut st, i).contains(j)
    }

    /// The groups reachable from group `i` (≥ 1 arc, full-graph paths,
    /// self excluded).
    pub fn reachable_groups(&self, g: &Ddg, i: usize) -> BitSet {
        let mut st = self.reach.borrow_mut();
        st.queries += 1;
        self.closure_of(g, &mut st, i).clone()
    }

    /// True when some group reaches a group of a *different* component,
    /// where `comp_of[gi]` names group `gi`'s component — the map model's
    /// independence check (2b + 1e) over the whole quotient at once.
    ///
    /// One forward pass propagates, for every node in the sub-DDG's
    /// ancestor cone, *which components can reach it* as a three-level
    /// lattice (none / exactly one / more than one): O(V+E) total,
    /// independent of the group count, where the equivalent per-group
    /// closures cost O(groups × (V+E)). Returns at the first violation.
    pub fn cross_component_reach(&self, g: &Ddg, comp_of: &[usize]) -> bool {
        const NONE: u64 = u64::MAX;
        const MANY: u64 = u64::MAX - 1;
        let join = |a: u64, b: u64| {
            if a == NONE || a == b {
                b
            } else if b == NONE {
                a
            } else {
                MANY
            }
        };

        let mut st = self.reach.borrow_mut();
        st.queries += 1;
        self.ensure_relevant(g, &mut st);
        let relevant = st.relevant.as_ref().unwrap();

        // in_val[n] = which components' groups reach node n via ≥ 1 arc.
        let mut in_val: Vec<u64> = vec![NONE; g.len()];
        let mut visited = 0u64;
        // Seed with every member: each contributes its own component to
        // its successors (zero-arc "reach" of a node by its own group is
        // not reach).
        let mut stack: Vec<NodeId> = self
            .groups
            .iter()
            .flat_map(|grp| grp.members.iter().copied())
            .collect();
        while let Some(u) = stack.pop() {
            visited += 1;
            let own = match self.group_of[u.index()] {
                OUTSIDE => NONE,
                gi => comp_of[gi as usize] as u64,
            };
            let out = join(in_val[u.index()], own);
            if out == NONE {
                continue;
            }
            for &v in g.succs(u) {
                if !relevant.contains(v.index()) {
                    continue;
                }
                let new = join(in_val[v.index()], out);
                if new == in_val[v.index()] {
                    continue;
                }
                in_val[v.index()] = new;
                let vg = self.group_of[v.index()];
                if vg != OUTSIDE && (new == MANY || new != comp_of[vg as usize] as u64) {
                    // A member reachable from a foreign component.
                    st.nodes_visited += visited;
                    return true;
                }
                stack.push(v);
            }
        }
        st.nodes_visited += visited;
        false
    }

    /// True when any group can reach another (used to rule maps out
    /// fast): [`Quotient::cross_component_reach`] with every group its
    /// own component.
    pub fn has_inter_group_flow(&self, g: &Ddg) -> bool {
        let identity: Vec<usize> = (0..self.len()).collect();
        self.cross_component_reach(g, &identity)
    }

    /// Oracle effort so far: `(queries answered, graph nodes expanded)`.
    /// Both stay zero until the first reachability question is asked.
    pub fn reach_stats(&self) -> (u64, u64) {
        let st = self.reach.borrow();
        (st.queries, st.nodes_visited)
    }

    /// The memoized closure of group `i`, computing it on first use with
    /// a forward search from the group's members pruned to the sub-DDG's
    /// ancestor cone. Any path from a member to another group's node runs
    /// entirely inside that cone (every node on it reaches the endpoint),
    /// so pruning never loses a reachable group.
    fn closure_of<'a>(&self, g: &Ddg, st: &'a mut ReachState, i: usize) -> &'a BitSet {
        if st.closures[i].is_none() {
            self.ensure_relevant(g, st);
            let relevant = st.relevant.as_ref().unwrap();
            let mut out = BitSet::new(self.groups.len());
            let mut seen = BitSet::new(g.len());
            let mut stack: Vec<NodeId> = Vec::new();
            let mut visited = 0u64;
            for &m in &self.groups[i].members {
                for &v in g.succs(m) {
                    if relevant.contains(v.index()) && seen.insert(v.index()) {
                        stack.push(v);
                    }
                }
            }
            while let Some(u) = stack.pop() {
                visited += 1;
                let ug = self.group_of[u.index()];
                if ug != OUTSIDE {
                    out.insert(ug as usize);
                }
                for &v in g.succs(u) {
                    if relevant.contains(v.index()) && seen.insert(v.index()) {
                        stack.push(v);
                    }
                }
            }
            // Internal arcs re-reach the group itself; the relation is
            // irreflexive.
            out.remove(i);
            st.nodes_visited += visited;
            st.closures[i] = Some(out);
        }
        st.closures[i].as_ref().unwrap()
    }

    /// Computes the ancestor cone (reverse reachability from all members,
    /// members included) the first time any query needs it.
    fn ensure_relevant(&self, g: &Ddg, st: &mut ReachState) {
        if st.relevant.is_some() {
            return;
        }
        let mut rel = BitSet::new(g.len());
        let mut stack: Vec<NodeId> = Vec::new();
        let mut visited = 0u64;
        for (ni, &gi) in self.group_of.iter().enumerate() {
            if gi != OUTSIDE && rel.insert(ni) {
                stack.push(NodeId(ni as u32));
            }
        }
        while let Some(u) = stack.pop() {
            visited += 1;
            for &p in g.preds(u) {
                if rel.insert(p.index()) {
                    stack.push(p);
                }
            }
        }
        st.nodes_visited += visited;
        st.relevant = Some(rel);
    }

    /// All groups share one label multiset (relaxed op-isomorphism).
    pub fn groups_isomorphic(&self) -> bool {
        self.groups
            .windows(2)
            .all(|w| w[0].label_key == w[1].label_key)
    }
}

impl Drop for Quotient {
    /// Flushes the oracle's effort into the metrics registry. Handles are
    /// cached in `OnceLock`s so the per-quotient cost is two relaxed
    /// adds. Unconditional (not gated on `obs::enabled`) because the
    /// fig7 perf-trajectory seed records these counters without span
    /// tracing on.
    fn drop(&mut self) {
        static QUERIES: OnceLock<obs::Counter> = OnceLock::new();
        static VISITED: OnceLock<obs::Counter> = OnceLock::new();
        let st = self.reach.get_mut();
        QUERIES
            .get_or_init(|| obs::counter("quotient.reach_queries"))
            .add(st.queries);
        VISITED
            .get_or_init(|| obs::counter("quotient.reach_nodes_visited"))
            .add(st.nodes_visited);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subddg::SubKind;
    use ddg::DdgBuilder;

    /// Two iteration groups {0,1} and {2,3}, with 1 -> 2 crossing and an
    /// external node 4 fed by 3.
    fn grouped_graph() -> (Ddg, SubDdg) {
        let mut b = DdgBuilder::new();
        let f = b.intern_label("fmul", true);
        let a = b.intern_label("fadd", true);
        let n: Vec<NodeId> = vec![
            b.add_node(f, 0, 0, 1, 1, 0, vec![]),
            b.add_node(a, 1, 0, 2, 1, 0, vec![]),
            b.add_node(f, 0, 0, 1, 1, 0, vec![]),
            b.add_node(a, 1, 0, 2, 1, 0, vec![]),
            b.add_node(a, 2, 0, 9, 1, 0, vec![]),
        ];
        b.add_arc(n[0], n[1]);
        b.add_arc(n[1], n[2]); // crosses groups
        b.add_arc(n[2], n[3]);
        b.add_arc(n[3], n[4]); // leaves the sub-DDG
        b.mark_reads_input(n[0]);
        let g = b.finish();
        let sub = SubDdg::grouped(
            BitSet::from_iter(g.len(), [0, 1, 2, 3]),
            vec![vec![n[0], n[1]], vec![n[2], n[3]]],
            SubKind::Loop { loop_id: 0 },
        );
        (g, sub)
    }

    #[test]
    fn builds_groups_with_flags_and_arcs() {
        let (g, sub) = grouped_graph();
        let q = Quotient::build(&g, &sub);
        assert_eq!(q.len(), 2);
        assert!(q.groups_isomorphic(), "both groups are {{fmul, fadd}}");
        assert!(q.groups[0].ext_in, "group 0 reads program input");
        assert!(!q.groups[0].ext_out, "group 0 only feeds group 1");
        assert!(q.groups[1].ext_out, "group 1 feeds the external node");
        assert!(!q.groups[1].ext_in);
        assert_eq!(q.arcs, vec![(0, 1)]);
        assert!(q.reaches(&g, 0, 1));
        assert!(!q.reaches(&g, 1, 0));
        assert!(q.has_inter_group_flow(&g));
    }

    #[test]
    fn singleton_view_of_ungrouped_subddg() {
        let (g, _) = grouped_graph();
        let sub = SubDdg::ungrouped(
            BitSet::from_iter(g.len(), [1, 3, 4]),
            SubKind::Assoc {
                label: "fadd".into(),
            },
        );
        let q = Quotient::build(&g, &sub);
        assert_eq!(q.len(), 3);
        // 1 reaches 3 through node 2, which is OUTSIDE the sub-DDG: the
        // full-graph reachability must still see it.
        assert!(q.reaches(&g, 0, 1));
        // But there is no quotient arc 1->3 (no direct arc).
        assert!(!q.arcs.contains(&(0, 1)));
        assert!(q.arcs.contains(&(1, 2)), "3 -> 4 is direct");
    }

    #[test]
    fn reach_through_outside_detected() {
        // This is the convexity trap: two groups joined only through an
        // external node still "reach" each other.
        let mut b = DdgBuilder::new();
        let l = b.intern_label("fadd", true);
        let n: Vec<NodeId> = (0..3)
            .map(|i| b.add_node(l, i, 0, 1, 1, 0, vec![]))
            .collect();
        b.add_arc(n[0], n[1]);
        b.add_arc(n[1], n[2]);
        let g = b.finish();
        let sub = SubDdg::ungrouped(
            BitSet::from_iter(g.len(), [0, 2]),
            SubKind::Assoc {
                label: "fadd".into(),
            },
        );
        let q = Quotient::build(&g, &sub);
        assert!(q.reaches(&g, 0, 1), "0 reaches 2 via the outside node 1");
        assert!(q.arcs.is_empty());
        // The batch check agrees: with each group its own component, the
        // outside path is a cross-component reach.
        assert!(q.cross_component_reach(&g, &[0, 1]));
        // With both groups in one component it is not.
        assert!(!q.cross_component_reach(&g, &[0, 0]));
    }

    #[test]
    fn oracle_is_lazy_and_memoized() {
        let (g, sub) = grouped_graph();
        let q = Quotient::build(&g, &sub);
        assert_eq!(
            q.reach_stats(),
            (0, 0),
            "no reachability work before the first query"
        );
        assert!(q.reaches(&g, 0, 1));
        let (q1, v1) = q.reach_stats();
        assert_eq!(q1, 1);
        assert!(v1 > 0, "the first query pays for its search");
        // Re-asking anything about group 0 hits the memoized closure.
        assert!(!q.reaches(&g, 0, 0), "irreflexive");
        let (q2, v2) = q.reach_stats();
        assert_eq!(q2, 2);
        assert_eq!(v2, v1, "memoized queries expand no further nodes");
    }

    #[test]
    fn cross_component_reach_ignores_intra_component_paths() {
        let (g, sub) = grouped_graph();
        let q = Quotient::build(&g, &sub);
        // Group 0 reaches group 1 directly: distinct components violate,
        // one shared component does not.
        assert!(q.cross_component_reach(&g, &[0, 1]));
        assert!(!q.cross_component_reach(&g, &[0, 0]));
    }
}
