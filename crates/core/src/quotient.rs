//! Compaction: the quotient view of a sub-DDG (paper §5, "DDG
//! Compaction").
//!
//! Each compaction group (one loop iteration, or a single node for
//! ungrouped sub-DDGs) becomes one quotient node carrying the facts the
//! pattern models consume: the multiset of member operation labels (for
//! the relaxed isomorphism constraints 1c/4c), external input/output
//! availability (constraints 2c/2d/3e/3f), and group-level reachability
//! through the *full* simplified DDG (convexity 1e and chaining 3c).

use crate::subddg::SubDdg;
use ddg::graph::NodeFlags;
use ddg::{BitSet, Ddg, NodeId};

/// One quotient node.
#[derive(Clone, Debug)]
pub struct Group {
    pub members: Vec<NodeId>,
    /// Sorted member label ids — equal keys ⇔ operation-isomorphic.
    pub label_key: Vec<u32>,
    /// Has an in-arc from outside the sub-DDG, or a member reading raw
    /// program input.
    pub ext_in: bool,
    /// Has an out-arc to outside the sub-DDG, or a member whose value
    /// reaches program output.
    pub ext_out: bool,
    /// Has any incoming arc at all (external or from another group).
    pub any_in: bool,
    /// Has any outgoing arc at all (external or to another group).
    pub any_out: bool,
}

/// The quotient graph of a sub-DDG.
#[derive(Debug)]
pub struct Quotient {
    pub groups: Vec<Group>,
    /// Arcs between distinct groups (deduplicated), index-based.
    pub arcs: Vec<(usize, usize)>,
    pub succs: Vec<Vec<usize>>,
    pub preds: Vec<Vec<usize>>,
    /// `reaches[i]` = groups reachable from group `i` via any path in the
    /// full simplified DDG (≥ 1 arc), including paths through nodes
    /// outside the sub-DDG.
    pub reaches: Vec<BitSet>,
}

impl Quotient {
    /// Builds the quotient view of `sub` within `g`.
    pub fn build(g: &Ddg, sub: &SubDdg) -> Quotient {
        let singleton_groups;
        let groups_src: &[Vec<NodeId>] = match &sub.groups {
            Some(gs) => gs,
            None => {
                singleton_groups = sub
                    .nodes
                    .iter()
                    .map(|n| vec![NodeId(n as u32)])
                    .collect::<Vec<_>>();
                &singleton_groups
            }
        };

        // node -> group index (within the sub-DDG).
        let mut group_of: Vec<Option<u32>> = vec![None; g.len()];
        for (gi, members) in groups_src.iter().enumerate() {
            for &m in members {
                group_of[m.index()] = Some(gi as u32);
            }
        }

        let n = groups_src.len();
        let mut groups: Vec<Group> = groups_src
            .iter()
            .map(|members| {
                let mut label_key: Vec<u32> = members.iter().map(|&m| g.node(m).label.0).collect();
                label_key.sort_unstable();
                let ext_in = members.iter().any(|&m| {
                    g.node(m).flags.contains(NodeFlags::READS_INPUT)
                        || g.preds(m).iter().any(|p| group_of[p.index()].is_none())
                });
                let ext_out = members.iter().any(|&m| {
                    g.node(m).flags.contains(NodeFlags::WRITES_OUTPUT)
                        || g.succs(m).iter().any(|s| group_of[s.index()].is_none())
                });
                Group {
                    members: members.clone(),
                    label_key,
                    ext_in,
                    ext_out,
                    any_in: ext_in,
                    any_out: ext_out,
                }
            })
            .collect();

        // Arcs between groups.
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        let mut arcs = Vec::new();
        for (gi, members) in groups_src.iter().enumerate() {
            for &m in members {
                if !g.preds(m).is_empty() {
                    groups[gi].any_in = true;
                }
                if !g.succs(m).is_empty() {
                    groups[gi].any_out = true;
                }
                for &s in g.succs(m) {
                    if let Some(ti) = group_of[s.index()] {
                        let ti = ti as usize;
                        if ti != gi {
                            succs[gi].push(ti);
                            preds[ti].push(gi);
                        }
                    }
                }
            }
        }
        for (gi, list) in succs.iter_mut().enumerate() {
            list.sort_unstable();
            list.dedup();
            for &t in list.iter() {
                arcs.push((gi, t));
            }
        }
        for list in preds.iter_mut() {
            list.sort_unstable();
            list.dedup();
        }

        // Group-level reachability through the full graph: BFS from each
        // group's members.
        let mut reaches = Vec::with_capacity(n);
        for members in groups_src {
            let closure = ddg::algo::reachable_from(g, members.iter().copied());
            let mut r = BitSet::new(n);
            for x in closure.iter() {
                if let Some(t) = group_of[x] {
                    r.insert(t as usize);
                }
            }
            // A group trivially "reaches itself" only via internal arcs;
            // exclude self to keep the relation irreflexive for the
            // independence checks.
            reaches.push(r);
        }
        // Exclude self-reach introduced by internal arcs.
        for (gi, r) in reaches.iter_mut().enumerate() {
            r.remove(gi);
        }

        Quotient {
            groups,
            arcs,
            succs,
            preds,
            reaches,
        }
    }

    /// Number of quotient nodes.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when the quotient has no nodes.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// True when any two distinct groups can reach one another (used to
    /// rule maps out fast).
    pub fn has_inter_group_flow(&self) -> bool {
        self.reaches.iter().any(|r| !r.is_empty())
    }

    /// All groups share one label multiset (relaxed op-isomorphism).
    pub fn groups_isomorphic(&self) -> bool {
        self.groups
            .windows(2)
            .all(|w| w[0].label_key == w[1].label_key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subddg::SubKind;
    use ddg::DdgBuilder;

    /// Two iteration groups {0,1} and {2,3}, with 1 -> 2 crossing and an
    /// external node 4 fed by 3.
    fn grouped_graph() -> (Ddg, SubDdg) {
        let mut b = DdgBuilder::new();
        let f = b.intern_label("fmul", true);
        let a = b.intern_label("fadd", true);
        let n: Vec<NodeId> = vec![
            b.add_node(f, 0, 0, 1, 1, 0, vec![]),
            b.add_node(a, 1, 0, 2, 1, 0, vec![]),
            b.add_node(f, 0, 0, 1, 1, 0, vec![]),
            b.add_node(a, 1, 0, 2, 1, 0, vec![]),
            b.add_node(a, 2, 0, 9, 1, 0, vec![]),
        ];
        b.add_arc(n[0], n[1]);
        b.add_arc(n[1], n[2]); // crosses groups
        b.add_arc(n[2], n[3]);
        b.add_arc(n[3], n[4]); // leaves the sub-DDG
        b.mark_reads_input(n[0]);
        let g = b.finish();
        let sub = SubDdg::grouped(
            BitSet::from_iter(g.len(), [0, 1, 2, 3]),
            vec![vec![n[0], n[1]], vec![n[2], n[3]]],
            SubKind::Loop { loop_id: 0 },
        );
        (g, sub)
    }

    #[test]
    fn builds_groups_with_flags_and_arcs() {
        let (g, sub) = grouped_graph();
        let q = Quotient::build(&g, &sub);
        assert_eq!(q.len(), 2);
        assert!(q.groups_isomorphic(), "both groups are {{fmul, fadd}}");
        assert!(q.groups[0].ext_in, "group 0 reads program input");
        assert!(!q.groups[0].ext_out, "group 0 only feeds group 1");
        assert!(q.groups[1].ext_out, "group 1 feeds the external node");
        assert!(!q.groups[1].ext_in);
        assert_eq!(q.arcs, vec![(0, 1)]);
        assert!(q.reaches[0].contains(1));
        assert!(!q.reaches[1].contains(0));
        assert!(q.has_inter_group_flow());
    }

    #[test]
    fn singleton_view_of_ungrouped_subddg() {
        let (g, _) = grouped_graph();
        let sub = SubDdg::ungrouped(
            BitSet::from_iter(g.len(), [1, 3, 4]),
            SubKind::Assoc {
                label: "fadd".into(),
            },
        );
        let q = Quotient::build(&g, &sub);
        assert_eq!(q.len(), 3);
        // 1 reaches 3 through node 2, which is OUTSIDE the sub-DDG: the
        // full-graph reachability must still see it.
        assert!(q.reaches[0].contains(1));
        // But there is no quotient arc 1->3 (no direct arc).
        assert!(!q.arcs.contains(&(0, 1)));
        assert!(q.arcs.contains(&(1, 2)), "3 -> 4 is direct");
    }

    #[test]
    fn reach_through_outside_detected() {
        // This is the convexity trap: two groups joined only through an
        // external node still "reach" each other.
        let mut b = DdgBuilder::new();
        let l = b.intern_label("fadd", true);
        let n: Vec<NodeId> = (0..3)
            .map(|i| b.add_node(l, i, 0, 1, 1, 0, vec![]))
            .collect();
        b.add_arc(n[0], n[1]);
        b.add_arc(n[1], n[2]);
        let g = b.finish();
        let sub = SubDdg::ungrouped(
            BitSet::from_iter(g.len(), [0, 2]),
            SubKind::Assoc {
                label: "fadd".into(),
            },
        );
        let q = Quotient::build(&g, &sub);
        assert!(
            q.reaches[0].contains(1),
            "0 reaches 2 via the outside node 1"
        );
        assert!(q.arcs.is_empty());
    }
}
